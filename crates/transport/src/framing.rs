//! Length-framed byte streams: how codec payloads survive a transport
//! that delivers *bytes*, not messages.
//!
//! The frame layout is pinned next to the codec's version byte
//! ([`polystyrene_protocol::codec::FRAME_VERSION`]): a `u32`
//! little-endian length prefix counting everything after itself, one
//! frame-version byte, then the payload. [`write_frame`] emits the whole
//! frame with a single `write_all` (short writes are retried inside it);
//! [`read_frame`] reassembles a frame from however many partial reads
//! the socket produces, rejects oversized or mis-versioned frames
//! *before* allocating, and distinguishes three non-frame outcomes a
//! socket loop needs: clean close at a frame boundary, idle timeout
//! before a frame started, and hard stream errors (which include a close
//! or timeout *mid-frame* — once a frame's first byte arrived, anything
//! but its completion is stream corruption).

use polystyrene_protocol::codec::{FRAME_VERSION, MAX_FRAME_BYTES};
use std::io::{self, Read, Write};

/// Outcome of one [`read_frame`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// The stream closed cleanly at a frame boundary.
    Closed,
    /// A read timeout fired before any byte of a new frame arrived —
    /// the connection is merely idle, not broken. Only surfaced when the
    /// underlying stream has a read timeout configured.
    Idle,
}

/// Outcome of one [`read_frame_into`] attempt — [`FrameRead`] with the
/// payload landing in the caller's reused buffer instead of a fresh
/// allocation per frame.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameStatus {
    /// A complete frame; its payload is in the caller's buffer.
    Frame,
    /// The stream closed cleanly at a frame boundary.
    Closed,
    /// A read timeout fired before any byte of a new frame arrived.
    Idle,
}

/// Whether an IO error is a read-timeout expiry (both kinds, for
/// platform portability).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Default wall-clock budget for completing one frame once its first
/// byte has arrived ([`read_frame`] = [`read_frame_deadline`] with
/// this). A well-behaved sender emits each frame with a single
/// `write_all`, so even brutal scheduling jitter clears one frame in
/// well under a second; a sender that opens a frame and then trickles
/// or stalls — dead in a way the kernel has not surfaced yet, or
/// hostile — must not pin the reading thread (and its stop-flag check)
/// without bound. A wall deadline, not a window counter: counting
/// empty timeout windows would be defeated by one byte per window.
pub const MID_FRAME_DEADLINE: std::time::Duration = std::time::Duration::from_secs(30);

/// Fills `buf` across as many partial reads as it takes.
///
/// `at_boundary` declares that no byte of the current frame has been
/// consumed yet, making two outcomes non-errors: EOF (`Closed`) and a
/// read timeout (`Idle`). Past the boundary the frame has started, so
/// EOF becomes [`io::ErrorKind::UnexpectedEof`] — a peer that dies
/// mid-frame must poison the stream, never desync it — and the whole
/// fill must land within `deadline` of the frame's first byte or the
/// stall itself poisons the stream.
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
    deadline: std::time::Duration,
) -> io::Result<Option<FrameRead>> {
    let mut filled = 0;
    // Armed from the frame's first byte: boundary fills start the clock
    // only once something arrived, later fills are mid-frame already.
    let mut expires: Option<std::time::Instant> = if at_boundary {
        None
    } else {
        Some(std::time::Instant::now() + deadline)
    };
    while filled < buf.len() {
        if expires.is_some_and(|at| std::time::Instant::now() > at) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "frame not completed within the mid-frame deadline",
            ));
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Ok(Some(FrameRead::Closed));
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                ));
            }
            Ok(n) => {
                filled += n;
                expires.get_or_insert_with(|| std::time::Instant::now() + deadline);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if at_boundary && filled == 0 {
                    return Ok(Some(FrameRead::Idle));
                }
                // Mid-frame the peer is expected to be actively
                // writing: ride out scheduling jitter until the
                // deadline says otherwise.
            }
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Reads one frame, handling partial reads, and returns its payload —
/// or [`FrameRead::Closed`] / [`FrameRead::Idle`] when the stream ended
/// or timed out *between* frames. Equivalent to
/// [`read_frame_deadline`] with [`MID_FRAME_DEADLINE`].
///
/// # Errors
///
/// Any mid-frame stream failure, a frame that fails to complete within
/// the deadline of its first byte, a declared length of zero or above
/// [`MAX_FRAME_BYTES`] (rejected before allocating), or a
/// frame-version byte other than [`FRAME_VERSION`].
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    read_frame_deadline(r, MID_FRAME_DEADLINE)
}

/// [`read_frame`] with an explicit wall-clock budget per frame segment,
/// counted from the frame's first byte (idling *between* frames is
/// unlimited — that is what [`FrameRead::Idle`] reports).
pub fn read_frame_deadline(
    r: &mut impl Read,
    deadline: std::time::Duration,
) -> io::Result<FrameRead> {
    let mut payload = Vec::new();
    Ok(match read_frame_into(r, deadline, &mut payload)? {
        FrameStatus::Frame => FrameRead::Frame(payload),
        FrameStatus::Closed => FrameRead::Closed,
        FrameStatus::Idle => FrameRead::Idle,
    })
}

/// [`read_frame_deadline`] reading the payload into a caller-owned
/// buffer (cleared and overwritten), so a connection's reader amortizes
/// one allocation over every frame it will ever receive instead of
/// paying a fresh frame-body `Vec` per message. Length sanity is still
/// checked *before* the buffer is grown.
pub fn read_frame_into(
    r: &mut impl Read,
    deadline: std::time::Duration,
    payload: &mut Vec<u8>,
) -> io::Result<FrameStatus> {
    let mut len_buf = [0u8; 4];
    if let Some(outcome) = fill(r, &mut len_buf, true, deadline)? {
        return Ok(match outcome {
            FrameRead::Closed => FrameStatus::Closed,
            _ => FrameStatus::Idle,
        });
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME_BYTES}"),
        ));
    }
    let mut version = [0u8; 1];
    fill(r, &mut version, false, deadline)?;
    if version[0] != FRAME_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame version {} (expected {FRAME_VERSION})", version[0]),
        ));
    }
    payload.clear();
    payload.resize(len - 1, 0);
    fill(r, payload, false, deadline)?;
    Ok(FrameStatus::Frame)
}

/// Writes one frame (length prefix, version byte, payload) as a single
/// buffer, so a frame is never interleaved with torn sibling writes.
///
/// # Errors
///
/// A payload larger than [`MAX_FRAME_BYTES`] − 1 (it could never be
/// read back), or any underlying write failure — `write_all` retries
/// short writes internally.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::new();
    write_frame_into(w, payload, &mut frame)
}

/// [`write_frame`] assembling the frame in a caller-owned scratch buffer
/// (cleared and overwritten), so a send loop serializes every outgoing
/// frame through one reused allocation.
pub fn write_frame_into(w: &mut impl Write, payload: &[u8], frame: &mut Vec<u8>) -> io::Result<()> {
    let len = payload.len() + 1;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload of {} bytes exceeds the max frame", payload.len()),
        ));
    }
    frame.clear();
    frame.reserve(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(FRAME_VERSION);
    frame.extend_from_slice(payload);
    w.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A reader that hands out at most one byte per `read` call — the
    /// worst partial-read behavior a socket can legally exhibit.
    struct Trickle {
        bytes: Vec<u8>,
        at: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    /// A reader that times out a fixed number of times before each byte.
    struct Flaky {
        bytes: Vec<u8>,
        at: usize,
        timeouts_before_each_byte: usize,
        countdown: usize,
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.countdown > 0 {
                self.countdown -= 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
            }
            self.countdown = self.timeouts_before_each_byte;
            if self.at >= self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn roundtrip_through_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            FrameRead::Frame(b"hello".to_vec())
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), FrameRead::Frame(vec![]));
        assert_eq!(read_frame(&mut cursor).unwrap(), FrameRead::Closed);
    }

    #[test]
    fn into_variants_reuse_dirty_buffers() {
        // One payload buffer and one frame scratch survive several
        // frames of different sizes: every read must fully replace the
        // previous (possibly longer) contents.
        let mut frame_scratch = vec![0xAA; 64];
        let mut wire = Vec::new();
        write_frame_into(&mut wire, b"first frame", &mut frame_scratch).unwrap();
        write_frame_into(&mut wire, b"2nd", &mut frame_scratch).unwrap();
        let mut cursor = io::Cursor::new(wire);
        let mut payload = vec![0xBB; 128]; // deliberately dirty and oversized
        assert_eq!(
            read_frame_into(&mut cursor, MID_FRAME_DEADLINE, &mut payload).unwrap(),
            FrameStatus::Frame
        );
        assert_eq!(payload, b"first frame");
        let cap = payload.capacity();
        assert_eq!(
            read_frame_into(&mut cursor, MID_FRAME_DEADLINE, &mut payload).unwrap(),
            FrameStatus::Frame
        );
        assert_eq!(payload, b"2nd");
        assert_eq!(payload.capacity(), cap, "reuse must keep the allocation");
        assert_eq!(
            read_frame_into(&mut cursor, MID_FRAME_DEADLINE, &mut payload).unwrap(),
            FrameStatus::Closed
        );
    }

    #[test]
    fn partial_reads_reassemble_the_frame() {
        let mut r = Trickle {
            bytes: framed(b"partial"),
            at: 0,
        };
        assert_eq!(
            read_frame(&mut r).unwrap(),
            FrameRead::Frame(b"partial".to_vec())
        );
        assert_eq!(read_frame(&mut r).unwrap(), FrameRead::Closed);
    }

    #[test]
    fn timeouts_between_frames_are_idle_but_mid_frame_waits() {
        let mut r = Flaky {
            bytes: framed(b"xy"),
            at: 0,
            timeouts_before_each_byte: 2,
            countdown: 2,
        };
        // First attempt hits the timeout before any byte: idle.
        assert_eq!(read_frame(&mut r).unwrap(), FrameRead::Idle);
        assert_eq!(read_frame(&mut r).unwrap(), FrameRead::Idle);
        // Third attempt gets the first byte, then rides out every
        // subsequent timeout until the frame completes.
        assert_eq!(
            read_frame(&mut r).unwrap(),
            FrameRead::Frame(b"xy".to_vec())
        );
    }

    /// A reader whose bytes run out into an endless timeout — a sender
    /// that opened a frame and went silent without closing.
    struct Stall {
        bytes: Vec<u8>,
        at: usize,
    }

    impl Read for Stall {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.bytes.len() || buf.is_empty() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
            }
            buf[0] = self.bytes[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn abandoned_mid_frame_poisons_the_stream_instead_of_pinning_the_reader() {
        // Only the length prefix ever arrives; the frame body never
        // comes and the connection never closes. The reader must give
        // up at the deadline, not retry timeouts forever (a hostile
        // half-frame would otherwise pin the reading thread — and its
        // kill-flag check — for the life of the process). A wall
        // deadline also defeats the byte-trickle variant that a
        // consecutive-empty-window counter would miss.
        let mut r = Stall {
            bytes: framed(b"never finished")[..4].to_vec(),
            at: 0,
        };
        let err = read_frame_deadline(&mut r, Duration::from_millis(20))
            .expect_err("an abandoned frame must poison the stream");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // Before any frame byte, the same endless silence is mere
        // idleness, reported as such every time.
        let mut idle = Stall {
            bytes: Vec::new(),
            at: 0,
        };
        for _ in 0..3 {
            assert_eq!(
                read_frame_deadline(&mut idle, Duration::from_millis(20)).unwrap(),
                FrameRead::Idle
            );
        }
    }

    #[test]
    fn truncation_mid_frame_is_an_error_not_a_close() {
        let full = framed(b"truncated");
        for cut in 1..full.len() {
            let mut cursor = io::Cursor::new(full[..cut].to_vec());
            let err = read_frame(&mut cursor).expect_err("mid-frame EOF must error");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_and_zero_lengths_rejected_before_allocating() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.push(FRAME_VERSION);
        let err = read_frame(&mut io::Cursor::new(huge)).expect_err("oversized");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut zero = Vec::new();
        zero.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(zero)).expect_err("zero length");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_frame_version_rejected() {
        let mut bad = framed(b"v?");
        bad[4] = FRAME_VERSION + 1;
        let err = read_frame(&mut io::Cursor::new(bad)).expect_err("bad version");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_payload_refused_at_write_time() {
        // MAX_FRAME_BYTES zeroes: one byte over the limit once the
        // frame-version byte is counted.
        let payload = vec![0u8; MAX_FRAME_BYTES];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &payload).expect_err("too large");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing may reach the stream");
    }

    /// A writer accepting one byte per call: `write_all` inside
    /// `write_frame` must retry until the whole frame is out.
    struct ShortWriter {
        out: Vec<u8>,
    }

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.out.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_are_retried_to_completion() {
        let mut w = ShortWriter { out: Vec::new() };
        write_frame(&mut w, b"short").unwrap();
        assert_eq!(w.out, framed(b"short"));
    }
}
