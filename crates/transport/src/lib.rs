//! TCP deployment of the Polystyrene stack — the fourth execution
//! substrate: the pinned byte codec (`polystyrene_protocol::codec`),
//! length-framed ([`framing`]), over real loopback sockets
//! ([`cluster::TcpCluster`]).
//!
//! The other three substrates move Rust values — through synchronous
//! calls (cycle engine), a discrete-event queue (netsim), or in-process
//! channels (runtime). This one moves *bytes*: every protocol message is
//! encoded, framed, written to a `TcpStream`, reassembled from partial
//! reads on the far side, and decoded — so framing bugs, decoder
//! fragility against corrupt input, and inconsistent delivery reporting
//! become reachable by tests instead of lying latent until a real
//! deployment.
//!
//! The node loop is `polystyrene-runtime`'s `NodeRuntime`, verbatim,
//! behind its `NodeFabric` seam; the scenario driver and observation
//! plane are shared through the experiment plane (`polystyrene-lab`'s
//! `Substrate` trait). A scenario script that runs on the in-process
//! cluster runs unchanged here:
//!
//! ```
//! use polystyrene_transport::{TcpCluster, TcpConfig};
//! use polystyrene_space::prelude::*;
//!
//! let mut config = TcpConfig::default();
//! config.runtime.tick = std::time::Duration::from_millis(4);
//! let shape = shapes::torus_grid(3, 3, 1.0);
//! let cluster = TcpCluster::spawn(Torus2::new(3.0, 3.0), shape, config);
//! cluster.await_ticks(3, std::time::Duration::from_secs(10));
//! assert_eq!(cluster.observe().alive_nodes, 9);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod framing;

pub use cluster::{TcpCluster, TcpConfig, TcpFabric};
pub use framing::{read_frame, read_frame_deadline, write_frame, FrameRead};
