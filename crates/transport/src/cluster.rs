//! The TCP deployment: the unchanged `ProtocolNode` stack as
//! socket-connected processes-in-miniature on localhost.
//!
//! Every node owns a real `TcpListener`; every protocol message is one
//! length-framed codec payload ([`crate::framing`]) on a cached per-peer
//! `TcpStream`. The node loop is `polystyrene-runtime`'s [`NodeRuntime`]
//! verbatim — only its [`NodeFabric`] differs, so any behavioral gap
//! between the in-process cluster and this one is a *wire* bug by
//! construction, which is exactly what this substrate exists to surface.
//!
//! Failure semantics are crash-stop, carried by the sockets themselves:
//! killing a node closes its listener and tears down its connections, so
//! a peer's next send hits a reset or a refused reconnect, reports
//! delivery failure, and feeds the same `Event::PeerUnreachable` purge
//! path every other substrate uses. An installed
//! [`NetworkModel`] is honored at the send boundary (loss only, like the
//! in-process registry), so `--net-loss` experiments run over real
//! sockets too.

use crate::framing::{read_frame_into, write_frame_into, FrameStatus, MID_FRAME_DEADLINE};
use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use polystyrene::prelude::{DataPoint, PointId};
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_protocol::codec::{decode_event, encode_event_into, PointCodec};
use polystyrene_protocol::observe::RoundObservation;
use polystyrene_protocol::select_region_victims;
use polystyrene_protocol::{Event, Fate, NetworkModel, Wire};
use polystyrene_runtime::harness::{contacts_from_board, contacts_from_shape};
use polystyrene_runtime::node::NodeRuntime;
use polystyrene_runtime::observe::{observe, ObservationBoard};
use polystyrene_runtime::traffic::GatewayTraffic;
use polystyrene_runtime::{Message, NodeFabric, RuntimeConfig};
use polystyrene_space::MetricSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Parameters of the TCP deployment, over and above the runtime ones.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// The shared node-loop configuration (tick, timeouts, protocol
    /// parameters, seed; `link.loss` installs the network model).
    pub runtime: RuntimeConfig,
    /// Outgoing connections a node keeps open at once; the
    /// least-recently-*used* is closed when a send to a new peer needs a
    /// slot. Bounds the deployment's file-descriptor and reader-thread
    /// footprint at `nodes × cap` instead of `nodes²`, while the LRU
    /// policy keeps the stable working set — heartbeat targets, the
    /// topology neighborhood — cached across the one-shot random-peer
    /// traffic (RPS shuffles) that would churn a FIFO cache into a
    /// connect-per-message storm.
    pub connection_cap: usize,
    /// How long a reader blocks before re-checking its shutdown flag —
    /// the upper bound on how long a killed node's reader threads
    /// linger. Blocked readers cost nothing; each poll expiry is a
    /// wakeup, so this is deliberately long (readers exit *immediately*
    /// on connection close regardless — the flag only reaps readers
    /// whose peer outlives their node).
    pub reader_poll: Duration,
    /// Timeout for opening a connection and for a blocked write (a peer
    /// that accepts but never drains is indistinguishable from a dead
    /// one past this point).
    pub io_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            runtime: RuntimeConfig::default(),
            connection_cap: 24,
            reader_poll: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
        }
    }
}

impl TcpConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on a zero connection cap or zero timeouts, and on an
    /// invalid runtime configuration.
    pub fn validate(&self) {
        self.runtime.validate();
        assert!(self.connection_cap > 0, "connection cap must be non-zero");
        assert!(!self.reader_poll.is_zero(), "reader poll must be non-zero");
        assert!(!self.io_timeout.is_zero(), "io timeout must be non-zero");
    }
}

/// The shared socket-level address book plus fault-injection state —
/// the TCP analogue of the runtime's `Registry`.
pub struct TcpFabric {
    addrs: RwLock<HashMap<NodeId, SocketAddr>>,
    /// Transit-fault injection, if any — same serialization rationale as
    /// the registry's: one entropy stream, many sending threads.
    network: Mutex<Option<Box<dyn NetworkModel>>>,
    injected_drops: AtomicU64,
    sent_frames: AtomicU64,
}

impl TcpFabric {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            addrs: RwLock::new(HashMap::new()),
            network: Mutex::new(None),
            injected_drops: AtomicU64::new(0),
            sent_frames: AtomicU64::new(0),
        })
    }

    fn addr_of(&self, id: NodeId) -> Option<SocketAddr> {
        self.addrs.read().get(&id).copied()
    }

    fn contains(&self, id: NodeId) -> bool {
        self.addrs.read().contains_key(&id)
    }
}

/// One node's sending half: the per-peer connection cache behind the
/// [`NodeFabric`] surface. Owned exclusively by its node thread.
struct TcpLink<P> {
    id: NodeId,
    fabric: Arc<TcpFabric>,
    conns: HashMap<NodeId, TcpStream>,
    /// Recency order for LRU eviction: front = coldest, back = just
    /// used. Every successful cache hit refreshes its entry.
    order: VecDeque<NodeId>,
    cap: usize,
    io_timeout: Duration,
    /// Reusable encode buffer: every outgoing frame is serialized into
    /// this one allocation instead of a fresh `Vec` per send.
    buf: Vec<u8>,
    /// Reusable frame-assembly scratch for [`write_frame_into`] — the
    /// length-prefixed copy that goes to `write_all` in one syscall.
    frame: Vec<u8>,
    _point: std::marker::PhantomData<P>,
}

impl<P> TcpLink<P> {
    fn new(id: NodeId, fabric: Arc<TcpFabric>, config: &TcpConfig) -> Self {
        Self {
            id,
            fabric,
            conns: HashMap::new(),
            order: VecDeque::new(),
            cap: config.connection_cap,
            io_timeout: config.io_timeout,
            buf: Vec::new(),
            frame: Vec::new(),
            _point: std::marker::PhantomData,
        }
    }

    fn drop_conn(&mut self, to: NodeId) {
        if self.conns.remove(&to).is_some() {
            self.order.retain(|&id| id != to);
        }
    }

    /// Marks `to` most-recently-used.
    fn touch(&mut self, to: NodeId) {
        self.order.retain(|&id| id != to);
        self.order.push_back(to);
    }

    /// Writes one frame to `to`, connecting if no cached stream exists.
    /// `false` = observable delivery failure (connect refused, write
    /// error/timeout); the broken stream is dropped either way.
    fn try_write(&mut self, to: NodeId, addr: SocketAddr, payload: &[u8]) -> bool {
        if !self.conns.contains_key(&to) {
            let Ok(stream) = TcpStream::connect_timeout(&addr, self.io_timeout) else {
                return false;
            };
            // Frames are small and latency-sensitive at millisecond
            // ticks; a blocked write past the timeout is treated as a
            // dead peer rather than hanging the whole node loop.
            let _ = stream.set_nodelay(true);
            let _ = stream.set_write_timeout(Some(self.io_timeout));
            while self.conns.len() >= self.cap {
                match self.order.pop_front() {
                    Some(old) => {
                        self.conns.remove(&old);
                    }
                    None => break,
                }
            }
            self.conns.insert(to, stream);
        }
        self.touch(to);
        let mut frame = std::mem::take(&mut self.frame);
        let ok = {
            let stream = self.conns.get_mut(&to).expect("inserted above");
            write_frame_into(stream, payload, &mut frame).is_ok()
        };
        self.frame = frame;
        if !ok {
            self.drop_conn(to);
        }
        ok
    }
}

impl<P: PointCodec + Clone + Send + 'static> NodeFabric<P> for TcpLink<P> {
    fn send(&mut self, to: NodeId, wire: Wire<P>) -> bool {
        let dropped = {
            let mut network = self.fabric.network.lock();
            match network.as_mut() {
                Some(model) => matches!(model.route(self.id, to, wire.channel(), 0), Fate::Drop),
                None => false,
            }
        };
        if dropped {
            self.fabric.injected_drops.fetch_add(1, Ordering::Relaxed);
            return self.fabric.contains(to);
        }
        let Some(addr) = self.fabric.addr_of(to) else {
            // Deregistered: close any cached stream so a later rebind of
            // the same port cannot resurrect the old connection.
            self.drop_conn(to);
            return false;
        };
        let mut payload = std::mem::take(&mut self.buf);
        encode_event_into(
            &mut payload,
            &Event::Message {
                from: self.id,
                wire,
            },
        );
        // Reconnect-on-failure, but only when the first attempt went
        // through a *pre-existing cached* stream — it may be stale (the
        // peer restarted, or evicted this end's connection from its own
        // accept side), so one fresh connection gets one more chance. A
        // failed fresh connect is retried by nothing: repeating it with
        // nothing changed would just double the blocking time on an
        // unreachable peer before the crash-stop report.
        let had_cached = self.conns.contains_key(&to);
        let delivered = self.try_write(to, addr, &payload)
            || (had_cached && self.try_write(to, addr, &payload));
        self.buf = payload;
        if delivered {
            self.fabric.sent_frames.fetch_add(1, Ordering::Relaxed);
        }
        delivered
    }

    fn contains(&mut self, id: NodeId) -> bool {
        self.fabric.contains(id)
    }
}

/// Everything the harness keeps per node.
struct TcpNode<P> {
    mailbox: Sender<Message<P>>,
    /// Shared with the acceptor and every reader thread it spawned.
    stop: Arc<AtomicBool>,
    /// Admission gauge shared with the node thread: queries offered into
    /// the mailbox but not yet handled, bounding gateway ingress.
    ingress: Arc<AtomicUsize>,
    node_thread: JoinHandle<()>,
    acceptor: JoinHandle<()>,
}

/// A running TCP deployment: one listener, one node thread and a set of
/// per-connection reader threads per node, all on localhost.
///
/// The API mirrors [`polystyrene_runtime::Cluster`] — both plug into the
/// experiment plane (`polystyrene-lab`'s `Substrate` trait), so scenario
/// scripts and the observation plane are shared verbatim.
pub struct TcpCluster<S: MetricSpace>
where
    S::Point: PointCodec,
{
    space: S,
    config: TcpConfig,
    fabric: Arc<TcpFabric>,
    board: Arc<ObservationBoard<S::Point>>,
    original_points: Vec<DataPoint<S::Point>>,
    nodes: Mutex<HashMap<NodeId, TcpNode<S::Point>>>,
    /// Threads of killed nodes, joined at shutdown. A kill is
    /// crash-stop: it must not wait for the dying threads (a node
    /// mid-write to another dead peer can take a full io_timeout to
    /// notice), or killing a region would stall the harness while the
    /// survivors' clocks keep running.
    graveyard: Mutex<Vec<JoinHandle<()>>>,
    next_id: Mutex<u64>,
    rng: Mutex<StdRng>,
    /// Traffic-plane offer state (gateway-draw stream, qid counter,
    /// cumulative shed, batching scratch), shared with the in-process
    /// cluster via [`GatewayTraffic`].
    traffic: Mutex<GatewayTraffic>,
}

impl<S: MetricSpace> TcpCluster<S>
where
    S::Point: PointCodec,
{
    /// Spawns one socket-backed node per position of `shape`, each
    /// founding the data point at its position — the same founding
    /// convention as every other substrate.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty, the configuration is invalid, or a
    /// loopback listener cannot be bound.
    pub fn spawn(space: S, shape: Vec<S::Point>, config: TcpConfig) -> Self {
        assert!(!shape.is_empty(), "cannot spawn an empty cluster");
        config.validate();
        let fabric = TcpFabric::new();
        if config.runtime.link.loss > 0.0 {
            // Same fault model, same send-boundary hook, same
            // seed-decoupling tag as the in-process registry.
            *fabric.network.lock() = Some(Box::new(polystyrene_protocol::FaultyNetwork::new(
                config.runtime.link,
                config.runtime.seed ^ 0x6c6f_7373,
            )));
        }
        let original_points: Vec<DataPoint<S::Point>> = shape
            .iter()
            .enumerate()
            .map(|(i, p)| DataPoint::new(PointId::new(i as u64), p.clone()))
            .collect();
        let cluster = Self {
            space,
            config,
            fabric,
            board: ObservationBoard::new(),
            original_points: original_points.clone(),
            nodes: Mutex::new(HashMap::new()),
            graveyard: Mutex::new(Vec::new()),
            next_id: Mutex::new(shape.len() as u64),
            rng: Mutex::new(StdRng::seed_from_u64(config.runtime.seed)),
            traffic: Mutex::new(GatewayTraffic::new(config.runtime.seed)),
        };
        for (i, pos) in shape.iter().enumerate() {
            let contacts = {
                let mut rng = cluster.rng.lock();
                contacts_from_shape(
                    &shape,
                    i,
                    cluster.config.runtime.bootstrap_contacts,
                    &mut rng,
                )
            };
            cluster.spawn_node(
                NodeId::new(i as u64),
                Some(original_points[i].clone()),
                pos.clone(),
                contacts,
            );
        }
        cluster
    }

    fn spawn_node(
        &self,
        id: NodeId,
        origin: Option<DataPoint<S::Point>>,
        position: S::Point,
        contacts: Vec<Descriptor<S::Point>>,
    ) {
        let listener =
            TcpListener::bind("127.0.0.1:0").expect("failed to bind a loopback listener");
        let addr = listener
            .local_addr()
            .expect("bound listener has an address");
        // Polled, never parked: a blocking `accept` can only be woken by
        // an incoming connection, and a kill must not depend on being
        // able to open one (fd pressure, full backlog) — an acceptor
        // that misses its wake-up would hang `shutdown` forever.
        listener
            .set_nonblocking(true)
            .expect("loopback listener accepts nonblocking mode");
        let (tx, rx) = crossbeam::channel::unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        // Register before the node runs: a peer that learns of this node
        // can reach it from the first tick.
        self.fabric.addrs.write().insert(id, addr);

        let acceptor = {
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            let poll = self.config.reader_poll;
            // Accept-poll sized to the protocol tick: first-contact
            // delivery waits out at most half a tick before its reader
            // exists (frames buffer in the kernel meanwhile), while big
            // slow-tick deployments keep acceptor wakeups cheap.
            let accept_poll = (self.config.runtime.tick / 2)
                .clamp(Duration::from_millis(1), Duration::from_millis(20));
            std::thread::Builder::new()
                .name(format!("poly-tcp-accept-{id}"))
                .spawn(move || accept_loop::<S::Point>(listener, tx, stop, poll, accept_poll))
                .expect("failed to spawn acceptor thread")
        };

        let ingress = Arc::new(AtomicUsize::new(0));
        let node = NodeRuntime::new(
            id,
            self.space.clone(),
            self.config.runtime,
            origin,
            position,
            contacts,
            Box::new(TcpLink::new(id, Arc::clone(&self.fabric), &self.config)),
            Arc::clone(&self.board),
            rx,
            Arc::clone(&ingress),
        );
        let node_thread = std::thread::Builder::new()
            .name(format!("poly-tcp-{id}"))
            .spawn(move || node.run())
            .expect("failed to spawn node thread");

        self.nodes.lock().insert(
            id,
            TcpNode {
                mailbox: tx,
                stop,
                ingress,
                node_thread,
                acceptor,
            },
        );
    }

    /// The original data points (the target shape).
    pub fn original_points(&self) -> &[DataPoint<S::Point>] {
        &self.original_points
    }

    /// Ids currently registered (alive).
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.fabric.addrs.read().keys().copied().collect()
    }

    /// Protocol frames successfully written to a socket so far.
    pub fn sent_frames(&self) -> u64 {
        self.fabric.sent_frames.load(Ordering::Relaxed)
    }

    /// Protocol messages dropped in transit by the injected link faults
    /// (zero on an ideal link).
    pub fn injected_drops(&self) -> u64 {
        self.fabric.injected_drops.load(Ordering::Relaxed)
    }

    /// Hard-crashes a node: deregisters it, closes its listener and
    /// signals its threads to stop *without waiting for them* —
    /// crash-stop, so killing half a torus costs milliseconds, not a
    /// serial walk of io timeouts, while the survivors' clocks run.
    /// Peers discover the crash through their sockets — resets on
    /// cached connections, refused reconnects — and the node's mailbox
    /// backlog dies with it. The dying threads (which exit within one
    /// mailbox poll) are reaped at [`TcpCluster::shutdown`]. Returns
    /// whether the node was alive.
    pub fn kill(&self, id: NodeId) -> bool {
        let node = self.nodes.lock().remove(&id);
        match node {
            Some(node) => {
                // Deregister first: probes and loss-path delivery
                // reports turn negative before the sockets even close.
                self.fabric.addrs.write().remove(&id);
                node.stop.store(true, Ordering::Release);
                let _ = node.mailbox.send(Message::Shutdown);
                let mut graveyard = self.graveyard.lock();
                graveyard.push(node.node_thread);
                graveyard.push(node.acceptor);
                drop(graveyard);
                self.board.remove(id);
                true
            }
            None => false,
        }
    }

    /// Injects a fresh node with no data points at `position` (the
    /// paper's Phase 3 joiners), bootstrapped from alive contacts.
    /// Returns its id.
    pub fn inject(&self, position: S::Point) -> NodeId {
        let id = {
            let mut next = self.next_id.lock();
            let id = NodeId::new(*next);
            *next += 1;
            id
        };
        let alive = self.alive_ids();
        let contacts = {
            let mut rng = self.rng.lock();
            contacts_from_board(
                &alive,
                &self.board.snapshot(),
                self.config.runtime.bootstrap_contacts,
                &mut rng,
            )
        };
        self.spawn_node(id, None, position, contacts);
        id
    }

    /// Whether `id` is currently alive (registered in the address book).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.fabric.contains(id)
    }

    /// Crashes every founding node whose original data point satisfies
    /// `predicate` — the paper's correlated regional failure, with
    /// victim selection shared with every other substrate through
    /// [`select_region_victims`]. Returns the crashed ids.
    pub fn kill_region(&self, predicate: impl Fn(&S::Point) -> bool + Send + Sync) -> Vec<NodeId> {
        let victims =
            select_region_victims(&self.original_points, &predicate, &|id| self.is_alive(id));
        victims.into_iter().filter(|&id| self.kill(id)).collect()
    }

    /// Lets the cluster run for a wall-clock duration.
    pub fn run_for(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Offers one application query per key, each issued through a
    /// uniformly random alive gateway. Keys that draw the same gateway
    /// share one self-addressed
    /// [`polystyrene_protocol::Wire::QueryBatch`] envelope in its
    /// mailbox (issuing queries at a node costs no socket); every
    /// forwarding hop then rides a real framed TCP connection like any
    /// other protocol message. Admission is bounded per gateway
    /// ([`polystyrene_runtime::GATEWAY_INGRESS_BOUND`]); batches refused
    /// at a full gateway are shed and counted in the observation
    /// plane's `traffic.shed`, separate from in-flight expiry.
    pub fn offer_traffic(&self, keys: &[S::Point], ttl: u32) {
        let nodes = self.nodes.lock();
        if nodes.is_empty() {
            return;
        }
        let ids: Vec<NodeId> = nodes.keys().copied().collect();
        let mut traffic = self.traffic.lock();
        traffic.offer(
            keys,
            ttl,
            &ids,
            |id| nodes.get(&id).map(|n| Arc::clone(&n.ingress)),
            |gateway, wire| {
                let _ = nodes[&gateway].mailbox.send(Message::Protocol {
                    from: gateway,
                    wire,
                });
            },
        );
    }

    /// Queries shed at gateway ingress so far (cumulative).
    pub fn shed_queries(&self) -> u64 {
        self.traffic.lock().shed()
    }

    /// Blocks until every alive node has executed at least `ticks` local
    /// rounds (with a safety timeout of `max_wait`).
    pub fn await_ticks(&self, ticks: u64, max_wait: Duration) {
        let deadline = Instant::now() + max_wait;
        loop {
            let obs = self.observe();
            let registered = self.fabric.addrs.read().len();
            if obs.alive_nodes >= registered && obs.alive_nodes > 0 && obs.ticks >= ticks {
                return;
            }
            if Instant::now() > deadline {
                return;
            }
            std::thread::sleep(self.config.runtime.tick);
        }
    }

    /// Measures cluster health from the observation plane. Reports are
    /// filtered to currently registered nodes: kills do not wait for
    /// the dying threads, and a node wedged in a socket timeout may
    /// publish one last report after its crash — which must not count.
    pub fn observe(&self) -> RoundObservation {
        let mut snapshot = self.board.snapshot();
        snapshot.retain(|id, _| self.fabric.contains(*id));
        let mut obs = observe(
            &self.space,
            &self.original_points,
            &snapshot,
            self.config.runtime.area,
        );
        obs.traffic.shed = self.traffic.lock().shed();
        obs
    }

    /// Orderly shutdown: stops every node and joins its node and
    /// acceptor threads, including those of previously killed nodes.
    /// Per-connection reader threads are not tracked and wind down
    /// asynchronously — immediately when their connection closes (node
    /// teardown closes every stream this cluster owns), or within one
    /// `reader_poll` of the stop flag otherwise.
    pub fn shutdown(&self) {
        let ids: Vec<NodeId> = self.nodes.lock().keys().copied().collect();
        for id in ids {
            self.kill(id);
        }
        let handles: Vec<JoinHandle<()>> = self.graveyard.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Accepts inbound connections off a *nonblocking* listener and spawns
/// one reader thread per stream. Polling every `accept_poll` (instead
/// of a blocking `accept`) makes acceptor exit unconditional on the
/// stop flag — a parked `accept` can only be woken by an incoming
/// connection, which a kill under fd pressure might not be able to
/// fabricate.
///
/// Reader threads decode frames into mailbox messages and die on stream
/// close, malformed input (a corrupt stream cannot be resynchronized —
/// the sender reconnects), mailbox teardown, or the shared stop flag
/// (checked every `reader_poll`).
fn accept_loop<P: PointCodec + Send + 'static>(
    listener: TcpListener,
    tx: Sender<Message<P>>,
    stop: Arc<AtomicBool>,
    reader_poll: Duration,
    accept_poll: Duration,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Accepted streams must block (with a read timeout):
                // `read_frame` rides out timeouts mid-frame, but a
                // nonblocking stream would spin instead of sleep.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(reader_poll));
                let tx = tx.clone();
                let stop = Arc::clone(&stop);
                // Readers mostly sleep in `read`; a small stack keeps
                // hundreds of connections per deployment cheap.
                let _ = std::thread::Builder::new()
                    .name("poly-tcp-read".into())
                    .stack_size(128 * 1024)
                    .spawn(move || reader_loop(stream, tx, stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(accept_poll);
            }
            Err(_) => {
                // Transient accept failures (fd pressure, interrupted
                // syscalls) must not busy-spin the acceptor.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn reader_loop<P: PointCodec>(stream: TcpStream, tx: Sender<Message<P>>, stop: Arc<AtomicBool>) {
    let mut stream = std::io::BufReader::new(stream);
    // Per-connection decode scratch: one frame-body buffer amortized
    // over the connection's lifetime. The decoded wire payload itself
    // is necessarily owned — it crosses the mailbox channel into the
    // node — so the decode allocation per frame is down to that one.
    let mut payload = Vec::new();
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        match read_frame_into(&mut stream, MID_FRAME_DEADLINE, &mut payload) {
            Ok(FrameStatus::Frame) => match decode_event::<P>(&payload) {
                Ok(Event::Message { from, wire }) => {
                    if tx.send(Message::Protocol { from, wire }).is_err() {
                        break;
                    }
                }
                // Anything else — a decode error, or an event kind that
                // has no business crossing the wire — poisons the
                // connection. Dropping it is safe: the protocol already
                // tolerates message loss, and the peer reconnects.
                _ => break,
            },
            Ok(FrameStatus::Idle) => {}
            Ok(FrameStatus::Closed) | Err(_) => break,
        }
    }
}

impl<S: MetricSpace> Drop for TcpCluster<S>
where
    S::Point: PointCodec,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene::prelude::PolystyreneConfig;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    fn fast_config() -> TcpConfig {
        let mut c = TcpConfig::default();
        c.runtime.tick = Duration::from_millis(4);
        c.runtime.poly = PolystyreneConfig::builder().replication(3).build();
        c.reader_poll = Duration::from_millis(50);
        c
    }

    fn spawn_grid(cols: usize, rows: usize) -> TcpCluster<Torus2> {
        TcpCluster::spawn(
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            fast_config(),
        )
    }

    #[test]
    fn tcp_cluster_spawns_replicates_and_reports() {
        let cluster = spawn_grid(4, 4);
        cluster.await_ticks(10, Duration::from_secs(20));
        let obs = cluster.observe();
        assert_eq!(obs.alive_nodes, 16);
        assert!(obs.ticks >= 10);
        assert!(
            obs.surviving_points >= 0.95,
            "points vanished over TCP: {}",
            obs.surviving_points
        );
        assert!(
            obs.points_per_node > 2.0,
            "replication never took hold over TCP: {} points/node",
            obs.points_per_node
        );
        assert!(cluster.sent_frames() > 0, "no frames crossed the sockets");
        cluster.shutdown();
    }

    #[test]
    fn kill_is_crash_stop_over_sockets() {
        let cluster = spawn_grid(4, 4);
        cluster.await_ticks(4, Duration::from_secs(10));
        assert!(cluster.kill(NodeId::new(0)));
        assert!(!cluster.kill(NodeId::new(0)), "second kill must be a no-op");
        let obs = cluster.observe();
        assert_eq!(obs.alive_nodes, 15);
        // The survivors keep making progress without the dead peer.
        let before = cluster.observe().ticks;
        cluster.await_ticks(before + 5, Duration::from_secs(10));
        assert!(cluster.observe().ticks >= before + 5);
        cluster.shutdown();
    }

    #[test]
    fn injection_spawns_empty_joiners_over_sockets() {
        let cluster = spawn_grid(3, 3);
        cluster.await_ticks(5, Duration::from_secs(10));
        let id = cluster.inject([0.5, 0.5]);
        assert!(id.as_u64() >= 9);
        cluster.run_for(Duration::from_millis(200));
        assert_eq!(cluster.observe().alive_nodes, 10);
        cluster.shutdown();
    }

    #[test]
    fn lossy_tcp_cluster_still_replicates_and_counts_drops() {
        let mut config = fast_config();
        config.runtime.link = polystyrene_protocol::LinkProfile {
            latency: 0,
            jitter: 0,
            loss: 0.10,
        };
        let cluster =
            TcpCluster::spawn(Torus2::new(4.0, 4.0), shapes::torus_grid(4, 4, 1.0), config);
        cluster.await_ticks(12, Duration::from_secs(20));
        let obs = cluster.observe();
        assert_eq!(obs.alive_nodes, 16);
        assert!(
            cluster.injected_drops() > 0,
            "a 10% lossy fabric that dropped nothing is not lossy"
        );
        assert!(
            obs.surviving_points >= 0.95,
            "points vanished under transit loss: {}",
            obs.surviving_points
        );
        cluster.shutdown();
    }

    #[test]
    fn traffic_queries_resolve_over_sockets() {
        let cluster = spawn_grid(4, 4);
        cluster.await_ticks(10, Duration::from_secs(20));
        let keys: Vec<[f64; 2]> = (0..4).map(|i| [i as f64 + 0.5, 1.5]).collect();
        for _ in 0..8 {
            cluster.offer_traffic(&keys, 32);
            cluster.run_for(Duration::from_millis(20));
        }
        // Poll until every offered query has resolved or expired.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut obs = cluster.observe();
        while Instant::now() < deadline {
            obs = cluster.observe();
            if obs.traffic.offered >= 32
                && obs.traffic.delivered + obs.traffic.dropped >= obs.traffic.offered
            {
                break;
            }
            cluster.run_for(Duration::from_millis(40));
        }
        assert!(
            obs.traffic.offered >= 32,
            "gateways must register offered queries: {:?}",
            obs.traffic
        );
        assert!(
            obs.traffic.availability() > 0.8,
            "a healthy TCP cluster must serve most queries: {:?}",
            obs.traffic
        );
        cluster.shutdown();
    }

    #[test]
    fn oversized_offer_is_shed_at_the_tcp_gateway() {
        use polystyrene_runtime::GATEWAY_INGRESS_BOUND;
        // One node ⇒ one gateway: an offer larger than the ingress bound
        // is refused whole, regardless of thread timing.
        let cluster = spawn_grid(1, 1);
        cluster.await_ticks(2, Duration::from_secs(10));
        let oversized = GATEWAY_INGRESS_BOUND + 10;
        let keys = vec![[0.5, 0.5]; oversized];
        cluster.offer_traffic(&keys, 8);
        assert_eq!(cluster.shed_queries(), oversized as u64);
        assert_eq!(cluster.observe().traffic.shed, oversized as u64);
        cluster.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let cluster = spawn_grid(2, 2);
        cluster.shutdown();
        cluster.shutdown();
        drop(cluster);
    }
}
