//! Loopback fault injection: the migration `xid`/`MigrationAck`
//! machinery — parked handouts, stale-generation acks, timeout
//! re-adoption — exercised over real sockets for the first time.
//!
//! The cluster runs under injected transit loss, so migration replies
//! and acks genuinely vanish off the wire and responders park their
//! handed-out points; nodes are then killed cold while exchanges are in
//! flight (at millisecond ticks every tick opens migrations, so a kill
//! lands mid-exchange with near certainty). The protocol's at-least-once
//! guarantee must hold end-to-end: loss and crashes may *duplicate*
//! points, but with K replicas no point is ever destroyed — every
//! original survives, and the parked-handout re-adoption path returns
//! them to circulation.

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_membership::NodeId;
use polystyrene_protocol::LinkProfile;
use polystyrene_space::prelude::*;
use polystyrene_transport::{TcpCluster, TcpConfig};
use std::time::{Duration, Instant};

#[test]
fn mid_migration_kills_under_loss_never_destroy_points() {
    let mut config = TcpConfig::default();
    // 8 ms leaves socket-IO and scheduling headroom per round when the
    // whole workspace tests on a loaded single-core box.
    config.runtime.tick = Duration::from_millis(8);
    config.runtime.poly = PolystyreneConfig::builder().replication(4).build();
    // 15% of frames vanish in transit: migration replies get lost (the
    // responder's handout stays parked until re-adoption) and acks get
    // lost (the initiator holds the points *and* the responder re-adopts
    // them — the benign duplication direction).
    config.runtime.link = LinkProfile {
        latency: 0,
        jitter: 0,
        loss: 0.15,
    };
    config.reader_poll = Duration::from_millis(50);
    let cluster = TcpCluster::spawn(Torus2::new(6.0, 4.0), shapes::torus_grid(6, 4, 1.0), config);
    // Let replication take hold so kills cannot trivially lose points.
    cluster.await_ticks(15, Duration::from_secs(30));
    assert!(
        cluster.injected_drops() > 0,
        "the lossy fabric must actually drop frames"
    );

    // Kill three nodes cold, one tick apart, while every survivor keeps
    // opening migration exchanges — some victims are mid-exchange as
    // partner or initiator, leaving unacked handouts and dangling
    // pending-migration locks behind on the survivors.
    for id in [0u64, 7, 13] {
        assert!(cluster.kill(NodeId::new(id)));
        cluster.run_for(Duration::from_millis(8));
    }
    assert_eq!(cluster.observe().alive_nodes, 21);

    // Recovery: heartbeat timeouts detect the crashes, ghosts
    // reactivate, parked handouts re-adopt at the migration timeout.
    // Poll rather than sleep once, with a deadline sized for a loaded
    // single-core CI box running the whole workspace — the assertion is
    // about *what* recovers, never about how fast.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut obs = cluster.observe();
    while Instant::now() < deadline {
        cluster.run_for(Duration::from_millis(100));
        obs = cluster.observe();
        if obs.surviving_points >= 1.0 && obs.homogeneity < 1.0 {
            break;
        }
    }
    assert_eq!(obs.alive_nodes, 21);
    assert!(
        obs.surviving_points >= 1.0,
        "a point was destroyed: only {:.3} survive — loss and crashes may \
         duplicate points but must never lose the last copy",
        obs.surviving_points
    );
    assert!(
        obs.homogeneity < 1.0,
        "shape not recovered after mid-migration kills: homogeneity {}",
        obs.homogeneity
    );
    cluster.shutdown();
}
