//! Cross-substrate equivalence over real sockets: the shared scenario
//! script (`tests/cross_substrate.rs` at the workspace root — failure +
//! churn + inject) executes on the TCP deployment through the same
//! generic scenario driver the in-process cluster uses, and produces
//! the same population arithmetic plus shape recovery.
//!
//! This is the fourth substrate's anchor: every event routes through
//! the shared `ScenarioSubstrate` code path, every protocol message
//! crosses a real loopback socket as framed codec bytes, and the
//! numbers must still match the cycle engine's.

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_protocol::{Scenario, ScenarioEvent};
use polystyrene_runtime::run_cluster_scenario;
use polystyrene_space::prelude::*;
use polystyrene_transport::{TcpCluster, TcpConfig};
use std::sync::Arc;
use std::time::Duration;

const COLS: usize = 8;
const ROWS: usize = 4;

/// Converge 20 rounds → kill the right half-torus → 2 rounds of 5%
/// churn → re-inject 16 fresh nodes → observe to round 55. Identical to
/// the script the engine/cluster equivalence test runs.
fn shared_scenario() -> Scenario<[f64; 2]> {
    Scenario::new(55)
        .at(
            20,
            ScenarioEvent::FailOriginalRegion(Arc::new(|p: &[f64; 2]| p[0] >= COLS as f64 / 2.0)),
        )
        .at(
            25,
            ScenarioEvent::Churn {
                rate: 0.05,
                rounds: 2,
            },
        )
        .at(
            35,
            ScenarioEvent::Inject(shapes::torus_grid_offset(COLS / 2, ROWS, 1.0)),
        )
}

/// Population after the script: 32 founders − 16 (half torus) − 1 − 1
/// (5% churn of 16 then 15, rounded) + 16 injected.
const EXPECTED_FINAL_ALIVE: usize = 30;

#[test]
fn tcp_cluster_runs_the_shared_scenario_and_recovers() {
    let scenario = shared_scenario();
    let mut config = TcpConfig::default();
    // Same protocol parameters as the in-process run of this script;
    // the tick leaves socket-IO headroom per round on a loaded CI box.
    config.runtime.tick = Duration::from_millis(8);
    config.runtime.poly = PolystyreneConfig::builder().replication(4).build();
    let cluster = TcpCluster::spawn(
        Torus2::new(COLS as f64, ROWS as f64),
        shapes::torus_grid(COLS, ROWS, 1.0),
        config,
    );
    let observations = run_cluster_scenario(&cluster, &scenario, Duration::from_secs(10), 11);
    assert_eq!(observations.len(), 55);
    // The population arithmetic is identical to the engine's and the
    // in-process cluster's: all three route events through the one
    // shared application path.
    assert_eq!(observations[19].alive_nodes, 32, "pre-failure population");
    assert_eq!(observations[20].alive_nodes, 16, "half torus down");
    assert_eq!(observations[26].alive_nodes, 14, "two churn rounds");
    let last = observations.last().unwrap();
    assert_eq!(last.alive_nodes, EXPECTED_FINAL_ALIVE);
    // Shape recovery with the in-process cluster's thresholds: the
    // wall-clock substrates snapshot points mid-migration, so the bar
    // is the same qualitative one — homogeneity back under threshold,
    // points survived the blast.
    let best_tail_homogeneity = observations[40..]
        .iter()
        .map(|o| o.homogeneity)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_tail_homogeneity < 1.0,
        "TCP cluster failed to reshape: best tail homogeneity {best_tail_homogeneity}"
    );
    assert!(
        last.surviving_points > 0.6,
        "TCP cluster lost too many points: {}",
        last.surviving_points
    );
    assert!(
        cluster.sent_frames() > 1000,
        "a 55-round scenario must push real traffic through the sockets (saw {})",
        cluster.sent_frames()
    );
    cluster.shutdown();
}
