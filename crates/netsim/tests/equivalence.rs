//! The equivalence anchor: a degenerate network configuration — zero
//! latency, zero jitter, zero loss, round-synchronized delivery — makes
//! the discrete-event kernel reproduce the cycle engine's per-round
//! *population arithmetic* on the shared cross-substrate script, and
//! recover the shape just like the engine does.
//!
//! This is what licenses every lossy/laggy result the kernel produces:
//! the same scenario language, the same failure-injection code paths and
//! the same protocol stack demonstrably collapse to the validated
//! baseline when the network model is turned off. (Bit-identical
//! *metrics* are not expected — the kernel answers probes from failure
//! knowledge rather than engine ground truth, so RNG streams diverge —
//! but who is alive after every scripted event must agree exactly,
//! round by round.)

use polystyrene_netsim::prelude::*;
use polystyrene_protocol::{Scenario, ScenarioEvent};
use polystyrene_sim::prelude::*;
use polystyrene_space::prelude::*;
use std::sync::Arc;

const COLS: usize = 8;
const ROWS: usize = 4;

/// The cross-substrate script: converge 20 rounds → kill the right
/// half-torus → 2 rounds of 5% churn → re-inject 16 fresh nodes →
/// observe to round 55 (mirrors `tests/cross_substrate.rs`).
fn shared_scenario() -> Scenario<[f64; 2]> {
    Scenario::new(55)
        .at(
            20,
            ScenarioEvent::FailOriginalRegion(Arc::new(|p: &[f64; 2]| p[0] >= COLS as f64 / 2.0)),
        )
        .at(
            25,
            ScenarioEvent::Churn {
                rate: 0.05,
                rounds: 2,
            },
        )
        .at(
            35,
            ScenarioEvent::Inject(shapes::torus_grid_offset(COLS / 2, ROWS, 1.0)),
        )
}

fn engine_alive_per_round(seed: u64) -> Vec<usize> {
    let mut cfg = EngineConfig::default();
    cfg.area = (COLS * ROWS) as f64;
    cfg.seed = seed;
    cfg.tman.view_cap = 20;
    cfg.tman.m = 8;
    let mut engine = Engine::new(
        Torus2::new(COLS as f64, ROWS as f64),
        shapes::torus_grid(COLS, ROWS, 1.0),
        cfg,
    );
    run_scenario(&mut engine, &shared_scenario())
        .iter()
        .map(|m| m.alive_nodes)
        .collect()
}

fn netsim_history(seed: u64) -> Vec<NetRoundMetrics> {
    let mut cfg = NetSimConfig::default();
    cfg.area = (COLS * ROWS) as f64;
    cfg.seed = seed;
    cfg.tman.view_cap = 20;
    cfg.tman.m = 8;
    cfg.link = LinkProfile::ideal(); // the degenerate config
    let mut sim = NetSim::new(
        Torus2::new(COLS as f64, ROWS as f64),
        shapes::torus_grid(COLS, ROWS, 1.0),
        cfg,
    );
    run_net_scenario(&mut sim, &shared_scenario())
}

#[test]
fn degenerate_config_reproduces_engine_population_arithmetic() {
    let engine = engine_alive_per_round(11);
    let netsim: Vec<usize> = netsim_history(11).iter().map(|m| m.alive_nodes).collect();
    assert_eq!(engine.len(), 55);
    assert_eq!(
        engine, netsim,
        "the two substrates disagree on who is alive after the same script"
    );
    // Spot-check the script against the hand-computed arithmetic, so a
    // *joint* regression of both substrates cannot slip through.
    assert_eq!(netsim[19], 32, "pre-failure population");
    assert_eq!(netsim[20], 16, "half torus down");
    assert_eq!(netsim[26], 14, "two churn rounds");
    assert_eq!(*netsim.last().unwrap(), 30, "after re-injection");
}

#[test]
fn degenerate_config_recovers_the_shape_like_the_engine() {
    let history = netsim_history(11);
    let last = history.last().expect("ran");
    assert!(
        last.homogeneity < last.reference_homogeneity,
        "netsim failed to reshape: {} vs reference {}",
        last.homogeneity,
        last.reference_homogeneity
    );
    assert!(
        last.surviving_points > 0.8,
        "netsim lost too many points: {}",
        last.surviving_points
    );
    // An ideal link drops nothing and leaves nothing in flight between
    // rounds — delivery is round-synchronized.
    assert_eq!(last.dropped_messages, 0);
    assert!(history.iter().all(|m| m.in_flight == 0));
    assert!(history.iter().all(|m| m.parked_points == 0));
}

#[test]
fn reference_homogeneity_agrees_with_the_engine_formula() {
    for (area, nodes) in [(3200.0, 3200), (3200.0, 1600), (64.0, 7), (1.0, 1)] {
        assert_eq!(
            polystyrene_netsim::metrics::reference_homogeneity(area, nodes),
            polystyrene_sim::metrics::reference_homogeneity(area, nodes),
            "the two substrates' reference bounds drifted apart"
        );
    }
}
