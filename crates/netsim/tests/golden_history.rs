//! Golden bit-identity: the event kernel's seeded schedules are frozen —
//! the netsim mirror of the engine's `golden_history` suite.
//!
//! The kernel's determinism contract ("identical configurations replay
//! bit-identical histories") is only load-bearing if something pins the
//! *current* schedule: activation jitter, `(deliver_at, seq)` ordering,
//! the network model's separate entropy stream, detection events and the
//! migration ack/parking machinery all feed these numbers. The
//! fingerprints below freeze a lossy, laggy three-phase run — any change
//! that shifts a single RNG draw, reorders one heap pop, or alters one
//! fate decision shows up here. (Deliberate schedule changes must
//! re-capture the fingerprints and say so in review.)

use polystyrene_netsim::prelude::*;
use polystyrene_space::prelude::*;

/// FNV-1a over the bit patterns of every field of every round.
fn fingerprint(metrics: &[NetRoundMetrics]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x100000001b3);
    };
    for m in metrics {
        mix(m.round as u64);
        mix(m.alive_nodes as u64);
        mix(m.parked_points as u64);
        mix(m.in_flight as u64);
        mix(m.sent_messages);
        mix(m.dropped_messages);
        for f in [
            m.homogeneity,
            m.reference_homogeneity,
            m.surviving_points,
            m.points_per_node,
        ] {
            mix(f.to_bits());
        }
    }
    hash
}

/// A 16×8 torus under a lossy, laggy link: converge 12 rounds, kill the
/// right half, churn-free recovery to round 30, re-inject 64 nodes,
/// observe to round 45 — every kernel mechanism (latency straddling
/// rounds, drops, parking, detection) exercised in one seeded run.
fn lossy_history(seed: u64) -> Vec<NetRoundMetrics> {
    let (cols, rows) = (16usize, 8usize);
    let mut cfg = NetSimConfig::default();
    cfg.area = (cols * rows) as f64;
    cfg.seed = seed;
    cfg.tman.view_cap = 30;
    cfg.tman.m = 10;
    cfg.link = LinkProfile {
        latency: 3,
        jitter: 2,
        loss: 0.05,
    };
    cfg.detection_delay_ticks = cfg.ticks_per_round;
    let mut sim = NetSim::new(
        Torus2::new(cols as f64, rows as f64),
        shapes::torus_grid(cols, rows, 1.0),
        cfg,
    );
    sim.run(12);
    sim.fail_original_region(&shapes::in_right_half(cols as f64));
    sim.run(18);
    sim.inject(&shapes::torus_grid_offset(cols / 2, rows, 1.0));
    sim.run(15);
    sim.history().to_vec()
}

#[test]
fn lossy_schedule_is_bit_identical_seed_42() {
    let history = lossy_history(42);
    assert_eq!(history.len(), 45);
    let last = history.last().unwrap();
    assert_eq!(last.alive_nodes, 128);
    // Spot values of the final round, for a readable diff when the
    // fingerprint trips.
    assert_eq!(last.homogeneity.to_bits(), 0x3fd05951e3af9662);
    assert_eq!(last.surviving_points.to_bits(), 0x3fef800000000000);
    assert_eq!(last.sent_messages, 27263);
    assert_eq!(last.dropped_messages, 1375);
    assert_eq!(
        fingerprint(&history),
        0xf2837287d3cf8ae9,
        "seed-42 netsim schedule diverged"
    );
}

#[test]
fn lossy_schedule_is_bit_identical_seed_7() {
    let history = lossy_history(7);
    let last = history.last().unwrap();
    assert_eq!(last.alive_nodes, 128);
    assert_eq!(
        fingerprint(&history),
        0x7c8e89834e605bc0,
        "seed-7 netsim schedule diverged"
    );
}
