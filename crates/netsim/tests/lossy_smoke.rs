//! CI smoke: a small network on a lossy, laggy fabric survives the
//! paper's catastrophic failure and reshapes — the claim the netsim
//! substrate exists to test, at a size that runs in seconds.

use polystyrene_netsim::prelude::*;
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;

const COLS: usize = 16;
const ROWS: usize = 8;

fn lossy_config(seed: u64, loss: f64) -> NetSimConfig {
    let mut cfg = NetSimConfig::default();
    cfg.area = (COLS * ROWS) as f64;
    cfg.seed = seed;
    cfg.tman.view_cap = 20;
    cfg.tman.m = 8;
    cfg.link = LinkProfile {
        latency: 2,
        jitter: 1,
        loss,
    };
    cfg
}

#[test]
fn recovers_from_half_torus_failure_under_ten_percent_loss() {
    let mut sim = NetSim::new(
        Torus2::new(COLS as f64, ROWS as f64),
        shapes::torus_grid(COLS, ROWS, 1.0),
        lossy_config(42, 0.10),
    );
    sim.run(20);
    let killed = sim.fail_original_region(&shapes::in_right_half(COLS as f64));
    assert_eq!(killed.len(), COLS * ROWS / 2);
    sim.run(40);
    let reshaping = net_reshaping_time(sim.history(), 20);
    assert!(
        reshaping.is_some(),
        "no recovery under 10% loss in 40 rounds (final homogeneity {} vs reference {})",
        sim.history().last().unwrap().homogeneity,
        sim.history().last().unwrap().reference_homogeneity
    );
    let last = sim.history().last().unwrap();
    assert!(
        last.surviving_points > 0.85,
        "too many points lost under 10% loss: {}",
        last.surviving_points
    );
    assert!(
        last.dropped_messages > 0,
        "a 10% lossy fabric that dropped nothing is not lossy"
    );
}

#[test]
fn lossy_runs_replay_bit_identically() {
    let run = |seed: u64| {
        let mut sim = NetSim::new(
            Torus2::new(COLS as f64, ROWS as f64),
            shapes::torus_grid(COLS, ROWS, 1.0),
            lossy_config(seed, 0.10),
        );
        sim.run(10);
        sim.fail_original_region(&shapes::in_right_half(COLS as f64));
        sim.run(10);
        sim.history().to_vec()
    };
    assert_eq!(run(7), run(7), "same seed must replay bit-identically");
    assert_ne!(run(7), run(8), "different seeds must diverge");
}
