//! Property coverage for the event kernel's slab storage: arbitrary
//! interleavings of injects, crashes, dead-id crashes and simulated
//! rounds, checked against a boxed-map oracle — the netsim port of the
//! engine's `pool_freelist` suite.
//!
//! The kernel adds what the bare pool test cannot exercise: slots are
//! recycled *while messages routed by dead ids are still in flight* (the
//! link latency spans multiple rounds), so a delivery addressed to a dead
//! node must evaporate rather than reach the recycled slot's new
//! occupant, and a [`SlotRef`] taken before a crash must stay dead across
//! any number of reuses of its slot.

use polystyrene_membership::NodeId;
use polystyrene_netsim::prelude::*;
use polystyrene_protocol::pool::SlotRef;
use polystyrene_space::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One step of the churn script. Selector values are reduced modulo the
/// current population (or id space) when the op applies.
#[derive(Clone, Debug)]
enum Op {
    /// Inject a fresh empty node at `[x, 1.0]`.
    Inject { x: f64 },
    /// Crash the `sel`-th alive node (keeps at least one node alive).
    Crash { sel: usize },
    /// Crash an id that is dead or never issued — must report `false`.
    CrashDead { sel: usize },
    /// Run one full simulated round (activations, deliveries, drops).
    Step,
    /// Probe the `sel`-th alive node through every read surface.
    Probe { sel: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..10, 0usize..1024, 0.0..8.0f64).prop_map(|(tag, sel, x)| match tag {
        0 | 1 => Op::Inject { x },
        2..=4 => Op::Crash { sel },
        5 => Op::CrashDead { sel },
        6 | 7 => Op::Step,
        _ => Op::Probe { sel },
    })
}

fn sim_under_churn() -> NetSim<Torus2> {
    let mut cfg = NetSimConfig::default();
    cfg.area = 32.0;
    cfg.seed = 0xC0FFEE;
    // Latency longer than a round keeps deliveries in flight across the
    // crash/inject ops between steps — the slot-reuse hazard window.
    cfg.link = LinkProfile {
        latency: cfg.ticks_per_round + 2,
        jitter: 3,
        loss: 0.02,
    };
    cfg.detection_delay_ticks = cfg.ticks_per_round;
    NetSim::new(Torus2::new(8.0, 4.0), shapes::torus_grid(8, 4, 1.0), cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn churn_scripts_preserve_the_boxed_layout_arithmetic(
        ops in vec(op_strategy(), 1..40)
    ) {
        let mut sim = sim_under_churn();
        // The boxed oracle: id → position-at-injection, exactly the map
        // a `Vec<Option<…>>` layout would answer liveness from.
        let mut oracle: BTreeMap<NodeId, [f64; 2]> =
            sim.alive_ids().iter().map(|&id| {
                (id, sim.poly_state(id).expect("alive").pos)
            }).collect();
        let mut next_id = oracle.len() as u64;
        // Handles taken just before each crash: must stay dead forever,
        // across any number of recycles of their slot.
        let mut stale: Vec<(NodeId, SlotRef)> = Vec::new();
        let mut peak_alive = oracle.len();

        for op in ops {
            match op {
                Op::Inject { x } => {
                    let fresh = sim.inject(&[[x, 1.0]]);
                    prop_assert_eq!(&fresh, &[NodeId::new(next_id)],
                        "ids issue monotonically, never recycled");
                    oracle.insert(fresh[0], [x, 1.0]);
                    next_id += 1;
                }
                Op::Crash { sel } => {
                    // Keep one node alive: the kernel's metrics treat an
                    // extinct population as a degenerate case and the
                    // protocol needs someone to gossip with.
                    if sim.alive_count() <= 1 {
                        continue;
                    }
                    let id = sim.alive_ids()[sel % sim.alive_count()];
                    let handle = sim.pool().slot_ref(id).expect("alive handle");
                    prop_assert!(sim.crash(id));
                    oracle.remove(&id);
                    stale.push((id, handle));
                    prop_assert!(sim.poly_state(id).is_none());
                    prop_assert!(sim.pool().slot_ref(id).is_none(), "handle must die");
                }
                Op::CrashDead { sel } => {
                    let id = NodeId::new(sel as u64);
                    if !oracle.contains_key(&id) {
                        prop_assert!(!sim.crash(id), "dead crash is a no-op");
                    }
                }
                Op::Step => {
                    // Deliveries to crashed ids evaporate inside; any
                    // cross-talk into a recycled slot would corrupt the
                    // oracle arithmetic checked below.
                    sim.step();
                }
                Op::Probe { sel } => {
                    if sim.alive_count() == 0 {
                        continue;
                    }
                    let id = sim.alive_ids()[sel % sim.alive_count()];
                    prop_assert!(sim.poly_state(id).is_some());
                    let handle = sim.pool().slot_ref(id).expect("alive handle");
                    prop_assert_eq!(sim.pool().slot_of(id), Some(handle.slot as usize));
                    prop_assert_eq!(sim.pool().get(id).expect("alive").id(), id);
                }
            }

            // Population arithmetic against the boxed oracle, every step.
            let oracle_alive: Vec<NodeId> = oracle.keys().copied().collect();
            prop_assert_eq!(sim.alive_count(), oracle_alive.len());
            prop_assert_eq!(sim.alive_ids(), oracle_alive.as_slice(), "sorted alive list");
            peak_alive = peak_alive.max(oracle_alive.len());
            prop_assert!(
                sim.pool().slot_count() <= peak_alive,
                "storage bounded by peak population ({} slots > {} peak)",
                sim.pool().slot_count(),
                peak_alive
            );

            // Stale handles across slot reuse: the dead id answers
            // nothing, and if its old slot is occupied again the new
            // occupant holds a strictly newer generation.
            for &(dead, old) in &stale {
                prop_assert!(sim.pool().slot_ref(dead).is_none(), "resurrected handle");
                prop_assert!(sim.poly_state(dead).is_none());
                prop_assert!(!oracle.contains_key(&dead));
                if let Some(node) = sim.pool().slots()[old.slot as usize].as_ref() {
                    let current = sim.pool().slot_ref(node.id()).expect("occupant alive");
                    prop_assert_eq!(current.slot, old.slot);
                    prop_assert!(
                        current.gen > old.gen,
                        "slot {} reused without a generation bump",
                        old.slot
                    );
                }
            }
        }
    }
}
