//! Deterministic discrete-event network simulator for the Polystyrene
//! reproduction — the third execution substrate.
//!
//! The cycle engine (`polystyrene-sim`) models the paper's evaluation:
//! atomic, reliable pairwise exchanges, perfect failure detection. The
//! threaded runtime (`polystyrene-runtime`) is real asynchrony over
//! in-process channels, but wall-clock scheduling makes its runs
//! unrepeatable — and its fabric never delays or reorders. This crate
//! fills the gap between them: a seeded event kernel ([`kernel::NetSim`])
//! with an *explicit network model* —
//!
//! * per-link latency with uniform jitter,
//! * independent message-drop probability,
//! * partition masks installed and healed by scenario scripts,
//! * crash detection lag expressed as future events,
//!
//! — all deterministic under a fixed seed, driving the **unchanged**
//! sans-IO [`polystyrene_protocol::ProtocolNode`]. Messages become future
//! events in a calendar queue ([`queue::CalendarQueue`]) ordered by
//! `(deliver_at, seq)`; a zero-latency, zero-loss
//! configuration collapses to round-synchronized delivery and reproduces
//! the cycle engine's per-round population arithmetic (pinned by
//! `tests/equivalence.rs`), which anchors every lossy result to the
//! validated baseline.
//!
//! Scenario scripts are the shared ones: the experiment plane
//! (`polystyrene-lab`) plugs [`kernel::NetSim`] in as one of its
//! `Substrate`s, so any script written for the engine or the live
//! cluster — including churn windows and the partition events only a
//! substrate with a network model can honor — runs here unchanged.
//!
//! # Example: convergence under a lossy, laggy network
//!
//! ```
//! use polystyrene_netsim::prelude::*;
//! use polystyrene_space::prelude::*;
//!
//! let mut cfg = NetSimConfig::default();
//! cfg.area = 32.0;
//! cfg.link = LinkProfile { latency: 2, jitter: 1, loss: 0.05 };
//! let mut sim = NetSim::new(Torus2::new(8.0, 4.0), shapes::torus_grid(8, 4, 1.0), cfg);
//! sim.run(10);
//! let m = sim.history().last().unwrap();
//! assert_eq!(m.alive_nodes, 32);
//! assert!(m.points_per_node > 1.0, "replication despite loss");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod kernel;
pub mod metrics;
pub mod queue;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::config::NetSimConfig;
    pub use crate::kernel::NetSim;
    pub use crate::metrics::{net_reshaping_time, reference_homogeneity, NetRoundMetrics};
    pub use crate::queue::CalendarQueue;
    pub use polystyrene_protocol::{Fate, FaultyNetwork, LinkProfile, NetworkModel};
}

pub use prelude::*;
