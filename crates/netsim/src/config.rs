//! Configuration of the discrete-event network simulator.

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_protocol::{CostModel, LinkProfile, ProtocolConfig};
use polystyrene_topology::TManConfig;

/// Simulator-level configuration: protocol parameters plus the network
/// model and the event-kernel knobs.
///
/// Defaults match the cycle engine's paper settings, with an ideal
/// (instant, lossless) link — under which the simulator reproduces the
/// cycle engine's per-round population arithmetic exactly (the
/// equivalence anchor pinned by `tests/equivalence.rs`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetSimConfig {
    /// T-Man parameters (view cap 100, m = 20, ψ = 5 in the paper).
    pub tman: TManConfig,
    /// Polystyrene parameters (K, split strategy, projection, …).
    pub poly: PolystyreneConfig,
    /// RPS view capacity.
    pub rps_view_cap: usize,
    /// Descriptors exchanged per RPS shuffle.
    pub rps_shuffle_len: usize,
    /// Random contacts seeded into each T-Man view at start.
    pub tman_bootstrap: usize,
    /// The link model every message is routed through.
    pub link: LinkProfile,
    /// Unit prices charged per outbound wire message (paper Sec. IV-A) —
    /// the same prices the cycle engine uses, applied at this kernel's
    /// send boundary.
    pub cost: CostModel,
    /// Simulated time units per protocol round. Latency is expressed in
    /// the same units, so `latency >= ticks_per_round` means a message
    /// arrives in a *later* round than it was sent in. Node activations
    /// are jittered uniformly over this span, so a larger value also
    /// means fewer migration collisions (busy bounces): round-trip
    /// exchanges occupy a smaller fraction of the round.
    pub ticks_per_round: u64,
    /// Simulated time units between a crash and the round survivors'
    /// failure knowledge reports it (0 = the engine's perfect detector).
    pub detection_delay_ticks: u64,
    /// Protocol rounds an in-flight migration (or an unacknowledged
    /// handout) may stay open before its owner gives up.
    pub migration_timeout_rounds: u32,
    /// Surface area of the data space, for the reference homogeneity.
    pub area: f64,
    /// Master seed; every run with the same seed is bit-identical.
    pub seed: u64,
}

impl Default for NetSimConfig {
    fn default() -> Self {
        Self {
            tman: TManConfig::default(),
            poly: PolystyreneConfig::default(),
            rps_view_cap: 20,
            rps_shuffle_len: 8,
            tman_bootstrap: 10,
            link: LinkProfile::ideal(),
            cost: CostModel::default(),
            ticks_per_round: 16,
            detection_delay_ticks: 0,
            migration_timeout_rounds: 3,
            area: 3200.0,
            seed: 0,
        }
    }
}

impl NetSimConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on an invalid sub-configuration, a zero `ticks_per_round`,
    /// or a zero migration timeout.
    pub fn validate(&self) {
        self.tman.validate();
        self.poly.validate();
        self.link.validate();
        assert!(
            self.ticks_per_round >= 1,
            "a round must span at least one simulated time unit"
        );
        assert!(
            self.migration_timeout_rounds >= 1,
            "migration timeout must be at least one round"
        );
    }

    /// The protocol-level slice of this configuration. The kernel
    /// supplies failure knowledge externally (crash/detect events), so
    /// the built-in heartbeat detector is disabled; the migration timeout
    /// stays *finite* — unlike under the cycle engine, a reply here can
    /// be delayed or dropped, and the pending-exchange lock must expire.
    pub fn protocol(&self) -> ProtocolConfig {
        ProtocolConfig {
            tman: self.tman,
            poly: self.poly,
            rps_view_cap: self.rps_view_cap,
            rps_shuffle_len: self.rps_shuffle_len,
            heartbeat_timeout_ticks: u32::MAX,
            migration_timeout_ticks: self.migration_timeout_rounds,
            query_timeout_ticks: ProtocolConfig::default().query_timeout_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_ideal() {
        let cfg = NetSimConfig::default();
        cfg.validate();
        assert!(cfg.link.is_ideal());
        let protocol = cfg.protocol();
        assert_eq!(protocol.heartbeat_timeout_ticks, u32::MAX);
        assert_eq!(
            protocol.migration_timeout_ticks,
            cfg.migration_timeout_rounds
        );
    }

    #[test]
    #[should_panic(expected = "at least one simulated time unit")]
    fn zero_round_span_rejected() {
        let mut cfg = NetSimConfig::default();
        cfg.ticks_per_round = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_link_rejected() {
        let mut cfg = NetSimConfig::default();
        cfg.link.loss = -0.5;
        cfg.validate();
    }
}
