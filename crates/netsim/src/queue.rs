//! Calendar (bucket) future-event queue for the discrete-event kernel.
//!
//! The kernel used to keep its future events in one global
//! `BinaryHeap<Scheduled>` ordered by `(deliver_at, seq)`: every send,
//! activation and crash paid an `O(log n)` sift through a heap whose
//! population scales with the whole network's in-flight traffic, and the
//! heap's node churn kept the allocator busy in the hottest loop of the
//! simulation. [`CalendarQueue`] replaces it with the classic
//! discrete-event structure: a ring of per-tick FIFO buckets.
//!
//! ```text
//!   base ─┐          (tick & mask) picks the bucket
//!         ▼
//!   [ t₀ | t₀+1 | t₀+2 | … | t₀+cap−1 ]   one VecDeque per tick
//!      └─ FIFO within the bucket = (deliver_at, seq) order
//! ```
//!
//! * **Push is O(1).** An event for tick `t` goes to bucket `t & mask`;
//!   the ring is grown (power-of-two, rebucketing in tick order) only
//!   when an event lands beyond the current horizon, so capacity follows
//!   the *maximum scheduling distance* (latency + jitter, detection
//!   delay), not the event population.
//! * **Pop is O(1) amortized.** `pop_next` advances `base` one tick at a
//!   time; each simulated tick is visited once, and the kernel's clock
//!   only ever moves forward, so the scan cost is bounded by simulated
//!   time, not by events.
//! * **The `(deliver_at, seq)` order is preserved exactly.** The old
//!   heap's `seq` tie-break existed to make same-tick events pop in
//!   scheduling order. Sequence numbers were issued monotonically, so
//!   within one tick "ascending seq" *is* "insertion order" — and the
//!   ring maintains the invariant that every queued event satisfies
//!   `base <= tick < base + capacity`, which means a bucket can only
//!   ever hold one tick's events (two ticks sharing a bucket would have
//!   to differ by at least `capacity`). FIFO within the bucket is
//!   therefore byte-identical to the heap's total order, with no
//!   per-event sequence number stored at all.
//! * **Buckets are reusable scratch.** Each bucket is a `VecDeque` that
//!   keeps its capacity when drained and is reused every `capacity`
//!   ticks as the ring wraps, so a steady-state round schedules and
//!   drains thousands of deliveries with zero allocation.

use std::collections::VecDeque;

/// Minimum ring size: covers the default round span (16 ticks) plus the
/// common latency/detection horizons without an early regrow.
const MIN_BUCKETS: usize = 64;

/// A future-event queue bucketed by tick. `T` is the event payload; the
/// tick is implied by the bucket, FIFO position within the bucket is the
/// scheduling order.
pub struct CalendarQueue<T> {
    /// Ring of per-tick buckets; the bucket of tick `t` is `t & mask`.
    buckets: Vec<VecDeque<T>>,
    /// `buckets.len() - 1`; the length is always a power of two.
    mask: u64,
    /// The earliest tick that may still hold unpopped events. Every
    /// queued event's tick is in `[base, base + buckets.len())`.
    base: u64,
    /// Total queued events.
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue starting at tick 0.
    pub fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            base: 0,
            len: 0,
        }
    }

    /// Queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `item` for `tick`.
    ///
    /// # Panics
    ///
    /// Panics if `tick` lies before a tick already handed out by
    /// [`Self::pop_next`] — the kernel's clock never runs backwards, and
    /// accepting a stale tick would silently break the pop order.
    pub fn push(&mut self, tick: u64, item: T) {
        assert!(
            tick >= self.base,
            "event scheduled at tick {tick}, before the queue's base {}",
            self.base
        );
        if tick - self.base >= self.buckets.len() as u64 {
            self.grow(tick);
        }
        self.buckets[(tick & self.mask) as usize].push_back(item);
        self.len += 1;
    }

    /// Pops the earliest queued event with tick `<= limit`, in
    /// `(tick, insertion)` order, or `None` if every queued event lies
    /// beyond `limit`. Returns the event's tick alongside it.
    pub fn pop_next(&mut self, limit: u64) -> Option<(u64, T)> {
        if self.len == 0 {
            // Nothing queued: let `base` catch up to the drained window
            // so capacity tracks scheduling distance, not elapsed time.
            self.base = self.base.max(limit.saturating_add(1));
            return None;
        }
        while self.base <= limit {
            let bucket = (self.base & self.mask) as usize;
            match self.buckets[bucket].pop_front() {
                Some(item) => {
                    self.len -= 1;
                    return Some((self.base, item));
                }
                // An empty bucket means no event at this tick at all —
                // the ring invariant keeps each bucket single-tick.
                None => self.base += 1,
            }
        }
        None
    }

    /// Doubles the ring until `tick` fits, moving the occupied buckets to
    /// their new positions in ascending-tick order. The deques move
    /// wholesale, so their FIFO contents (and capacities) are untouched.
    fn grow(&mut self, tick: u64) {
        let old_cap = self.buckets.len();
        let needed = (tick - self.base + 1).max(old_cap as u64 + 1);
        let new_cap = needed.next_power_of_two() as usize;
        let mut fresh: Vec<VecDeque<T>> = (0..new_cap).map(|_| VecDeque::new()).collect();
        let new_mask = (new_cap - 1) as u64;
        for offset in 0..old_cap as u64 {
            let t = self.base + offset;
            let old = std::mem::take(&mut self.buckets[(t & self.mask) as usize]);
            if !old.is_empty() {
                fresh[(t & new_mask) as usize] = old;
            }
        }
        self.buckets = fresh;
        self.mask = new_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains everything up to `limit` into a Vec of (tick, item).
    fn drain(q: &mut CalendarQueue<u32>, limit: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop_next(limit) {
            out.push(ev);
        }
        out
    }

    #[test]
    fn pops_in_tick_then_insertion_order() {
        let mut q = CalendarQueue::new();
        q.push(5, 0);
        q.push(3, 1);
        q.push(5, 2);
        q.push(3, 3);
        q.push(4, 4);
        assert_eq!(q.len(), 5);
        assert_eq!(
            drain(&mut q, 10),
            vec![(3, 1), (3, 3), (4, 4), (5, 0), (5, 2)],
            "ticks ascending, FIFO within a tick"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn limit_leaves_later_events_queued() {
        let mut q = CalendarQueue::new();
        q.push(2, 0);
        q.push(7, 1);
        assert_eq!(drain(&mut q, 4), vec![(2, 0)]);
        assert_eq!(q.len(), 1);
        assert_eq!(drain(&mut q, 7), vec![(7, 1)]);
    }

    #[test]
    fn push_during_pop_window_keeps_order() {
        // Mimics a zero-latency delivery chain: while tick T is being
        // served, new events for T join the back of T's bucket.
        let mut q = CalendarQueue::new();
        q.push(4, 0);
        assert_eq!(q.pop_next(4), Some((4, 0)));
        q.push(4, 1);
        q.push(5, 2);
        q.push(4, 3);
        assert_eq!(drain(&mut q, 5), vec![(4, 1), (4, 3), (5, 2)]);
    }

    #[test]
    fn growth_preserves_contents_and_order() {
        let mut q = CalendarQueue::new();
        // Fill several near ticks, then force repeated regrowth with
        // far-future events (a scheduled crash, a detection horizon).
        for i in 0..10u32 {
            q.push(u64::from(i % 3), i);
        }
        q.push(1_000, 100);
        q.push(70, 101);
        q.push(1_000, 102);
        let drained = drain(&mut q, 2_000);
        let ticks: Vec<u64> = drained.iter().map(|&(t, _)| t).collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        assert_eq!(ticks, sorted, "ascending ticks across regrowth");
        assert_eq!(
            drained[10..],
            [(70, 101), (1_000, 100), (1_000, 102)],
            "far events keep insertion order within their tick"
        );
        assert_eq!(drained.len(), 13);
    }

    #[test]
    fn empty_pops_advance_the_base_window() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert_eq!(q.pop_next(1_000_000), None);
        // A push right after an empty drain must not need a giant ring.
        q.push(1_000_010, 7);
        assert_eq!(q.buckets.len(), MIN_BUCKETS, "no growth for a near push");
        assert_eq!(q.pop_next(2_000_000), Some((1_000_010, 7)));
    }

    #[test]
    #[should_panic(expected = "before the queue's base")]
    fn stale_tick_rejected() {
        let mut q = CalendarQueue::new();
        q.push(10, 0);
        assert_eq!(q.pop_next(20), Some((10, 0)));
        let _ = q.pop_next(20); // advances base past 10
        q.push(3, 1);
    }
}
