//! Per-round observables of the discrete-event simulator.

/// What the kernel measures after every round — the paper's quality
/// metrics plus the network-level counters the other substrates cannot
/// produce (messages in flight, drops, parked handover points).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetRoundMetrics {
    /// Round the sample was taken at (after the round ran).
    pub round: u32,
    /// Number of alive nodes.
    pub alive_nodes: usize,
    /// Mean distance from each initial data point to its nearest primary
    /// holder (or the nearest alive node if the point has none).
    pub homogeneity: f64,
    /// Reference homogeneity `H` for the current population.
    pub reference_homogeneity: f64,
    /// Fraction of the initial data points that still exist somewhere —
    /// as a guest, a ghost replica, or a parked migration handout.
    pub surviving_points: f64,
    /// Mean stored data points per node (guests + ghosts).
    pub points_per_node: f64,
    /// Migration-split points parked awaiting acknowledgment across the
    /// whole network (nonzero exactly while replies/acks are in flight
    /// or lost).
    pub parked_points: usize,
    /// Messages still queued in the fabric at the end of the round.
    pub in_flight: usize,
    /// Messages handed to the network so far (cumulative).
    pub sent_messages: u64,
    /// Messages the network dropped so far (loss and partitions,
    /// cumulative).
    pub dropped_messages: u64,
    /// Traffic this round in the paper's cost units, divided by the
    /// alive population — charged at the send boundary with the same
    /// unit prices as the cycle engine (Fig. 7b's y-axis).
    pub cost_per_node: f64,
    /// Fraction of this round's cost units attributable to T-Man view
    /// exchanges.
    pub tman_cost_share: f64,
}

pub use polystyrene_protocol::observe::reference_homogeneity;

/// Rounds after `failure_round` until homogeneity first drops below the
/// reference value, or `None` if it never does (the cycle engine's
/// reshaping-time rule, applied to the network simulator's history).
pub fn net_reshaping_time(series: &[NetRoundMetrics], failure_round: u32) -> Option<u32> {
    series
        .iter()
        .filter(|m| m.round > failure_round)
        .find(|m| m.homogeneity < m.reference_homogeneity)
        .map(|m| m.round - failure_round)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_paper_values() {
        assert!((reference_homogeneity(3200.0, 3200) - 0.5).abs() < 1e-12);
        assert_eq!(reference_homogeneity(1.0, 0), f64::INFINITY);
    }

    #[test]
    fn reshaping_time_skips_the_failure_sample() {
        let m = |round, h, r| NetRoundMetrics {
            round,
            homogeneity: h,
            reference_homogeneity: r,
            ..Default::default()
        };
        let series = vec![m(20, 0.1, 0.5), m(21, 2.0, 0.7), m(22, 0.6, 0.7)];
        assert_eq!(net_reshaping_time(&series, 20), Some(2));
        assert_eq!(net_reshaping_time(&series[..2], 20), None);
    }
}
