//! Scenario execution on the discrete-event network simulator.
//!
//! The scenario language lives in `polystyrene-protocol` and is shared
//! with the cycle engine and the threaded runtime; this module plugs
//! [`NetSim`] in as the third [`ScenarioSubstrate`], so every existing
//! script — the paper's three phases, churn windows, and now
//! [`ScenarioEvent::Partition`] — runs unchanged here, through the same
//! event-application code path as everywhere else. Unlike the other two
//! substrates, this one honors partitions: the groups are installed into
//! the network model and healed when the window expires.

use crate::kernel::NetSim;
use crate::metrics::NetRoundMetrics;
use polystyrene_membership::NodeId;
use polystyrene_space::MetricSpace;

pub use polystyrene_protocol::scenario::{
    apply_event, drive_scenario, PaperScenario, Scenario, ScenarioEvent, ScenarioSubstrate,
};

impl<S: MetricSpace> ScenarioSubstrate<S::Point> for NetSim<S> {
    fn fail_region(
        &mut self,
        predicate: &(dyn Fn(&S::Point) -> bool + Send + Sync),
    ) -> Vec<NodeId> {
        self.fail_original_region(predicate)
    }

    fn fail_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        self.fail_random_fraction(fraction)
    }

    fn fail_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId> {
        ids.iter().copied().filter(|&id| self.crash(id)).collect()
    }

    fn inject(&mut self, positions: &[S::Point]) -> Vec<NodeId> {
        NetSim::inject(self, positions.to_vec())
    }

    fn advance_round(&mut self) {
        self.step();
    }

    fn partition(&mut self, groups: &[Vec<NodeId>]) {
        self.network_mut().set_partition(groups);
    }

    fn heal(&mut self) {
        self.network_mut().heal();
    }
}

/// Drives `sim` through `scenario` — the network-simulator twin of the
/// engine's `run_scenario` — returning the metrics of every round.
pub fn run_net_scenario<S: MetricSpace>(
    sim: &mut NetSim<S>,
    scenario: &Scenario<S::Point>,
) -> Vec<NetRoundMetrics> {
    let before = sim.history().len();
    drive_scenario(sim, scenario);
    sim.history()[before..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetSimConfig;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;
    use std::sync::Arc;

    fn small_sim(seed: u64) -> NetSim<Torus2> {
        let p = PaperScenario::small();
        let (w, h) = p.extents();
        let mut cfg = NetSimConfig::default();
        cfg.area = p.area();
        cfg.seed = seed;
        cfg.tman.view_cap = 30;
        cfg.tman.m = 10;
        NetSim::new(Torus2::new(w, h), p.shape(), cfg)
    }

    #[test]
    fn paper_script_population_arithmetic() {
        let p = PaperScenario::small();
        let mut sim = small_sim(1);
        let metrics = run_net_scenario(&mut sim, &p.script());
        assert_eq!(metrics.len(), p.total_rounds as usize);
        assert_eq!(metrics[(p.failure_round - 1) as usize].alive_nodes, 200);
        assert_eq!(metrics[p.failure_round as usize].alive_nodes, 100);
        let ir = p.inject_round.expect("small scenario has phase 3") as usize;
        assert_eq!(metrics[ir].alive_nodes, 200);
    }

    #[test]
    fn churn_window_drains_population_like_the_engine() {
        let mut sim = small_sim(4);
        let scenario: Scenario<[f64; 2]> = Scenario::new(6).at(
            2,
            ScenarioEvent::Churn {
                rate: 0.1,
                rounds: 3,
            },
        );
        let metrics = run_net_scenario(&mut sim, &scenario);
        let alive: Vec<usize> = metrics.iter().map(|m| m.alive_nodes).collect();
        assert_eq!(alive, vec![200, 200, 180, 162, 146, 146]);
    }

    #[test]
    fn partition_script_cuts_and_heals_the_fabric() {
        let mut sim = small_sim(5);
        // Converge, isolate a corner of founders for 3 rounds, observe.
        let minority: Vec<NodeId> = (0..20).map(NodeId::new).collect();
        let scenario: Scenario<[f64; 2]> = Scenario::new(16).at(
            6,
            ScenarioEvent::Partition {
                groups: vec![minority],
                rounds: 3,
            },
        );
        let metrics = run_net_scenario(&mut sim, &scenario);
        // Nobody crashes in a partition.
        assert!(metrics.iter().all(|m| m.alive_nodes == 200));
        // Cross-partition traffic was dropped during the window…
        let during = metrics[8].dropped_messages - metrics[5].dropped_messages;
        assert!(during > 0, "partition dropped no traffic");
        // …and stops being dropped once healed.
        let after = metrics[15].dropped_messages - metrics[11].dropped_messages;
        assert_eq!(after, 0, "healed fabric must not drop");
    }

    #[test]
    fn region_failure_event_uses_the_shared_selection() {
        let mut sim = small_sim(6);
        let scenario: Scenario<[f64; 2]> = Scenario::new(3).at(
            1,
            ScenarioEvent::FailOriginalRegion(Arc::new(|p: &[f64; 2]| p[0] < 10.0)),
        );
        let metrics = run_net_scenario(&mut sim, &scenario);
        assert_eq!(metrics[0].alive_nodes, 200);
        assert_eq!(metrics[1].alive_nodes, 100, "half the 20×10 grid");
    }

    #[test]
    fn injected_nodes_attract_points() {
        let mut sim = small_sim(7);
        sim.run(10);
        sim.fail_original_region(&shapes::in_right_half(20.0));
        sim.run(10);
        let fresh = sim.inject(shapes::torus_grid_offset(10, 10, 1.0));
        assert_eq!(fresh.len(), 100);
        sim.run(15);
        let with_points = fresh
            .iter()
            .filter(|&&id| !sim.poly_state(id).expect("alive").guests.is_empty())
            .count();
        assert!(
            with_points > fresh.len() / 2,
            "only {with_points}/100 injected nodes acquired data points"
        );
    }
}
