//! The discrete-event kernel: a binary-heap future-event queue driving
//! the sans-IO protocol stack through an explicit network model.
//!
//! Where the cycle engine applies every [`Effect::Send`] synchronously —
//! the atomic pairwise exchange of PeerSim's cycle-driven mode — this
//! kernel hands each send to a [`NetworkModel`] and schedules the
//! delivery as a future event keyed by `(deliver_at, seq)`: messages can
//! arrive later in the round, in a *later round*, out of order with
//! respect to other links, or never (loss, partitions). Crashes and
//! their detection are events too: a crash at time `t` enters the
//! survivors' failure knowledge only when its `Detect` event fires at
//! `t + detection_delay`.
//!
//! The protocol stack is the unchanged [`ProtocolNode`] both other
//! substrates drive. Reachability probes are answered from the *kernel's
//! failure knowledge* (what has been detected so far) — not from ground
//! truth, so an undetected crash lets exchanges start and then time out,
//! exactly as a deployment would experience it. Partitions never fail a
//! probe: nothing crashed, so the failure detector has nothing to say —
//! the opened exchange's traffic simply vanishes in the fabric, and
//! views survive the window intact (see `execute`).
//!
//! Determinism: one seeded RNG drives bootstrap, activation orders and
//! node entropy in a fixed order; the network model draws from its own
//! seeded stream in event order. Identical configurations replay
//! bit-identical histories.

use crate::config::NetSimConfig;
use crate::metrics::{reference_homogeneity, NetRoundMetrics};
use polystyrene::prelude::*;
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_protocol::{
    Effect, Event, Fate, FaultyNetwork, NetworkModel, ProtocolNode, RoundCost, Wire,
};
use polystyrene_space::MetricSpace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};

/// Seed offset separating the network model's entropy stream from the
/// kernel's, so link faults and protocol randomness never interleave.
const NET_SEED_TAG: u64 = 0x6e65_7473_696d; // "netsim"

/// A queued future event.
struct Scheduled<P> {
    at: u64,
    seq: u64,
    what: Pending<P>,
}

enum Pending<P> {
    /// A wire message completes its transit.
    Deliver {
        from: NodeId,
        to: NodeId,
        wire: Wire<P>,
    },
    /// A node runs its local protocol round (all phases back-to-back).
    Activate { id: NodeId },
    /// A past crash becomes visible to the survivors' failure knowledge.
    Detect { id: NodeId },
    /// A scheduled crash fires.
    Crash { id: NodeId },
}

// The heap orders by (at, seq) with the *smallest* first: comparisons are
// reversed because `BinaryHeap` is a max-heap. `seq` is unique, so the
// order is total and deterministic regardless of payload.
impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for Scheduled<P> {}
impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The discrete-event network simulator — the third execution substrate,
/// between the cycle engine (deterministic, atomic exchanges) and the
/// threaded runtime (real asynchrony, no determinism): deterministic
/// *and* asynchronous.
///
/// # Example
///
/// ```
/// use polystyrene_netsim::prelude::*;
/// use polystyrene_space::prelude::*;
///
/// let mut cfg = NetSimConfig::default();
/// cfg.area = 32.0;
/// cfg.link.loss = 0.05; // 5% of messages vanish in transit
/// let mut sim = NetSim::new(Torus2::new(8.0, 4.0), shapes::torus_grid(8, 4, 1.0), cfg);
/// let m = sim.step();
/// assert_eq!(m.alive_nodes, 32);
/// ```
pub struct NetSim<S: MetricSpace> {
    space: S,
    config: NetSimConfig,
    nodes: Vec<Option<ProtocolNode<S>>>,
    original_points: Vec<DataPoint<S::Point>>,
    net: Box<dyn NetworkModel>,
    /// Crashes the population's failure knowledge has caught up with.
    detected: BTreeSet<NodeId>,
    queue: BinaryHeap<Scheduled<S::Point>>,
    seq: u64,
    now: u64,
    round: u32,
    rng: StdRng,
    history: Vec<NetRoundMetrics>,
    sent_messages: u64,
    dropped_messages: u64,
    /// This round's traffic in the paper's cost units, tallied at the
    /// send boundary (a dropped message still cost its sender the bytes).
    cost: RoundCost,
}

impl<S: MetricSpace> NetSim<S> {
    /// Builds a network of `shape.len()` nodes, node `i` founding data
    /// point `i` at `shape[i]` — the same founding convention as the
    /// other substrates — with the standard [`FaultyNetwork`] built from
    /// `config.link`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or the configuration is invalid.
    pub fn new(space: S, shape: Vec<S::Point>, config: NetSimConfig) -> Self {
        let net = Box::new(FaultyNetwork::new(config.link, config.seed ^ NET_SEED_TAG));
        Self::with_network(space, shape, config, net)
    }

    /// Builds the simulator around a custom [`NetworkModel`] (asymmetric
    /// links, channel-selective loss, …). `config.link` is ignored in
    /// favor of the model.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or the configuration is invalid.
    pub fn with_network(
        space: S,
        shape: Vec<S::Point>,
        config: NetSimConfig,
        net: Box<dyn NetworkModel>,
    ) -> Self {
        assert!(!shape.is_empty(), "cannot simulate an empty network");
        config.validate();
        let protocol = config.protocol();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = shape.len();
        let original_points: Vec<DataPoint<S::Point>> = shape
            .iter()
            .enumerate()
            .map(|(i, p)| DataPoint::new(PointId::new(i as u64), p.clone()))
            .collect();

        let mut nodes: Vec<Option<ProtocolNode<S>>> = Vec::with_capacity(n);
        for (i, origin) in original_points.iter().enumerate() {
            let mut contacts = Vec::new();
            while contacts.len() < config.rps_view_cap.min(n - 1) {
                let j = rng.random_range(0..n);
                if j != i
                    && !contacts
                        .iter()
                        .any(|d: &Descriptor<S::Point>| d.id.index() == j)
                {
                    contacts.push(Descriptor::new(NodeId::new(j as u64), shape[j].clone()));
                }
                if contacts.len() >= config.rps_view_cap || n <= 1 {
                    break;
                }
            }
            let mut boot = Vec::new();
            for _ in 0..config.tman_bootstrap {
                let j = rng.random_range(0..n);
                if j != i {
                    boot.push(Descriptor::new(NodeId::new(j as u64), shape[j].clone()));
                }
            }
            nodes.push(Some(ProtocolNode::new(
                NodeId::new(i as u64),
                space.clone(),
                protocol,
                PolyState::with_initial_point(origin.clone()),
                contacts,
                boot,
            )));
        }

        Self {
            space,
            config,
            nodes,
            original_points,
            net,
            detected: BTreeSet::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            round: 0,
            rng,
            history: Vec::new(),
            sent_messages: 0,
            dropped_messages: 0,
            cost: RoundCost::default(),
        }
    }

    /// The current round number (rounds completed so far).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The simulator configuration.
    pub fn config(&self) -> &NetSimConfig {
        &self.config
    }

    /// Ids of currently alive nodes.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| NodeId::new(i as u64))
            .collect()
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|c| c.is_some()).count()
    }

    /// The initial data points defining the target shape.
    pub fn original_points(&self) -> &[DataPoint<S::Point>] {
        &self.original_points
    }

    /// Per-round metric history.
    pub fn history(&self) -> &[NetRoundMetrics] {
        &self.history
    }

    /// Read access to a node's Polystyrene state, if alive.
    pub fn poly_state(&self, id: NodeId) -> Option<&PolyState<S::Point>> {
        self.nodes
            .get(id.index())
            .and_then(|c| c.as_ref())
            .map(|c| &c.poly)
    }

    /// Messages currently in transit (scheduled but undelivered).
    pub fn in_flight(&self) -> usize {
        self.queue
            .iter()
            .filter(|s| matches!(s.what, Pending::Deliver { .. }))
            .count()
    }

    /// Mutable access to the network model (install partitions, tweak a
    /// custom model mid-run).
    pub fn network_mut(&mut self) -> &mut dyn NetworkModel {
        self.net.as_mut()
    }

    // ------------------------------------------------------------------
    // Failure injection — everything is an event
    // ------------------------------------------------------------------

    /// Crashes a node immediately (no-op if already dead): the node stops
    /// processing from this instant, messages already in flight toward it
    /// will evaporate at delivery, and its `Detect` event — the moment
    /// survivors' failure knowledge learns of the crash — fires
    /// `detection_delay_ticks` later.
    pub fn crash(&mut self, id: NodeId) -> bool {
        match self.nodes.get_mut(id.index()) {
            Some(cell) if cell.is_some() => {
                *cell = None;
                if self.config.detection_delay_ticks == 0 {
                    self.detected.insert(id);
                } else {
                    let at = self.now + self.config.detection_delay_ticks;
                    self.schedule(at, Pending::Detect { id });
                }
                true
            }
            _ => false,
        }
    }

    /// Schedules a crash `in_ticks` simulated time units from now — mid-
    /// round crashes, correlated cascades, anything a script can express
    /// in time rather than rounds.
    pub fn schedule_crash(&mut self, id: NodeId, in_ticks: u64) {
        let at = self.now + in_ticks;
        self.schedule(at, Pending::Crash { id });
    }

    /// Crashes every alive founding node whose original data point
    /// satisfies `predicate` (the shared regional-failure path). Returns
    /// the crashed ids.
    pub fn fail_original_region(
        &mut self,
        predicate: &(dyn Fn(&S::Point) -> bool + Send + Sync),
    ) -> Vec<NodeId> {
        let killed =
            polystyrene_protocol::select_region_victims(&self.original_points, predicate, &|id| {
                self.nodes.get(id.index()).is_some_and(Option::is_some)
            });
        for &id in &killed {
            self.crash(id);
        }
        killed
    }

    /// Crashes a uniformly random fraction of the alive population, with
    /// victim selection shared with the other substrates. Returns the
    /// crashed ids.
    pub fn fail_random_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        let killed = polystyrene_protocol::scenario::select_victims(
            self.alive_ids(),
            fraction,
            &mut self.rng,
        );
        for &id in &killed {
            self.crash(id);
        }
        killed
    }

    /// Injects fresh empty nodes at `positions`, bootstrapped from random
    /// alive contacts drawn through the shared
    /// [`polystyrene_protocol::sample_bootstrap_contacts`] path (same
    /// semantics as the cycle engine's inject). Returns the new ids.
    pub fn inject(&mut self, positions: Vec<S::Point>) -> Vec<NodeId> {
        let alive = self.alive_ids();
        let protocol = self.config.protocol();
        let mut new_ids = Vec::with_capacity(positions.len());
        for pos in positions {
            let id = NodeId::new(self.nodes.len() as u64);
            let (contacts, boot) = {
                let nodes = &self.nodes;
                let pos_of = |j: NodeId| {
                    nodes
                        .get(j.index())
                        .and_then(|c| c.as_ref())
                        .map(|c| c.poly.pos.clone())
                };
                (
                    polystyrene_protocol::sample_bootstrap_contacts(
                        &alive,
                        &pos_of,
                        self.config.rps_view_cap,
                        &mut self.rng,
                    ),
                    polystyrene_protocol::sample_bootstrap_contacts(
                        &alive,
                        &pos_of,
                        self.config.tman_bootstrap,
                        &mut self.rng,
                    ),
                )
            };
            self.nodes.push(Some(ProtocolNode::new(
                id,
                self.space.clone(),
                protocol,
                PolyState::empty_at(pos),
                contacts,
                boot,
            )));
            new_ids.push(id);
        }
        new_ids
    }

    // ------------------------------------------------------------------
    // The round loop
    // ------------------------------------------------------------------

    /// Runs one protocol round: every alive node's activation — its full
    /// local phase pipeline, [`ProtocolNode::on_round`] — is scheduled at
    /// a random offset within the round's tick span, then the event queue
    /// processes activations and message deliveries interleaved in
    /// `(time, seq)` order up to the round boundary. Returns the metrics
    /// measured at the end of the round.
    ///
    /// The per-node jitter is load-bearing, not cosmetic: gossip
    /// deployments (and PeerSim's event-driven mode) phase-shift node
    /// cycles, and without it every node would open its migration
    /// exchange at the same instant — under any nonzero latency all
    /// requests would then land on responders that are themselves
    /// mid-exchange, and the network would busy-bounce forever.
    pub fn step(&mut self) -> NetRoundMetrics {
        self.round += 1;
        self.cost.reset();
        let round_start = self.now;
        let round_end = round_start + self.config.ticks_per_round;
        let mut order: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_some())
            .collect();
        order.shuffle(&mut self.rng);
        for i in order {
            let offset = self.rng.random_range(0..self.config.ticks_per_round);
            self.schedule(
                round_start + offset,
                Pending::Activate {
                    id: NodeId::new(i as u64),
                },
            );
        }
        // Everything due before the round boundary — activations, the
        // deliveries they cause, crashes, detections — happens now, in
        // time order; later arrivals stay queued for future rounds.
        self.drain(round_end - 1);
        self.now = round_end;
        let metrics = self.compute_metrics();
        self.history.push(metrics);
        metrics
    }

    /// Runs `rounds` consecutive rounds.
    pub fn run(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.step();
        }
    }

    fn schedule(&mut self, at: u64, what: Pending<S::Point>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, what });
    }

    /// Executes one node's effects: probes are answered from the kernel's
    /// failure knowledge, sends are routed through the network model.
    fn execute(&mut self, origin: usize, effects: Vec<Effect<S::Point>>) {
        let mut pending: VecDeque<(usize, Effect<S::Point>)> =
            effects.into_iter().map(|e| (origin, e)).collect();
        while let Some((at, effect)) = pending.pop_front() {
            let from = NodeId::new(at as u64);
            match effect {
                Effect::Probe { peer, channel } => {
                    // Failure *knowledge*, not ground truth: an undetected
                    // crash passes the probe and the exchange later times
                    // out. Partitions deliberately do NOT fail probes —
                    // the probe asks the local failure detector, which a
                    // partition never updates (nothing crashed); the
                    // opened exchange's traffic then vanishes in transit
                    // instead. This keeps partitions non-destructive:
                    // views are not purged, so the fabric heals cleanly
                    // when the mask lifts.
                    let event = if !self.detected.contains(&peer) {
                        Event::ProbeOk {
                            peer,
                            channel,
                            pos: None,
                        }
                    } else {
                        Event::PeerUnreachable { peer, channel }
                    };
                    let node = self.nodes[at].as_mut().expect("active node vanished");
                    let more = node.on_event(event, &mut self.rng);
                    pending.extend(more.into_iter().map(|e| (at, e)));
                }
                Effect::Send { to, wire } => {
                    self.sent_messages += 1;
                    self.cost.charge_wire(&self.config.cost, &wire);
                    match self.net.route(from, to, wire.channel(), self.now) {
                        Fate::Drop => self.dropped_messages += 1,
                        Fate::Deliver { delay } => {
                            let at = self.now + delay;
                            self.schedule(at, Pending::Deliver { from, to, wire });
                        }
                    }
                }
            }
        }
    }

    /// Processes every queued event with `at <= limit` in `(at, seq)`
    /// order, advancing the simulated clock to each event's time.
    fn drain(&mut self, limit: u64) {
        while let Some(top) = self.queue.peek() {
            if top.at > limit {
                break;
            }
            let event = self.queue.pop().expect("peeked above");
            self.now = self.now.max(event.at);
            match event.what {
                Pending::Detect { id } => {
                    self.detected.insert(id);
                }
                Pending::Crash { id } => {
                    self.crash(id);
                }
                Pending::Activate { id } => {
                    // Crashed since it was scheduled: the activation
                    // evaporates with the node.
                    if self.nodes.get(id.index()).is_none_or(Option::is_none) {
                        continue;
                    }
                    let effects = {
                        // Split borrow: `detected` cannot change during
                        // one activation, so the closure reads it in
                        // place — no per-activation snapshot clone.
                        let Self {
                            nodes,
                            detected,
                            rng,
                            ..
                        } = &mut *self;
                        let fd = |peer: NodeId| detected.contains(&peer);
                        let node = nodes[id.index()].as_mut().expect("checked above");
                        node.on_round(&fd, rng)
                    };
                    if !effects.is_empty() {
                        self.execute(id.index(), effects);
                    }
                }
                Pending::Deliver { from, to, wire } => {
                    // A message to a node that died mid-flight evaporates.
                    let Some(node) = self.nodes.get_mut(to.index()).and_then(Option::as_mut) else {
                        continue;
                    };
                    let effects = node.on_event(Event::Message { from, wire }, &mut self.rng);
                    if !effects.is_empty() {
                        self.execute(to.index(), effects);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Measures the quality metrics over the current state (exhaustive
    /// nearest-node scans; the kernel targets networks of a few thousand
    /// nodes, where the event queue — not measurement — dominates).
    pub fn compute_metrics(&self) -> NetRoundMetrics {
        let alive: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_some())
            .collect();
        let alive_count = alive.len();

        let mut holders: HashMap<PointId, Vec<usize>> = HashMap::new();
        let mut existing: HashSet<PointId> = HashSet::new();
        let mut stored = 0usize;
        let mut parked_points = 0usize;
        for &i in &alive {
            let node = self.nodes[i].as_ref().expect("filtered alive");
            for g in &node.poly.guests {
                holders.entry(g.id).or_default().push(i);
                existing.insert(g.id);
            }
            for pts in node.poly.ghosts.values() {
                for p in pts {
                    existing.insert(p.id);
                }
            }
            // Mid-handover points physically remain on the responder
            // until the initiator takes custody: they are not lost, and
            // they are *held here* for the homogeneity measurement (the
            // bytes are on this node, whatever the ownership paperwork
            // says).
            for id in node.parked_point_ids() {
                holders.entry(id).or_default().push(i);
                existing.insert(id);
                parked_points += 1;
            }
            stored += node.poly.stored_points();
        }

        let mut homogeneity_acc = 0.0;
        let mut surviving = 0usize;
        for point in &self.original_points {
            let nearest = match holders.get(&point.id) {
                Some(hs) if !hs.is_empty() => hs
                    .iter()
                    .map(|&i| {
                        let pos = &self.nodes[i].as_ref().expect("holder alive").poly.pos;
                        self.space.distance(&point.pos, pos)
                    })
                    .fold(f64::INFINITY, f64::min),
                _ => alive
                    .iter()
                    .map(|&i| {
                        let pos = &self.nodes[i].as_ref().expect("filtered alive").poly.pos;
                        self.space.distance(&point.pos, pos)
                    })
                    .fold(f64::INFINITY, f64::min),
            };
            if nearest.is_finite() {
                homogeneity_acc += nearest;
            }
            if existing.contains(&point.id) {
                surviving += 1;
            }
        }
        let homogeneity = if self.original_points.is_empty() || alive_count == 0 {
            f64::INFINITY
        } else {
            homogeneity_acc / self.original_points.len() as f64
        };

        NetRoundMetrics {
            round: self.round,
            alive_nodes: alive_count,
            homogeneity,
            reference_homogeneity: reference_homogeneity(self.config.area, alive_count),
            surviving_points: if self.original_points.is_empty() {
                1.0
            } else {
                surviving as f64 / self.original_points.len() as f64
            },
            points_per_node: if alive_count == 0 {
                0.0
            } else {
                stored as f64 / alive_count as f64
            },
            parked_points,
            in_flight: self.in_flight(),
            sent_messages: self.sent_messages,
            dropped_messages: self.dropped_messages,
            cost_per_node: if alive_count == 0 {
                0.0
            } else {
                self.cost.total() as f64 / alive_count as f64
            },
            tman_cost_share: self.cost.tman_share(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_protocol::LinkProfile;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    fn tiny_config(seed: u64) -> NetSimConfig {
        let mut cfg = NetSimConfig::default();
        cfg.tman = polystyrene_topology::TManConfig {
            view_cap: 20,
            m: 8,
            psi: 3,
        };
        cfg.poly = PolystyreneConfig::builder().replication(3).build();
        cfg.rps_view_cap = 10;
        cfg.rps_shuffle_len = 5;
        cfg.tman_bootstrap = 5;
        cfg.area = 64.0;
        cfg.seed = seed;
        cfg
    }

    fn tiny_sim(seed: u64, link: LinkProfile) -> NetSim<Torus2> {
        let mut cfg = tiny_config(seed);
        cfg.link = link;
        NetSim::new(Torus2::new(16.0, 4.0), shapes::torus_grid(16, 4, 1.0), cfg)
    }

    #[test]
    fn construction_invariants() {
        let sim = tiny_sim(1, LinkProfile::ideal());
        assert_eq!(sim.alive_count(), 64);
        assert_eq!(sim.original_points().len(), 64);
        for id in sim.alive_ids() {
            let s = sim.poly_state(id).expect("alive");
            assert_eq!(s.guests.len(), 1);
            assert_eq!(s.guests[0].id.as_u64(), id.as_u64());
        }
        let m = sim.compute_metrics();
        assert!(m.homogeneity.abs() < 1e-12);
        assert_eq!(m.surviving_points, 1.0);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let lossy = LinkProfile {
            latency: 3,
            jitter: 2,
            loss: 0.05,
        };
        let mut a = tiny_sim(7, lossy);
        let mut b = tiny_sim(7, lossy);
        a.run(8);
        b.run(8);
        assert_eq!(a.history(), b.history());
        let mut c = tiny_sim(8, lossy);
        c.run(8);
        assert_ne!(a.history(), c.history());
    }

    #[test]
    fn ideal_link_converges_like_the_engine() {
        let mut sim = tiny_sim(3, LinkProfile::ideal());
        sim.run(15);
        let m = sim.history().last().expect("ran");
        assert!(
            (m.points_per_node - 4.0).abs() < 0.8,
            "expected ≈ 1+K=4 stored points, got {}",
            m.points_per_node
        );
        assert_eq!(m.dropped_messages, 0);
        assert_eq!(m.parked_points, 0, "acks land instantly at zero latency");
    }

    #[test]
    fn latency_defers_deliveries_across_rounds() {
        // Latency of two full rounds: replies straddle round boundaries,
        // so traffic must be in flight at round ends.
        let link = LinkProfile {
            latency: 2 * NetSimConfig::default().ticks_per_round,
            jitter: 4,
            loss: 0.0,
        };
        let mut sim = tiny_sim(4, link);
        sim.run(6);
        assert!(
            sim.history().iter().any(|m| m.in_flight > 0),
            "two-round latency must leave messages in flight at round ends"
        );
        // The protocol still makes progress: points replicate.
        let m = sim.history().last().expect("ran");
        assert!(m.points_per_node > 1.5, "no replication under latency");
    }

    #[test]
    fn catastrophic_failure_recovers_under_loss() {
        let link = LinkProfile {
            latency: 2,
            jitter: 1,
            loss: 0.05,
        };
        let mut sim = tiny_sim(5, link);
        sim.run(12);
        let killed = sim.fail_original_region(&shapes::in_right_half(16.0));
        assert_eq!(killed.len(), 32);
        assert_eq!(sim.alive_count(), 32);
        sim.run(20);
        let m = sim.history().last().expect("ran");
        assert!(
            m.homogeneity < m.reference_homogeneity,
            "failed to reshape under 5% loss: {} vs reference {}",
            m.homogeneity,
            m.reference_homogeneity
        );
        assert!(
            m.surviving_points > 0.8,
            "too many points lost: {}",
            m.surviving_points
        );
        assert!(m.dropped_messages > 0, "5% loss must actually drop");
    }

    #[test]
    fn detection_delay_defers_failure_knowledge() {
        let mut cfg = tiny_config(6);
        // Two full rounds pass before survivors learn of a crash.
        cfg.detection_delay_ticks = cfg.ticks_per_round * 2;
        let mut sim = NetSim::new(Torus2::new(16.0, 4.0), shapes::torus_grid(16, 4, 1.0), cfg);
        sim.run(10);
        sim.crash(NodeId::new(0));
        assert!(
            !sim.detected.contains(&NodeId::new(0)),
            "crash must not be known before its Detect event"
        );
        sim.run(3);
        assert!(
            sim.detected.contains(&NodeId::new(0)),
            "Detect event must have fired"
        );
    }

    #[test]
    fn scheduled_crash_fires_mid_round() {
        let mut sim = tiny_sim(7, LinkProfile::ideal());
        sim.run(2);
        sim.schedule_crash(NodeId::new(3), sim.config().ticks_per_round / 2);
        assert_eq!(sim.alive_count(), 64, "not yet");
        sim.step();
        assert_eq!(sim.alive_count(), 63, "crash event fired within the round");
    }

    #[test]
    fn partition_drops_cross_traffic_and_heals() {
        let mut sim = tiny_sim(8, LinkProfile::ideal());
        sim.run(8);
        // Cut node 0 off from everyone.
        sim.network_mut().set_partition(&[vec![NodeId::new(0)]]);
        let before = sim.compute_metrics().dropped_messages;
        sim.run(4);
        let during = sim.compute_metrics().dropped_messages;
        assert!(
            during > before,
            "an isolated node's traffic must be dropped"
        );
        sim.network_mut().heal();
        let healed = sim.compute_metrics().dropped_messages;
        sim.run(4);
        let m = sim.history().last().expect("ran");
        assert_eq!(
            m.dropped_messages, healed,
            "a healed ideal fabric must not drop"
        );
        assert!(
            m.homogeneity < m.reference_homogeneity,
            "healed and settled"
        );
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_shape_rejected() {
        let _ = NetSim::new(Torus2::new(4.0, 4.0), Vec::new(), NetSimConfig::default());
    }
}
