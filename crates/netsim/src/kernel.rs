//! The discrete-event kernel: a calendar future-event queue driving the
//! sans-IO protocol stack through an explicit network model.
//!
//! Where the cycle engine applies every [`Effect::Send`] synchronously —
//! the atomic pairwise exchange of PeerSim's cycle-driven mode — this
//! kernel hands each send to a [`NetworkModel`] and schedules the
//! delivery as a future event keyed by `(deliver_at, seq)`: messages can
//! arrive later in the round, in a *later round*, out of order with
//! respect to other links, or never (loss, partitions). Crashes and
//! their detection are events too: a crash at time `t` enters the
//! survivors' failure knowledge only when its `Detect` event fires at
//! `t + detection_delay`.
//!
//! The protocol stack is the unchanged [`ProtocolNode`] both other
//! substrates drive, stored in the same dense
//! [`polystyrene_protocol::pool::NodePool`] slab the cycle engine uses —
//! activation order, liveness and positions come off the pool's sorted
//! alive list instead of a grow-only id-indexed vector. Reachability
//! probes are answered from the *kernel's failure knowledge* (what has
//! been detected so far) — not from ground truth, so an undetected crash
//! lets exchanges start and then time out, exactly as a deployment would
//! experience it. Partitions never fail a probe: nothing crashed, so the
//! failure detector has nothing to say — the opened exchange's traffic
//! simply vanishes in the fabric, and views survive the window intact
//! (see `execute`).
//!
//! The hot loop is allocation-free in steady state: future events live
//! in a [`CalendarQueue`] of reusable per-tick buckets, node effects are
//! pushed into one kernel-owned [`EffectSink`] and dispatched through
//! one reusable queue, and the per-round measurement pass reuses dense
//! point-id-indexed holder/ghost tables instead of rebuilding hash maps.
//!
//! Determinism: one seeded RNG drives bootstrap, activation orders and
//! node entropy in a fixed order; the network model draws from its own
//! seeded stream in event order. Identical configurations replay
//! bit-identical histories — pinned across the pool/queue/metrics swap
//! by `tests/golden_history.rs`.

use crate::config::NetSimConfig;
use crate::metrics::{reference_homogeneity, NetRoundMetrics};
use crate::queue::CalendarQueue;
use polystyrene::prelude::*;
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_protocol::pool::NodePool;
use polystyrene_protocol::{
    Channel, Effect, EffectSink, Event, Fate, FaultyNetwork, NetworkModel, ProtocolNode, QueryItem,
    RoundCost, Wire,
};
use polystyrene_space::MetricSpace;
use polystyrene_topology::TopologyConstruction;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};

/// Seed offset separating the network model's entropy stream from the
/// kernel's, so link faults and protocol randomness never interleave.
const NET_SEED_TAG: u64 = 0x6e65_7473_696d; // "netsim"

use polystyrene_protocol::TRAFFIC_SEED_TAG;

/// A queued future event. The tick it fires at and its position within
/// that tick are carried by the [`CalendarQueue`] (bucket + FIFO slot),
/// not stored per event.
enum Pending<P> {
    /// A wire message completes its transit.
    Deliver {
        from: NodeId,
        to: NodeId,
        wire: Wire<P>,
    },
    /// A node runs its local protocol round (all phases back-to-back).
    Activate { id: NodeId },
    /// A past crash becomes visible to the survivors' failure knowledge.
    Detect { id: NodeId },
    /// A scheduled crash fires.
    Crash { id: NodeId },
}

/// Reusable dense tables for the per-round measurement pass, replacing
/// the `HashMap<PointId, Vec<usize>>` / `HashSet<PointId>` the kernel
/// used to rebuild every round. Founding point ids are contiguous from
/// zero, so point-id-indexed vectors cover them exactly; holder entries
/// are pool *slot* indices, read back off the dense slot array.
#[derive(Default)]
struct MeasureScratch {
    /// Slot of every alive node, in ascending-id order.
    alive_slots: Vec<u32>,
    /// Point-id-indexed holder slots (guests + parked handouts).
    holders: Vec<Vec<u32>>,
    /// Point-id-indexed "some alive node still stores this point".
    existing: Vec<bool>,
}

impl MeasureScratch {
    fn reset(&mut self, n_points: usize) {
        self.alive_slots.clear();
        for h in &mut self.holders {
            h.clear();
        }
        self.holders.resize_with(n_points, Vec::new);
        self.existing.clear();
        self.existing.resize(n_points, false);
    }
}

/// The discrete-event network simulator — the third execution substrate,
/// between the cycle engine (deterministic, atomic exchanges) and the
/// threaded runtime (real asynchrony, no determinism): deterministic
/// *and* asynchronous.
///
/// # Example
///
/// ```
/// use polystyrene_netsim::prelude::*;
/// use polystyrene_space::prelude::*;
///
/// let mut cfg = NetSimConfig::default();
/// cfg.area = 32.0;
/// cfg.link.loss = 0.05; // 5% of messages vanish in transit
/// let mut sim = NetSim::new(Torus2::new(8.0, 4.0), shapes::torus_grid(8, 4, 1.0), cfg);
/// let m = sim.step();
/// assert_eq!(m.alive_nodes, 32);
/// ```
pub struct NetSim<S: MetricSpace> {
    space: S,
    config: NetSimConfig,
    nodes: NodePool<S>,
    original_points: Vec<DataPoint<S::Point>>,
    net: Box<dyn NetworkModel>,
    /// The network model application-plane queries ride. A separate
    /// fault/jitter stream from `net`, so query traffic never perturbs
    /// the protocol plane's draw order — golden histories stay
    /// byte-identical with traffic enabled.
    traffic_net: Box<dyn NetworkModel>,
    /// Gateway-selection stream for [`Self::offer_traffic`].
    traffic_rng: StdRng,
    /// Query ids, unique per simulator.
    next_qid: u64,
    /// Query messages currently in transit — kept out of `in_flight`,
    /// which feeds the pinned protocol metric history.
    traffic_in_flight: usize,
    /// Crashes the population's failure knowledge has caught up with.
    detected: BTreeSet<NodeId>,
    queue: CalendarQueue<Pending<S::Point>>,
    now: u64,
    round: u32,
    rng: StdRng,
    history: Vec<NetRoundMetrics>,
    sent_messages: u64,
    dropped_messages: u64,
    /// Messages currently in transit (scheduled, not yet popped).
    in_flight: usize,
    /// This round's traffic in the paper's cost units, tallied at the
    /// send boundary (a dropped message still cost its sender the bytes).
    cost: RoundCost,
    /// Kernel-owned effect sink every node activation/delivery pushes
    /// into — one buffer for the whole simulation instead of a fresh
    /// `Vec` per protocol call.
    sink: EffectSink<S::Point>,
    /// Reusable effect-dispatch queue for [`Self::execute`].
    pending: VecDeque<(NodeId, Effect<S::Point>)>,
    /// Reusable activation-order buffer for [`Self::step`].
    order: Vec<NodeId>,
    /// Reusable measurement tables for [`Self::step`].
    scratch: MeasureScratch,
    /// Reusable `(gateway, qid, key index)` scratch of the batched
    /// [`Self::offer_traffic`] grouping pass.
    traffic_batch: Vec<(NodeId, u64, usize)>,
}

impl<S: MetricSpace> NetSim<S> {
    /// Builds a network of `shape.len()` nodes, node `i` founding data
    /// point `i` at `shape[i]` — the same founding convention as the
    /// other substrates — with the standard [`FaultyNetwork`] built from
    /// `config.link`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or the configuration is invalid.
    pub fn new(space: S, shape: Vec<S::Point>, config: NetSimConfig) -> Self {
        let net = Box::new(FaultyNetwork::new(config.link, config.seed ^ NET_SEED_TAG));
        Self::with_network(space, shape, config, net)
    }

    /// Builds the simulator around a custom [`NetworkModel`] (asymmetric
    /// links, channel-selective loss, …). `config.link` is ignored in
    /// favor of the model.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or the configuration is invalid.
    pub fn with_network(
        space: S,
        shape: Vec<S::Point>,
        config: NetSimConfig,
        net: Box<dyn NetworkModel>,
    ) -> Self {
        assert!(!shape.is_empty(), "cannot simulate an empty network");
        config.validate();
        let protocol = config.protocol();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = shape.len();
        let original_points: Vec<DataPoint<S::Point>> = shape
            .iter()
            .enumerate()
            .map(|(i, p)| DataPoint::new(PointId::new(i as u64), p.clone()))
            .collect();

        let mut nodes: NodePool<S> = NodePool::with_capacity(n);
        for (i, origin) in original_points.iter().enumerate() {
            let mut contacts = Vec::new();
            while contacts.len() < config.rps_view_cap.min(n - 1) {
                let j = rng.random_range(0..n);
                if j != i
                    && !contacts
                        .iter()
                        .any(|d: &Descriptor<S::Point>| d.id.index() == j)
                {
                    contacts.push(Descriptor::new(NodeId::new(j as u64), shape[j].clone()));
                }
                if contacts.len() >= config.rps_view_cap || n <= 1 {
                    break;
                }
            }
            let mut boot = Vec::new();
            for _ in 0..config.tman_bootstrap {
                let j = rng.random_range(0..n);
                if j != i {
                    boot.push(Descriptor::new(NodeId::new(j as u64), shape[j].clone()));
                }
            }
            let space = space.clone();
            let id = nodes.insert_with(move |id| {
                ProtocolNode::new(
                    id,
                    space,
                    protocol,
                    PolyState::with_initial_point(origin.clone()),
                    contacts,
                    boot,
                )
            });
            debug_assert_eq!(id.index(), i, "founding ids are positional");
        }

        Self {
            space,
            config,
            nodes,
            original_points,
            net,
            traffic_net: Box::new(FaultyNetwork::new(
                config.link,
                config.seed ^ TRAFFIC_SEED_TAG,
            )),
            traffic_rng: StdRng::seed_from_u64(config.seed ^ TRAFFIC_SEED_TAG),
            next_qid: 0,
            traffic_in_flight: 0,
            detected: BTreeSet::new(),
            queue: CalendarQueue::new(),
            now: 0,
            round: 0,
            rng,
            history: Vec::new(),
            sent_messages: 0,
            dropped_messages: 0,
            in_flight: 0,
            cost: RoundCost::default(),
            sink: EffectSink::new(),
            pending: VecDeque::new(),
            order: Vec::new(),
            scratch: MeasureScratch::default(),
            traffic_batch: Vec::new(),
        }
    }

    /// The current round number (rounds completed so far).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The simulator configuration.
    pub fn config(&self) -> &NetSimConfig {
        &self.config
    }

    /// Ids of currently alive nodes, sorted ascending — a borrow of the
    /// pool's incrementally maintained list, not a fresh `Vec`.
    pub fn alive_ids(&self) -> &[NodeId] {
        self.nodes.alive_ids()
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.alive_count()
    }

    /// The node pool itself — slot handles, positions, generation
    /// checks — for diagnostics and the freelist property tests.
    pub fn pool(&self) -> &NodePool<S> {
        &self.nodes
    }

    /// The initial data points defining the target shape.
    pub fn original_points(&self) -> &[DataPoint<S::Point>] {
        &self.original_points
    }

    /// Per-round metric history.
    pub fn history(&self) -> &[NetRoundMetrics] {
        &self.history
    }

    /// Read access to a node's Polystyrene state, if alive.
    pub fn poly_state(&self, id: NodeId) -> Option<&PolyState<S::Point>> {
        self.nodes.get(id).map(|c| &c.poly)
    }

    /// Messages currently in transit (scheduled but undelivered).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Mutable access to the network model (install partitions, tweak a
    /// custom model mid-run).
    pub fn network_mut(&mut self) -> &mut dyn NetworkModel {
        self.net.as_mut()
    }

    // ------------------------------------------------------------------
    // Traffic plane — application queries over the live fabric
    // ------------------------------------------------------------------

    /// Mutable access to the traffic plane's network model. Partitions
    /// installed on the protocol fabric via [`Self::network_mut`] do not
    /// automatically apply here; [`Self::set_partition`] /
    /// [`Self::heal`] cut and restore both planes at once.
    pub fn traffic_network_mut(&mut self) -> &mut dyn NetworkModel {
        self.traffic_net.as_mut()
    }

    /// Installs a partition on both the protocol and traffic fabrics.
    pub fn set_partition(&mut self, groups: &[Vec<NodeId>]) {
        self.net.set_partition(groups);
        self.traffic_net.set_partition(groups);
    }

    /// Heals both fabrics.
    pub fn heal(&mut self) {
        self.net.heal();
        self.traffic_net.heal();
    }

    /// Query messages currently in transit on the traffic fabric.
    pub fn traffic_in_flight(&self) -> usize {
        self.traffic_in_flight
    }

    /// A node's current T-Man view entries, if alive — the hearsay the
    /// traffic plane forwards over and `routing::ViewOracle` is built
    /// from.
    pub fn view_entries_of(&self, id: NodeId) -> Option<&[Descriptor<S::Point>]> {
        self.nodes.get(id).map(|c| c.tman.view_entries())
    }

    /// Injects one query per key at a uniformly random alive gateway.
    /// Co-gateway queries share one [`Wire::QueryBatch`] envelope,
    /// scheduled as a *single* self-addressed kernel event at the
    /// current instant — the start of the next [`Self::step`] — and then
    /// forward hop-by-hop through node views as (batched) messages on
    /// the traffic fabric. Gateways are drawn first, in key order
    /// against one borrow of the alive list — the exact rng stream and
    /// qid assignment of the per-wire path — so batching changes the
    /// envelope count, never a query's gateway or id. Gateway choice and
    /// query transit draw from dedicated streams, so enabling traffic
    /// leaves the protocol history byte-identical.
    pub fn offer_traffic(&mut self, keys: &[S::Point], ttl: u32) {
        if self.nodes.alive_count() == 0 {
            return;
        }
        let mut batch = std::mem::take(&mut self.traffic_batch);
        batch.clear();
        {
            let alive = self.nodes.alive_ids();
            let n = alive.len();
            for idx in 0..keys.len() {
                let gateway = alive[self.traffic_rng.random_range(0..n)];
                self.next_qid += 1;
                batch.push((gateway, self.next_qid, idx));
            }
        }
        batch.sort_unstable();
        let mut at = 0;
        while at < batch.len() {
            let gateway = batch[at].0;
            let mut queries = self.sink.take_queries();
            while at < batch.len() && batch[at].0 == gateway {
                let (_, qid, idx) = batch[at];
                queries.push(QueryItem {
                    qid,
                    origin: gateway,
                    key: keys[idx].clone(),
                    ttl,
                    hops: 0,
                });
                at += 1;
            }
            self.schedule(
                self.now,
                Pending::Deliver {
                    from: gateway,
                    to: gateway,
                    wire: Wire::QueryBatch { queries },
                },
            );
        }
        self.traffic_batch = batch;
    }

    /// The pre-batching per-wire offer path: one [`Wire::Query`]
    /// delivery event per key. Kept as a paired baseline for the
    /// batched-vs-unbatched equivalence test and the `fig_traffic_scale`
    /// wall-clock comparison.
    pub fn offer_traffic_unbatched(&mut self, keys: &[S::Point], ttl: u32) {
        if self.nodes.alive_count() == 0 {
            return;
        }
        for key in keys {
            let n = self.nodes.alive_count();
            let gateway = self.nodes.alive_ids()[self.traffic_rng.random_range(0..n)];
            self.next_qid += 1;
            let wire = Wire::Query {
                qid: self.next_qid,
                origin: gateway,
                key: key.clone(),
                ttl,
                hops: 0,
            };
            self.schedule(
                self.now,
                Pending::Deliver {
                    from: gateway,
                    to: gateway,
                    wire,
                },
            );
        }
    }

    /// Drains per-node traffic accounting accumulated since the last
    /// call: returns `(offered, delivered, dropped)` totals and appends
    /// each resolved query's `(hops, latency)` sample to `samples`.
    /// Node clocks advance once per activation here, so latency is in
    /// *rounds* and an unanswered query expires as dropped after
    /// `query_timeout_ticks` rounds.
    pub fn drain_traffic(&mut self, samples: &mut Vec<(u32, u64)>) -> (u64, u64, u64) {
        let mut offered = 0;
        let mut delivered = 0;
        let mut dropped = 0;
        for node in self.nodes.slots_mut().iter_mut().flatten() {
            let (o, de, dr) = node.take_traffic(samples);
            offered += o;
            delivered += de;
            dropped += dr;
        }
        (offered, delivered, dropped)
    }

    // ------------------------------------------------------------------
    // Failure injection — everything is an event
    // ------------------------------------------------------------------

    /// Crashes a node immediately (no-op if already dead): the node stops
    /// processing from this instant, messages already in flight toward it
    /// will evaporate at delivery, and its `Detect` event — the moment
    /// survivors' failure knowledge learns of the crash — fires
    /// `detection_delay_ticks` later.
    pub fn crash(&mut self, id: NodeId) -> bool {
        if self.nodes.remove(id).is_none() {
            return false;
        }
        if self.config.detection_delay_ticks == 0 {
            self.detected.insert(id);
        } else {
            let at = self.now + self.config.detection_delay_ticks;
            self.schedule(at, Pending::Detect { id });
        }
        true
    }

    /// Schedules a crash `in_ticks` simulated time units from now — mid-
    /// round crashes, correlated cascades, anything a script can express
    /// in time rather than rounds.
    pub fn schedule_crash(&mut self, id: NodeId, in_ticks: u64) {
        let at = self.now + in_ticks;
        self.schedule(at, Pending::Crash { id });
    }

    /// Crashes every alive founding node whose original data point
    /// satisfies `predicate` (the shared regional-failure path). Returns
    /// the crashed ids.
    pub fn fail_original_region(
        &mut self,
        predicate: &(dyn Fn(&S::Point) -> bool + Send + Sync),
    ) -> Vec<NodeId> {
        let killed =
            polystyrene_protocol::select_region_victims(&self.original_points, predicate, &|id| {
                self.nodes.contains(id)
            });
        for &id in &killed {
            self.crash(id);
        }
        killed
    }

    /// Crashes a uniformly random fraction of the alive population, with
    /// victim selection shared with the other substrates. Returns the
    /// crashed ids. (The one copy of the alive list is forced by the
    /// shared selector's shuffle-in-place contract.)
    pub fn fail_random_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        let killed = polystyrene_protocol::scenario::select_victims(
            self.nodes.alive_ids().to_vec(),
            fraction,
            &mut self.rng,
        );
        for &id in &killed {
            self.crash(id);
        }
        killed
    }

    /// Injects fresh empty nodes at `positions`, bootstrapped from random
    /// alive contacts drawn through the shared
    /// [`polystyrene_protocol::sample_bootstrap_contacts`] path (same
    /// semantics as the cycle engine's inject). Returns the new ids.
    ///
    /// All contact sampling reads the pre-inject population directly off
    /// the pool's alive list (new joiners never bootstrap each other);
    /// positions are borrowed and cloned once, into the node that owns
    /// them.
    pub fn inject(&mut self, positions: &[S::Point]) -> Vec<NodeId> {
        let protocol = self.config.protocol();
        let mut seeds = Vec::with_capacity(positions.len());
        {
            let Self {
                nodes, rng, config, ..
            } = &mut *self;
            let alive = nodes.alive_ids();
            let pos_of = |j: NodeId| nodes.get(j).map(|c| c.poly.pos.clone());
            for _ in positions {
                seeds.push((
                    polystyrene_protocol::sample_bootstrap_contacts(
                        alive,
                        &pos_of,
                        config.rps_view_cap,
                        rng,
                    ),
                    polystyrene_protocol::sample_bootstrap_contacts(
                        alive,
                        &pos_of,
                        config.tman_bootstrap,
                        rng,
                    ),
                ));
            }
        }
        let mut new_ids = Vec::with_capacity(positions.len());
        for (pos, (contacts, boot)) in positions.iter().zip(seeds) {
            let space = self.space.clone();
            let pos = pos.clone();
            let id = self.nodes.insert_with(move |id| {
                ProtocolNode::new(
                    id,
                    space,
                    protocol,
                    PolyState::empty_at(pos),
                    contacts,
                    boot,
                )
            });
            new_ids.push(id);
        }
        new_ids
    }

    // ------------------------------------------------------------------
    // The round loop
    // ------------------------------------------------------------------

    /// Runs one protocol round: every alive node's activation — its full
    /// local phase pipeline, [`ProtocolNode::on_round`] — is scheduled at
    /// a random offset within the round's tick span, then the event queue
    /// processes activations and message deliveries interleaved in
    /// `(time, seq)` order up to the round boundary. Returns the metrics
    /// measured at the end of the round.
    ///
    /// The per-node jitter is load-bearing, not cosmetic: gossip
    /// deployments (and PeerSim's event-driven mode) phase-shift node
    /// cycles, and without it every node would open its migration
    /// exchange at the same instant — under any nonzero latency all
    /// requests would then land on responders that are themselves
    /// mid-exchange, and the network would busy-bounce forever.
    pub fn step(&mut self) -> NetRoundMetrics {
        self.round += 1;
        self.cost.reset();
        let round_start = self.now;
        let round_end = round_start + self.config.ticks_per_round;
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend_from_slice(self.nodes.alive_ids());
        order.shuffle(&mut self.rng);
        for &id in &order {
            let offset = self.rng.random_range(0..self.config.ticks_per_round);
            self.schedule(round_start + offset, Pending::Activate { id });
        }
        self.order = order;
        // Everything due before the round boundary — activations, the
        // deliveries they cause, crashes, detections — happens now, in
        // time order; later arrivals stay queued for future rounds.
        self.drain(round_end - 1);
        self.now = round_end;
        let mut scratch = std::mem::take(&mut self.scratch);
        let metrics = self.measure_into(&mut scratch);
        self.scratch = scratch;
        self.history.push(metrics);
        metrics
    }

    /// Runs `rounds` consecutive rounds.
    pub fn run(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.step();
        }
    }

    fn schedule(&mut self, at: u64, what: Pending<S::Point>) {
        if let Pending::Deliver { wire, .. } = &what {
            if wire.channel() == Channel::Query {
                self.traffic_in_flight += 1;
            } else {
                self.in_flight += 1;
            }
        }
        self.queue.push(at, what);
    }

    /// Executes the effects currently in the sink as `origin`'s output:
    /// probes are answered from the kernel's failure knowledge, sends are
    /// routed through the network model. Cascading effects (a probe
    /// answer opening an exchange) flow through one reusable dispatch
    /// queue.
    fn execute(&mut self, origin: NodeId) {
        let mut pending = std::mem::take(&mut self.pending);
        pending.extend(self.sink.drain().map(|e| (origin, e)));
        while let Some((at, effect)) = pending.pop_front() {
            match effect {
                Effect::Probe { peer, channel } => {
                    // Failure *knowledge*, not ground truth: an undetected
                    // crash passes the probe and the exchange later times
                    // out. Partitions deliberately do NOT fail probes —
                    // the probe asks the local failure detector, which a
                    // partition never updates (nothing crashed); the
                    // opened exchange's traffic then vanishes in transit
                    // instead. This keeps partitions non-destructive:
                    // views are not purged, so the fabric heals cleanly
                    // when the mask lifts.
                    let event = if !self.detected.contains(&peer) {
                        Event::ProbeOk {
                            peer,
                            channel,
                            pos: None,
                        }
                    } else {
                        Event::PeerUnreachable { peer, channel }
                    };
                    let Self {
                        nodes, rng, sink, ..
                    } = &mut *self;
                    let node = nodes.get_mut(at).expect("active node vanished");
                    node.on_event_into(event, rng, sink);
                    pending.extend(self.sink.drain().map(|e| (at, e)));
                }
                Effect::Send { to, wire } => {
                    if wire.channel() == Channel::Query {
                        // Application traffic rides its own fabric and is
                        // metered node-side (a query dropped here simply
                        // never resolves and expires at its origin): the
                        // protocol plane's counters, cost tally and rng
                        // streams are untouched.
                        match self.traffic_net.route(at, to, Channel::Query, self.now) {
                            Fate::Drop => self.sink.recycle_wire(wire),
                            Fate::Deliver { delay } => {
                                let deliver_at = self.now + delay;
                                self.schedule(deliver_at, Pending::Deliver { from: at, to, wire });
                            }
                        }
                        continue;
                    }
                    self.sent_messages += 1;
                    self.cost.charge_wire(&self.config.cost, &wire);
                    match self.net.route(at, to, wire.channel(), self.now) {
                        Fate::Drop => {
                            self.dropped_messages += 1;
                            // Lost in the fabric: the payload buffer goes
                            // back to the sink's pool.
                            self.sink.recycle_wire(wire);
                        }
                        Fate::Deliver { delay } => {
                            let deliver_at = self.now + delay;
                            self.schedule(deliver_at, Pending::Deliver { from: at, to, wire });
                        }
                    }
                }
            }
        }
        self.pending = pending;
    }

    /// Processes every queued event with `at <= limit` in `(at, seq)`
    /// order, advancing the simulated clock to each event's time.
    fn drain(&mut self, limit: u64) {
        while let Some((at, what)) = self.queue.pop_next(limit) {
            self.now = self.now.max(at);
            match what {
                Pending::Detect { id } => {
                    self.detected.insert(id);
                }
                Pending::Crash { id } => {
                    self.crash(id);
                }
                Pending::Activate { id } => {
                    {
                        // Split borrow: `detected` cannot change during
                        // one activation, so the closure reads it in
                        // place — no per-activation snapshot clone.
                        let Self {
                            nodes,
                            detected,
                            rng,
                            sink,
                            ..
                        } = &mut *self;
                        // Crashed since it was scheduled: the activation
                        // evaporates with the node.
                        let Some(node) = nodes.get_mut(id) else {
                            continue;
                        };
                        let fd = |peer: NodeId| detected.contains(&peer);
                        node.on_round_into(&fd, rng, sink);
                    }
                    if !self.sink.is_empty() {
                        self.execute(id);
                    }
                }
                Pending::Deliver { from, to, wire } => {
                    if wire.channel() == Channel::Query {
                        self.traffic_in_flight -= 1;
                    } else {
                        self.in_flight -= 1;
                    }
                    let delivered = {
                        let Self {
                            nodes, rng, sink, ..
                        } = &mut *self;
                        match nodes.get_mut(to) {
                            Some(node) => {
                                node.on_event_into(Event::Message { from, wire }, rng, sink);
                                true
                            }
                            // A message to a node that died mid-flight
                            // evaporates; its buffer is recycled.
                            None => {
                                sink.recycle_wire(wire);
                                false
                            }
                        }
                    };
                    if delivered && !self.sink.is_empty() {
                        self.execute(to);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Measures the quality metrics over the current state (exhaustive
    /// nearest-node scans off the pool's dense slot arrays; the event
    /// queue — not measurement — dominates the kernel's profile).
    ///
    /// Allocates fresh scratch tables; the round loop goes through the
    /// kernel-owned reusable scratch instead.
    pub fn compute_metrics(&self) -> NetRoundMetrics {
        self.measure_into(&mut MeasureScratch::default())
    }

    /// The measurement body, writing its working set into `scratch` so
    /// the per-round path reuses one set of dense tables.
    fn measure_into(&self, scratch: &mut MeasureScratch) -> NetRoundMetrics {
        let n_points = self.original_points.len();
        scratch.reset(n_points);
        let alive_count = self.nodes.alive_count();
        let slots = self.nodes.slots();

        let mut stored = 0usize;
        let mut parked_points = 0usize;
        for &id in self.nodes.alive_ids() {
            let slot = self.nodes.slot_of(id).expect("alive id has a slot") as u32;
            scratch.alive_slots.push(slot);
            let node = slots[slot as usize].as_ref().expect("alive slot occupied");
            for g in &node.poly.guests {
                debug_assert!(g.id.index() < n_points, "guests hold founding points");
                scratch.holders[g.id.index()].push(slot);
                scratch.existing[g.id.index()] = true;
            }
            for pts in node.poly.ghosts.values() {
                for p in pts {
                    scratch.existing[p.id.index()] = true;
                }
            }
            // Mid-handover points physically remain on the responder
            // until the initiator takes custody: they are not lost, and
            // they are *held here* for the homogeneity measurement (the
            // bytes are on this node, whatever the ownership paperwork
            // says).
            for pid in node.parked_point_ids() {
                scratch.holders[pid.index()].push(slot);
                scratch.existing[pid.index()] = true;
                parked_points += 1;
            }
            stored += node.poly.stored_points();
        }

        let pos_of = |slot: u32| {
            &slots[slot as usize]
                .as_ref()
                .expect("holder alive")
                .poly
                .pos
        };
        let mut homogeneity_acc = 0.0;
        let mut surviving = 0usize;
        for point in &self.original_points {
            let holders = &scratch.holders[point.id.index()];
            let candidates: &[u32] = if holders.is_empty() {
                &scratch.alive_slots
            } else {
                holders
            };
            let nearest = candidates
                .iter()
                .map(|&s| self.space.distance(&point.pos, pos_of(s)))
                .fold(f64::INFINITY, f64::min);
            if nearest.is_finite() {
                homogeneity_acc += nearest;
            }
            if scratch.existing[point.id.index()] {
                surviving += 1;
            }
        }
        let homogeneity = if self.original_points.is_empty() || alive_count == 0 {
            f64::INFINITY
        } else {
            homogeneity_acc / self.original_points.len() as f64
        };

        NetRoundMetrics {
            round: self.round,
            alive_nodes: alive_count,
            homogeneity,
            reference_homogeneity: reference_homogeneity(self.config.area, alive_count),
            surviving_points: if self.original_points.is_empty() {
                1.0
            } else {
                surviving as f64 / self.original_points.len() as f64
            },
            points_per_node: if alive_count == 0 {
                0.0
            } else {
                stored as f64 / alive_count as f64
            },
            parked_points,
            in_flight: self.in_flight,
            sent_messages: self.sent_messages,
            dropped_messages: self.dropped_messages,
            cost_per_node: if alive_count == 0 {
                0.0
            } else {
                self.cost.total() as f64 / alive_count as f64
            },
            tman_cost_share: self.cost.tman_share(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_protocol::LinkProfile;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    fn tiny_config(seed: u64) -> NetSimConfig {
        let mut cfg = NetSimConfig::default();
        cfg.tman = polystyrene_topology::TManConfig {
            view_cap: 20,
            m: 8,
            psi: 3,
        };
        cfg.poly = PolystyreneConfig::builder().replication(3).build();
        cfg.rps_view_cap = 10;
        cfg.rps_shuffle_len = 5;
        cfg.tman_bootstrap = 5;
        cfg.area = 64.0;
        cfg.seed = seed;
        cfg
    }

    fn tiny_sim(seed: u64, link: LinkProfile) -> NetSim<Torus2> {
        let mut cfg = tiny_config(seed);
        cfg.link = link;
        NetSim::new(Torus2::new(16.0, 4.0), shapes::torus_grid(16, 4, 1.0), cfg)
    }

    #[test]
    fn construction_invariants() {
        let sim = tiny_sim(1, LinkProfile::ideal());
        assert_eq!(sim.alive_count(), 64);
        assert_eq!(sim.original_points().len(), 64);
        for &id in sim.alive_ids() {
            let s = sim.poly_state(id).expect("alive");
            assert_eq!(s.guests.len(), 1);
            assert_eq!(s.guests[0].id.as_u64(), id.as_u64());
        }
        let m = sim.compute_metrics();
        assert!(m.homogeneity.abs() < 1e-12);
        assert_eq!(m.surviving_points, 1.0);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let lossy = LinkProfile {
            latency: 3,
            jitter: 2,
            loss: 0.05,
        };
        let mut a = tiny_sim(7, lossy);
        let mut b = tiny_sim(7, lossy);
        a.run(8);
        b.run(8);
        assert_eq!(a.history(), b.history());
        let mut c = tiny_sim(8, lossy);
        c.run(8);
        assert_ne!(a.history(), c.history());
    }

    #[test]
    fn ideal_link_converges_like_the_engine() {
        let mut sim = tiny_sim(3, LinkProfile::ideal());
        sim.run(15);
        let m = sim.history().last().expect("ran");
        assert!(
            (m.points_per_node - 4.0).abs() < 0.8,
            "expected ≈ 1+K=4 stored points, got {}",
            m.points_per_node
        );
        assert_eq!(m.dropped_messages, 0);
        assert_eq!(m.parked_points, 0, "acks land instantly at zero latency");
    }

    #[test]
    fn latency_defers_deliveries_across_rounds() {
        // Latency of two full rounds: replies straddle round boundaries,
        // so traffic must be in flight at round ends.
        let link = LinkProfile {
            latency: 2 * NetSimConfig::default().ticks_per_round,
            jitter: 4,
            loss: 0.0,
        };
        let mut sim = tiny_sim(4, link);
        sim.run(6);
        assert!(
            sim.history().iter().any(|m| m.in_flight > 0),
            "two-round latency must leave messages in flight at round ends"
        );
        // The protocol still makes progress: points replicate.
        let m = sim.history().last().expect("ran");
        assert!(m.points_per_node > 1.5, "no replication under latency");
    }

    #[test]
    fn catastrophic_failure_recovers_under_loss() {
        let link = LinkProfile {
            latency: 2,
            jitter: 1,
            loss: 0.05,
        };
        let mut sim = tiny_sim(5, link);
        sim.run(12);
        let killed = sim.fail_original_region(&shapes::in_right_half(16.0));
        assert_eq!(killed.len(), 32);
        assert_eq!(sim.alive_count(), 32);
        sim.run(20);
        let m = sim.history().last().expect("ran");
        assert!(
            m.homogeneity < m.reference_homogeneity,
            "failed to reshape under 5% loss: {} vs reference {}",
            m.homogeneity,
            m.reference_homogeneity
        );
        assert!(
            m.surviving_points > 0.8,
            "too many points lost: {}",
            m.surviving_points
        );
        assert!(m.dropped_messages > 0, "5% loss must actually drop");
    }

    #[test]
    fn detection_delay_defers_failure_knowledge() {
        let mut cfg = tiny_config(6);
        // Two full rounds pass before survivors learn of a crash.
        cfg.detection_delay_ticks = cfg.ticks_per_round * 2;
        let mut sim = NetSim::new(Torus2::new(16.0, 4.0), shapes::torus_grid(16, 4, 1.0), cfg);
        sim.run(10);
        sim.crash(NodeId::new(0));
        assert!(
            !sim.detected.contains(&NodeId::new(0)),
            "crash must not be known before its Detect event"
        );
        sim.run(3);
        assert!(
            sim.detected.contains(&NodeId::new(0)),
            "Detect event must have fired"
        );
    }

    #[test]
    fn scheduled_crash_fires_mid_round() {
        let mut sim = tiny_sim(7, LinkProfile::ideal());
        sim.run(2);
        sim.schedule_crash(NodeId::new(3), sim.config().ticks_per_round / 2);
        assert_eq!(sim.alive_count(), 64, "not yet");
        sim.step();
        assert_eq!(sim.alive_count(), 63, "crash event fired within the round");
    }

    #[test]
    fn partition_drops_cross_traffic_and_heals() {
        let mut sim = tiny_sim(8, LinkProfile::ideal());
        sim.run(8);
        // Cut node 0 off from everyone.
        sim.network_mut().set_partition(&[vec![NodeId::new(0)]]);
        let before = sim.compute_metrics().dropped_messages;
        sim.run(4);
        let during = sim.compute_metrics().dropped_messages;
        assert!(
            during > before,
            "an isolated node's traffic must be dropped"
        );
        sim.network_mut().heal();
        let healed = sim.compute_metrics().dropped_messages;
        sim.run(4);
        let m = sim.history().last().expect("ran");
        assert_eq!(
            m.dropped_messages, healed,
            "a healed ideal fabric must not drop"
        );
        assert!(
            m.homogeneity < m.reference_homogeneity,
            "healed and settled"
        );
    }

    #[test]
    fn injected_nodes_recycle_slots_of_the_dead() {
        let mut sim = tiny_sim(9, LinkProfile::ideal());
        sim.run(3);
        let victim = NodeId::new(5);
        let victim_slot = sim.pool().slot_ref(victim).expect("alive");
        assert!(sim.crash(victim));
        let fresh = sim.inject(&[[3.5, 1.5]]);
        assert_eq!(fresh, vec![NodeId::new(64)], "ids stay monotonic");
        let fresh_slot = sim.pool().slot_ref(fresh[0]).expect("alive");
        assert_eq!(fresh_slot.slot, victim_slot.slot, "slot recycled");
        assert!(fresh_slot.gen > victim_slot.gen, "generation bumped");
        assert!(sim.poly_state(victim).is_none(), "dead id stays dead");
        assert_eq!(sim.alive_count(), 64);
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_shape_rejected() {
        let _ = NetSim::new(Torus2::new(4.0, 4.0), Vec::new(), NetSimConfig::default());
    }

    #[test]
    fn traffic_leaves_protocol_history_untouched() {
        // The byte-identity contract behind the golden fingerprints: a
        // run serving query traffic every round must replay the exact
        // protocol history of a quiet run — same seeds, same lossy link.
        let lossy = LinkProfile {
            latency: 3,
            jitter: 2,
            loss: 0.05,
        };
        let mut quiet = tiny_sim(7, lossy);
        let mut loaded = tiny_sim(7, lossy);
        let keys: Vec<[f64; 2]> = (0..8).map(|i| [i as f64 * 2.0 + 0.5, 1.5]).collect();
        let mut samples = Vec::new();
        for _ in 0..8 {
            quiet.step();
            loaded.offer_traffic(&keys, 32);
            loaded.step();
            loaded.drain_traffic(&mut samples);
        }
        assert_eq!(quiet.history(), loaded.history());
        assert_eq!(quiet.compute_metrics(), loaded.compute_metrics());
    }

    #[test]
    fn queries_resolve_over_a_converged_fabric() {
        let mut sim = tiny_sim(11, LinkProfile::ideal());
        sim.run(12);
        let keys: Vec<[f64; 2]> = (0..16).map(|i| [i as f64 + 0.5, 1.5]).collect();
        let mut samples = Vec::new();
        let (mut offered, mut delivered) = (0, 0);
        for _ in 0..12 {
            sim.offer_traffic(&keys, 32);
            sim.step();
            let (o, d, _) = sim.drain_traffic(&mut samples);
            offered += o;
            delivered += d;
        }
        assert_eq!(offered, 16 * 12, "every query reaches a live gateway");
        assert!(
            delivered as f64 >= 0.99 * offered as f64,
            "converged fabric must serve queries: {delivered}/{offered}"
        );
        assert_eq!(samples.len() as u64, delivered);
        assert!(
            samples.iter().all(|&(hops, _)| hops <= 32),
            "hop counts stay within the ttl"
        );
    }

    #[test]
    fn partitioned_traffic_expires_as_dropped() {
        let mut sim = tiny_sim(12, LinkProfile::ideal());
        sim.run(10);
        // Cut both planes down the middle, then offer traffic: queries
        // whose greedy path crosses the cut vanish on the traffic fabric
        // and expire at their origins as drops.
        let (left, right): (Vec<NodeId>, Vec<NodeId>) =
            sim.alive_ids().iter().partition(|id| id.index() % 16 < 8);
        sim.set_partition(&[left, right]);
        let keys: Vec<[f64; 2]> = (0..16).map(|i| [i as f64 + 0.5, 1.5]).collect();
        let mut samples = Vec::new();
        let (mut offered, mut delivered, mut dropped) = (0, 0, 0);
        // Enough rounds past the query timeout for expiries to land.
        for _ in 0..16 {
            sim.offer_traffic(&keys, 32);
            sim.step();
            let (o, d, dr) = sim.drain_traffic(&mut samples);
            offered += o;
            delivered += d;
            dropped += dr;
        }
        assert!(dropped > 0, "cross-cut queries must expire as dropped");
        assert!(
            delivered + dropped <= offered,
            "conservation: {delivered} + {dropped} vs {offered}"
        );
    }
}
