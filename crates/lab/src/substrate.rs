//! The one seam every execution substrate stands behind.
//!
//! [`Substrate`] collapses the two parallel seams the repository grew —
//! the deterministic simulators' `ScenarioSubstrate` and the live
//! clusters' `ClusterHarness` — into a single trait: kill, inject,
//! partition, step, observe. The cycle engine and the discrete-event
//! kernel implement it directly; the wall-clock deployments plug in
//! through [`LiveSubstrate`], which owns the round bookkeeping
//! (tick targets, victim entropy) that asynchronous clusters need and
//! deterministic simulators don't.
//!
//! [`build_substrate`] is the `scenario × substrate` switchboard: given
//! a [`SubstrateKind`] and one [`LabConfig`], it returns any of the four
//! backends behind `Box<dyn Substrate>`, so every experiment binary and
//! every cross-substrate test is one `--substrate` flag away from
//! running on a different execution model.

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_membership::NodeId;
use polystyrene_netsim::{NetSim, NetSimConfig};
use polystyrene_protocol::codec::PointCodec;
use polystyrene_protocol::observe::{RoundObservation, TrafficStats};
use polystyrene_protocol::scenario::select_victims;
use polystyrene_protocol::LinkProfile;
use polystyrene_runtime::{Cluster, RuntimeConfig};
use polystyrene_sim::engine::{Engine, EngineConfig};
use polystyrene_sim::metrics::RoundMetrics;
use polystyrene_space::torus::Torus2;
use polystyrene_space::MetricSpace;
use polystyrene_topology::TManConfig;
use polystyrene_transport::{TcpCluster, TcpConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// What a scenario needs from an execution substrate — implemented by
/// all four backends, so failure injection, observation and round
/// advancement have exactly one meaning across the whole matrix.
pub trait Substrate<P> {
    /// Crashes every alive founding node whose original data point
    /// satisfies `predicate`; returns the crashed ids.
    fn kill_region(&mut self, predicate: &(dyn Fn(&P) -> bool + Send + Sync)) -> Vec<NodeId>;
    /// Crashes a uniformly random `fraction` of the alive population;
    /// returns the crashed ids.
    fn kill_fraction(&mut self, fraction: f64) -> Vec<NodeId>;
    /// Crashes these specific nodes (dead ones are skipped); returns the
    /// ids actually crashed.
    fn kill_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId>;
    /// Injects fresh, empty nodes at `positions`; returns the new ids.
    fn inject(&mut self, positions: &[P]) -> Vec<NodeId>;
    /// Installs a network partition
    /// (see [`polystyrene_protocol::ScenarioEvent::Partition`]).
    /// Default: no-op, for substrates without a network fabric to cut —
    /// the cycle engine's atomic exchanges and the live clusters'
    /// reliable channels cannot model one.
    fn partition(&mut self, _groups: &[Vec<NodeId>]) {}
    /// Heals a previously installed partition. Default: no-op.
    fn heal(&mut self) {}
    /// Offers application queries — one per key, each entering at a
    /// uniformly random alive gateway and resolving hop-by-hop through
    /// node views. Default: no-op, so scenario-only substrates (and the
    /// driver tests' recorders) need not carry a traffic plane.
    fn offer_traffic(&mut self, _keys: &[P], _ttl: u32) {}
    /// Collects and resets the traffic accounting accumulated since the
    /// previous drain — the per-round [`TrafficStats`] the experiment
    /// driver stores into its observations. Default: zero stats.
    fn drain_traffic(&mut self) -> TrafficStats {
        TrafficStats::default()
    }
    /// Runs one protocol round (one engine cycle, one event-kernel
    /// round, or one tick-equivalent of wall-clock progress on a live
    /// cluster) and returns the observation measured at its end.
    fn step(&mut self) -> RoundObservation;
    /// Measures the current state without advancing. On the
    /// deterministic substrates this re-reads the last round's metrics
    /// (or measures round zero) and consumes no entropy; on the live
    /// clusters it snapshots the observation board.
    fn observe(&self) -> RoundObservation;
}

fn engine_observation(m: &RoundMetrics) -> RoundObservation {
    RoundObservation {
        round: m.round,
        alive_nodes: m.alive_nodes,
        homogeneity: m.homogeneity,
        reference_homogeneity: m.reference_homogeneity,
        surviving_points: m.surviving_points,
        points_per_node: m.points_per_node,
        // Cycle exchanges are atomic: a handout is never parked.
        parked_points: 0,
        cost_units: m.cost_per_node,
        ticks: u64::from(m.round),
        // Traffic is accounted through the drain seam, not the
        // substrate-internal metric history.
        traffic: TrafficStats::default(),
    }
}

impl<S: MetricSpace> Substrate<S::Point> for Engine<S> {
    fn kill_region(
        &mut self,
        predicate: &(dyn Fn(&S::Point) -> bool + Send + Sync),
    ) -> Vec<NodeId> {
        self.fail_original_region(|p: &S::Point| predicate(p))
    }

    fn kill_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        self.fail_random_fraction(fraction)
    }

    fn kill_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId> {
        let mut killed = Vec::new();
        for &id in ids {
            let was_alive = self.poly_state(id).is_some();
            self.crash(id);
            if was_alive {
                killed.push(id);
            }
        }
        killed
    }

    fn inject(&mut self, positions: &[S::Point]) -> Vec<NodeId> {
        Engine::inject(self, positions.to_vec())
    }

    fn offer_traffic(&mut self, keys: &[S::Point], ttl: u32) {
        Engine::offer_traffic(self, keys, ttl);
    }

    fn drain_traffic(&mut self) -> TrafficStats {
        let mut samples = Vec::new();
        let (offered, delivered, dropped) = Engine::drain_traffic(self, &mut samples);
        TrafficStats::from_samples(offered, delivered, dropped, &mut samples)
    }

    fn step(&mut self) -> RoundObservation {
        engine_observation(&Engine::step(self))
    }

    fn observe(&self) -> RoundObservation {
        match self.history().last() {
            Some(m) => engine_observation(m),
            None => engine_observation(&self.compute_metrics()),
        }
    }
}

impl<S: MetricSpace> Substrate<S::Point> for NetSim<S> {
    fn kill_region(
        &mut self,
        predicate: &(dyn Fn(&S::Point) -> bool + Send + Sync),
    ) -> Vec<NodeId> {
        self.fail_original_region(predicate)
    }

    fn kill_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        self.fail_random_fraction(fraction)
    }

    fn kill_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId> {
        ids.iter().copied().filter(|&id| self.crash(id)).collect()
    }

    fn inject(&mut self, positions: &[S::Point]) -> Vec<NodeId> {
        NetSim::inject(self, positions)
    }

    fn partition(&mut self, groups: &[Vec<NodeId>]) {
        // The kernel-level cut severs both fabrics — protocol gossip and
        // query traffic — so a partition is a partition for everyone.
        NetSim::set_partition(self, groups);
    }

    fn heal(&mut self) {
        NetSim::heal(self);
    }

    fn offer_traffic(&mut self, keys: &[S::Point], ttl: u32) {
        NetSim::offer_traffic(self, keys, ttl);
    }

    fn drain_traffic(&mut self) -> TrafficStats {
        let mut samples = Vec::new();
        let (offered, delivered, dropped) = NetSim::drain_traffic(self, &mut samples);
        TrafficStats::from_samples(offered, delivered, dropped, &mut samples)
    }

    fn step(&mut self) -> RoundObservation {
        net_observation(&NetSim::step(self))
    }

    fn observe(&self) -> RoundObservation {
        match self.history().last() {
            Some(m) => net_observation(m),
            None => net_observation(&self.compute_metrics()),
        }
    }
}

fn net_observation(m: &polystyrene_netsim::NetRoundMetrics) -> RoundObservation {
    RoundObservation {
        round: m.round,
        alive_nodes: m.alive_nodes,
        homogeneity: m.homogeneity,
        reference_homogeneity: m.reference_homogeneity,
        surviving_points: m.surviving_points,
        points_per_node: m.points_per_node,
        parked_points: m.parked_points,
        cost_units: m.cost_per_node,
        ticks: u64::from(m.round),
        traffic: TrafficStats::default(),
    }
}

/// What the [`LiveSubstrate`] adapter needs from a wall-clock cluster —
/// the thin forwarding layer over the identical inherent APIs of the
/// in-process [`Cluster`] and the TCP deployment, private to this crate
/// so the public seam stays exactly one trait.
trait LiveCluster<P> {
    fn alive_ids(&self) -> Vec<NodeId>;
    fn kill(&self, id: NodeId) -> bool;
    fn kill_region(&self, predicate: &(dyn Fn(&P) -> bool + Send + Sync)) -> Vec<NodeId>;
    fn inject(&self, position: P) -> NodeId;
    fn await_ticks(&self, ticks: u64, max_wait: Duration);
    fn observe(&self) -> RoundObservation;
    fn offer_traffic(&self, keys: &[P], ttl: u32);
}

impl<S: MetricSpace> LiveCluster<S::Point> for Cluster<S> {
    fn alive_ids(&self) -> Vec<NodeId> {
        Cluster::alive_ids(self)
    }
    fn kill(&self, id: NodeId) -> bool {
        Cluster::kill(self, id)
    }
    fn kill_region(&self, predicate: &(dyn Fn(&S::Point) -> bool + Send + Sync)) -> Vec<NodeId> {
        Cluster::kill_region(self, |p: &S::Point| predicate(p))
    }
    fn inject(&self, position: S::Point) -> NodeId {
        Cluster::inject(self, position)
    }
    fn await_ticks(&self, ticks: u64, max_wait: Duration) {
        Cluster::await_ticks(self, ticks, max_wait);
    }
    fn observe(&self) -> RoundObservation {
        Cluster::observe(self)
    }
    fn offer_traffic(&self, keys: &[S::Point], ttl: u32) {
        Cluster::offer_traffic(self, keys, ttl);
    }
}

impl<S: MetricSpace> LiveCluster<S::Point> for TcpCluster<S>
where
    S::Point: PointCodec,
{
    fn alive_ids(&self) -> Vec<NodeId> {
        TcpCluster::alive_ids(self)
    }
    fn kill(&self, id: NodeId) -> bool {
        TcpCluster::kill(self, id)
    }
    fn kill_region(&self, predicate: &(dyn Fn(&S::Point) -> bool + Send + Sync)) -> Vec<NodeId> {
        TcpCluster::kill_region(self, |p: &S::Point| predicate(p))
    }
    fn inject(&self, position: S::Point) -> NodeId {
        TcpCluster::inject(self, position)
    }
    fn await_ticks(&self, ticks: u64, max_wait: Duration) {
        TcpCluster::await_ticks(self, ticks, max_wait);
    }
    fn observe(&self) -> RoundObservation {
        TcpCluster::observe(self)
    }
    fn offer_traffic(&self, keys: &[S::Point], ttl: u32) {
        TcpCluster::offer_traffic(self, keys, ttl);
    }
}

/// A wall-clock deployment viewed as a [`Substrate`]: one scenario round
/// is "every alive node has completed one more local tick", and victim
/// selection for random-failure events draws from a seeded RNG owned
/// here (node threads have their own entropy; this one only picks who
/// dies).
///
/// Wall-clock asynchrony means live runs are *not* bit-reproducible
/// (unlike the deterministic substrates): observations are one snapshot
/// per round, for trend assertions rather than exact replay.
pub struct LiveSubstrate<C> {
    cluster: C,
    rng: StdRng,
    target_ticks: u64,
    round_timeout: Duration,
    /// Cumulative per-node cost at the end of the previous round — live
    /// clusters report running totals (no round boundary to reset at),
    /// and differencing them here recovers the per-round `cost_units`
    /// the deterministic substrates report directly.
    cost_baseline: f64,
    /// Cumulative traffic counters at the previous drain —
    /// `(offered, delivered, dropped, shed)` — differenced for the same
    /// reason as `cost_baseline`.
    traffic_baseline: (u64, u64, u64, u64),
}

impl<C> LiveSubstrate<C> {
    /// Wraps a running cluster. `seed` drives victim selection for
    /// random-failure and churn events; `round_timeout` bounds how long
    /// one round may take (a safety valve: freshly injected nodes start
    /// at tick zero and need wall-clock time to catch up).
    pub fn new(cluster: C, seed: u64, round_timeout: Duration) -> Self {
        Self {
            cluster,
            rng: StdRng::seed_from_u64(seed),
            target_ticks: 0,
            round_timeout,
            cost_baseline: 0.0,
            traffic_baseline: (0, 0, 0, 0),
        }
    }

    /// The wrapped cluster (e.g. for transport-specific counters).
    pub fn cluster(&self) -> &C {
        &self.cluster
    }

    /// Unwraps the cluster.
    pub fn into_inner(self) -> C {
        self.cluster
    }
}

impl<P: Clone, C: LiveCluster<P>> Substrate<P> for LiveSubstrate<C> {
    fn kill_region(&mut self, predicate: &(dyn Fn(&P) -> bool + Send + Sync)) -> Vec<NodeId> {
        self.cluster.kill_region(predicate)
    }

    fn kill_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        // Sorted first: alive_ids comes out of a HashMap, and the shared
        // selection must shuffle a well-defined base order.
        let mut alive = self.cluster.alive_ids();
        alive.sort();
        let mut victims = select_victims(alive, fraction, &mut self.rng);
        victims.retain(|&id| self.cluster.kill(id));
        victims
    }

    fn kill_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId> {
        ids.iter()
            .copied()
            .filter(|&id| self.cluster.kill(id))
            .collect()
    }

    fn inject(&mut self, positions: &[P]) -> Vec<NodeId> {
        positions
            .iter()
            .map(|p| self.cluster.inject(p.clone()))
            .collect()
    }

    fn offer_traffic(&mut self, keys: &[P], ttl: u32) {
        self.cluster.offer_traffic(keys, ttl);
    }

    fn drain_traffic(&mut self) -> TrafficStats {
        // Node threads publish running totals plus a trailing sample
        // window; differencing the totals recovers per-drain counters,
        // while the window's hop/latency estimates pass through.
        let cumulative = self.cluster.observe().traffic;
        let stats = TrafficStats {
            offered: cumulative.offered.saturating_sub(self.traffic_baseline.0),
            delivered: cumulative.delivered.saturating_sub(self.traffic_baseline.1),
            dropped: cumulative.dropped.saturating_sub(self.traffic_baseline.2),
            shed: cumulative.shed.saturating_sub(self.traffic_baseline.3),
            ..cumulative
        };
        self.traffic_baseline = (
            cumulative.offered,
            cumulative.delivered,
            cumulative.dropped,
            cumulative.shed,
        );
        stats
    }

    fn step(&mut self) -> RoundObservation {
        self.target_ticks += 1;
        self.cluster
            .await_ticks(self.target_ticks, self.round_timeout);
        let mut obs = self.cluster.observe();
        obs.round = self.target_ticks as u32;
        let cumulative = obs.cost_units;
        // Clamp: a crash removes its victim's running total from the sum,
        // which can pull the cumulative average backwards.
        obs.cost_units = (cumulative - self.cost_baseline).max(0.0);
        self.cost_baseline = cumulative;
        // Traffic flows through the drain seam; the raw cumulative
        // counters would not be comparable with the per-round stats the
        // deterministic substrates report.
        obs.traffic = TrafficStats::default();
        obs
    }

    fn observe(&self) -> RoundObservation {
        let mut obs = self.cluster.observe();
        obs.round = self.target_ticks as u32;
        obs.cost_units = (obs.cost_units - self.cost_baseline).max(0.0);
        obs.traffic = TrafficStats::default();
        obs
    }
}

/// The four execution substrates, as a value — what `--substrate`
/// parses into and [`build_substrate`] dispatches on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SubstrateKind {
    /// The cycle engine: atomic exchanges, bit-reproducible.
    Engine,
    /// The discrete-event network kernel: latency, loss, partitions —
    /// deterministic *and* asynchronous.
    Netsim,
    /// The threaded in-process cluster: real asynchrony over channels.
    Cluster,
    /// The TCP deployment: framed codec bytes over loopback sockets.
    Tcp,
}

impl SubstrateKind {
    /// Every substrate, in canonical matrix order.
    pub const ALL: [SubstrateKind; 4] = [
        SubstrateKind::Engine,
        SubstrateKind::Netsim,
        SubstrateKind::Cluster,
        SubstrateKind::Tcp,
    ];

    /// The flag-value name of this substrate.
    pub fn name(self) -> &'static str {
        match self {
            SubstrateKind::Engine => "engine",
            SubstrateKind::Netsim => "netsim",
            SubstrateKind::Cluster => "cluster",
            SubstrateKind::Tcp => "tcp",
        }
    }

    /// Whether this substrate honors a network model (loss, latency,
    /// partitions).
    pub fn has_network_model(self) -> bool {
        !matches!(self, SubstrateKind::Engine)
    }
}

impl std::fmt::Display for SubstrateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SubstrateKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "engine" => Ok(SubstrateKind::Engine),
            "netsim" => Ok(SubstrateKind::Netsim),
            "cluster" => Ok(SubstrateKind::Cluster),
            "tcp" => Ok(SubstrateKind::Tcp),
            other => Err(format!(
                "unknown substrate {other:?}: expected engine, netsim, cluster or tcp"
            )),
        }
    }
}

/// The substrate-agnostic slice of an experiment's configuration: the
/// protocol parameters every backend applies, plus the knobs only some
/// honor (documented per field). One value drives all four backends, so
/// a `--substrate` sweep compares like with like.
#[derive(Clone, Copy, Debug)]
pub struct LabConfig {
    /// Polystyrene parameters (K, split strategy, projection, …).
    pub poly: PolystyreneConfig,
    /// T-Man parameters.
    pub tman: TManConfig,
    /// Surface area of the data space, for the reference homogeneity.
    pub area: f64,
    /// Master seed: engine/netsim runs are bit-reproducible under it;
    /// on the live substrates it seeds node entropy and victim
    /// selection, but wall-clock scheduling still varies.
    pub seed: u64,
    /// Link faults. Netsim honors all of it; the live clusters honor
    /// the loss probability at the send boundary; the cycle engine has
    /// no fabric and ignores it.
    pub link: LinkProfile,
    /// Protocol tick of the live substrates (ignored by the
    /// deterministic ones).
    pub tick: Duration,
    /// Per-round safety timeout of the live substrates.
    pub round_timeout: Duration,
    /// Run plain T-Man without the Polystyrene layer — the paper's
    /// baseline. Only the cycle engine can switch the layer off.
    pub tman_only: bool,
}

impl Default for LabConfig {
    fn default() -> Self {
        Self {
            poly: PolystyreneConfig::default(),
            tman: TManConfig::default(),
            area: 3200.0,
            seed: 1,
            link: LinkProfile::ideal(),
            tick: Duration::from_millis(10),
            round_timeout: Duration::from_secs(10),
            tman_only: false,
        }
    }
}

impl LabConfig {
    /// The live-cluster slice of this configuration — public so
    /// harnesses that must construct a cluster concretely (e.g. to read
    /// transport-specific counters) still share the one mapping.
    pub fn runtime(&self) -> RuntimeConfig {
        let mut cfg = RuntimeConfig::default();
        cfg.tick = self.tick;
        cfg.tman = self.tman;
        cfg.poly = self.poly;
        cfg.link = self.link;
        cfg.seed = self.seed;
        cfg.area = self.area;
        cfg
    }
}

/// Builds the requested execution substrate over a torus-grid shape —
/// the switchboard behind every `--substrate` flag. The scenario then
/// runs through [`crate::run_experiment`] identically on whatever this
/// returns.
///
/// # Panics
///
/// Panics if `cfg.tman_only` is set for anything but the cycle engine
/// (only the engine can switch the Polystyrene layer off), or if the
/// underlying backend rejects the configuration.
pub fn build_substrate(
    kind: SubstrateKind,
    space: Torus2,
    shape: Vec<[f64; 2]>,
    cfg: &LabConfig,
) -> Box<dyn Substrate<[f64; 2]>> {
    assert!(
        !cfg.tman_only || kind == SubstrateKind::Engine,
        "the T-Man-only baseline needs the cycle engine (--substrate engine)"
    );
    match kind {
        SubstrateKind::Engine => {
            let mut e = EngineConfig::default();
            e.tman = cfg.tman;
            e.poly = cfg.poly;
            e.area = cfg.area;
            e.seed = cfg.seed;
            let mut engine = Engine::new(space, shape, e);
            if cfg.tman_only {
                engine.disable_polystyrene();
            }
            Box::new(engine)
        }
        SubstrateKind::Netsim => {
            let mut n = NetSimConfig::default();
            n.tman = cfg.tman;
            n.poly = cfg.poly;
            n.area = cfg.area;
            n.seed = cfg.seed;
            n.link = cfg.link;
            Box::new(NetSim::new(space, shape, n))
        }
        SubstrateKind::Cluster => Box::new(LiveSubstrate::new(
            Cluster::spawn(space, shape, cfg.runtime()),
            cfg.seed,
            cfg.round_timeout,
        )),
        SubstrateKind::Tcp => {
            let mut t = TcpConfig::default();
            t.runtime = cfg.runtime();
            Box::new(LiveSubstrate::new(
                TcpCluster::spawn(space, shape, t),
                cfg.seed,
                cfg.round_timeout,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substrate_kind_round_trips_through_names() {
        for kind in SubstrateKind::ALL {
            assert_eq!(kind.name().parse::<SubstrateKind>().unwrap(), kind);
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert!("enginee".parse::<SubstrateKind>().is_err());
        assert!(!SubstrateKind::Engine.has_network_model());
        assert!(SubstrateKind::Tcp.has_network_model());
    }

    #[test]
    #[should_panic(expected = "T-Man-only baseline needs the cycle engine")]
    fn tman_only_rejected_off_engine() {
        let mut cfg = LabConfig::default();
        cfg.tman_only = true;
        let _ = build_substrate(
            SubstrateKind::Netsim,
            Torus2::new(4.0, 4.0),
            polystyrene_space::shapes::torus_grid(4, 4, 1.0),
            &cfg,
        );
    }
}
