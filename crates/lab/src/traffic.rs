//! The query workload of the traffic plane.
//!
//! [`TrafficLoad`] turns three user-facing knobs — requests per round, a
//! key universe, a read fraction — into the per-round key batches the
//! [`crate::Substrate::offer_traffic`] seam consumes, on every backend
//! identically. Its entropy is its own: the generator draws from a
//! dedicated stream (seeded off the experiment seed with the shared
//! [`TRAFFIC_SEED_TAG`]), so the *same* request sequence hits the cycle
//! engine, the event kernel and the live clusters, and switching the
//! load on cannot perturb a substrate's protocol entropy.

use polystyrene_protocol::TRAFFIC_SEED_TAG;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded application workload: `rate` key lookups per round, keys
/// drawn uniformly from a fixed universe, split into reads and writes
/// by `read_fraction` (both resolve through the same greedy query
/// plane; the split is recorded for workload accounting).
#[derive(Clone, Debug)]
pub struct TrafficLoad<P> {
    keys: Vec<P>,
    rate: usize,
    read_fraction: f64,
    ttl: u32,
    rng: StdRng,
    batch: Vec<P>,
    reads: u64,
    writes: u64,
}

impl<P: Clone> TrafficLoad<P> {
    /// Builds a workload over `keys`, issuing `rate` requests per round
    /// with the given read/write split and per-query hop budget.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty while `rate > 0`, if `read_fraction`
    /// is outside `[0, 1]`, or if `ttl` is zero.
    pub fn new(keys: Vec<P>, rate: usize, read_fraction: f64, ttl: u32, seed: u64) -> Self {
        assert!(
            rate == 0 || !keys.is_empty(),
            "a non-zero request rate needs a non-empty key universe"
        );
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction must be within [0, 1]"
        );
        assert!(ttl > 0, "query ttl must be at least one hop");
        Self {
            keys,
            rate,
            read_fraction,
            ttl,
            rng: StdRng::seed_from_u64(seed ^ TRAFFIC_SEED_TAG),
            batch: Vec::with_capacity(rate),
            reads: 0,
            writes: 0,
        }
    }

    /// Draws the next round's key batch. The returned slice is valid
    /// until the next call; the backing buffer is reused.
    pub fn next_round(&mut self) -> &[P] {
        self.batch.clear();
        for _ in 0..self.rate {
            let key = self.keys[self.rng.random_range(0..self.keys.len())].clone();
            if self.rng.random_bool(self.read_fraction) {
                self.reads += 1;
            } else {
                self.writes += 1;
            }
            self.batch.push(key);
        }
        &self.batch
    }

    /// Per-query hop budget.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// Requests issued per round.
    pub fn rate(&self) -> usize {
        self.rate
    }

    /// Reads issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes issued so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_seed_reproducible_and_sized() {
        let keys: Vec<[f64; 2]> = (0..8).map(|i| [f64::from(i), 0.0]).collect();
        let mut a = TrafficLoad::new(keys.clone(), 5, 0.8, 6, 42);
        let mut b = TrafficLoad::new(keys, 5, 0.8, 6, 42);
        for _ in 0..4 {
            assert_eq!(a.next_round(), b.next_round());
            assert_eq!(a.next_round().len(), 5);
            b.next_round();
        }
        assert_eq!(a.reads() + a.writes(), 5 * 8);
    }

    #[test]
    fn read_fraction_extremes_split_cleanly() {
        let keys = vec![[0.0, 0.0]];
        let mut all_reads = TrafficLoad::new(keys.clone(), 10, 1.0, 4, 1);
        all_reads.next_round();
        assert_eq!(all_reads.reads(), 10);
        assert_eq!(all_reads.writes(), 0);
        let mut all_writes = TrafficLoad::new(keys, 10, 0.0, 4, 1);
        all_writes.next_round();
        assert_eq!(all_writes.writes(), 10);
    }

    #[test]
    fn zero_rate_allows_empty_universe() {
        let mut idle: TrafficLoad<[f64; 2]> = TrafficLoad::new(Vec::new(), 0, 0.5, 4, 1);
        assert!(idle.next_round().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty key universe")]
    fn rate_without_keys_rejected() {
        let _ = TrafficLoad::<[f64; 2]>::new(Vec::new(), 1, 0.5, 4, 1);
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn out_of_range_read_fraction_rejected() {
        let _ = TrafficLoad::new(vec![[0.0, 0.0]], 1, 1.5, 4, 1);
    }

    #[test]
    #[should_panic(expected = "query ttl")]
    fn zero_ttl_rejected() {
        let _ = TrafficLoad::new(vec![[0.0, 0.0]], 1, 0.5, 0, 1);
    }
}
