//! The query workload of the traffic plane.
//!
//! [`TrafficLoad`] turns four user-facing knobs — requests per round, a
//! key universe, a key distribution, a read fraction — into the
//! per-round key batches the [`crate::Substrate::offer_traffic`] seam
//! consumes, on every backend identically. Its entropy is its own: the
//! generator draws from a dedicated stream (seeded off the experiment
//! seed with the shared [`TRAFFIC_SEED_TAG`]), so the *same* request
//! sequence hits the cycle engine, the event kernel and the live
//! clusters, and switching the load on cannot perturb a substrate's
//! protocol entropy.

use polystyrene_protocol::TRAFFIC_SEED_TAG;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::str::FromStr;

/// How a workload picks keys from its universe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian popularity with exponent `s > 0`: the `i`-th key (by its
    /// position in the universe) is drawn with weight `1 / i^s` — the
    /// classic skewed-popularity model for cache and KV workloads. Drawn
    /// via a precomputed CDF table, so a draw costs one uniform sample
    /// and one binary search, no allocation.
    Zipf(f64),
}

impl FromStr for TrafficDist {
    type Err = String;

    /// Parses `uniform` or `zipf:<s>` (e.g. `zipf:1.1`); the exponent
    /// must be a positive finite number.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "uniform" {
            return Ok(TrafficDist::Uniform);
        }
        if let Some(exp) = s.strip_prefix("zipf:") {
            let exponent: f64 = exp
                .parse()
                .map_err(|_| format!("zipf exponent {exp:?} is not a number"))?;
            if !(exponent.is_finite() && exponent > 0.0) {
                return Err(format!(
                    "zipf exponent must be a positive finite number, got {exponent}"
                ));
            }
            return Ok(TrafficDist::Zipf(exponent));
        }
        Err(format!(
            "unknown traffic distribution {s:?} (expected \"uniform\" or \"zipf:<s>\")"
        ))
    }
}

impl std::fmt::Display for TrafficDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficDist::Uniform => write!(f, "uniform"),
            TrafficDist::Zipf(s) => write!(f, "zipf:{s}"),
        }
    }
}

/// A seeded application workload: `rate` key lookups per round, keys
/// drawn from a fixed universe under a [`TrafficDist`], split into
/// reads and writes by `read_fraction` (both resolve through the same
/// greedy query plane; the split is recorded for workload accounting).
#[derive(Clone, Debug)]
pub struct TrafficLoad<P> {
    keys: Vec<P>,
    rate: usize,
    read_fraction: f64,
    ttl: u32,
    rng: StdRng,
    batch: Vec<P>,
    /// Cumulative key-popularity table for the zipfian draw; empty for
    /// the uniform distribution (which keeps the original
    /// one-`random_range`-per-draw discipline, so existing seeds
    /// reproduce the exact same request sequence).
    cdf: Vec<f64>,
    reads: u64,
    writes: u64,
}

impl<P: Clone> TrafficLoad<P> {
    /// Builds a uniform workload over `keys`, issuing `rate` requests
    /// per round with the given read/write split and per-query hop
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty while `rate > 0`, if `read_fraction`
    /// is outside `[0, 1]`, or if `ttl` is zero.
    pub fn new(keys: Vec<P>, rate: usize, read_fraction: f64, ttl: u32, seed: u64) -> Self {
        Self::with_dist(keys, rate, read_fraction, ttl, seed, TrafficDist::Uniform)
    }

    /// Builds a workload with an explicit key distribution (see
    /// [`TrafficLoad::new`] for the other knobs and panics).
    ///
    /// # Panics
    ///
    /// Additionally panics on a non-positive or non-finite zipf
    /// exponent.
    pub fn with_dist(
        keys: Vec<P>,
        rate: usize,
        read_fraction: f64,
        ttl: u32,
        seed: u64,
        dist: TrafficDist,
    ) -> Self {
        assert!(
            rate == 0 || !keys.is_empty(),
            "a non-zero request rate needs a non-empty key universe"
        );
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction must be within [0, 1]"
        );
        assert!(ttl > 0, "query ttl must be at least one hop");
        let cdf = match dist {
            TrafficDist::Uniform => Vec::new(),
            TrafficDist::Zipf(s) => {
                assert!(
                    s.is_finite() && s > 0.0,
                    "zipf exponent must be a positive finite number"
                );
                let mut cdf: Vec<f64> = Vec::with_capacity(keys.len());
                let mut total = 0.0;
                for rank in 1..=keys.len() {
                    total += 1.0 / (rank as f64).powf(s);
                    cdf.push(total);
                }
                for c in &mut cdf {
                    *c /= total;
                }
                cdf
            }
        };
        Self {
            keys,
            rate,
            read_fraction,
            ttl,
            rng: StdRng::seed_from_u64(seed ^ TRAFFIC_SEED_TAG),
            batch: Vec::with_capacity(rate),
            cdf,
            reads: 0,
            writes: 0,
        }
    }

    /// Draws the next round's key batch. The returned slice is valid
    /// until the next call; the backing buffer is reused.
    pub fn next_round(&mut self) -> &[P] {
        self.batch.clear();
        for _ in 0..self.rate {
            let idx = if self.cdf.is_empty() {
                self.rng.random_range(0..self.keys.len())
            } else {
                let u: f64 = self.rng.random_range(0.0..1.0);
                self.cdf
                    .partition_point(|&c| c <= u)
                    .min(self.keys.len() - 1)
            };
            let key = self.keys[idx].clone();
            if self.rng.random_bool(self.read_fraction) {
                self.reads += 1;
            } else {
                self.writes += 1;
            }
            self.batch.push(key);
        }
        &self.batch
    }

    /// Per-query hop budget.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// Requests issued per round.
    pub fn rate(&self) -> usize {
        self.rate
    }

    /// Reads issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes issued so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_seed_reproducible_and_sized() {
        let keys: Vec<[f64; 2]> = (0..8).map(|i| [f64::from(i), 0.0]).collect();
        let mut a = TrafficLoad::new(keys.clone(), 5, 0.8, 6, 42);
        let mut b = TrafficLoad::new(keys, 5, 0.8, 6, 42);
        for _ in 0..4 {
            assert_eq!(a.next_round(), b.next_round());
            assert_eq!(a.next_round().len(), 5);
            b.next_round();
        }
        assert_eq!(a.reads() + a.writes(), 5 * 8);
    }

    #[test]
    fn read_fraction_extremes_split_cleanly() {
        let keys = vec![[0.0, 0.0]];
        let mut all_reads = TrafficLoad::new(keys.clone(), 10, 1.0, 4, 1);
        all_reads.next_round();
        assert_eq!(all_reads.reads(), 10);
        assert_eq!(all_reads.writes(), 0);
        let mut all_writes = TrafficLoad::new(keys, 10, 0.0, 4, 1);
        all_writes.next_round();
        assert_eq!(all_writes.writes(), 10);
    }

    #[test]
    fn zero_rate_allows_empty_universe() {
        let mut idle: TrafficLoad<[f64; 2]> = TrafficLoad::new(Vec::new(), 0, 0.5, 4, 1);
        assert!(idle.next_round().is_empty());
    }

    #[test]
    fn zipf_skews_toward_head_keys_and_reproduces() {
        let keys: Vec<[f64; 2]> = (0..64).map(|i| [f64::from(i), 0.0]).collect();
        let dist = TrafficDist::Zipf(1.2);
        let mut a = TrafficLoad::with_dist(keys.clone(), 200, 1.0, 6, 7, dist);
        let mut b = TrafficLoad::with_dist(keys.clone(), 200, 1.0, 6, 7, dist);
        let batch_a: Vec<_> = a.next_round().to_vec();
        assert_eq!(batch_a, b.next_round());
        // The head key must dominate any mid-universe key by a wide
        // margin — the signature of the zipf CDF actually being used.
        let head = batch_a.iter().filter(|k| k[0] == 0.0).count();
        let mid = batch_a.iter().filter(|k| k[0] == 32.0).count();
        assert!(
            head >= 20 && head > 4 * mid,
            "zipf head {head} vs mid {mid}"
        );
        // Every drawn key is from the universe (the CDF clamp holds).
        assert!(batch_a.iter().all(|k| k[0] >= 0.0 && k[0] < 64.0));
    }

    #[test]
    fn dist_parsing_accepts_uniform_and_zipf() {
        assert_eq!("uniform".parse::<TrafficDist>(), Ok(TrafficDist::Uniform));
        assert_eq!(
            "zipf:1.5".parse::<TrafficDist>(),
            Ok(TrafficDist::Zipf(1.5))
        );
        assert_eq!(TrafficDist::Zipf(1.5).to_string(), "zipf:1.5");
        assert!("zipf:0".parse::<TrafficDist>().is_err());
        assert!("zipf:-1".parse::<TrafficDist>().is_err());
        assert!("zipf:nan".parse::<TrafficDist>().is_err());
        assert!("zipf".parse::<TrafficDist>().is_err());
        assert!("pareto".parse::<TrafficDist>().is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty key universe")]
    fn rate_without_keys_rejected() {
        let _ = TrafficLoad::<[f64; 2]>::new(Vec::new(), 1, 0.5, 4, 1);
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn out_of_range_read_fraction_rejected() {
        let _ = TrafficLoad::new(vec![[0.0, 0.0]], 1, 1.5, 4, 1);
    }

    #[test]
    #[should_panic(expected = "query ttl")]
    fn zero_ttl_rejected() {
        let _ = TrafficLoad::new(vec![[0.0, 0.0]], 1, 0.5, 0, 1);
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn bad_zipf_exponent_rejected() {
        let _ = TrafficLoad::with_dist(vec![[0.0, 0.0]], 1, 0.5, 4, 1, TrafficDist::Zipf(0.0));
    }
}
