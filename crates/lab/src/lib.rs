//! One experiment plane over every execution substrate.
//!
//! The reproduction grew four ways to execute the same protocol stack —
//! the cycle engine (`polystyrene-sim`), the discrete-event network
//! kernel (`polystyrene-netsim`), the threaded in-process cluster
//! (`polystyrene-runtime`) and the TCP deployment
//! (`polystyrene-transport`) — precisely to test the paper's core claim
//! (conf_icdcs_BougetKKT14): the self-organizing shape survives the
//! *same* failure scenarios regardless of how messages move. This crate
//! is the plane that makes the claim checkable by construction:
//!
//! * [`Substrate`] — the one seam (kill / inject / partition / step /
//!   observe) all four backends implement;
//! * [`build_substrate`] — the `--substrate engine|netsim|cluster|tcp`
//!   switchboard behind every experiment binary;
//! * [`run_experiment`] — the single scenario driver (churn windows,
//!   partition masks, failure bookkeeping) producing an
//!   [`ExperimentTrace`] of unified
//!   [`polystyrene_protocol::RoundObservation`]s;
//! * [`ExperimentSummary`] / [`summary_json`] — streaming
//!   min/mean/max aggregation over repeated seeded runs and the one
//!   hand-rolled JSON emitter every `BENCH_*.json` artifact shares.
//!
//! Scenario × substrate composes freely: any script written in
//! [`polystyrene_protocol::Scenario`] runs unchanged on anything
//! [`build_substrate`] returns.
//!
//! # Example: the same script on two substrates
//!
//! ```
//! use polystyrene_lab::{build_substrate, run_experiment, LabConfig, SubstrateKind};
//! use polystyrene_protocol::{Scenario, ScenarioEvent};
//! use polystyrene_space::prelude::*;
//!
//! let scenario: Scenario<[f64; 2]> =
//!     Scenario::new(4).at(1, ScenarioEvent::FailNodes(vec![1.into(), 2.into()]));
//! let mut cfg = LabConfig::default();
//! cfg.area = 16.0;
//! for kind in [SubstrateKind::Engine, SubstrateKind::Netsim] {
//!     let mut substrate = build_substrate(
//!         kind,
//!         Torus2::new(4.0, 4.0),
//!         shapes::torus_grid(4, 4, 1.0),
//!         &cfg,
//!     );
//!     let trace = run_experiment(substrate.as_mut(), &scenario);
//!     assert_eq!(trace.populations(), vec![16, 14, 14, 14]);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod substrate;
pub mod traffic;

pub use experiment::{
    json_f64, run_experiment, run_experiment_with_traffic, summary_json, ExperimentSummary,
    ExperimentTrace, RoundStat, SeriesStats,
};
pub use polystyrene_protocol::observe::{RoundObservation, TrafficStats};
pub use substrate::{build_substrate, LabConfig, LiveSubstrate, Substrate, SubstrateKind};
pub use traffic::{TrafficDist, TrafficLoad};
