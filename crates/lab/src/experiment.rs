//! The one experiment driver: any [`Scenario`] on any [`Substrate`].
//!
//! [`run_experiment`] owns the window bookkeeping a script implies —
//! churn windows fire every round until expiry, partition masks are
//! installed and healed when their window lapses — and collects one
//! [`RoundObservation`] per round into an [`ExperimentTrace`]. Repeated
//! seeded runs stream into an [`ExperimentSummary`] (per-round
//! min/mean/max without retaining per-run series), and
//! [`summary_json`] is the single hand-rolled JSON emitter every
//! experiment binary shares.

use crate::substrate::Substrate;
use crate::traffic::TrafficLoad;
use polystyrene_protocol::observe::RoundObservation;
use polystyrene_protocol::scenario::{Scenario, ScenarioEvent};
use polystyrene_space::stats::{ci95, ConfidenceInterval};
use std::fmt::Write as _;

/// Drives `substrate` through `scenario`: for each round, applies the
/// events scheduled for it (churn events open a window that then fires
/// every round until it expires; partition events install a mask that is
/// healed when their window expires), advances one round, and records
/// the observation — the single scenario-execution code path of the
/// whole repository, so what a script means cannot drift between
/// substrates.
///
/// The substrate may have run before; the returned trace covers only
/// this scenario's rounds, and its analytics are positional (round `i`
/// of the scenario is observation `i`), so they are independent of the
/// substrate's own round labels.
pub fn run_experiment<P: Clone>(
    substrate: &mut (impl Substrate<P> + ?Sized),
    scenario: &Scenario<P>,
) -> ExperimentTrace {
    run_experiment_with_traffic(substrate, scenario, None)
}

/// [`run_experiment`] with an application workload riding along: each
/// round, the load's key batch is offered to the substrate *before* the
/// round advances (queries resolve while the shape reshapes), and the
/// round's drained [`polystyrene_protocol::observe::TrafficStats`]
/// replace the observation's `traffic` field. With `traffic = None` this is exactly [`run_experiment`] —
/// the drain seam is never touched, so scenario-only runs cannot
/// perturb or be perturbed by the traffic plane.
pub fn run_experiment_with_traffic<P: Clone>(
    substrate: &mut (impl Substrate<P> + ?Sized),
    scenario: &Scenario<P>,
    mut traffic: Option<&mut TrafficLoad<P>>,
) -> ExperimentTrace {
    let failure_round = scenario.first_failure_round();
    let mut observations = Vec::with_capacity(scenario.total_rounds() as usize);
    let mut kill_tick = None;
    // Active churn windows: (first round NOT churned, rate).
    let mut churns: Vec<(u32, f64)> = Vec::new();
    // First round past the active partition window. A later Partition
    // event replaces the mask AND the window (windows do not stack; see
    // `ScenarioEvent::Partition`) — keeping the substrate's single mask
    // and the heal schedule in lockstep.
    let mut partition_heal: Option<u32> = None;
    for round in 0..scenario.total_rounds() {
        if partition_heal.is_some_and(|h| round >= h) {
            substrate.heal();
            partition_heal = None;
        }
        if let Some(events) = scenario.events_at(round) {
            for event in events {
                match event {
                    ScenarioEvent::FailOriginalRegion(pred) => {
                        substrate.kill_region(pred.as_ref());
                    }
                    ScenarioEvent::FailRandomFraction(fraction) => {
                        substrate.kill_fraction(*fraction);
                    }
                    ScenarioEvent::FailNodes(ids) => {
                        substrate.kill_nodes(ids);
                    }
                    ScenarioEvent::Inject(positions) => {
                        substrate.inject(positions);
                    }
                    ScenarioEvent::Churn { rate, rounds } => {
                        churns.push((round.saturating_add(*rounds), *rate));
                    }
                    ScenarioEvent::Partition { groups, rounds } => {
                        substrate.partition(groups);
                        partition_heal = Some(round.saturating_add(*rounds));
                    }
                }
            }
        }
        churns.retain(|&(until, _)| round < until);
        for &(_, rate) in &churns {
            substrate.kill_fraction(rate);
        }
        // The survivors' progress clock right after the first failure
        // fired: the reference point reshaping ticks are counted from
        // (an entropy-free read on the deterministic substrates).
        if kill_tick.is_none() && failure_round == Some(round) {
            kill_tick = Some(substrate.observe().ticks);
        }
        let mut round_reads_writes = (0u64, 0u64);
        if let Some(load) = traffic.as_deref_mut() {
            let ttl = load.ttl();
            let (reads0, writes0) = (load.reads(), load.writes());
            let keys = load.next_round();
            substrate.offer_traffic(keys, ttl);
            // The workload's read/write split is generator-side
            // accounting (the overlay routes both identically); the
            // per-round delta rides the observation next to the
            // substrate-side delivery counters.
            round_reads_writes = (load.reads() - reads0, load.writes() - writes0);
        }
        let mut obs = substrate.step();
        if traffic.is_some() {
            obs.traffic = substrate.drain_traffic();
            obs.traffic.reads = round_reads_writes.0;
            obs.traffic.writes = round_reads_writes.1;
        }
        observations.push(obs);
    }
    // A window outlasting the scenario still heals the fabric on exit.
    if partition_heal.is_some() {
        substrate.heal();
    }
    ExperimentTrace {
        observations,
        failure_round,
        kill_tick,
    }
}

/// One seeded run of a scenario on some substrate: the per-round
/// observations plus the failure reference points its analytics are
/// computed from.
#[derive(Clone, Debug)]
pub struct ExperimentTrace {
    /// One observation per scenario round, in order.
    pub observations: Vec<RoundObservation>,
    /// The scenario round of the first failure event, if any.
    pub failure_round: Option<u32>,
    /// The survivors' progress clock right after the first failure was
    /// applied.
    pub kill_tick: Option<u64>,
}

impl ExperimentTrace {
    /// First post-failure observation index, if the scenario fails
    /// anything: events at round `r` fire before round `r+1` executes,
    /// so observation `r` is the first sample that saw the failure.
    fn failure_index(&self) -> Option<usize> {
        self.failure_round.map(|fr| fr as usize)
    }

    /// Rounds from the failure until homogeneity first drops below the
    /// reference bound (paper Sec. IV-A), or `None` if it never does
    /// (or the scenario has no failure).
    pub fn reshaping_rounds(&self) -> Option<u32> {
        let fr = self.failure_index()?;
        self.observations
            .iter()
            .enumerate()
            .skip(fr)
            .find(|(_, o)| o.homogeneity < o.reference_homogeneity)
            .map(|(i, _)| (i + 1) as u32 - fr as u32)
    }

    /// Protocol ticks from the kill until the recovery crossing — the
    /// progress-denominated reshaping time the wall-clock substrates are
    /// gated on (wall-clock hiccups stretch rounds, not this clock).
    pub fn reshaping_ticks(&self) -> Option<u64> {
        let fr = self.failure_index()?;
        let kill = self.kill_tick?;
        self.observations
            .iter()
            .skip(fr)
            .find(|o| o.homogeneity < o.reference_homogeneity)
            .map(|o| o.ticks.saturating_sub(kill).max(1))
    }

    /// Fraction of initial data points surviving the failure — Table
    /// II's "Reliability", measured on the first post-failure
    /// observation (`1.0` if the scenario never fails anything).
    pub fn reliability(&self) -> f64 {
        self.failure_index()
            .and_then(|fr| self.observations.get(fr))
            .map(|o| o.surviving_points)
            .unwrap_or(1.0)
    }

    /// The last observation, if any round ran.
    pub fn final_observation(&self) -> Option<&RoundObservation> {
        self.observations.last()
    }

    /// Per-round alive populations — the arithmetic the cross-substrate
    /// equivalence checks compare.
    pub fn populations(&self) -> Vec<usize> {
        self.observations.iter().map(|o| o.alive_nodes).collect()
    }
}

/// Streaming summary of one per-round quantity: count, mean, min, max —
/// no per-run storage.
#[derive(Clone, Copy, Debug)]
pub struct RoundStat {
    /// Runs that reached this round.
    pub count: usize,
    sum: f64,
    /// Minimum across runs.
    pub min: f64,
    /// Maximum across runs.
    pub max: f64,
}

impl Default for RoundStat {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl RoundStat {
    fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean across the runs that reached this round.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Per-round streaming statistics over repeated runs (runs may have
/// different lengths; round `r` summarizes the runs that reached it).
#[derive(Clone, Debug, Default)]
pub struct SeriesStats {
    rounds: Vec<RoundStat>,
}

impl SeriesStats {
    fn push_run(&mut self, series: impl Iterator<Item = f64>) {
        for (r, v) in series.enumerate() {
            if r >= self.rounds.len() {
                self.rounds.resize_with(r + 1, RoundStat::default);
            }
            self.rounds[r].push(v);
        }
    }

    /// Number of rounds of the longest run.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no run was pushed.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The per-round statistic, if round `r` was reached.
    pub fn at(&self, r: usize) -> Option<&RoundStat> {
        self.rounds.get(r)
    }

    /// The final round's statistic.
    pub fn last(&self) -> Option<&RoundStat> {
        self.rounds.last()
    }

    /// Per-round means.
    pub fn means(&self) -> Vec<f64> {
        self.rounds.iter().map(RoundStat::mean).collect()
    }
}

/// Aggregate of repeated seeded runs of one experiment configuration:
/// streaming per-round series plus the per-run headline scalars
/// (reshaping, reliability) the paper's tables report.
#[derive(Clone, Debug, Default)]
pub struct ExperimentSummary {
    /// Runs aggregated.
    pub runs: usize,
    /// Per-round alive population.
    pub alive_nodes: SeriesStats,
    /// Per-round homogeneity.
    pub homogeneity: SeriesStats,
    /// Per-round reference homogeneity.
    pub reference_homogeneity: SeriesStats,
    /// Per-round surviving fraction.
    pub surviving_points: SeriesStats,
    /// Per-round stored points per node.
    pub points_per_node: SeriesStats,
    /// Per-round cost units per node (zero on unmetered substrates).
    pub cost_units: SeriesStats,
    /// Per-round query availability (delivered / offered; `1.0` on
    /// quiet rounds, so scenario-only runs stay trivially available).
    pub traffic_availability: SeriesStats,
    /// Per-round median query latency, in protocol ticks.
    pub traffic_p50: SeriesStats,
    /// Per-round p99 query latency, in protocol ticks.
    pub traffic_p99: SeriesStats,
    /// Total read-intent queries the workloads drew, across all runs.
    pub traffic_reads: u64,
    /// Total write-intent queries the workloads drew, across all runs.
    pub traffic_writes: u64,
    /// Total queries shed at gateway ingress, across all runs (zero on
    /// substrates without an admission bound).
    pub traffic_shed: u64,
    /// Per-run reshaping time in rounds (`None` = never reshaped).
    pub reshaping_rounds: Vec<Option<u32>>,
    /// Per-run reshaping time in protocol ticks.
    pub reshaping_ticks: Vec<Option<u64>>,
    /// Per-run reliability.
    pub reliabilities: Vec<f64>,
}

impl ExperimentSummary {
    /// Folds one run into the aggregate.
    pub fn push(&mut self, trace: &ExperimentTrace) {
        self.runs += 1;
        self.alive_nodes
            .push_run(trace.observations.iter().map(|o| o.alive_nodes as f64));
        self.homogeneity
            .push_run(trace.observations.iter().map(|o| o.homogeneity));
        self.reference_homogeneity
            .push_run(trace.observations.iter().map(|o| o.reference_homogeneity));
        self.surviving_points
            .push_run(trace.observations.iter().map(|o| o.surviving_points));
        self.points_per_node
            .push_run(trace.observations.iter().map(|o| o.points_per_node));
        self.cost_units
            .push_run(trace.observations.iter().map(|o| o.cost_units));
        self.traffic_availability
            .push_run(trace.observations.iter().map(|o| o.traffic.availability()));
        self.traffic_p50
            .push_run(trace.observations.iter().map(|o| o.traffic.latency_p50));
        self.traffic_p99
            .push_run(trace.observations.iter().map(|o| o.traffic.latency_p99));
        for o in &trace.observations {
            self.traffic_reads += o.traffic.reads;
            self.traffic_writes += o.traffic.writes;
            self.traffic_shed += o.traffic.shed;
        }
        self.reshaping_rounds.push(trace.reshaping_rounds());
        self.reshaping_ticks.push(trace.reshaping_ticks());
        self.reliabilities.push(trace.reliability());
    }

    /// Runs whose shape recovered.
    pub fn recovered_runs(&self) -> usize {
        self.reshaping_rounds.iter().flatten().count()
    }

    /// Runs that never reshaped within the scenario.
    pub fn unreshaped_runs(&self) -> usize {
        self.runs - self.recovered_runs()
    }

    /// Mean reshaping time in rounds over the runs that reshaped.
    pub fn mean_reshaping_rounds(&self) -> Option<f64> {
        let done: Vec<f64> = self
            .reshaping_rounds
            .iter()
            .flatten()
            .map(|&t| f64::from(t))
            .collect();
        (!done.is_empty()).then(|| done.iter().sum::<f64>() / done.len() as f64)
    }

    /// Mean reshaping time in protocol ticks over the runs that
    /// reshaped.
    pub fn mean_reshaping_ticks(&self) -> Option<f64> {
        let done: Vec<f64> = self
            .reshaping_ticks
            .iter()
            .flatten()
            .map(|&t| t as f64)
            .collect();
        (!done.is_empty()).then(|| done.iter().sum::<f64>() / done.len() as f64)
    }

    /// Mean cost units per node per round over the whole series, or
    /// `None` before any run was pushed — the one-number traffic figure
    /// the baseline differ tracks per substrate.
    pub fn mean_cost_units(&self) -> Option<f64> {
        let means = self.cost_units.means();
        (!means.is_empty()).then(|| means.iter().sum::<f64>() / means.len() as f64)
    }

    /// Mean per-round query availability over the whole series, or
    /// `None` before any run was pushed — the one-number traffic figure
    /// the availability gates and the baseline differ track.
    pub fn mean_traffic_availability(&self) -> Option<f64> {
        let means = self.traffic_availability.means();
        (!means.is_empty()).then(|| means.iter().sum::<f64>() / means.len() as f64)
    }

    /// Mean per-round median query latency (protocol ticks) over the
    /// whole series, or `None` before any run was pushed — the
    /// saturation sweep's per-rate latency figure.
    pub fn mean_traffic_p50(&self) -> Option<f64> {
        let means = self.traffic_p50.means();
        (!means.is_empty()).then(|| means.iter().sum::<f64>() / means.len() as f64)
    }

    /// Mean per-round p99 query latency (protocol ticks) over the whole
    /// series, or `None` before any run was pushed.
    pub fn mean_traffic_p99(&self) -> Option<f64> {
        let means = self.traffic_p99.means();
        (!means.is_empty()).then(|| means.iter().sum::<f64>() / means.len() as f64)
    }

    /// The worst per-round mean availability across the series — the
    /// collapse depth an availability gate checks at the kill round.
    pub fn min_traffic_availability(&self) -> Option<f64> {
        self.traffic_availability
            .means()
            .into_iter()
            .min_by(f64::total_cmp)
    }

    /// Mean ± CI95 of the reshaping time in rounds (over runs that
    /// reshaped).
    pub fn reshaping_ci(&self) -> ConfidenceInterval {
        let done: Vec<f64> = self
            .reshaping_rounds
            .iter()
            .flatten()
            .map(|&t| f64::from(t))
            .collect();
        ci95(&done)
    }

    /// Mean ± CI95 of the reliability, in percent (Table II convention).
    pub fn reliability_percent_ci(&self) -> ConfidenceInterval {
        let percents: Vec<f64> = self.reliabilities.iter().map(|r| r * 100.0).collect();
        ci95(&percents)
    }
}

/// A float as a JSON number token, with `precision` fractional digits —
/// or the JSON literal `null` when the value is not finite.
///
/// The experiment binaries hand-roll their JSON (the serde shim has no
/// serialization machinery, by design), and `format!("{v:.6}")` happily
/// prints `NaN` or `inf` for the degenerate sweeps that produce them
/// (an empty cluster's infinite homogeneity, a 0-run mean) — which is
/// not JSON, and silently breaks every `BENCH_*.json` consumer
/// downstream. Every hand-rolled emitter must route floats through
/// here.
pub fn json_f64(v: f64, precision: usize) -> String {
    if v.is_finite() {
        format!("{v:.precision$}")
    } else {
        "null".to_string()
    }
}

fn json_stat(out: &mut String, stat: Option<&RoundStat>, precision: usize) {
    match stat {
        Some(s) => {
            let _ = write!(
                out,
                "{{\"min\":{},\"mean\":{},\"max\":{}}}",
                json_f64(s.min, precision),
                json_f64(s.mean(), precision),
                json_f64(s.max, precision)
            );
        }
        None => out.push_str("null"),
    }
}

/// The single hand-rolled JSON emitter of the experiment plane: one
/// record per `(label, summary)` entry, under shared metadata. `meta`
/// values must already be valid JSON tokens (numbers, `true`, quoted
/// strings) — every float should come out of [`json_f64`].
pub fn summary_json(
    figure: &str,
    meta: &[(&str, String)],
    entries: &[(String, &ExperimentSummary)],
) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"figure\":\"{figure}\"");
    for (key, value) in meta {
        let _ = write!(out, ",\"{key}\":{value}");
    }
    out.push_str(",\"entries\":[");
    for (i, (label, s)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let reshaping_rounds = match s.mean_reshaping_rounds() {
            Some(m) => json_f64(m, 2),
            None => "null".to_string(),
        };
        let reshaping_ticks = match s.mean_reshaping_ticks() {
            Some(m) => json_f64(m, 2),
            None => "null".to_string(),
        };
        let cost_units = match s.mean_cost_units() {
            Some(m) => json_f64(m, 3),
            None => "null".to_string(),
        };
        let traffic_availability = match s.mean_traffic_availability() {
            Some(m) => json_f64(m, 4),
            None => "null".to_string(),
        };
        let min_traffic_availability = match s.min_traffic_availability() {
            Some(m) => json_f64(m, 4),
            None => "null".to_string(),
        };
        let traffic_p50 = match s.mean_traffic_p50() {
            Some(m) => json_f64(m, 2),
            None => "null".to_string(),
        };
        let traffic_p99 = match s.mean_traffic_p99() {
            Some(m) => json_f64(m, 2),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"label\":\"{label}\",\"runs\":{},\"recovered_runs\":{},\
             \"mean_reshaping_rounds\":{reshaping_rounds},\"mean_reshaping_ticks\":{reshaping_ticks},\
             \"mean_cost_units\":{cost_units},\
             \"mean_traffic_availability\":{traffic_availability},\
             \"min_traffic_availability\":{min_traffic_availability},\
             \"mean_traffic_p50\":{traffic_p50},\"mean_traffic_p99\":{traffic_p99},\
             \"traffic_reads\":{},\"traffic_writes\":{},\"traffic_shed\":{},\
             \"reliability_mean\":{},\"final_alive_nodes\":",
            s.runs,
            s.recovered_runs(),
            s.traffic_reads,
            s.traffic_writes,
            s.traffic_shed,
            json_f64(s.reliability_percent_ci().mean, 2),
        );
        json_stat(&mut out, s.alive_nodes.last(), 0);
        out.push_str(",\"final_homogeneity\":");
        json_stat(&mut out, s.homogeneity.last(), 6);
        out.push_str(",\"final_reference_homogeneity\":");
        json_stat(&mut out, s.reference_homogeneity.last(), 6);
        out.push_str(",\"final_surviving_points\":");
        json_stat(&mut out, s.surviving_points.last(), 6);
        out.push_str(",\"final_points_per_node\":");
        json_stat(&mut out, s.points_per_node.last(), 3);
        out.push_str(",\"final_traffic_availability\":");
        json_stat(&mut out, s.traffic_availability.last(), 4);
        out.push_str(",\"final_traffic_p50\":");
        json_stat(&mut out, s.traffic_p50.last(), 2);
        out.push_str(",\"final_traffic_p99\":");
        json_stat(&mut out, s.traffic_p99.last(), 2);
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_membership::NodeId;
    use polystyrene_protocol::observe::TrafficStats;

    /// A substrate that records what was done to it — pins the driver's
    /// window semantics independently of any real backend.
    #[derive(Default)]
    struct Recorder {
        calls: Vec<String>,
        rounds: u32,
    }

    impl Substrate<[f64; 2]> for Recorder {
        fn kill_region(&mut self, _: &(dyn Fn(&[f64; 2]) -> bool + Send + Sync)) -> Vec<NodeId> {
            self.calls.push(format!("region@{}", self.rounds));
            Vec::new()
        }
        fn kill_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
            self.calls
                .push(format!("fraction({fraction})@{}", self.rounds));
            Vec::new()
        }
        fn kill_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId> {
            self.calls
                .push(format!("nodes({})@{}", ids.len(), self.rounds));
            Vec::new()
        }
        fn inject(&mut self, positions: &[[f64; 2]]) -> Vec<NodeId> {
            self.calls
                .push(format!("inject({})@{}", positions.len(), self.rounds));
            Vec::new()
        }
        fn partition(&mut self, groups: &[Vec<NodeId>]) {
            self.calls
                .push(format!("partition({})@{}", groups.len(), self.rounds));
        }
        fn heal(&mut self) {
            self.calls.push(format!("heal@{}", self.rounds));
        }
        fn step(&mut self) -> RoundObservation {
            self.rounds += 1;
            self.observe()
        }
        fn observe(&self) -> RoundObservation {
            RoundObservation {
                round: self.rounds,
                alive_nodes: 0,
                homogeneity: 0.0,
                reference_homogeneity: 0.0,
                surviving_points: 1.0,
                points_per_node: 0.0,
                parked_points: 0,
                cost_units: 0.0,
                ticks: u64::from(self.rounds),
                traffic: TrafficStats::default(),
            }
        }
    }

    fn obs(homogeneity: f64, reference: f64, surviving: f64, ticks: u64) -> RoundObservation {
        RoundObservation {
            round: 0,
            alive_nodes: 10,
            homogeneity,
            reference_homogeneity: reference,
            surviving_points: surviving,
            points_per_node: 0.0,
            parked_points: 0,
            cost_units: 0.0,
            ticks,
            traffic: TrafficStats::default(),
        }
    }

    #[test]
    fn driver_runs_every_round_and_applies_in_order() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(5)
            .at(1, ScenarioEvent::FailNodes(vec![NodeId::new(0)]))
            .at(3, ScenarioEvent::Inject(vec![[0.0, 0.0], [1.0, 0.0]]));
        let mut rec = Recorder::default();
        let trace = run_experiment(&mut rec, &scenario);
        assert_eq!(rec.rounds, 5);
        assert_eq!(trace.observations.len(), 5);
        assert_eq!(rec.calls, vec!["nodes(1)@1", "inject(2)@3"]);
        assert_eq!(trace.failure_round, Some(1));
    }

    #[test]
    fn churn_window_fires_every_round_until_expiry() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(6).at(
            2,
            ScenarioEvent::Churn {
                rate: 0.25,
                rounds: 3,
            },
        );
        let mut rec = Recorder::default();
        run_experiment(&mut rec, &scenario);
        assert_eq!(
            rec.calls,
            vec!["fraction(0.25)@2", "fraction(0.25)@3", "fraction(0.25)@4"]
        );
    }

    #[test]
    fn overlapping_churn_windows_stack() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(4)
            .at(
                0,
                ScenarioEvent::Churn {
                    rate: 0.1,
                    rounds: 2,
                },
            )
            .at(
                1,
                ScenarioEvent::Churn {
                    rate: 0.2,
                    rounds: 1,
                },
            );
        let mut rec = Recorder::default();
        run_experiment(&mut rec, &scenario);
        assert_eq!(
            rec.calls,
            vec!["fraction(0.1)@0", "fraction(0.1)@1", "fraction(0.2)@1"]
        );
    }

    #[test]
    fn partition_window_installs_then_heals() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(6).at(
            1,
            ScenarioEvent::Partition {
                groups: vec![vec![NodeId::new(0)], vec![NodeId::new(1)]],
                rounds: 2,
            },
        );
        let mut rec = Recorder::default();
        run_experiment(&mut rec, &scenario);
        assert_eq!(rec.calls, vec!["partition(2)@1", "heal@3"]);
    }

    #[test]
    fn partition_outlasting_the_scenario_still_heals() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(3).at(
            2,
            ScenarioEvent::Partition {
                groups: vec![vec![NodeId::new(5)]],
                rounds: 10,
            },
        );
        let mut rec = Recorder::default();
        run_experiment(&mut rec, &scenario);
        assert_eq!(rec.calls, vec!["partition(1)@2", "heal@3"]);
    }

    #[test]
    fn later_partition_replaces_mask_and_window() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(8)
            .at(
                0,
                ScenarioEvent::Partition {
                    groups: vec![vec![NodeId::new(0)]],
                    rounds: 5,
                },
            )
            .at(
                2,
                ScenarioEvent::Partition {
                    groups: vec![vec![NodeId::new(1)]],
                    rounds: 1,
                },
            );
        let mut rec = Recorder::default();
        run_experiment(&mut rec, &scenario);
        // Windows do not stack: the round-2 event replaces both the mask
        // and the window, so its own 1-round cut ends at round 3 — the
        // first event's longer window dies with its mask (the substrate
        // holds exactly one mask, so mask and heal stay in lockstep).
        assert_eq!(
            rec.calls,
            vec!["partition(1)@0", "partition(1)@2", "heal@3"]
        );
    }

    #[test]
    fn trace_analytics_follow_the_paper_rules() {
        // Failure at round 2: observation index 2 is the first
        // post-failure sample; the crossing at index 3 is 2 rounds after
        // the failure.
        let trace = ExperimentTrace {
            observations: vec![
                obs(0.1, 0.5, 1.0, 1),
                obs(0.1, 0.5, 1.0, 2),
                obs(5.0, 0.7, 0.9, 3),
                obs(0.6, 0.7, 0.9, 4),
                obs(0.5, 0.7, 0.9, 5),
            ],
            failure_round: Some(2),
            kill_tick: Some(2),
        };
        assert_eq!(trace.reshaping_rounds(), Some(2));
        assert_eq!(trace.reshaping_ticks(), Some(2));
        assert_eq!(trace.reliability(), 0.9);
        assert_eq!(trace.populations().len(), 5);

        // The pre-failure sample must not count as a recovery even when
        // it is below the reference.
        let early = ExperimentTrace {
            observations: vec![obs(0.1, 0.7, 1.0, 1), obs(0.2, 0.7, 0.9, 2)],
            failure_round: Some(1),
            kill_tick: Some(1),
        };
        assert_eq!(early.reshaping_rounds(), Some(1));

        // No failure: trivially reliable, no reshaping defined.
        let calm = ExperimentTrace {
            observations: vec![obs(0.1, 0.5, 1.0, 1)],
            failure_round: None,
            kill_tick: None,
        };
        assert_eq!(calm.reshaping_rounds(), None);
        assert_eq!(calm.reliability(), 1.0);

        // Never recovering yields None.
        let stuck = ExperimentTrace {
            observations: vec![obs(0.1, 0.5, 1.0, 1), obs(5.0, 0.7, 0.5, 2)],
            failure_round: Some(1),
            kill_tick: Some(1),
        };
        assert_eq!(stuck.reshaping_rounds(), None);
        assert_eq!(stuck.reshaping_ticks(), None);
    }

    #[test]
    fn summary_streams_min_mean_max() {
        let mk = |h: f64| ExperimentTrace {
            observations: vec![obs(h, 0.5, 1.0, 1), obs(h * 2.0, 0.5, 1.0, 2)],
            failure_round: Some(0),
            kill_tick: Some(0),
        };
        let mut summary = ExperimentSummary::default();
        summary.push(&mk(1.0));
        summary.push(&mk(3.0));
        assert_eq!(summary.runs, 2);
        let last = summary.homogeneity.last().unwrap();
        assert_eq!(last.count, 2);
        assert_eq!(last.min, 2.0);
        assert_eq!(last.max, 6.0);
        assert_eq!(last.mean(), 4.0);
        assert_eq!(summary.homogeneity.means(), vec![2.0, 4.0]);
        // Both runs "reshaped" at the first sample below reference?
        // Neither did (homogeneity above reference throughout).
        assert_eq!(summary.recovered_runs(), 0);
        assert_eq!(summary.unreshaped_runs(), 2);
        assert_eq!(summary.mean_reshaping_rounds(), None);
    }

    #[test]
    fn summary_handles_ragged_runs() {
        let mut summary = ExperimentSummary::default();
        summary.push(&ExperimentTrace {
            observations: vec![obs(1.0, 0.5, 1.0, 1)],
            failure_round: None,
            kill_tick: None,
        });
        summary.push(&ExperimentTrace {
            observations: vec![obs(3.0, 0.5, 1.0, 1), obs(5.0, 0.5, 1.0, 2)],
            failure_round: None,
            kill_tick: None,
        });
        assert_eq!(summary.homogeneity.len(), 2);
        assert_eq!(summary.homogeneity.at(0).unwrap().count, 2);
        assert_eq!(summary.homogeneity.at(1).unwrap().count, 1);
    }

    #[test]
    fn json_f64_emits_null_for_non_finite_values() {
        assert_eq!(json_f64(1.25, 2), "1.25");
        assert_eq!(json_f64(f64::NAN, 6), "null");
        assert_eq!(json_f64(f64::INFINITY, 6), "null");
    }

    #[test]
    fn summary_json_is_wellformed() {
        let mut summary = ExperimentSummary::default();
        summary.push(&ExperimentTrace {
            observations: vec![obs(2.0, 0.7, 0.9, 1), obs(0.5, 0.7, 0.9, 2)],
            failure_round: Some(0),
            kill_tick: Some(0),
        });
        let json = summary_json(
            "test_fig",
            &[("nodes", "32".to_string()), ("runs", "1".to_string())],
            &[("engine".to_string(), &summary)],
        );
        assert!(json.starts_with("{\"figure\":\"test_fig\",\"nodes\":32,\"runs\":1,"));
        assert!(json.contains("\"label\":\"engine\""));
        assert!(json.contains("\"mean_reshaping_rounds\":2.00"));
        assert!(json.contains("\"final_homogeneity\":{\"min\":0.500000"));
        // Quiet observations count as fully available (nothing offered,
        // nothing lost) and carry a zero p99.
        assert!(json.contains("\"mean_traffic_availability\":1.0000"));
        assert!(json.contains("\"min_traffic_availability\":1.0000"));
        assert!(json.contains("\"traffic_reads\":0,\"traffic_writes\":0,\"traffic_shed\":0"));
        assert!(json.contains("\"final_traffic_availability\":{\"min\":1.0000"));
        assert!(json.contains("\"final_traffic_p99\":{\"min\":0.00"));
        assert!(json.ends_with("]}"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        // Empty summary: stats are null, not NaN tokens.
        let empty = ExperimentSummary::default();
        let json = summary_json("t", &[], &[("x".to_string(), &empty)]);
        assert!(json.contains("\"final_homogeneity\":null"));
        assert!(json.contains("\"mean_traffic_availability\":null"));
        assert!(json.contains("\"final_traffic_availability\":null"));
    }
}
