//! Golden bit-identity: the cycle engine's seeded histories are frozen.
//!
//! The fingerprints below were captured from the engine as it existed
//! *before* the protocol stack was extracted into `polystyrene-protocol`
//! (the monolithic `rps_phase`/`tman_phase`/… implementation), and have
//! survived every refactor since — including the move onto the unified
//! experiment plane: `run_experiment` must consume entropy in exactly
//! the order the engine's original scenario driver did. Any change to
//! the protocol core, the engine driver, the measurement pass, or the
//! lab driver that shifts a single RNG draw or reorders one exchange
//! shows up here.

use polystyrene_lab::run_experiment;
use polystyrene_sim::prelude::*;
use polystyrene_space::prelude::*;

/// FNV-1a over the bit patterns of every field of every round.
fn fingerprint(metrics: &[RoundMetrics]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x100000001b3);
    };
    for m in metrics {
        mix(m.round as u64);
        mix(m.alive_nodes as u64);
        for f in [
            m.proximity,
            m.homogeneity,
            m.reference_homogeneity,
            m.points_per_node,
            m.cost_per_node,
            m.tman_cost_share,
            m.surviving_points,
        ] {
            mix(f.to_bits());
        }
    }
    hash
}

fn paper_history(seed: u64) -> Vec<RoundMetrics> {
    let paper = PaperScenario {
        cols: 16,
        rows: 8,
        step: 1.0,
        failure_round: 12,
        inject_round: Some(30),
        total_rounds: 45,
    };
    let mut cfg = EngineConfig::default();
    cfg.area = paper.area();
    cfg.seed = seed;
    cfg.tman.view_cap = 30;
    cfg.tman.m = 10;
    let (w, h) = paper.extents();
    let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
    run_experiment(&mut engine, &paper.script());
    engine.history().to_vec()
}

#[test]
fn paper_scenario_history_is_bit_identical_to_pre_refactor_engine() {
    let history = paper_history(42);
    assert_eq!(history.len(), 45);
    // Spot values of the final round, for a readable diff when the
    // fingerprint trips.
    let last = history.last().unwrap();
    assert_eq!(last.alive_nodes, 128);
    assert_eq!(last.proximity.to_bits(), 0x3fef5477b008bb13);
    assert_eq!(last.homogeneity.to_bits(), 0x3fb8000000000000);
    assert_eq!(last.cost_per_node.to_bits(), 0x4050cc0000000000);
    assert_eq!(last.surviving_points.to_bits(), 0x3fef800000000000);
    assert_eq!(
        fingerprint(&history),
        0xbdb363b4cfacecbb,
        "seed-42 history diverged from the pre-refactor engine"
    );
}

#[test]
fn second_seed_history_is_bit_identical_too() {
    let history = paper_history(7);
    let last = history.last().unwrap();
    assert_eq!(last.alive_nodes, 128);
    assert_eq!(last.proximity.to_bits(), 0x3fef599ff40784a4);
    assert_eq!(last.homogeneity.to_bits(), 0x3fb6000000000000);
    assert_eq!(last.cost_per_node.to_bits(), 0x4051580000000000);
    assert_eq!(last.surviving_points.to_bits(), 0x3fef400000000000);
    assert_eq!(
        fingerprint(&history),
        0x442fe1e078e83cb8,
        "seed-7 history diverged from the pre-refactor engine"
    );
}
