//! Convergence of the threaded runtime, promoted from the old
//! `probe_homogeneity` example into a real regression test: a live
//! cluster driven through an event-free shared [`Scenario`] on the
//! unified experiment plane must settle into the paper's steady state —
//! homogeneity near zero and stored points per node near `1 + K` —
//! instead of the unbounded guest duplication the mailbox-starvation
//! death spiral used to produce (points/node exploding past 100).
//!
//! Wall-clock caution: scheduler jitter can stretch a tick past the
//! heartbeat timeout, causing *false* suspicion → spurious recovery →
//! a transient replica spike (the legitimate dynamic of paper Fig. 7a,
//! drained by migration dedup). The assertions therefore gate on the
//! **minimum** over the tail window — a healthy cluster dips back to the
//! steady state between spikes, while a true death spiral grows
//! monotonically and can never pass — and on an 8 ms tick, which leaves
//! debug-build message handling headroom on a loaded CI box.

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_lab::{build_substrate, run_experiment, LabConfig, SubstrateKind};
use polystyrene_protocol::Scenario;
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;
use std::time::Duration;

#[test]
fn cluster_settles_at_one_plus_k_points_per_node() {
    let (cols, rows) = (8usize, 4usize);
    let k = 4;
    let mut cfg = LabConfig::default();
    cfg.area = (cols * rows) as f64;
    cfg.tick = Duration::from_millis(8);
    cfg.poly = PolystyreneConfig::builder().replication(k).build();
    let mut substrate = build_substrate(
        SubstrateKind::Cluster,
        Torus2::new(cols as f64, rows as f64),
        shapes::torus_grid(cols, rows, 1.0),
        &cfg,
    );

    // 60 event-free rounds through the unified experiment driver.
    let scenario: Scenario<[f64; 2]> = Scenario::new(60);
    let trace = run_experiment(substrate.as_mut(), &scenario);
    assert_eq!(trace.observations.len(), 60);

    // Nobody died, nothing was lost, and the cluster made progress.
    let last = trace.final_observation().unwrap();
    assert_eq!(last.alive_nodes, cols * rows);
    assert!(last.ticks >= 60, "cluster stalled at {} ticks", last.ticks);
    assert!(
        last.surviving_points >= 0.95,
        "points vanished: {}",
        last.surviving_points
    );

    // Steady state over the tail window (a single snapshot can catch
    // points mid-migration or a transient post-recovery replica spike).
    let tail = &trace.observations[30..];
    let best_homogeneity = tail
        .iter()
        .map(|o| o.homogeneity)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_homogeneity < 0.3,
        "homogeneity never settled: best {best_homogeneity}"
    );
    // Replication converged to ≈ 1 + K stored points per node…
    let best_points = tail
        .iter()
        .map(|o| o.points_per_node)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_points > 1.0 + k as f64 * 0.5,
        "replication never took hold: {best_points} points/node"
    );
    // …and never entered a death spiral: a runaway grows monotonically,
    // so even the window minimum would sit far above the steady state.
    assert!(
        best_points < 2.0 * (1 + k) as f64,
        "stored points ran away: window minimum {best_points} per node"
    );
}
