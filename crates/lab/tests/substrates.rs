//! Scenario execution per substrate, through the one driver — the
//! tests that used to live next to each per-substrate scenario module,
//! now parameterized over the unified seam wherever the assertion is
//! substrate-agnostic.

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_lab::{
    build_substrate, run_experiment, run_experiment_with_traffic, LabConfig, Substrate,
    SubstrateKind, TrafficLoad,
};
use polystyrene_membership::NodeId;
use polystyrene_netsim::{NetRoundMetrics, NetSim, NetSimConfig};
use polystyrene_protocol::{PaperScenario, Scenario, ScenarioEvent};
use polystyrene_sim::prelude::*;
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;
use std::sync::Arc;
use std::time::Duration;

fn small_lab_config(seed: u64) -> LabConfig {
    let p = PaperScenario::small();
    let mut cfg = LabConfig::default();
    cfg.area = p.area();
    cfg.seed = seed;
    cfg.tman.view_cap = 30;
    cfg.tman.m = 10;
    cfg
}

fn small_substrate(kind: SubstrateKind, seed: u64) -> Box<dyn Substrate<[f64; 2]>> {
    let p = PaperScenario::small();
    let (w, h) = p.extents();
    build_substrate(
        kind,
        Torus2::new(w, h),
        shapes::torus_grid(p.cols, p.rows, 1.0),
        &small_lab_config(seed),
    )
}

#[test]
fn paper_script_population_arithmetic_on_deterministic_substrates() {
    let p = PaperScenario::small();
    for kind in [SubstrateKind::Engine, SubstrateKind::Netsim] {
        let mut substrate = small_substrate(kind, 1);
        let trace = run_experiment(substrate.as_mut(), &p.script());
        let alive = trace.populations();
        assert_eq!(alive.len(), p.total_rounds as usize, "{kind}");
        assert_eq!(alive[(p.failure_round - 1) as usize], 200, "{kind}");
        assert_eq!(alive[p.failure_round as usize], 100, "{kind}");
        let ir = p.inject_round.expect("small scenario has phase 3") as usize;
        assert_eq!(alive[ir], 200, "{kind}");
    }
}

#[test]
fn churn_window_drains_population_identically() {
    let scenario: Scenario<[f64; 2]> = Scenario::new(6).at(
        2,
        ScenarioEvent::Churn {
            rate: 0.1,
            rounds: 3,
        },
    );
    for kind in [SubstrateKind::Engine, SubstrateKind::Netsim] {
        let mut substrate = small_substrate(kind, 4);
        let trace = run_experiment(substrate.as_mut(), &scenario);
        assert_eq!(
            trace.populations(),
            vec![200, 200, 180, 162, 146, 146],
            "{kind}"
        );
    }
}

#[test]
fn fail_nodes_event_applies_on_the_engine() {
    let mut substrate = small_substrate(SubstrateKind::Engine, 2);
    let scenario: Scenario<[f64; 2]> = Scenario::new(3).at(
        1,
        ScenarioEvent::FailNodes(vec![NodeId::new(0), NodeId::new(1)]),
    );
    let trace = run_experiment(substrate.as_mut(), &scenario);
    assert_eq!(trace.populations(), vec![200, 198, 198]);
}

#[test]
fn region_failure_uses_the_shared_selection_on_netsim() {
    let mut substrate = small_substrate(SubstrateKind::Netsim, 6);
    let scenario: Scenario<[f64; 2]> = Scenario::new(3).at(
        1,
        ScenarioEvent::FailOriginalRegion(Arc::new(|p: &[f64; 2]| p[0] < 10.0)),
    );
    let trace = run_experiment(substrate.as_mut(), &scenario);
    assert_eq!(trace.populations()[0], 200);
    assert_eq!(trace.populations()[1], 100, "half the 20×10 grid");
}

#[test]
fn reshaping_only_variant_recovers_on_the_engine() {
    let p = PaperScenario::reshaping_only(16, 8, 10, 30);
    assert_eq!(p.total_rounds, 40);
    assert_eq!(p.script().event_rounds(), vec![10]);
    let (w, h) = p.extents();
    let mut cfg = LabConfig::default();
    cfg.area = p.area();
    cfg.seed = 3;
    cfg.tman.view_cap = 30;
    cfg.tman.m = 10;
    let mut substrate = build_substrate(
        SubstrateKind::Engine,
        Torus2::new(w, h),
        shapes::torus_grid(p.cols, p.rows, 1.0),
        &cfg,
    );
    let trace = run_experiment(substrate.as_mut(), &p.script());
    assert!(
        trace.reshaping_rounds().is_some(),
        "small torus failed to reshape in 30 rounds"
    );
}

#[test]
fn pre_run_engine_traces_cover_only_their_own_rounds() {
    let p = PaperScenario::small();
    let (w, h) = p.extents();
    let mut e_cfg = EngineConfig::default();
    e_cfg.area = p.area();
    e_cfg.seed = 5;
    e_cfg.tman.view_cap = 30;
    e_cfg.tman.m = 10;
    let mut engine = Engine::new(
        Torus2::new(w, h),
        shapes::torus_grid(p.cols, p.rows, 1.0),
        e_cfg,
    );
    engine.run(3);
    let scenario: Scenario<[f64; 2]> = Scenario::new(2);
    let trace = run_experiment(&mut engine, &scenario);
    assert_eq!(trace.observations.len(), 2);
    assert_eq!(engine.history().len(), 5);
    assert_eq!(trace.observations[0].round, 4);
}

#[test]
fn partition_script_cuts_and_heals_the_netsim_fabric() {
    // Converge, isolate a corner of founders for 3 rounds, observe.
    // Drop counters are netsim-internal, so this drives the kernel
    // directly — through the same unified driver.
    let p = PaperScenario::small();
    let (w, h) = p.extents();
    let mut cfg = NetSimConfig::default();
    cfg.area = p.area();
    cfg.seed = 5;
    cfg.tman.view_cap = 30;
    cfg.tman.m = 10;
    let mut sim = NetSim::new(Torus2::new(w, h), p.shape(), cfg);
    let minority: Vec<NodeId> = (0..20).map(NodeId::new).collect();
    let scenario: Scenario<[f64; 2]> = Scenario::new(16).at(
        6,
        ScenarioEvent::Partition {
            groups: vec![minority],
            rounds: 3,
        },
    );
    let trace = run_experiment(&mut sim, &scenario);
    // Nobody crashes in a partition.
    assert!(trace.populations().iter().all(|&n| n == 200));
    let metrics: Vec<NetRoundMetrics> = sim.history().to_vec();
    // Cross-partition traffic was dropped during the window…
    let during = metrics[8].dropped_messages - metrics[5].dropped_messages;
    assert!(during > 0, "partition dropped no traffic");
    // …and stops being dropped once healed.
    let after = metrics[15].dropped_messages - metrics[11].dropped_messages;
    assert_eq!(after, 0, "healed fabric must not drop");
}

#[test]
fn injected_netsim_nodes_attract_points() {
    let p = PaperScenario::small();
    let (w, h) = p.extents();
    let mut cfg = NetSimConfig::default();
    cfg.area = p.area();
    cfg.seed = 7;
    cfg.tman.view_cap = 30;
    cfg.tman.m = 10;
    let mut sim = NetSim::new(Torus2::new(w, h), p.shape(), cfg);
    sim.run(10);
    sim.fail_original_region(&shapes::in_right_half(20.0));
    sim.run(10);
    let fresh = sim.inject(&shapes::torus_grid_offset(10, 10, 1.0));
    assert_eq!(fresh.len(), 100);
    sim.run(15);
    let with_points = fresh
        .iter()
        .filter(|&&id| !sim.poly_state(id).expect("alive").guests.is_empty())
        .count();
    assert!(
        with_points > fresh.len() / 2,
        "only {with_points}/100 injected nodes acquired data points"
    );
}

#[test]
fn scripted_kill_and_inject_apply_on_the_live_cluster() {
    let mut cfg = LabConfig::default();
    cfg.area = 16.0;
    cfg.seed = 1;
    cfg.tick = Duration::from_millis(2);
    cfg.poly = PolystyreneConfig::builder().replication(3).build();
    cfg.round_timeout = Duration::from_secs(5);
    let mut substrate = build_substrate(
        SubstrateKind::Cluster,
        Torus2::new(4.0, 4.0),
        shapes::torus_grid(4, 4, 1.0),
        &cfg,
    );
    let scenario: Scenario<[f64; 2]> = Scenario::new(8)
        .at(
            2,
            ScenarioEvent::FailNodes(vec![NodeId::new(0), NodeId::new(1)]),
        )
        .at(
            5,
            ScenarioEvent::Inject(vec![[0.5, 0.5], [1.5, 0.5], [2.5, 0.5]]),
        );
    let trace = run_experiment(substrate.as_mut(), &scenario);
    let alive = trace.populations();
    assert_eq!(alive.len(), 8);
    assert_eq!(alive[2], 14);
    assert_eq!(*alive.last().unwrap(), 17);
}

#[test]
fn churn_window_shrinks_the_live_cluster() {
    let mut cfg = LabConfig::default();
    cfg.area = 16.0;
    cfg.seed = 2;
    cfg.tick = Duration::from_millis(2);
    cfg.poly = PolystyreneConfig::builder().replication(3).build();
    cfg.round_timeout = Duration::from_secs(5);
    let mut substrate = build_substrate(
        SubstrateKind::Cluster,
        Torus2::new(4.0, 4.0),
        shapes::torus_grid(4, 4, 1.0),
        &cfg,
    );
    let scenario: Scenario<[f64; 2]> = Scenario::new(6).at(
        1,
        ScenarioEvent::Churn {
            rate: 0.25,
            rounds: 2,
        },
    );
    let trace = run_experiment(substrate.as_mut(), &scenario);
    let alive = trace.populations();
    assert_eq!(alive[0], 16);
    assert_eq!(alive[1], 12); // 16 - 25%
    assert_eq!(alive[2], 9); // 12 - 25%
    assert_eq!(*alive.last().unwrap(), 9);
}

#[test]
fn traffic_load_serves_queries_on_the_deterministic_substrates() {
    // Quiet convergence first, then a region kill mid-script: queries
    // must flow every round, and every offer must be accounted as
    // delivered or dropped by the end-of-round drain (the engine routes
    // atomically; netsim expires stragglers lazily, so its last rounds
    // may still carry a small in-flight tail — hence the per-run, not
    // per-round, accounting check).
    let p = PaperScenario::small();
    let scenario: Scenario<[f64; 2]> = Scenario::new(20).at(
        10,
        ScenarioEvent::FailOriginalRegion(Arc::new(shapes::in_right_half(20.0))),
    );
    for kind in [SubstrateKind::Engine, SubstrateKind::Netsim] {
        let mut substrate = small_substrate(kind, 9);
        let mut load = TrafficLoad::new(p.shape(), 16, 0.9, 8, 9);
        let trace = run_experiment_with_traffic(substrate.as_mut(), &scenario, Some(&mut load));
        let offered: u64 = trace.observations.iter().map(|o| o.traffic.offered).sum();
        let resolved: u64 = trace
            .observations
            .iter()
            .map(|o| o.traffic.delivered + o.traffic.dropped)
            .sum();
        assert_eq!(offered, 16 * 20, "{kind}: every round offers its batch");
        assert!(resolved <= offered, "{kind}");
        assert!(
            resolved >= offered - 16,
            "{kind}: more than one round's worth of queries unaccounted \
             ({resolved}/{offered})"
        );
        // A converged fabric serves essentially everything it is offered.
        let settled = &trace.observations[5..10];
        for o in settled {
            assert!(
                o.traffic.availability() >= 0.99,
                "{kind}: converged availability {} below the gate",
                o.traffic.availability()
            );
            assert!(o.traffic.mean_hops <= 8.0, "{kind}");
        }
    }
}

#[test]
fn traffic_load_does_not_perturb_the_scenario_plane() {
    // The tentpole invariant at the lab layer: switching the workload on
    // must leave the protocol's evolution untouched — same populations,
    // same homogeneity trajectory, same cost — on both deterministic
    // substrates (the netsim kernel additionally proves byte-identical
    // history in its own tests).
    let scenario: Scenario<[f64; 2]> = Scenario::new(12).at(
        5,
        ScenarioEvent::FailOriginalRegion(Arc::new(shapes::in_right_half(20.0))),
    );
    for kind in [SubstrateKind::Engine, SubstrateKind::Netsim] {
        let mut quiet_sub = small_substrate(kind, 13);
        let quiet = run_experiment(quiet_sub.as_mut(), &scenario);
        let mut loaded_sub = small_substrate(kind, 13);
        let mut load = TrafficLoad::new(PaperScenario::small().shape(), 24, 0.5, 8, 13);
        let loaded = run_experiment_with_traffic(loaded_sub.as_mut(), &scenario, Some(&mut load));
        assert_eq!(quiet.populations(), loaded.populations(), "{kind}");
        for (q, l) in quiet.observations.iter().zip(&loaded.observations) {
            assert_eq!(q.homogeneity, l.homogeneity, "{kind}");
            assert_eq!(q.cost_units, l.cost_units, "{kind}");
        }
    }
}

#[test]
fn traffic_load_flows_on_the_live_cluster() {
    let mut cfg = LabConfig::default();
    cfg.area = 16.0;
    cfg.seed = 3;
    cfg.tick = Duration::from_millis(2);
    cfg.poly = PolystyreneConfig::builder().replication(3).build();
    cfg.round_timeout = Duration::from_secs(5);
    let shape = shapes::torus_grid(4, 4, 1.0);
    let mut substrate = build_substrate(
        SubstrateKind::Cluster,
        Torus2::new(4.0, 4.0),
        shape.clone(),
        &cfg,
    );
    let scenario: Scenario<[f64; 2]> = Scenario::new(10);
    let mut load = TrafficLoad::new(shape, 8, 0.8, 6, 3);
    let trace = run_experiment_with_traffic(substrate.as_mut(), &scenario, Some(&mut load));
    let offered: u64 = trace.observations.iter().map(|o| o.traffic.offered).sum();
    let delivered: u64 = trace.observations.iter().map(|o| o.traffic.delivered).sum();
    let dropped: u64 = trace.observations.iter().map(|o| o.traffic.dropped).sum();
    assert!(offered >= 8 * 9, "wall-clock rounds lag offers: {offered}");
    assert!(delivered + dropped <= offered);
    assert!(
        delivered >= offered.saturating_sub(8 + dropped) * 4 / 5,
        "live availability collapsed: {delivered}/{offered} ({dropped} dropped)"
    );
}

#[test]
fn batched_offers_match_the_unbatched_outcome_set() {
    // The batching optimization is a pure transport-shape change: for
    // every round the set of (hops, latency) outcomes — and the
    // offered/delivered/dropped totals — must be exactly what the
    // per-wire path produces. Pinned on both deterministic substrates
    // by running twin instances from the same seed, one offering
    // through the batched hot path and one through the retained
    // unbatched reference path.
    let p = PaperScenario::small();
    let (w, h) = p.extents();
    let shape = shapes::torus_grid(p.cols, p.rows, 1.0);
    let lab = small_lab_config(17);

    // Engine and NetSim share the inherent traffic surface but no
    // trait carries `offer_traffic_unbatched` (it exists only as the
    // pinned reference path), so the twin-drive loop is a macro.
    macro_rules! drive_twins {
        ($batched:expr, $unbatched:expr, $label:expr) => {{
            let mut load_a = TrafficLoad::new(p.shape(), 32, 0.9, 8, 17);
            let mut load_b = TrafficLoad::new(p.shape(), 32, 0.9, 8, 17);
            let (mut samples_a, mut samples_b) = (Vec::new(), Vec::new());
            for round in 0..8 {
                let ttl = load_a.ttl();
                $batched.offer_traffic(load_a.next_round(), ttl);
                $unbatched.offer_traffic_unbatched(load_b.next_round(), ttl);
                $batched.step();
                $unbatched.step();
                samples_a.clear();
                samples_b.clear();
                let totals_a = $batched.drain_traffic(&mut samples_a);
                let totals_b = $unbatched.drain_traffic(&mut samples_b);
                assert_eq!(
                    totals_a, totals_b,
                    "{} round {round}: (offered, delivered, dropped) diverged",
                    $label
                );
                samples_a.sort_unstable();
                samples_b.sort_unstable();
                assert_eq!(
                    samples_a, samples_b,
                    "{} round {round}: (hops, latency) outcome sets diverged",
                    $label
                );
                assert!(
                    totals_a.1 > 0,
                    "{} round {round}: nothing delivered",
                    $label
                );
            }
        }};
    }

    // Cycle engine pair.
    let mk_engine = || {
        let mut e = EngineConfig::default();
        e.tman = lab.tman;
        e.area = lab.area;
        e.seed = lab.seed;
        Engine::new(Torus2::new(w, h), shape.clone(), e)
    };
    let mut batched = mk_engine();
    let mut unbatched = mk_engine();
    batched.run(6);
    unbatched.run(6);
    drive_twins!(batched, unbatched, "engine");

    // Netsim kernel pair (default ideal links, so the per-envelope
    // loss/latency draw cannot fork the two entropy streams).
    let mk_kernel = || {
        let mut n = NetSimConfig::default();
        n.tman = lab.tman;
        n.area = lab.area;
        n.seed = lab.seed;
        NetSim::new(Torus2::new(w, h), shape.clone(), n)
    };
    let mut batched = mk_kernel();
    let mut unbatched = mk_kernel();
    batched.run(6);
    unbatched.run(6);
    drive_twins!(batched, unbatched, "netsim");
}

#[test]
fn lossless_links_charge_the_engine_and_kernel_identically() {
    // The paper's cost model (Sec. IV-A) is charged at each substrate's
    // own send boundary, so on ideal links — no loss, no latency, every
    // exchange completing inside its round — the T-Man bucket must be
    // *identical*, not merely similar: in steady state every alive node
    // sends one m-descriptor request and answers one m-descriptor reply,
    // and RPS traffic is free by the paper's convention. That structural
    // determinism is what makes Fig. 7b's headline (T-Man dominating the
    // overhead) reproducible on every substrate. The migration bucket is
    // the one place real asynchrony leaks in: the kernel's interleaved
    // activations busy-bounce a few migration exchanges per round that
    // the engine's atomic exchanges never can, so the *total* is only
    // near-equal — bounded here at 1%.
    let scenario: Scenario<[f64; 2]> = Scenario::new(8);
    let mut totals: Vec<Vec<f64>> = Vec::new();
    for kind in [SubstrateKind::Engine, SubstrateKind::Netsim] {
        let mut substrate = small_substrate(kind, 11);
        let trace = run_experiment(substrate.as_mut(), &scenario);
        totals.push(
            trace
                .observations
                .iter()
                .map(|o| o.cost_units)
                .collect::<Vec<f64>>(),
        );
    }
    let (engine, netsim) = (&totals[0], &totals[1]);
    assert!(
        engine[2] > 0.0,
        "engine must charge nonzero units in steady state"
    );
    for (r, (e, n)) in engine.iter().zip(netsim).enumerate() {
        assert!(
            (e - n).abs() <= 0.01 * e,
            "round {r}: engine {e} vs netsim {n} diverged beyond the \
             busy-bounce margin\n  engine {engine:?}\n  netsim {netsim:?}"
        );
    }

    // The exact leg, off the raw metrics (the unified observation keeps
    // one cost figure; the per-bucket split lives on each substrate's
    // native metrics): identical T-Man units per node, every round.
    let p = PaperScenario::small();
    let (w, h) = p.extents();
    let shape = shapes::torus_grid(p.cols, p.rows, 1.0);
    let lab = small_lab_config(11);
    let mut e = EngineConfig::default();
    e.tman = lab.tman;
    e.area = lab.area;
    e.seed = lab.seed;
    let mut engine = Engine::new(Torus2::new(w, h), shape.clone(), e);
    let mut n = NetSimConfig::default();
    n.tman = lab.tman;
    n.area = lab.area;
    n.seed = lab.seed;
    let mut kernel = NetSim::new(Torus2::new(w, h), shape, n);
    for round in 0..6 {
        let em = engine.step();
        let nm = kernel.step();
        let e_tman = em.cost_per_node * em.tman_cost_share;
        let n_tman = nm.cost_per_node * nm.tman_cost_share;
        assert!(
            (e_tman - n_tman).abs() < 1e-9,
            "round {round}: T-Man units per node must match exactly on \
             ideal links: engine {e_tman} vs netsim {n_tman}"
        );
        assert!(e_tman > 0.0, "round {round}: T-Man traffic cannot be free");
    }
}
