//! A minimal JSON reader for the bench artifacts.
//!
//! The experiment plane hand-rolls its JSON output (the serde shim has
//! no serialization machinery, by design), so the baseline differ needs
//! a reader for the same dialect: objects, arrays, strings with the
//! basic escapes, `f64` numbers, and the three literals. This is a
//! strict recursive-descent parser over exactly that grammar — not a
//! general-purpose JSON library, just the other half of
//! [`polystyrene_lab::summary_json`].

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as `f64` — the artifacts' integers are
    /// all small).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (the artifacts never repeat keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object, `None` on any other variant.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, `None` on any other variant (including
    /// `Null` — absent metrics stay absent).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, `None` on any other variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, `None` on any other variant.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, `None` on any other variant.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut at = 0usize;
    let value = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing input at byte {at}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*at) == Some(&byte) {
        *at += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {at}, found {:?}",
            byte as char,
            bytes.get(*at).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        Some(b'{') => parse_object(bytes, at),
        Some(b'[') => parse_array(bytes, at),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, at)?)),
        Some(b'n') => parse_literal(bytes, at, "null", Json::Null),
        Some(b't') => parse_literal(bytes, at, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, at, "false", Json::Bool(false)),
        Some(_) => parse_number(bytes, at),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], at: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*at..].starts_with(word.as_bytes()) {
        *at += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {at}"))
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    let start = *at;
    while *at < bytes.len() && matches!(bytes[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *at += 1;
    }
    std::str::from_utf8(&bytes[start..*at])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    expect(bytes, at, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*at) {
            Some(b'"') => {
                *at += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *at += 1;
                let escaped = match bytes.get(*at) {
                    Some(b'"') => b'"',
                    Some(b'\\') => b'\\',
                    Some(b'/') => b'/',
                    Some(b'n') => b'\n',
                    Some(b't') => b'\t',
                    Some(b'r') => b'\r',
                    other => {
                        return Err(format!(
                            "unsupported escape {:?} at byte {at}",
                            other.map(|&b| b as char)
                        ))
                    }
                };
                out.push(escaped);
                *at += 1;
            }
            Some(&b) => {
                out.push(b);
                *at += 1;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_array(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    expect(bytes, at, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, at)?);
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b']') => {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected , or ] but found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    expect(bytes, at, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, at);
        let key = parse_string(bytes, at)?;
        skip_ws(bytes, at);
        expect(bytes, at, b':')?;
        members.push((key, parse_value(bytes, at)?));
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b'}') => {
                *at += 1;
                return Ok(Json::Obj(members));
            }
            other => return Err(format!("expected , or }} but found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitter_dialect() {
        let doc = parse(
            "{\"figure\":\"substrate_matrix\",\"nodes\":32,\
             \"wall_secs\":{\"engine\":1.250,\"tcp\":9.001},\
             \"entries\":[{\"label\":\"engine\",\"mean_reshaping_rounds\":6.00,\
             \"mean_cost_units\":null,\"final_homogeneity\":{\"min\":0.5,\"mean\":0.6,\"max\":0.7}}]}",
        )
        .unwrap();
        assert_eq!(
            doc.get("figure").unwrap().as_str(),
            Some("substrate_matrix")
        );
        assert_eq!(doc.get("nodes").unwrap().as_f64(), Some(32.0));
        let walls = doc.get("wall_secs").unwrap();
        assert_eq!(walls.get("tcp").unwrap().as_f64(), Some(9.001));
        let entries = doc.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("label").unwrap().as_str(), Some("engine"));
        assert_eq!(
            entries[0].get("mean_reshaping_rounds").unwrap().as_f64(),
            Some(6.0)
        );
        // Null metrics read as absent numbers, not as zero.
        assert_eq!(entries[0].get("mean_cost_units").unwrap().as_f64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{\"a\":1").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\\n\"").unwrap(),
            Json::Str("a\"b\\c\n".to_string())
        );
    }
}
