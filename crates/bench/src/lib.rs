//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index) and accepts the same flags:
//!
//! ```text
//! --cols N        torus grid columns    (default: figure-specific)
//! --rows N        torus grid rows
//! --runs N        repeated seeded runs  (paper: 25)
//! --k N           replication factor    (paper: 2, 4 or 8)
//! --seed N        base seed
//! --out DIR       CSV output directory  (default: target/experiments)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use polystyrene::prelude::SplitStrategy;
use polystyrene_sim::prelude::*;
use polystyrene_space::stats::ci95;
use std::collections::HashMap;
use std::path::PathBuf;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Torus grid columns.
    pub cols: usize,
    /// Torus grid rows.
    pub rows: usize,
    /// Number of repeated seeded runs.
    pub runs: usize,
    /// Replication factor K.
    pub k: usize,
    /// Base seed.
    pub seed: u64,
    /// Output directory for CSV dumps.
    pub out: PathBuf,
    /// Base link latency in simulated ticks (`--net-latency`; netsim
    /// substrate only).
    pub net_latency: u64,
    /// Uniform extra link jitter in simulated ticks (`--net-jitter`).
    pub net_jitter: u64,
    /// Link loss probability in `[0, 1]` (`--net-loss`; out-of-range
    /// values are rejected at parse time).
    pub net_loss: f64,
    /// Duration of scripted partitions in rounds (`--partition-rounds`;
    /// 0 = the scenario has no partition window).
    pub partition_rounds: u32,
    /// Figure-specific `--key value` pairs, restricted to the keys the
    /// binary declared via [`CommonArgs::parse_with`].
    pub extra: HashMap<String, String>,
}

/// The flags every experiment binary accepts.
const COMMON_KEYS: [&str; 10] = [
    "cols",
    "rows",
    "runs",
    "k",
    "seed",
    "out",
    "net-latency",
    "net-jitter",
    "net-loss",
    "partition-rounds",
];

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            cols: 80,
            rows: 40,
            runs: 5,
            k: 4,
            seed: 1,
            out: PathBuf::from("target/experiments"),
            net_latency: 2,
            net_jitter: 1,
            net_loss: 0.0,
            partition_rounds: 0,
            extra: HashMap::new(),
        }
    }
}

impl CommonArgs {
    /// Parses `--key value` pairs from `std::env::args`, starting from the
    /// given defaults. Equivalent to [`CommonArgs::parse_with`] with no
    /// figure-specific keys.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments or unknown
    /// flags.
    pub fn parse(defaults: CommonArgs) -> Self {
        Self::parse_with(defaults, &[])
    }

    /// Parses `--key value` pairs from `std::env::args`, starting from the
    /// given defaults; `extra_keys` lists the figure-specific flags this
    /// binary additionally accepts (retrieved via
    /// [`CommonArgs::extra_usize`]).
    ///
    /// Unknown flags are rejected with a usage message listing every
    /// accepted one — a typo like `--max-node` must fail loudly instead
    /// of silently sweeping with defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments or unknown
    /// flags.
    pub fn parse_with(defaults: CommonArgs, extra_keys: &[&str]) -> Self {
        Self::parse_argv(defaults, extra_keys, std::env::args().skip(1).collect())
    }

    fn parse_argv(defaults: CommonArgs, extra_keys: &[&str], argv: Vec<String>) -> Self {
        let usage = || {
            let mut keys: Vec<String> = COMMON_KEYS
                .iter()
                .chain(extra_keys.iter())
                .map(|k| format!("--{k}"))
                .collect();
            keys.sort();
            format!("accepted flags (each takes a value): {}", keys.join(" "))
        };
        let mut args = defaults;
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got {:?}\n{}", argv[i], usage()));
            let value = argv
                .get(i + 1)
                .unwrap_or_else(|| panic!("missing value for --{key}\n{}", usage()))
                .clone();
            match key {
                "cols" => args.cols = value.parse().expect("--cols expects an integer"),
                "rows" => args.rows = value.parse().expect("--rows expects an integer"),
                "runs" => args.runs = value.parse().expect("--runs expects an integer"),
                "k" => args.k = value.parse().expect("--k expects an integer"),
                "seed" => args.seed = value.parse().expect("--seed expects an integer"),
                "out" => args.out = PathBuf::from(value),
                "net-latency" => {
                    args.net_latency = value.parse().expect("--net-latency expects an integer")
                }
                "net-jitter" => {
                    args.net_jitter = value.parse().expect("--net-jitter expects an integer")
                }
                "net-loss" => {
                    let loss: f64 = value.parse().expect("--net-loss expects a number");
                    assert!(
                        (0.0..=1.0).contains(&loss),
                        "--net-loss must be a probability in [0, 1], got {loss}\n{}",
                        usage()
                    );
                    args.net_loss = loss;
                }
                "partition-rounds" => {
                    args.partition_rounds = value
                        .parse()
                        .expect("--partition-rounds expects an integer")
                }
                _ if extra_keys.contains(&key) => {
                    args.extra.insert(key.to_string(), value);
                }
                _ => panic!("unknown flag --{key}\n{}", usage()),
            }
            i += 2;
        }
        args
    }

    /// An integer from [`CommonArgs::extra`], or the default.
    pub fn extra_usize(&self, key: &str, default: usize) -> usize {
        self.extra
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// The paper scenario for the configured grid.
    pub fn paper_scenario(&self) -> PaperScenario {
        PaperScenario {
            cols: self.cols,
            rows: self.rows,
            ..Default::default()
        }
    }

    /// The link profile described by the `--net-*` flags.
    pub fn link_profile(&self) -> polystyrene_protocol::LinkProfile {
        polystyrene_protocol::LinkProfile {
            latency: self.net_latency,
            jitter: self.net_jitter,
            loss: self.net_loss,
        }
    }
}

/// The engine configuration used by all experiments unless overridden:
/// paper parameters, with the replication factor and split strategy
/// applied on top.
pub fn experiment_config(k: usize, split: SplitStrategy, seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.poly = polystyrene::prelude::PolystyreneConfig::builder()
        .replication(k)
        .split(split)
        .build();
    cfg.seed = seed;
    cfg
}

/// Runs the three-phase paper scenario for one `(stack, K)` configuration.
pub fn run_quality(
    paper: &PaperScenario,
    stack: StackKind,
    k: usize,
    split: SplitStrategy,
    runs: usize,
    seed: u64,
) -> ExperimentResult {
    run_paper_experiment(
        paper,
        experiment_config(k, split, seed),
        stack,
        runs,
        |_| {},
    )
}

/// Produces one Table II row: reshaping time and reliability for a given
/// K over `runs` repetitions of the failure-only scenario.
pub fn table2_row(
    paper: &PaperScenario,
    k: usize,
    split: SplitStrategy,
    runs: usize,
    seed: u64,
) -> ReshapingRow {
    let result = run_quality(paper, StackKind::Polystyrene, k, split, runs, seed);
    ReshapingRow {
        label: format!("K={k}"),
        nodes: paper.node_count(),
        reshaping: result.reshaping_ci(),
        unreshaped: result.unreshaped_runs,
        reliability: result.reliability_percent_ci(),
    }
}

/// The reshaping-time sweep of Fig. 10: one row per network size for a
/// fixed K and split strategy. `sizes` are `(cols, rows)` grid shapes.
pub fn scaling_sweep(
    sizes: &[(usize, usize)],
    k: usize,
    split: SplitStrategy,
    runs: usize,
    seed: u64,
    tail_rounds: u32,
) -> Vec<ReshapingRow> {
    sizes
        .iter()
        .map(|&(cols, rows)| {
            let paper = PaperScenario::reshaping_only(cols, rows, 20, tail_rounds);
            let result = run_quality(&paper, StackKind::Polystyrene, k, split, runs, seed);
            ReshapingRow {
                label: format!("{} nodes", cols * rows),
                nodes: cols * rows,
                reshaping: result.reshaping_ci(),
                unreshaped: result.unreshaped_runs,
                reliability: result.reliability_percent_ci(),
            }
        })
        .collect()
}

/// Formats a [`ReshapingRow`] table in the paper's Table II layout.
pub fn render_reshaping_table(title: &str, rows: &[ReshapingRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let reshaping = if r.reshaping.n == 0 {
                format!("— ({} runs never reshaped)", r.unreshaped)
            } else if r.unreshaped > 0 {
                format!("{} ({} runs never reshaped)", r.reshaping, r.unreshaped)
            } else {
                r.reshaping.to_string()
            };
            vec![
                r.label.clone(),
                r.nodes.to_string(),
                reshaping,
                format!(
                    "{:.2} ± {:.2}",
                    r.reliability.mean, r.reliability.half_width
                ),
            ]
        })
        .collect();
    render_table(
        title,
        &[
            "config",
            "nodes",
            "reshaping time (rounds)",
            "reliability (%)",
        ],
        &table_rows,
    )
}

/// Standard grid shapes for the scaling sweeps (Fig. 10), from 100 to
/// 51 200 nodes as in the paper ("Size of network" axis, 100 → 100 000
/// log scale; the paper's largest run is a 320×160 torus).
pub fn scaling_sizes(max_nodes: usize) -> Vec<(usize, usize)> {
    [
        (10, 10),
        (20, 10),
        (20, 20),
        (40, 20),
        (40, 40),
        (80, 40),
        (80, 80),
        (160, 80),
        (160, 160),
        (320, 160),
    ]
    .into_iter()
    .filter(|&(c, r)| c * r <= max_nodes)
    .collect()
}

/// Summarizes an experiment's headline numbers for terminal output.
pub fn summarize(result: &ExperimentResult, label: &str) -> String {
    let reshaping = result.reshaping_ci();
    let reliability = result.reliability_percent_ci();
    let final_h = result
        .homogeneity
        .means()
        .last()
        .copied()
        .unwrap_or(f64::NAN);
    format!(
        "{label}: reshaping {reshaping} rounds ({} unreshaped), reliability {reliability} %, final homogeneity {final_h:.3}",
        result.unreshaped_runs
    )
}

/// Mean of the last `n` samples of a series (steady-state estimate).
pub fn steady_state(series: &[f64], n: usize) -> f64 {
    if series.is_empty() {
        return f64::NAN;
    }
    let tail = &series[series.len().saturating_sub(n)..];
    ci95(tail).mean
}

/// A float as a JSON number token, with `precision` fractional digits —
/// or the JSON literal `null` when the value is not finite.
///
/// The experiment binaries hand-roll their JSON (the serde shim has no
/// serialization machinery, by design), and `format!("{v:.6}")` happily
/// prints `NaN` or `inf` for the degenerate sweeps that produce them
/// (an empty cluster's infinite homogeneity, a 0-run mean) — which is
/// not JSON, and silently breaks every `BENCH_*.json` consumer
/// downstream. Every hand-rolled emitter must route floats through
/// here.
pub fn json_f64(v: f64, precision: usize) -> String {
    if v.is_finite() {
        format!("{v:.precision$}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_argv_accepts_common_and_declared_extra_flags() {
        let args = CommonArgs::parse_argv(
            CommonArgs::default(),
            &["max-nodes"],
            vec!["--cols", "8", "--max-nodes", "400"]
                .into_iter()
                .map(String::from)
                .collect(),
        );
        assert_eq!(args.cols, 8);
        assert_eq!(args.extra_usize("max-nodes", 0), 400);
    }

    #[test]
    fn parse_argv_accepts_net_flags() {
        let args = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec![
                "--net-latency",
                "5",
                "--net-jitter",
                "2",
                "--net-loss",
                "0.1",
                "--partition-rounds",
                "7",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        );
        assert_eq!(args.net_latency, 5);
        assert_eq!(args.net_jitter, 2);
        assert!((args.net_loss - 0.1).abs() < 1e-12);
        assert_eq!(args.partition_rounds, 7);
        let link = args.link_profile();
        assert_eq!(link.latency, 5);
        assert_eq!(link.jitter, 2);
    }

    #[test]
    #[should_panic(expected = "--net-loss must be a probability in [0, 1]")]
    fn parse_argv_rejects_out_of_range_loss() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--net-loss".to_string(), "1.5".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag --net-los")]
    fn parse_argv_rejects_typoed_net_flag() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--net-los".to_string(), "0.1".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag --max-node")]
    fn parse_argv_rejects_typoed_flags() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &["max-nodes"],
            vec!["--max-node".to_string(), "400".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "missing value for --seed")]
    fn parse_argv_rejects_dangling_flag() {
        let _ = CommonArgs::parse_argv(CommonArgs::default(), &[], vec!["--seed".to_string()]);
    }

    #[test]
    fn experiment_config_applies_k_and_split() {
        let cfg = experiment_config(8, SplitStrategy::Basic, 7);
        assert_eq!(cfg.poly.replication, 8);
        assert_eq!(cfg.poly.split, SplitStrategy::Basic);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn scaling_sizes_filtered_and_sorted() {
        let sizes = scaling_sizes(3200);
        assert_eq!(sizes.first(), Some(&(10, 10)));
        assert_eq!(sizes.last(), Some(&(80, 40)));
        assert!(sizes.iter().all(|&(c, r)| c * r <= 3200));
        let all = scaling_sizes(usize::MAX);
        assert_eq!(all.last(), Some(&(320, 160)));
        assert_eq!(all.last().map(|&(c, r)| c * r), Some(51200));
    }

    #[test]
    fn steady_state_tail_mean() {
        assert!((steady_state(&[1.0, 2.0, 3.0, 5.0], 2) - 4.0).abs() < 1e-12);
        assert!(steady_state(&[], 3).is_nan());
        assert!((steady_state(&[2.0], 10) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_f64_emits_null_for_non_finite_values() {
        assert_eq!(json_f64(1.25, 2), "1.25");
        assert_eq!(json_f64(-0.5, 3), "-0.500");
        assert_eq!(json_f64(0.0, 0), "0");
        // The degenerate-sweep values that used to produce invalid JSON.
        assert_eq!(json_f64(f64::NAN, 6), "null");
        assert_eq!(json_f64(f64::INFINITY, 6), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY, 2), "null");
    }

    #[test]
    fn reshaping_table_renders_unreshaped_marker() {
        use polystyrene_space::stats::ConfidenceInterval;
        let rows = vec![ReshapingRow {
            label: "K=2".into(),
            nodes: 100,
            reshaping: ConfidenceInterval {
                mean: 0.0,
                half_width: 0.0,
                n: 0,
            },
            unreshaped: 3,
            reliability: ConfidenceInterval {
                mean: 50.0,
                half_width: 1.0,
                n: 3,
            },
        }];
        let t = render_reshaping_table("T", &rows);
        assert!(t.contains("never reshaped"));
    }

    #[test]
    fn tiny_end_to_end_table2_row() {
        let paper = PaperScenario::reshaping_only(12, 6, 8, 25);
        let row = table2_row(&paper, 3, SplitStrategy::Advanced, 2, 1);
        assert_eq!(row.nodes, 72);
        assert!(row.reliability.mean > 70.0);
    }
}
