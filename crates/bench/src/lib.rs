//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index) and accepts the same flags:
//!
//! ```text
//! --cols N        torus grid columns    (default: figure-specific)
//! --rows N        torus grid rows
//! --runs N        repeated seeded runs  (paper: 25)
//! --k N           replication factor    (paper: 2, 4 or 8)
//! --seed N        base seed
//! --out DIR       CSV/JSON output dir   (default: target/experiments)
//! --substrate S   execution substrate: engine|netsim|cluster|tcp
//! ```
//!
//! The figure benches drive whatever `--substrate` names through the
//! unified experiment plane (`polystyrene-lab`): one `Substrate` seam,
//! one scenario driver, one observation record — so every scenario runs
//! on every substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod minijson;

use polystyrene::prelude::{PolystyreneConfig, SplitStrategy};
use polystyrene_lab::{
    build_substrate, run_experiment, ExperimentSummary, LabConfig, SubstrateKind, TrafficDist,
};
use polystyrene_sim::prelude::*;
use polystyrene_space::stats::{ci95, ConfidenceInterval, SeriesAccumulator};
use polystyrene_space::torus::Torus2;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use polystyrene_lab::json_f64;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Torus grid columns.
    pub cols: usize,
    /// Torus grid rows.
    pub rows: usize,
    /// Number of repeated seeded runs.
    pub runs: usize,
    /// Replication factor K.
    pub k: usize,
    /// Base seed.
    pub seed: u64,
    /// Output directory for CSV/JSON dumps.
    pub out: PathBuf,
    /// Execution substrate the figure runs on (`--substrate`;
    /// out-of-vocabulary values are rejected at parse time).
    pub substrate: SubstrateKind,
    /// Whether `--substrate` was passed explicitly (binaries whose
    /// default substrate is figure-specific check this).
    pub substrate_given: bool,
    /// Base link latency in simulated ticks (`--net-latency`; netsim
    /// substrate only).
    pub net_latency: u64,
    /// Uniform extra link jitter in simulated ticks (`--net-jitter`).
    pub net_jitter: u64,
    /// Link loss probability in `[0, 1]` (`--net-loss`; out-of-range
    /// values are rejected at parse time).
    pub net_loss: f64,
    /// Duration of scripted partitions in rounds (`--partition-rounds`;
    /// 0 = the scenario has no partition window).
    pub partition_rounds: u32,
    /// Application queries offered per round (`--traffic-rate`; 0 = no
    /// workload rides the scenario).
    pub traffic_rate: usize,
    /// Size of the workload's key universe (`--traffic-keys`; must be
    /// positive when the rate is).
    pub traffic_keys: usize,
    /// Fraction of traffic requests that are reads (`--read-fraction`;
    /// out-of-range values are rejected at parse time).
    pub read_fraction: f64,
    /// Key-popularity distribution of the workload (`--traffic-dist`;
    /// `uniform` or `zipf:<s>` with a positive finite exponent —
    /// malformed values are rejected at parse time).
    pub traffic_dist: TrafficDist,
    /// Figure-specific `--key value` pairs, restricted to the keys the
    /// binary declared via [`CommonArgs::parse_with`].
    pub extra: HashMap<String, String>,
}

/// The flags every experiment binary accepts.
const COMMON_KEYS: [&str; 15] = [
    "cols",
    "rows",
    "runs",
    "k",
    "seed",
    "out",
    "substrate",
    "net-latency",
    "net-jitter",
    "net-loss",
    "partition-rounds",
    "traffic-rate",
    "traffic-keys",
    "read-fraction",
    "traffic-dist",
];

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            cols: 80,
            rows: 40,
            runs: 5,
            k: 4,
            seed: 1,
            out: PathBuf::from("target/experiments"),
            substrate: SubstrateKind::Engine,
            substrate_given: false,
            net_latency: 2,
            net_jitter: 1,
            net_loss: 0.0,
            partition_rounds: 0,
            traffic_rate: 16,
            traffic_keys: 64,
            read_fraction: 0.9,
            traffic_dist: TrafficDist::Uniform,
            extra: HashMap::new(),
        }
    }
}

impl CommonArgs {
    /// Parses `--key value` pairs from `std::env::args`, starting from the
    /// given defaults. Equivalent to [`CommonArgs::parse_with`] with no
    /// figure-specific keys.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments or unknown
    /// flags.
    pub fn parse(defaults: CommonArgs) -> Self {
        Self::parse_with(defaults, &[])
    }

    /// Parses `--key value` pairs from `std::env::args`, starting from the
    /// given defaults; `extra_keys` lists the figure-specific flags this
    /// binary additionally accepts (retrieved via
    /// [`CommonArgs::extra_usize`]).
    ///
    /// Unknown flags are rejected with a usage message listing every
    /// accepted one — a typo like `--max-node` must fail loudly instead
    /// of silently sweeping with defaults. So must a *repeated* flag:
    /// last-one-wins silently discarded half of a sweep script's intent
    /// when a line was copy-pasted and only one occurrence edited.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments, unknown
    /// flags, or duplicate occurrences of the same flag.
    pub fn parse_with(defaults: CommonArgs, extra_keys: &[&str]) -> Self {
        Self::parse_argv(defaults, extra_keys, std::env::args().skip(1).collect())
    }

    fn parse_argv(defaults: CommonArgs, extra_keys: &[&str], argv: Vec<String>) -> Self {
        let usage = || {
            let mut keys: Vec<String> = COMMON_KEYS
                .iter()
                .chain(extra_keys.iter())
                .map(|k| format!("--{k}"))
                .collect();
            keys.sort();
            format!("accepted flags (each takes a value): {}", keys.join(" "))
        };
        let mut args = defaults;
        let mut seen: HashSet<String> = HashSet::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got {:?}\n{}", argv[i], usage()));
            let value = argv
                .get(i + 1)
                .unwrap_or_else(|| panic!("missing value for --{key}\n{}", usage()))
                .clone();
            assert!(
                seen.insert(key.to_string()),
                "duplicate flag --{key} (each flag may appear once)\n{}",
                usage()
            );
            match key {
                "cols" => args.cols = value.parse().expect("--cols expects an integer"),
                "rows" => args.rows = value.parse().expect("--rows expects an integer"),
                "runs" => args.runs = value.parse().expect("--runs expects an integer"),
                "k" => args.k = value.parse().expect("--k expects an integer"),
                "seed" => args.seed = value.parse().expect("--seed expects an integer"),
                "out" => args.out = PathBuf::from(value),
                "substrate" => {
                    args.substrate = value
                        .parse()
                        .unwrap_or_else(|e: String| panic!("{e}\n{}", usage()));
                    args.substrate_given = true;
                }
                "net-latency" => {
                    args.net_latency = value.parse().expect("--net-latency expects an integer")
                }
                "net-jitter" => {
                    args.net_jitter = value.parse().expect("--net-jitter expects an integer")
                }
                "net-loss" => {
                    let loss: f64 = value.parse().expect("--net-loss expects a number");
                    assert!(
                        (0.0..=1.0).contains(&loss),
                        "--net-loss must be a probability in [0, 1], got {loss}\n{}",
                        usage()
                    );
                    args.net_loss = loss;
                }
                "partition-rounds" => {
                    args.partition_rounds = value
                        .parse()
                        .expect("--partition-rounds expects an integer")
                }
                "traffic-rate" => {
                    args.traffic_rate = value.parse().expect("--traffic-rate expects an integer")
                }
                "traffic-keys" => {
                    let keys: usize = value.parse().expect("--traffic-keys expects an integer");
                    assert!(
                        keys > 0,
                        "--traffic-keys must be positive (use --traffic-rate 0 to \
                         disable the workload)\n{}",
                        usage()
                    );
                    args.traffic_keys = keys;
                }
                "read-fraction" => {
                    let fraction: f64 = value.parse().expect("--read-fraction expects a number");
                    assert!(
                        (0.0..=1.0).contains(&fraction),
                        "--read-fraction must be a fraction in [0, 1], got {fraction}\n{}",
                        usage()
                    );
                    args.read_fraction = fraction;
                }
                "traffic-dist" => {
                    args.traffic_dist = value
                        .parse()
                        .unwrap_or_else(|e: String| panic!("--traffic-dist: {e}\n{}", usage()));
                }
                _ if extra_keys.contains(&key) => {
                    args.extra.insert(key.to_string(), value);
                }
                _ => panic!("unknown flag --{key}\n{}", usage()),
            }
            i += 2;
        }
        args
    }

    /// An integer from [`CommonArgs::extra`], or the default.
    pub fn extra_usize(&self, key: &str, default: usize) -> usize {
        self.extra
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// The paper scenario for the configured grid.
    pub fn paper_scenario(&self) -> PaperScenario {
        PaperScenario {
            cols: self.cols,
            rows: self.rows,
            ..Default::default()
        }
    }

    /// The link profile described by the `--net-*` flags.
    pub fn link_profile(&self) -> polystyrene_protocol::LinkProfile {
        polystyrene_protocol::LinkProfile {
            latency: self.net_latency,
            jitter: self.net_jitter,
            loss: self.net_loss,
        }
    }

    /// The substrate-agnostic lab configuration for these args: K and
    /// split applied to the protocol, the `--net-*` link profile
    /// installed, area left at the grid's surface.
    pub fn lab_config(&self, split: SplitStrategy) -> LabConfig {
        let mut cfg = LabConfig::default();
        cfg.poly = PolystyreneConfig::builder()
            .replication(self.k)
            .split(split)
            .build();
        cfg.seed = self.seed;
        cfg.area = (self.cols * self.rows) as f64;
        cfg.link = self.link_profile();
        cfg
    }
}

/// The engine configuration used by engine-specific experiments unless
/// overridden: paper parameters, with the replication factor and split
/// strategy applied on top.
pub fn experiment_config(k: usize, split: SplitStrategy, seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.poly = PolystyreneConfig::builder()
        .replication(k)
        .split(split)
        .build();
    cfg.seed = seed;
    cfg
}

/// Which protocol stack a comparison run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackKind {
    /// The full stack: Polystyrene over T-Man over RPS.
    Polystyrene,
    /// T-Man alone (the paper's baseline): equivalent to Polystyrene with
    /// migration, backup and recovery disabled. Engine-only.
    TManOnly,
}

/// Aggregated engine series of repeated runs — the per-round curves of
/// the quality/overhead figures (6 and 7), which need the
/// engine-internal metrics (proximity, cost split) on top of the
/// unified observations. The driving still goes through the one lab
/// code path; only the series extraction reads the engine history.
#[derive(Clone, Debug, Default)]
pub struct QualityResult {
    /// Per-round homogeneity across runs.
    pub homogeneity: SeriesAccumulator,
    /// Per-round proximity across runs.
    pub proximity: SeriesAccumulator,
    /// Per-round stored points per node across runs.
    pub points_per_node: SeriesAccumulator,
    /// Per-round message cost per node across runs.
    pub cost_per_node: SeriesAccumulator,
    /// Per-round reference homogeneity (population-driven, identical
    /// across runs with the same scenario).
    pub reference_homogeneity: Vec<f64>,
    /// Reshaping time of each run that reshaped, in rounds.
    pub reshaping_times: Vec<f64>,
    /// Number of runs that never reshaped within the scenario.
    pub unreshaped_runs: usize,
    /// Reliability of each run.
    pub reliabilities: Vec<f64>,
}

impl QualityResult {
    /// Mean ± CI95 of the reshaping time (over runs that reshaped).
    pub fn reshaping_ci(&self) -> ConfidenceInterval {
        ci95(&self.reshaping_times)
    }

    /// Mean ± CI95 of the reliability, in percent (Table II convention).
    pub fn reliability_percent_ci(&self) -> ConfidenceInterval {
        let percents: Vec<f64> = self.reliabilities.iter().map(|r| r * 100.0).collect();
        ci95(&percents)
    }
}

/// Runs the three-phase paper scenario for one `(stack, K)`
/// configuration on the cycle engine, `runs` times with consecutive
/// seeds, through the unified scenario driver.
pub fn run_quality(
    paper: &PaperScenario,
    stack: StackKind,
    k: usize,
    split: SplitStrategy,
    runs: usize,
    seed: u64,
) -> QualityResult {
    let mut result = QualityResult::default();
    let (w, h) = paper.extents();
    for run in 0..runs {
        let mut config = experiment_config(k, split, seed + run as u64);
        config.area = paper.area();
        let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), config);
        if stack == StackKind::TManOnly {
            engine.disable_polystyrene();
        }
        let trace = polystyrene_lab::run_experiment(&mut engine, &paper.script());
        let metrics = engine.history();
        result
            .homogeneity
            .push_run(metrics.iter().map(|m| m.homogeneity).collect());
        result
            .proximity
            .push_run(metrics.iter().map(|m| m.proximity).collect());
        result
            .points_per_node
            .push_run(metrics.iter().map(|m| m.points_per_node).collect());
        result
            .cost_per_node
            .push_run(metrics.iter().map(|m| m.cost_per_node).collect());
        if result.reference_homogeneity.len() < metrics.len() {
            result.reference_homogeneity =
                metrics.iter().map(|m| m.reference_homogeneity).collect();
        }
        match trace.reshaping_rounds() {
            Some(t) => result.reshaping_times.push(f64::from(t)),
            None => result.unreshaped_runs += 1,
        }
        result.reliabilities.push(trace.reliability());
    }
    result
}

/// Runs `paper`'s script `runs` times with consecutive seeds on the
/// given substrate and aggregates the unified observations — the
/// workhorse behind every reshaping table and every `--substrate`
/// sweep.
pub fn run_summary(
    kind: SubstrateKind,
    paper: &PaperScenario,
    base: &LabConfig,
    runs: usize,
) -> ExperimentSummary {
    let (w, h) = paper.extents();
    let mut summary = ExperimentSummary::default();
    for run in 0..runs {
        let mut cfg = *base;
        cfg.seed = base.seed + run as u64;
        cfg.area = paper.area();
        let mut substrate = build_substrate(kind, Torus2::new(w, h), paper.shape(), &cfg);
        let trace = run_experiment(substrate.as_mut(), &paper.script());
        summary.push(&trace);
    }
    summary
}

/// One row of the Table II / Fig. 10 reshaping-time sweeps.
#[derive(Clone, Debug)]
pub struct ReshapingRow {
    /// Label of the row (e.g. "K=4" or a network size).
    pub label: String,
    /// Number of founding nodes.
    pub nodes: usize,
    /// Reshaping time mean ± CI95 (rounds).
    pub reshaping: ConfidenceInterval,
    /// Runs that never reshaped.
    pub unreshaped: usize,
    /// Reliability mean ± CI95 (percent).
    pub reliability: ConfidenceInterval,
    /// Wall clock spent producing this row (all its runs).
    pub elapsed: Duration,
}

impl ReshapingRow {
    /// Builds a row from a lab summary.
    pub fn from_summary(
        label: String,
        nodes: usize,
        summary: &ExperimentSummary,
        elapsed: Duration,
    ) -> Self {
        Self {
            label,
            nodes,
            reshaping: summary.reshaping_ci(),
            unreshaped: summary.unreshaped_runs(),
            reliability: summary.reliability_percent_ci(),
            elapsed,
        }
    }
}

/// Produces one Table II row: reshaping time and reliability for a given
/// K over `runs` repetitions of the failure-only scenario, on the given
/// substrate. `base` supplies everything but K and the split — seed,
/// link profile, tick — so the `--net-*` flags reach the substrates
/// that honor them instead of being silently dropped.
pub fn table2_row(
    kind: SubstrateKind,
    paper: &PaperScenario,
    k: usize,
    split: SplitStrategy,
    runs: usize,
    base: &LabConfig,
) -> ReshapingRow {
    let mut cfg = *base;
    cfg.poly = PolystyreneConfig::builder()
        .replication(k)
        .split(split)
        .build();
    let started = Instant::now();
    let summary = run_summary(kind, paper, &cfg, runs);
    ReshapingRow::from_summary(
        format!("K={k}"),
        paper.node_count(),
        &summary,
        started.elapsed(),
    )
}

/// The reshaping-time sweep of Fig. 10: one row per network size for a
/// fixed K and split strategy, on the given substrate. `sizes` are
/// `(cols, rows)` grid shapes; `base` supplies seed, link profile and
/// tick (K and split override its protocol parameters). Each row
/// carries its wall-clock cost, so observation-path performance
/// regressions show up in the sweep output itself.
pub fn scaling_sweep(
    kind: SubstrateKind,
    sizes: &[(usize, usize)],
    k: usize,
    split: SplitStrategy,
    runs: usize,
    base: &LabConfig,
    tail_rounds: u32,
) -> Vec<ReshapingRow> {
    sizes
        .iter()
        .map(|&(cols, rows)| {
            let paper = PaperScenario::reshaping_only(cols, rows, 20, tail_rounds);
            let mut cfg = *base;
            cfg.poly = PolystyreneConfig::builder()
                .replication(k)
                .split(split)
                .build();
            let started = Instant::now();
            let summary = run_summary(kind, &paper, &cfg, runs);
            ReshapingRow::from_summary(
                format!("{} nodes", cols * rows),
                cols * rows,
                &summary,
                started.elapsed(),
            )
        })
        .collect()
}

/// Formats a [`ReshapingRow`] table in the paper's Table II layout,
/// plus the wall-clock column of the sweep harness.
pub fn render_reshaping_table(title: &str, rows: &[ReshapingRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let reshaping = if r.reshaping.n == 0 {
                format!("— ({} runs never reshaped)", r.unreshaped)
            } else if r.unreshaped > 0 {
                format!("{} ({} runs never reshaped)", r.reshaping, r.unreshaped)
            } else {
                r.reshaping.to_string()
            };
            vec![
                r.label.clone(),
                r.nodes.to_string(),
                reshaping,
                format!(
                    "{:.2} ± {:.2}",
                    r.reliability.mean, r.reliability.half_width
                ),
                format!("{:.2}", r.elapsed.as_secs_f64()),
            ]
        })
        .collect();
    render_table(
        title,
        &[
            "config",
            "nodes",
            "reshaping time (rounds)",
            "reliability (%)",
            "wall (s)",
        ],
        &table_rows,
    )
}

/// Standard grid shapes for the scaling sweeps (Fig. 10), from 100
/// nodes to the top of the paper's "Size of network" axis (100 →
/// 100 000, log scale). The paper's largest *measured* run is the
/// 320×160 torus (51 200 nodes); the final 320×320 step carries the
/// sweep to the axis limit.
pub fn scaling_sizes(max_nodes: usize) -> Vec<(usize, usize)> {
    [
        (10, 10),
        (20, 10),
        (20, 20),
        (40, 20),
        (40, 40),
        (80, 40),
        (80, 80),
        (160, 80),
        (160, 160),
        (320, 160),
        (320, 320),
    ]
    .into_iter()
    .filter(|&(c, r)| c * r <= max_nodes)
    .collect()
}

/// Summarizes a quality run's headline numbers for terminal output.
pub fn summarize(result: &QualityResult, label: &str) -> String {
    let reshaping = result.reshaping_ci();
    let reliability = result.reliability_percent_ci();
    let final_h = result
        .homogeneity
        .means()
        .last()
        .copied()
        .unwrap_or(f64::NAN);
    format!(
        "{label}: reshaping {reshaping} rounds ({} unreshaped), reliability {reliability} %, final homogeneity {final_h:.3}",
        result.unreshaped_runs
    )
}

/// Mean of the last `n` samples of a series (steady-state estimate).
pub fn steady_state(series: &[f64], n: usize) -> f64 {
    if series.is_empty() {
        return f64::NAN;
    }
    let tail = &series[series.len().saturating_sub(n)..];
    ci95(tail).mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_argv_accepts_common_and_declared_extra_flags() {
        let args = CommonArgs::parse_argv(
            CommonArgs::default(),
            &["max-nodes"],
            vec!["--cols", "8", "--max-nodes", "400"]
                .into_iter()
                .map(String::from)
                .collect(),
        );
        assert_eq!(args.cols, 8);
        assert_eq!(args.extra_usize("max-nodes", 0), 400);
        assert!(!args.substrate_given);
    }

    #[test]
    fn parse_argv_accepts_every_substrate() {
        for (name, kind) in [
            ("engine", SubstrateKind::Engine),
            ("netsim", SubstrateKind::Netsim),
            ("cluster", SubstrateKind::Cluster),
            ("tcp", SubstrateKind::Tcp),
        ] {
            let args = CommonArgs::parse_argv(
                CommonArgs::default(),
                &[],
                vec!["--substrate".to_string(), name.to_string()],
            );
            assert_eq!(args.substrate, kind);
            assert!(args.substrate_given);
        }
    }

    #[test]
    #[should_panic(expected = "unknown substrate \"engien\"")]
    fn parse_argv_rejects_unknown_substrate() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--substrate".to_string(), "engien".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate flag --seed")]
    fn parse_argv_rejects_duplicate_flags() {
        // Last-one-wins used to hide the copy-paste typo here: the
        // second --seed silently overrode the first.
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--seed", "1", "--cols", "8", "--seed", "2"]
                .into_iter()
                .map(String::from)
                .collect(),
        );
    }

    #[test]
    #[should_panic(expected = "duplicate flag --max-nodes")]
    fn parse_argv_rejects_duplicate_extra_flags() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &["max-nodes"],
            vec!["--max-nodes", "400", "--max-nodes", "800"]
                .into_iter()
                .map(String::from)
                .collect(),
        );
    }

    #[test]
    fn parse_argv_accepts_net_flags() {
        let args = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec![
                "--net-latency",
                "5",
                "--net-jitter",
                "2",
                "--net-loss",
                "0.1",
                "--partition-rounds",
                "7",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        );
        assert_eq!(args.net_latency, 5);
        assert_eq!(args.net_jitter, 2);
        assert!((args.net_loss - 0.1).abs() < 1e-12);
        assert_eq!(args.partition_rounds, 7);
        let link = args.link_profile();
        assert_eq!(link.latency, 5);
        assert_eq!(link.jitter, 2);
    }

    #[test]
    #[should_panic(expected = "--net-loss must be a probability in [0, 1]")]
    fn parse_argv_rejects_out_of_range_loss() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--net-loss".to_string(), "1.5".to_string()],
        );
    }

    #[test]
    fn parse_argv_accepts_traffic_flags() {
        let args = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec![
                "--traffic-rate",
                "32",
                "--traffic-keys",
                "128",
                "--read-fraction",
                "0.75",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        );
        assert_eq!(args.traffic_rate, 32);
        assert_eq!(args.traffic_keys, 128);
        assert!((args.read_fraction - 0.75).abs() < 1e-12);
        assert_eq!(args.traffic_dist, TrafficDist::Uniform);
    }

    #[test]
    fn parse_argv_accepts_traffic_distributions() {
        let args = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--traffic-dist".to_string(), "zipf:1.2".to_string()],
        );
        match args.traffic_dist {
            TrafficDist::Zipf(s) => assert!((s - 1.2).abs() < 1e-12),
            other => panic!("expected zipf, parsed {other:?}"),
        }
        let uniform = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--traffic-dist".to_string(), "uniform".to_string()],
        );
        assert_eq!(uniform.traffic_dist, TrafficDist::Uniform);
    }

    #[test]
    #[should_panic(expected = "unknown traffic distribution")]
    fn parse_argv_rejects_unknown_traffic_distribution() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--traffic-dist".to_string(), "pareto".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "zipf exponent must be a positive finite number")]
    fn parse_argv_rejects_non_positive_zipf_exponent() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--traffic-dist".to_string(), "zipf:-1".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "--read-fraction must be a fraction in [0, 1]")]
    fn parse_argv_rejects_out_of_range_read_fraction() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--read-fraction".to_string(), "-0.2".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "--traffic-keys must be positive")]
    fn parse_argv_rejects_empty_key_universe() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--traffic-keys".to_string(), "0".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag --traffic-rat")]
    fn parse_argv_rejects_typoed_traffic_flag() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--traffic-rat".to_string(), "8".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag --net-los")]
    fn parse_argv_rejects_typoed_net_flag() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec!["--net-los".to_string(), "0.1".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "unknown flag --max-node")]
    fn parse_argv_rejects_typoed_flags() {
        let _ = CommonArgs::parse_argv(
            CommonArgs::default(),
            &["max-nodes"],
            vec!["--max-node".to_string(), "400".to_string()],
        );
    }

    #[test]
    #[should_panic(expected = "missing value for --seed")]
    fn parse_argv_rejects_dangling_flag() {
        let _ = CommonArgs::parse_argv(CommonArgs::default(), &[], vec!["--seed".to_string()]);
    }

    #[test]
    fn experiment_config_applies_k_and_split() {
        let cfg = experiment_config(8, SplitStrategy::Basic, 7);
        assert_eq!(cfg.poly.replication, 8);
        assert_eq!(cfg.poly.split, SplitStrategy::Basic);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn lab_config_carries_k_split_and_link() {
        let args = CommonArgs::parse_argv(
            CommonArgs::default(),
            &[],
            vec![
                "--k",
                "8",
                "--cols",
                "10",
                "--rows",
                "10",
                "--net-loss",
                "0.2",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        );
        let cfg = args.lab_config(SplitStrategy::Advanced);
        assert_eq!(cfg.poly.replication, 8);
        assert_eq!(cfg.area, 100.0);
        assert!((cfg.link.loss - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scaling_sizes_filtered_and_sorted() {
        let sizes = scaling_sizes(3200);
        assert_eq!(sizes.first(), Some(&(10, 10)));
        assert_eq!(sizes.last(), Some(&(80, 40)));
        assert!(sizes.iter().all(|&(c, r)| c * r <= 3200));
        let all = scaling_sizes(usize::MAX);
        assert_eq!(all.last(), Some(&(320, 320)));
        assert_eq!(all.last().map(|&(c, r)| c * r), Some(102_400));
        assert_eq!(scaling_sizes(51_200).last(), Some(&(320, 160)));
    }

    #[test]
    fn steady_state_tail_mean() {
        assert!((steady_state(&[1.0, 2.0, 3.0, 5.0], 2) - 4.0).abs() < 1e-12);
        assert!(steady_state(&[], 3).is_nan());
        assert!((steady_state(&[2.0], 10) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_f64_emits_null_for_non_finite_values() {
        assert_eq!(json_f64(1.25, 2), "1.25");
        assert_eq!(json_f64(-0.5, 3), "-0.500");
        assert_eq!(json_f64(0.0, 0), "0");
        // The degenerate-sweep values that used to produce invalid JSON.
        assert_eq!(json_f64(f64::NAN, 6), "null");
        assert_eq!(json_f64(f64::INFINITY, 6), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY, 2), "null");
    }

    #[test]
    fn reshaping_table_renders_unreshaped_marker() {
        let rows = vec![ReshapingRow {
            label: "K=2".into(),
            nodes: 100,
            reshaping: ConfidenceInterval {
                mean: 0.0,
                half_width: 0.0,
                n: 0,
            },
            unreshaped: 3,
            reliability: ConfidenceInterval {
                mean: 50.0,
                half_width: 1.0,
                n: 3,
            },
            elapsed: Duration::from_millis(1234),
        }];
        let t = render_reshaping_table("T", &rows);
        assert!(t.contains("never reshaped"));
        assert!(t.contains("wall (s)"));
        assert!(t.contains("1.23"));
    }

    #[test]
    fn tiny_end_to_end_table2_row() {
        let paper = PaperScenario::reshaping_only(12, 6, 8, 25);
        let row = table2_row(
            SubstrateKind::Engine,
            &paper,
            3,
            SplitStrategy::Advanced,
            2,
            &LabConfig::default(),
        );
        assert_eq!(row.nodes, 72);
        assert!(row.reliability.mean > 70.0);
    }

    #[test]
    fn tiny_quality_run_aggregates() {
        let paper = PaperScenario {
            cols: 12,
            rows: 6,
            step: 1.0,
            failure_round: 10,
            inject_round: None,
            total_rounds: 30,
        };
        let result = run_quality(
            &paper,
            StackKind::Polystyrene,
            3,
            SplitStrategy::Advanced,
            2,
            1,
        );
        assert_eq!(result.homogeneity.run_count(), 2);
        assert_eq!(result.homogeneity.rounds(), 30);
        assert_eq!(result.reference_homogeneity.len(), 30);
        assert_eq!(result.reliabilities.len(), 2);
        assert_eq!(result.reshaping_times.len() + result.unreshaped_runs, 2);
        assert!(result.unreshaped_runs == 0, "tiny torus must reshape");
        // The baseline heals links but the shape is lost for good.
        let tman = run_quality(
            &paper,
            StackKind::TManOnly,
            3,
            SplitStrategy::Advanced,
            1,
            1,
        );
        assert_eq!(tman.reshaping_times.len(), 0);
        assert_eq!(tman.unreshaped_runs, 1);
        assert!(tman.reliability_percent_ci().mean < 60.0);
    }
}
