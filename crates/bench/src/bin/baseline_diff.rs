//! **Baseline differ** — the CI regression gate over the benchmark
//! JSON artifacts (`BENCH_matrix.json`, `BENCH_netsim.json`).
//!
//! Compares the current run against a committed baseline snapshot and
//! fails (exit 1) when any tracked metric gets worse by more than
//! `--max-regression` (default 0.25, i.e. 25%):
//!
//! * `mean_reshaping_rounds` per substrate entry — convergence speed,
//! * `mean_cost_units` per substrate entry — the paper's bandwidth
//!   unit price (Sec. IV-A),
//! * `mean_traffic_availability` per substrate entry, when present —
//!   the traffic plane's served fraction, gated as its complement
//!   (unavailability is lower-is-better) against an absolute floor,
//! * `wall_secs` per substrate from the artifact metadata — real time,
//! * `allocs_per_round` from the artifact metadata, when present — the
//!   netsim sweep's deterministic steady-state allocation count (gated
//!   exactly: the probe is seeded and single-threaded).
//!
//! Improvements (lower values) always pass; a substrate present in the
//! baseline but missing from the current run is a failure, so the gate
//! cannot be dodged by dropping a substrate from the matrix. Noisy
//! metrics (wall-clock everywhere, round counts on the live threaded
//! substrates) are gated against a denominator *floor* so small
//! baselines are judged on absolute drift instead of timer noise; the
//! deterministic substrates' round and cost metrics are gated exactly.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin baseline_diff -- \
//!     --baseline crates/bench/baselines/BENCH_matrix.json \
//!     --current  target/experiments/substrate_matrix.json
//! ```

use polystyrene_bench::minijson::{parse, Json};

/// Denominator floor for wall-clock comparisons: a 25% gate on a
/// 5-second floor allows 1.25 s of absolute drift, which covers the
/// live substrates' run-to-run scheduler noise while still catching an
/// order-of-magnitude blow-up.
const WALL_FLOOR_SECS: f64 = 5.0;

/// Denominator floor for `mean_reshaping_rounds` on the *live*
/// substrates (cluster, tcp), whose round counts are quantized and
/// wall-clock-scheduling dependent (observed drifting 1–8 rounds run
/// to run on the shared scenario). A 25% gate on a 20-round floor
/// allows 5 rounds of absolute drift — beyond anything the scenario
/// produces by timing alone — while a convergence regression that
/// doubles the budget still trips. The deterministic substrates
/// (engine, netsim) reproduce their round counts exactly and are gated
/// with no floor.
const LIVE_ROUNDS_FLOOR: f64 = 20.0;

/// Denominator floor for the traffic plane's unserved fraction
/// (`1 − mean_traffic_availability`). The deterministic substrates
/// serve the catastrophe scenario at ~98–99% mean availability, so the
/// baseline unavailability is a couple of percent; gating it exactly
/// would let one extra dropped query per run trip the diff. A 25% gate
/// on a 0.02 floor allows half a point of absolute availability drift
/// while a substrate that stops serving queries still fails loudly.
const UNAVAILABILITY_FLOOR: f64 = 0.02;

/// Substrates whose scenario runs are bit-reproducible; everything
/// else is a live threaded deployment with wall-clock jitter.
///
/// In the matrix artifact the entry *labels* name substrates; in a
/// single-substrate artifact (e.g. `fig_loss_latency`'s sweep, whose
/// labels are `loss=0.05` rows) the substrate is named once in the
/// document metadata and covers every entry — see
/// [`doc_is_deterministic`].
fn is_deterministic(label: &str) -> bool {
    matches!(label, "engine" | "netsim")
}

/// Whether the document's `substrate` metadata pins every entry to a
/// deterministic substrate (absent in the matrix artifact, where the
/// per-entry label decides instead).
fn doc_is_deterministic(doc: &Json) -> bool {
    doc.get("substrate")
        .and_then(Json::as_str)
        .is_some_and(is_deterministic)
}

/// One tracked metric for one substrate: where it was, where it is.
struct Comparison {
    what: String,
    baseline: f64,
    current: f64,
    /// Minimum denominator for the relative change. Zero for exact
    /// metrics; wall-clock uses [`WALL_FLOOR_SECS`] so that short
    /// baselines (the deterministic substrates finish in milliseconds,
    /// the live ones in a couple of seconds with ±30% scheduler noise
    /// on the 1-core CI box) are gated on absolute seconds rather than
    /// timer noise, while genuinely long benches stay relatively gated.
    floor: f64,
}

impl Comparison {
    /// Fractional change; positive = worse (all tracked metrics are
    /// lower-is-better).
    fn regression(&self) -> f64 {
        let denom = self.baseline.max(self.floor);
        if denom <= 0.0 {
            // A zero baseline can't be regressed against in relative
            // terms; treat any measurable current value as neutral.
            0.0
        } else {
            (self.current - self.baseline) / denom
        }
    }
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("failed to read {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("failed to parse {path}: {e}"))
}

/// The `entries` array keyed by each entry's `label`.
fn entries_by_label(doc: &Json) -> Vec<(&str, &Json)> {
    doc.get("entries")
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(|e| e.get("label").and_then(Json::as_str).map(|l| (l, e)))
                .collect()
        })
        .unwrap_or_default()
}

fn lookup<'a>(entries: &[(&str, &'a Json)], label: &str) -> Option<&'a Json> {
    entries.iter().find(|(l, _)| *l == label).map(|(_, e)| *e)
}

fn main() {
    let mut baseline_path = String::new();
    let mut current_path = String::new();
    let mut max_regression = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--baseline" => baseline_path = value("--baseline"),
            "--current" => current_path = value("--current"),
            "--max-regression" => {
                max_regression = value("--max-regression")
                    .parse()
                    .expect("--max-regression must be a number")
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(!baseline_path.is_empty(), "--baseline is required");
    assert!(!current_path.is_empty(), "--current is required");

    let baseline = load(&baseline_path);
    let current = load(&current_path);
    let baseline_entries = entries_by_label(&baseline);
    let current_entries = entries_by_label(&current);
    let all_deterministic = doc_is_deterministic(&baseline);

    let mut comparisons: Vec<Comparison> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // Per-entry metrics. The baseline drives the loop: every substrate
    // it measured must still be measured.
    for (label, base_entry) in &baseline_entries {
        let Some(cur_entry) = lookup(&current_entries, label) else {
            failures.push(format!(
                "{label}: present in baseline, missing from current run"
            ));
            continue;
        };
        for metric in ["mean_reshaping_rounds", "mean_cost_units"] {
            let base = base_entry.get(metric).and_then(Json::as_f64);
            let cur = cur_entry.get(metric).and_then(Json::as_f64);
            match (base, cur) {
                (Some(b), Some(c)) => comparisons.push(Comparison {
                    what: format!("{label}/{metric}"),
                    baseline: b,
                    current: c,
                    floor: if metric == "mean_reshaping_rounds"
                        && !all_deterministic
                        && !is_deterministic(label)
                    {
                        LIVE_ROUNDS_FLOOR
                    } else {
                        0.0
                    },
                }),
                (Some(_), None) => {
                    failures.push(format!("{label}/{metric}: measured in baseline, null now"))
                }
                // Metric absent from the baseline: nothing to gate on.
                (None, _) => {}
            }
        }
        // Availability is the one higher-is-better metric; gate its
        // complement (the unserved fraction) through the same
        // lower-is-better machinery. The floor keeps a near-perfect
        // baseline (unavailability ~0.01) from turning sub-percent
        // drift into a huge relative regression: 25% of a 0.02 floor
        // allows half a point of absolute availability drift.
        if let Some(b) = base_entry
            .get("mean_traffic_availability")
            .and_then(Json::as_f64)
        {
            match cur_entry
                .get("mean_traffic_availability")
                .and_then(Json::as_f64)
            {
                Some(c) => comparisons.push(Comparison {
                    what: format!("{label}/traffic_unavailability"),
                    baseline: 1.0 - b,
                    current: 1.0 - c,
                    floor: UNAVAILABILITY_FLOOR,
                }),
                None => failures.push(format!(
                    "{label}/mean_traffic_availability: measured in baseline, null now"
                )),
            }
        }
    }

    // Wall-clock from the metadata object.
    if let Some(base_walls) = baseline.get("wall_secs").and_then(Json::as_obj) {
        let cur_walls = current.get("wall_secs").and_then(Json::as_obj);
        for (label, base) in base_walls {
            let Some(b) = base.as_f64() else { continue };
            let cur = cur_walls
                .and_then(|w| w.iter().find(|(l, _)| l == label))
                .and_then(|(_, v)| v.as_f64());
            match cur {
                Some(c) => comparisons.push(Comparison {
                    what: format!("{label}/wall_secs"),
                    baseline: b,
                    current: c,
                    floor: WALL_FLOOR_SECS,
                }),
                None => failures.push(format!(
                    "{label}/wall_secs: measured in baseline, missing from current run"
                )),
            }
        }
    }

    // Scalar metadata metrics (lower-is-better, exact): currently the
    // netsim sweep's deterministic allocation telemetry. A baseline
    // that measured it must keep being measured — dropping the scalar
    // is a failure, exactly like dropping a substrate.
    if let Some(b) = baseline.get("allocs_per_round").and_then(Json::as_f64) {
        match current.get("allocs_per_round").and_then(Json::as_f64) {
            Some(c) => comparisons.push(Comparison {
                what: "allocs_per_round".to_string(),
                baseline: b,
                current: c,
                floor: 0.0,
            }),
            None => failures.push(
                "allocs_per_round: measured in baseline, missing from current run".to_string(),
            ),
        }
    }

    assert!(
        !comparisons.is_empty() || !failures.is_empty(),
        "no comparable metrics found — wrong files?"
    );

    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "metric", "baseline", "current", "change"
    );
    for c in &comparisons {
        let r = c.regression();
        let verdict = if r > max_regression { "  FAIL" } else { "" };
        println!(
            "{:<28} {:>10.3} {:>10.3} {:>+7.1}%{verdict}",
            c.what,
            c.baseline,
            c.current,
            r * 100.0
        );
        if r > max_regression {
            failures.push(format!(
                "{}: {:.3} -> {:.3} (+{:.1}%, limit +{:.0}%)",
                c.what,
                c.baseline,
                c.current,
                r * 100.0,
                max_regression * 100.0
            ));
        }
    }

    if !failures.is_empty() {
        eprintln!();
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "\nOK: {} metric(s) within +{:.0}% of baseline",
        comparisons.len(),
        max_regression * 100.0
    );
}
