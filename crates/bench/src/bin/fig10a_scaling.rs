//! **Figure 10a** — reshaping time vs network size for K ∈ {2, 4, 8}
//! with `SPLIT_ADVANCED`. The paper reports near-logarithmic growth,
//! reaching 14.08 ± 0.11 rounds at 51 200 nodes with K = 8.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig10a_scaling -- \
//!     --max-nodes 51200 --runs 25       # full paper scale (slow!)
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{render_reshaping_table, scaling_sizes, scaling_sweep, CommonArgs};
use polystyrene_sim::prelude::write_csv;

fn main() {
    let args = CommonArgs::parse_with(
        CommonArgs {
            runs: 3,
            ..Default::default()
        },
        &["max-nodes"],
    );
    let max_nodes = args.extra_usize("max-nodes", 6400);
    let sizes = scaling_sizes(max_nodes);
    println!(
        "Fig. 10a sweep: sizes {:?}, K ∈ {{2, 4, 8}}, {} runs each\n",
        sizes.iter().map(|&(c, r)| c * r).collect::<Vec<_>>(),
        args.runs
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for &k in &[8usize, 4, 2] {
        let rows = scaling_sweep(&sizes, k, SplitStrategy::Advanced, args.runs, args.seed, 60);
        println!(
            "{}",
            render_reshaping_table(&format!("Fig. 10a — Polystyrene_K{k}"), &rows)
        );
        for r in &rows {
            csv_rows.push(vec![
                k.to_string(),
                r.nodes.to_string(),
                format!("{:.3}", r.reshaping.mean),
                format!("{:.3}", r.reshaping.half_width),
            ]);
        }
    }
    write_csv(
        args.out.join("fig10a_scaling.csv"),
        &["K", "nodes", "reshaping_mean", "reshaping_ci95"],
        &csv_rows,
    )
    .expect("failed to write CSV");
    println!("CSV written to {}", args.out.display());
    println!(
        "\nExpected shape (paper Fig. 10a): reshaping time grows roughly\n\
         logarithmically with network size and increases with K at every size."
    );
}
