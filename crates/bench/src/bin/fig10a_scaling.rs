//! **Figure 10a** — reshaping time vs network size for K ∈ {2, 4, 8}
//! with `SPLIT_ADVANCED`. The paper reports near-logarithmic growth,
//! reaching 14.08 ± 0.11 rounds at 51 200 nodes with K = 8; the sweep
//! here continues one step past the paper's largest measured run, to
//! the 100 000-node top of its axis (`--max-nodes 102400`, a 320×320
//! torus on the slab-pooled engine).
//!
//! Runs on any execution substrate via `--substrate` (default: the
//! cycle engine, the only one that reaches paper scale on one box —
//! live substrates spawn threads per node, so their default sweep is
//! capped lower). Each table row reports its wall-clock cost, so
//! observation-path performance regressions are visible in the sweep
//! output itself.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig10a_scaling -- \
//!     --max-nodes 102400 --runs 25      # full axis scale (slow!)
//! cargo run --release -p polystyrene-bench --bin fig10a_scaling -- \
//!     --substrate netsim --max-nodes 1600 --runs 3
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{
    json_f64, render_reshaping_table, scaling_sizes, scaling_sweep, CommonArgs, ReshapingRow,
};
use polystyrene_lab::SubstrateKind;
use polystyrene_sim::prelude::write_csv;

/// The machine-readable sweep artifact: per-row wall-clock in a
/// `wall_secs` object plus per-row reshaping means as `entries`, the
/// same shape `baseline_diff` already gates for the matrix and netsim
/// artifacts. Rows are labeled `K<k>/n=<nodes>`; on the deterministic
/// engine substrate the reshaping means are gated exactly and the
/// 12 800-node wall-clock rides the relative gate.
fn sweep_json(
    substrate: SubstrateKind,
    runs: usize,
    sweeps: &[(usize, Vec<ReshapingRow>)],
) -> String {
    let all: Vec<(String, &ReshapingRow)> = sweeps
        .iter()
        .flat_map(|(k, rows)| rows.iter().map(move |r| (format!("K{k}/n={}", r.nodes), r)))
        .collect();
    let wall_secs = all
        .iter()
        .map(|(label, r)| format!("\"{label}\":{}", json_f64(r.elapsed.as_secs_f64(), 3)))
        .collect::<Vec<_>>()
        .join(",");
    let entries = all
        .iter()
        .map(|(label, r)| {
            format!(
                "{{\"label\":\"{label}\",\"nodes\":{},\"mean_reshaping_rounds\":{},\"unreshaped_runs\":{},\"reliability_mean\":{}}}",
                r.nodes,
                json_f64(r.reshaping.mean, 2),
                r.unreshaped,
                json_f64(r.reliability.mean, 2),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"figure\":\"fig10a_scaling\",\"substrate\":\"{substrate}\",\"runs\":{runs},\
         \"wall_secs\":{{{wall_secs}}},\"entries\":[{entries}]}}\n"
    )
}

fn main() {
    let args = CommonArgs::parse_with(
        CommonArgs {
            runs: 3,
            ..Default::default()
        },
        &["max-nodes"],
    );
    // Thread-per-node substrates default to a much smaller sweep.
    let default_max = match args.substrate {
        SubstrateKind::Engine | SubstrateKind::Netsim => 6400,
        SubstrateKind::Cluster | SubstrateKind::Tcp => 400,
    };
    let max_nodes = args.extra_usize("max-nodes", default_max);
    let sizes = scaling_sizes(max_nodes);
    println!(
        "Fig. 10a sweep on {}: sizes {:?}, K ∈ {{2, 4, 8}}, {} runs each\n",
        args.substrate,
        sizes.iter().map(|&(c, r)| c * r).collect::<Vec<_>>(),
        args.runs
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut sweeps: Vec<(usize, Vec<ReshapingRow>)> = Vec::new();
    for &k in &[8usize, 4, 2] {
        let rows = scaling_sweep(
            args.substrate,
            &sizes,
            k,
            SplitStrategy::Advanced,
            args.runs,
            &args.lab_config(SplitStrategy::Advanced),
            60,
        );
        println!(
            "{}",
            render_reshaping_table(
                &format!("Fig. 10a — Polystyrene_K{k} on {}", args.substrate),
                &rows
            )
        );
        for r in &rows {
            csv_rows.push(vec![
                k.to_string(),
                r.nodes.to_string(),
                format!("{:.3}", r.reshaping.mean),
                format!("{:.3}", r.reshaping.half_width),
                format!("{:.3}", r.elapsed.as_secs_f64()),
            ]);
        }
        sweeps.push((k, rows));
    }
    write_csv(
        args.out.join("fig10a_scaling.csv"),
        &[
            "K",
            "nodes",
            "reshaping_mean",
            "reshaping_ci95",
            "wall_secs",
        ],
        &csv_rows,
    )
    .expect("failed to write CSV");
    let json_path = args.out.join("fig10a_scaling.json");
    std::fs::write(&json_path, sweep_json(args.substrate, args.runs, &sweeps))
        .expect("failed to write JSON");
    println!("CSV written to {}", args.out.display());
    println!("JSON written to {}", json_path.display());
    println!(
        "\nExpected shape (paper Fig. 10a): reshaping time grows roughly\n\
         logarithmically with network size and increases with K at every size."
    );
}
