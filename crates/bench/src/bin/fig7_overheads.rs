//! **Figure 7** — memory overhead (7a: data points per node) and
//! communication cost (7b: units per node per round) over the three-phase
//! scenario, for Polystyrene K ∈ {2, 4, 8} and the T-Man baseline.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig7_overheads -- \
//!     --cols 80 --rows 40 --runs 25     # full paper scale
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{run_quality, steady_state, CommonArgs, StackKind};
use polystyrene_sim::prelude::*;

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        cols: 40,
        rows: 20,
        runs: 3,
        ..Default::default()
    });
    let paper = args.paper_scenario();
    println!(
        "Fig. 7 scenario: {}-node torus, failure at r={}, reinjection at r={:?}, {} runs",
        paper.node_count(),
        paper.failure_round,
        paper.inject_round,
        args.runs
    );

    let mut points_series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut cost_series: Vec<(String, Vec<f64>)> = Vec::new();

    for &k in &[8usize, 4, 2] {
        let result = run_quality(
            &paper,
            StackKind::Polystyrene,
            k,
            SplitStrategy::Advanced,
            args.runs,
            args.seed,
        );
        let points = result.points_per_node.means();
        let cost = result.cost_per_node.means();
        let pre_failure = points
            .get(paper.failure_round as usize - 1)
            .copied()
            .unwrap_or(f64::NAN);
        println!(
            "Polystyrene_K{k}: points/node before failure {:.2} (expect 1+K={}), \
             steady after failure {:.2}, cost/node steady {:.1} units",
            pre_failure,
            1 + k,
            steady_state(
                &points[..paper.inject_round.unwrap_or(paper.total_rounds) as usize],
                10
            ),
            steady_state(&cost, 10),
        );
        points_series.push((format!("Polystyrene_K{k}"), points));
        cost_series.push((format!("Polystyrene_K{k}"), cost));
    }
    let tman = run_quality(
        &paper,
        StackKind::TManOnly,
        4,
        SplitStrategy::Advanced,
        args.runs,
        args.seed,
    );
    println!(
        "TMan: points/node {:.2} (always exactly 1), cost/node steady {:.1} units",
        steady_state(&tman.points_per_node.means(), 10),
        steady_state(&tman.cost_per_node.means(), 10),
    );
    points_series.push(("TMan".into(), tman.points_per_node.means()));
    cost_series.push(("TMan".into(), tman.cost_per_node.means()));

    for (title, series, file) in [
        (
            "Fig. 7a — data points per node",
            &points_series,
            "fig7a_points_per_node.csv",
        ),
        (
            "Fig. 7b — message cost per node (units)",
            &cost_series,
            "fig7b_cost_per_node.csv",
        ),
    ] {
        let refs: Vec<(&str, &[f64])> = series
            .iter()
            .map(|(label, s)| (label.as_str(), s.as_slice()))
            .collect();
        println!("\n{}", ascii_plot(title, &refs, 14, 72));
        let (headers, rows) = series_rows(&refs);
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        write_csv(args.out.join(file), &headers_ref, &rows).expect("failed to write CSV");
    }
    println!("CSV series written to {}", args.out.display());
    println!(
        "\nExpected shape (paper Fig. 7): points/node sits at 1+K before the\n\
         failure, spikes right after it (eager re-replication of recovered\n\
         ghosts) and decays as migration deduplicates; cost is dominated by\n\
         T-Man position updates (93.6% for K=8 in the paper), with Polystyrene\n\
         adding only migration traffic and incremental backup deltas."
    );
}
