//! **Loss/latency sweep** (beyond the paper) — convergence and recovery
//! quality vs message-drop rate and link latency. The paper's
//! evaluation assumes reliable atomic exchanges; this figure measures
//! how far the protocol degrades when the fabric delays, reorders and
//! loses messages — and pins that it still recovers the shape at 10%
//! loss.
//!
//! Runs through the unified experiment plane on any substrate with a
//! network model: the discrete-event kernel by default (`--substrate
//! netsim`, the only one honoring latency/jitter), or the live clusters
//! (which honor the loss probability at their send boundary). The cycle
//! engine has no fabric to disturb and is rejected.
//!
//! Emits machine-readable JSON (one record per sweep point, via the
//! shared emitter) for the CI perf/quality trajectory, and exits
//! nonzero if any netsim point at or below 10% loss fails to recover —
//! so the artifact upload doubles as a regression gate.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig_loss_latency -- \
//!     --cols 40 --rows 25 --runs 3 --net-latency 2 --net-jitter 1
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::CommonArgs;
use polystyrene_lab::{summary_json, ExperimentSummary, SubstrateKind};
use polystyrene_membership::NodeId;
use polystyrene_protocol::{PaperScenario, Scenario, ScenarioEvent};

/// The baseline drop rates swept (≥ 3 points, per the netsim acceptance
/// bar); an explicit `--net-loss` is merged in as an extra point.
const LOSSES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// The sweep's drop-rate points: the baseline plus `--net-loss` when it
/// names a rate not already swept — the flag must never be a silent
/// no-op.
fn sweep_losses(args: &CommonArgs) -> Vec<f64> {
    let mut losses = LOSSES.to_vec();
    if !losses.iter().any(|&l| (l - args.net_loss).abs() < 1e-12) {
        losses.push(args.net_loss);
        losses.sort_by(|a, b| a.partial_cmp(b).expect("validated probabilities"));
    }
    losses
}
/// Rounds of convergence before the catastrophic failure.
const FAILURE_ROUND: u32 = 20;
/// Observation rounds after the failure (lossy recovery at 1k nodes
/// needs ~50-60 rounds; see the JSON for the measured reshaping times).
const TAIL_ROUNDS: u32 = 80;

/// The sweep's scenario: converge, kill the right half-torus, and — with
/// `--partition-rounds N` — additionally isolate the left quarter of the
/// surviving founders for N rounds mid-recovery, expressed as a scripted
/// [`ScenarioEvent::Partition`] (substrates without a fabric to cut
/// no-op it). The partition window *extends* the scenario, so the
/// post-heal recovery budget stays the full `TAIL_ROUNDS` regardless of
/// the flag.
fn sweep_scenario(args: &CommonArgs) -> Scenario<[f64; 2]> {
    let paper = PaperScenario::reshaping_only(
        args.cols,
        args.rows,
        FAILURE_ROUND,
        TAIL_ROUNDS + args.partition_rounds,
    );
    let mut scenario = paper.script();
    if args.partition_rounds > 0 {
        let quarter = args.cols as f64 / 4.0;
        let minority: Vec<NodeId> = paper
            .shape()
            .iter()
            .enumerate()
            .filter(|(_, p)| p[0] < quarter)
            .map(|(i, _)| NodeId::new(i as u64))
            .collect();
        scenario = scenario.at(
            FAILURE_ROUND,
            ScenarioEvent::Partition {
                groups: vec![minority],
                rounds: args.partition_rounds,
            },
        );
    }
    scenario
}

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        cols: 40,
        rows: 25, // 1000 nodes — the sweep's minimum scale
        runs: 1,
        substrate: SubstrateKind::Netsim,
        ..Default::default()
    });
    assert!(
        args.substrate.has_network_model(),
        "the loss/latency sweep needs a substrate with a network model \
         (netsim, cluster or tcp — the cycle engine has no fabric to disturb)"
    );
    assert!(
        args.cols * args.rows >= 1000 || args.substrate != SubstrateKind::Netsim,
        "the netsim loss/latency sweep is specified at >= 1k nodes (got {})",
        args.cols * args.rows
    );
    // The thread-per-node substrates cannot take the netsim default of
    // 1000 nodes × 4 sweep points on modest hardware: demand an explicit
    // small grid instead of silently grinding the box.
    assert!(
        args.cols * args.rows <= 256 || matches!(args.substrate, SubstrateKind::Netsim),
        "{} spawns threads (and sockets) per node: pass --cols/--rows with <= 256 nodes \
         (e.g. --cols 8 --rows 8), got {}",
        args.substrate,
        args.cols * args.rows
    );
    let losses = sweep_losses(&args);
    let scenario_paper = PaperScenario::reshaping_only(
        args.cols,
        args.rows,
        FAILURE_ROUND,
        TAIL_ROUNDS + args.partition_rounds,
    );
    println!(
        "Loss/latency sweep on {}: {} nodes, losses {:?}, latency {} ± {} ticks, {} run(s) per point{}\n",
        args.substrate,
        args.cols * args.rows,
        losses,
        args.net_latency,
        args.net_jitter,
        args.runs,
        if args.partition_rounds > 0 {
            format!(
                ", {}-round partition during recovery",
                args.partition_rounds
            )
        } else {
            String::new()
        },
    );

    // One summary per sweep point, every run through the one unified
    // driver with the one (possibly partition-extended) script.
    let scenario = sweep_scenario(&args);
    let mut summaries: Vec<(String, ExperimentSummary)> = Vec::new();
    for &loss in &losses {
        let mut base = args.lab_config(SplitStrategy::Advanced);
        base.link.loss = loss;
        let mut summary = ExperimentSummary::default();
        for run in 0..args.runs {
            let mut cfg = base;
            cfg.seed = base.seed + run as u64;
            let mut substrate = polystyrene_lab::build_substrate(
                args.substrate,
                polystyrene_space::torus::Torus2::new(args.cols as f64, args.rows as f64),
                scenario_paper.shape(),
                &cfg,
            );
            summary.push(&polystyrene_lab::run_experiment(
                substrate.as_mut(),
                &scenario,
            ));
        }
        let summary = summary;
        let reshaping = match summary.mean_reshaping_rounds() {
            Some(mean) => format!(
                "{mean:.1} rounds ({}/{} runs)",
                summary.recovered_runs(),
                args.runs
            ),
            None => "never".to_string(),
        };
        let last_h = summary
            .homogeneity
            .last()
            .map(|s| s.mean())
            .unwrap_or(f64::NAN);
        let last_ref = summary
            .reference_homogeneity
            .last()
            .map(|s| s.mean())
            .unwrap_or(f64::NAN);
        let last_survival = summary
            .surviving_points
            .last()
            .map(|s| s.mean())
            .unwrap_or(f64::NAN);
        let last_points = summary
            .points_per_node
            .last()
            .map(|s| s.mean())
            .unwrap_or(f64::NAN);
        println!(
            "loss {:>4.0}% → reshaping {reshaping}, final homogeneity {last_h:.3} (ref {last_ref:.3}), \
             survival {:.1}%, {last_points:.1} pts/node",
            loss * 100.0,
            last_survival * 100.0,
        );
        summaries.push((format!("loss={loss}"), summary));
    }

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    let entries: Vec<(String, &ExperimentSummary)> = summaries
        .iter()
        .map(|(label, s)| (label.clone(), s))
        .collect();
    let json = summary_json(
        "fig_loss_latency",
        &[
            ("substrate", format!("\"{}\"", args.substrate)),
            ("nodes", (args.cols * args.rows).to_string()),
            ("runs", args.runs.to_string()),
            ("failure_round", FAILURE_ROUND.to_string()),
            ("tail_rounds", TAIL_ROUNDS.to_string()),
            ("partition_rounds", args.partition_rounds.to_string()),
            ("latency", args.net_latency.to_string()),
            ("jitter", args.net_jitter.to_string()),
        ],
        &entries,
    );
    let json_path = args.out.join("fig_loss_latency.json");
    std::fs::write(&json_path, json).expect("failed to write JSON");
    println!("\nJSON written to {}", json_path.display());

    // Regression gate: the protocol must recover everywhere at <= 10%
    // loss. Only the plain netsim kill scenario is gated — an explicit
    // `--partition-rounds` (or a wall-clock substrate, whose runs are
    // scheduling-sensitive) makes the run a diagnostic, not a baseline.
    if args.partition_rounds > 0 {
        println!("(recovery gate skipped: custom partition scenario)");
        return;
    }
    if args.substrate != SubstrateKind::Netsim {
        println!("(recovery gate skipped: gate is pinned on the deterministic netsim substrate)");
        return;
    }
    let failed: Vec<&str> = losses
        .iter()
        .zip(&summaries)
        .filter(|(&loss, (_, s))| loss <= 0.10 && s.recovered_runs() < s.runs)
        .map(|(_, (label, _))| label.as_str())
        .collect();
    if !failed.is_empty() {
        eprintln!("FAIL: no recovery at drop rates {failed:?} (<= 10% loss must recover)");
        std::process::exit(1);
    }
    println!("OK: recovery holds at every drop rate <= 10%");
}
