//! **Loss/latency sweep** (beyond the paper) — convergence and recovery
//! quality vs message-drop rate and link latency, on the discrete-event
//! network simulator. The paper's evaluation assumes reliable atomic
//! exchanges; this figure measures how far the protocol degrades when the
//! fabric delays, reorders and loses messages — and pins that it still
//! recovers the shape at 10% loss.
//!
//! Emits machine-readable JSON (one record per sweep point) for the CI
//! perf/quality trajectory, and exits nonzero if any point at or below
//! 10% loss fails to recover — so the artifact upload doubles as a
//! regression gate.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig_loss_latency -- \
//!     --cols 40 --rows 25 --runs 3 --net-latency 2 --net-jitter 1
//! ```

use polystyrene_bench::{json_f64, CommonArgs};
use polystyrene_membership::NodeId;
use polystyrene_netsim::prelude::*;
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;
use std::fmt::Write as _;

/// The baseline drop rates swept (≥ 3 points, per the netsim acceptance
/// bar); an explicit `--net-loss` is merged in as an extra point.
const LOSSES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// The sweep's drop-rate points: the baseline plus `--net-loss` when it
/// names a rate not already swept — the flag must never be a silent
/// no-op.
fn sweep_losses(args: &CommonArgs) -> Vec<f64> {
    let mut losses = LOSSES.to_vec();
    if !losses.iter().any(|&l| (l - args.net_loss).abs() < 1e-12) {
        losses.push(args.net_loss);
        losses.sort_by(|a, b| a.partial_cmp(b).expect("validated probabilities"));
    }
    losses
}
/// Rounds of convergence before the catastrophic failure.
const FAILURE_ROUND: u32 = 20;
/// Observation rounds after the failure (lossy recovery at 1k nodes
/// needs ~50-60 rounds; see the JSON for the measured reshaping times).
const TAIL_ROUNDS: u32 = 80;

/// One sweep point. Every scalar field is the **mean over the runs** at
/// this point (reshaping keeps the per-run list so non-recovering runs
/// stay visible), so the recorded trajectory reflects all seeds, not
/// just the last one.
struct SweepPoint {
    loss: f64,
    latency: u64,
    jitter: u64,
    reshaping_rounds: Vec<Option<u32>>,
    final_homogeneity: f64,
    reference_homogeneity: f64,
    surviving_points: f64,
    points_per_node: f64,
    dropped_messages: f64,
    sent_messages: f64,
}

impl SweepPoint {
    fn recovered_runs(&self) -> usize {
        self.reshaping_rounds.iter().flatten().count()
    }

    fn recovered(&self) -> bool {
        self.recovered_runs() == self.reshaping_rounds.len()
    }

    fn mean_reshaping(&self) -> Option<f64> {
        let done: Vec<u32> = self.reshaping_rounds.iter().flatten().copied().collect();
        if done.is_empty() {
            None
        } else {
            Some(done.iter().sum::<u32>() as f64 / done.len() as f64)
        }
    }
}

fn sweep_point(args: &CommonArgs, loss: f64) -> SweepPoint {
    let (cols, rows) = (args.cols, args.rows);
    let mut reshaping_rounds = Vec::with_capacity(args.runs);
    let mut finals: Vec<NetRoundMetrics> = Vec::with_capacity(args.runs);
    for run in 0..args.runs {
        let mut cfg = NetSimConfig::default();
        cfg.area = (cols * rows) as f64;
        cfg.seed = args.seed + run as u64;
        cfg.link = LinkProfile {
            latency: args.net_latency,
            jitter: args.net_jitter,
            loss,
        };
        let mut sim = NetSim::new(
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            cfg,
        );
        sim.run(FAILURE_ROUND);
        sim.fail_original_region(&shapes::in_right_half(cols as f64));
        if args.partition_rounds > 0 {
            // `--partition-rounds N`: on top of the kill, isolate the
            // left quarter of the surviving founders for N rounds — a
            // regional cut during recovery — then heal.
            let minority: Vec<NodeId> = sim
                .original_points()
                .iter()
                .filter(|p| p.pos[0] < cols as f64 / 4.0)
                .map(|p| NodeId::new(p.id.as_u64()))
                .collect();
            sim.network_mut().set_partition(&[minority]);
            sim.run(args.partition_rounds);
            sim.network_mut().heal();
        }
        sim.run(TAIL_ROUNDS);
        reshaping_rounds.push(net_reshaping_time(sim.history(), FAILURE_ROUND));
        finals.push(*sim.history().last().expect("ran"));
    }
    let mean =
        |f: fn(&NetRoundMetrics) -> f64| finals.iter().map(f).sum::<f64>() / finals.len() as f64;
    SweepPoint {
        loss,
        latency: args.net_latency,
        jitter: args.net_jitter,
        reshaping_rounds,
        final_homogeneity: mean(|m| m.homogeneity),
        reference_homogeneity: mean(|m| m.reference_homogeneity),
        surviving_points: mean(|m| m.surviving_points),
        points_per_node: mean(|m| m.points_per_node),
        dropped_messages: mean(|m| m.dropped_messages as f64),
        sent_messages: mean(|m| m.sent_messages as f64),
    }
}

/// Hand-rolled JSON (the serde shim has no serialization machinery, by
/// design): numbers, bools and flat arrays only — nothing to escape.
/// Every float goes through [`json_f64`]: a degenerate sweep (empty
/// surviving population → infinite homogeneity, zero recovered runs)
/// must yield `null`, not the invalid-JSON tokens `NaN`/`inf`.
fn to_json(args: &CommonArgs, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"figure\":\"fig_loss_latency\",\"nodes\":{},\"runs\":{},\"failure_round\":{FAILURE_ROUND},\"tail_rounds\":{TAIL_ROUNDS},\"partition_rounds\":{},\"sweep\":[",
        args.cols * args.rows,
        args.runs,
        args.partition_rounds,
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let reshaping = match p.mean_reshaping() {
            Some(mean) => json_f64(mean, 2),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"loss\":{},\"latency\":{},\"jitter\":{},\"recovered\":{},\"recovered_runs\":{},\"mean_reshaping_rounds\":{reshaping},\
             \"final_homogeneity\":{},\"reference_homogeneity\":{},\"surviving_points\":{},\"points_per_node\":{},\
             \"sent_messages\":{},\"dropped_messages\":{}}}",
            json_f64(p.loss, 4),
            p.latency,
            p.jitter,
            p.recovered(),
            p.recovered_runs(),
            json_f64(p.final_homogeneity, 6),
            json_f64(p.reference_homogeneity, 6),
            json_f64(p.surviving_points, 6),
            json_f64(p.points_per_node, 3),
            json_f64(p.sent_messages, 0),
            json_f64(p.dropped_messages, 0),
        );
    }
    out.push_str("]}");
    out
}

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        cols: 40,
        rows: 25, // 1000 nodes — the sweep's minimum scale
        runs: 1,
        ..Default::default()
    });
    assert!(
        args.cols * args.rows >= 1000,
        "the loss/latency sweep is specified at >= 1k nodes (got {})",
        args.cols * args.rows
    );
    let losses = sweep_losses(&args);
    println!(
        "Loss/latency sweep: {} nodes, losses {:?}, latency {} ± {} ticks, {} run(s) per point{}\n",
        args.cols * args.rows,
        losses,
        args.net_latency,
        args.net_jitter,
        args.runs,
        if args.partition_rounds > 0 {
            format!(
                ", {}-round partition during recovery",
                args.partition_rounds
            )
        } else {
            String::new()
        },
    );

    let mut points = Vec::new();
    for &loss in &losses {
        let p = sweep_point(&args, loss);
        let reshaping = match p.mean_reshaping() {
            Some(mean) => format!(
                "{mean:.1} rounds ({}/{} runs)",
                p.recovered_runs(),
                args.runs
            ),
            None => "never".to_string(),
        };
        println!(
            "loss {:>4.0}% → reshaping {reshaping}, final homogeneity {:.3} (ref {:.3}), \
             survival {:.1}%, {:.1} pts/node, {:.0} of {:.0} msgs dropped",
            loss * 100.0,
            p.final_homogeneity,
            p.reference_homogeneity,
            p.surviving_points * 100.0,
            p.points_per_node,
            p.dropped_messages,
            p.sent_messages,
        );
        points.push(p);
    }

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    let json_path = args.out.join("fig_loss_latency.json");
    std::fs::write(&json_path, to_json(&args, &points)).expect("failed to write JSON");
    println!("\nJSON written to {}", json_path.display());

    // Regression gate: the protocol must recover everywhere at <= 10%
    // loss. Only the plain kill scenario is gated — an explicit
    // `--partition-rounds` makes the run a diagnostic, not a baseline.
    if args.partition_rounds > 0 {
        println!("(recovery gate skipped: custom partition scenario)");
        return;
    }
    let failed: Vec<f64> = points
        .iter()
        .filter(|p| p.loss <= 0.10 && !p.recovered())
        .map(|p| p.loss)
        .collect();
    if !failed.is_empty() {
        eprintln!("FAIL: no recovery at drop rates {failed:?} (<= 10% loss must recover)");
        std::process::exit(1);
    }
    println!("OK: recovery holds at every drop rate <= 10%");
}
