//! **Loss/latency sweep** (beyond the paper) — convergence and recovery
//! quality vs message-drop rate and link latency. The paper's
//! evaluation assumes reliable atomic exchanges; this figure measures
//! how far the protocol degrades when the fabric delays, reorders and
//! loses messages — and pins that it still recovers the shape at 10%
//! loss.
//!
//! Runs through the unified experiment plane on any substrate with a
//! network model: the discrete-event kernel by default (`--substrate
//! netsim`, the only one honoring latency/jitter), or the live clusters
//! (which honor the loss probability at their send boundary). The cycle
//! engine has no fabric to disturb and is rejected.
//!
//! Two sweep modes share the machinery:
//!
//! * the default **loss sweep** holds the grid fixed and sweeps the
//!   drop rate ([`LOSSES`] plus any explicit `--net-loss`);
//! * `--sweep-nodes MAX` holds the drop rate fixed (`--net-loss`,
//!   defaulting to 5%) and sweeps the population over the standard
//!   scaling grids up to `MAX` nodes — the netsim scale axis, timed
//!   per row.
//!
//! Emits machine-readable JSON (one record per sweep point plus a
//! `wall_secs` object with each row's wall-clock, via the shared
//! emitter) for the CI perf/quality trajectory, and exits nonzero if
//! any netsim loss-sweep point at or below 10% loss fails to recover —
//! so the artifact upload doubles as a regression gate.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig_loss_latency -- \
//!     --cols 40 --rows 25 --runs 3 --net-latency 2 --net-jitter 1
//! cargo run --release -p polystyrene-bench --bin fig_loss_latency -- \
//!     --sweep-nodes 25600 --runs 1
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{scaling_sizes, CommonArgs};
use polystyrene_lab::{json_f64, summary_json, ExperimentSummary, SubstrateKind};
use polystyrene_membership::NodeId;
use polystyrene_netsim::prelude::{LinkProfile, NetSim, NetSimConfig};
use polystyrene_protocol::{PaperScenario, Scenario, ScenarioEvent};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation counter, mirroring the
/// microbench alloc gate: the sweep artifact carries a deterministic
/// `allocs_per_round` scalar so `baseline_diff` catches allocation
/// regressions in CI, not just locally.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Measures steady-state heap allocations per netsim round on the
/// microbench gate's 256-node scenario (same grid, seed and link
/// profile, so the numbers are directly comparable). Deterministic:
/// netsim is single-threaded and fully seeded, so the committed
/// baseline can gate this exactly.
fn measure_allocs_per_round() -> u64 {
    const ROUNDS: u64 = 8;
    let mut cfg = NetSimConfig::default();
    cfg.area = 256.0;
    cfg.seed = 21;
    cfg.link = LinkProfile {
        latency: 2,
        jitter: 1,
        loss: 0.05,
    };
    let mut sim = NetSim::new(
        polystyrene_space::torus::Torus2::new(32.0, 8.0),
        polystyrene_space::shapes::torus_grid(32, 8, 1.0),
        cfg,
    );
    sim.run(10); // warm-up: views fill, pools reach steady capacity
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..ROUNDS {
        sim.step();
    }
    (ALLOCATIONS.load(Ordering::Relaxed) - before) / ROUNDS
}

/// The baseline drop rates swept (≥ 3 points, per the netsim acceptance
/// bar); an explicit `--net-loss` is merged in as an extra point.
const LOSSES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// Drop rate of the `--sweep-nodes` scale sweep when `--net-loss` is
/// left at zero: lossless scaling rows would not exercise the retry and
/// parking machinery the scale axis is meant to time.
const SCALE_SWEEP_LOSS: f64 = 0.05;

/// The sweep's drop-rate points: the baseline plus `--net-loss` when it
/// names a rate not already swept — the flag must never be a silent
/// no-op.
fn sweep_losses(args: &CommonArgs) -> Vec<f64> {
    let mut losses = LOSSES.to_vec();
    if !losses.iter().any(|&l| (l - args.net_loss).abs() < 1e-12) {
        losses.push(args.net_loss);
        losses.sort_by(|a, b| a.partial_cmp(b).expect("validated probabilities"));
    }
    losses
}
/// Rounds of convergence before the catastrophic failure.
const FAILURE_ROUND: u32 = 20;
/// Observation rounds after the failure (lossy recovery at 1k nodes
/// needs ~50-60 rounds; see the JSON for the measured reshaping times).
const TAIL_ROUNDS: u32 = 80;

/// One completed sweep row: everything the report, the JSON emitter and
/// the recovery gate need.
struct SweepRow {
    /// Entry label in the JSON (`loss=0.05` or `n=1600`).
    label: String,
    /// Population of this row's grid.
    nodes: usize,
    /// Drop rate this row ran under.
    loss: f64,
    summary: ExperimentSummary,
    /// Wall-clock for the row's runs, in seconds.
    wall_secs: f64,
}

/// The sweep's scenario: converge, kill the right half-torus, and — with
/// `--partition-rounds N` — additionally isolate the left quarter of the
/// surviving founders for N rounds mid-recovery, expressed as a scripted
/// [`ScenarioEvent::Partition`] (substrates without a fabric to cut
/// no-op it). The partition window *extends* the scenario, so the
/// post-heal recovery budget stays the full `TAIL_ROUNDS` regardless of
/// the flag.
fn sweep_scenario(args: &CommonArgs) -> Scenario<[f64; 2]> {
    let paper = PaperScenario::reshaping_only(
        args.cols,
        args.rows,
        FAILURE_ROUND,
        TAIL_ROUNDS + args.partition_rounds,
    );
    let mut scenario = paper.script();
    if args.partition_rounds > 0 {
        let quarter = args.cols as f64 / 4.0;
        let minority: Vec<NodeId> = paper
            .shape()
            .iter()
            .enumerate()
            .filter(|(_, p)| p[0] < quarter)
            .map(|(i, _)| NodeId::new(i as u64))
            .collect();
        scenario = scenario.at(
            FAILURE_ROUND,
            ScenarioEvent::Partition {
                groups: vec![minority],
                rounds: args.partition_rounds,
            },
        );
    }
    scenario
}

/// Runs one sweep row (`args.runs` seeded repetitions of the scripted
/// scenario on `args`'s grid at `loss`) and times it.
fn run_row(args: &CommonArgs, loss: f64, label: String) -> SweepRow {
    let scenario = sweep_scenario(args);
    let scenario_paper = PaperScenario::reshaping_only(
        args.cols,
        args.rows,
        FAILURE_ROUND,
        TAIL_ROUNDS + args.partition_rounds,
    );
    let mut base = args.lab_config(SplitStrategy::Advanced);
    base.link.loss = loss;
    let started = std::time::Instant::now();
    let mut summary = ExperimentSummary::default();
    for run in 0..args.runs {
        let mut cfg = base;
        cfg.seed = base.seed + run as u64;
        let mut substrate = polystyrene_lab::build_substrate(
            args.substrate,
            polystyrene_space::torus::Torus2::new(args.cols as f64, args.rows as f64),
            scenario_paper.shape(),
            &cfg,
        );
        summary.push(&polystyrene_lab::run_experiment(
            substrate.as_mut(),
            &scenario,
        ));
    }
    SweepRow {
        label,
        nodes: args.cols * args.rows,
        loss,
        summary,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Prints one row's headline numbers.
fn report_row(row: &SweepRow, runs: usize) {
    let reshaping = match row.summary.mean_reshaping_rounds() {
        Some(mean) => format!(
            "{mean:.1} rounds ({}/{} runs)",
            row.summary.recovered_runs(),
            runs
        ),
        None => "never".to_string(),
    };
    let last = |s: &polystyrene_lab::SeriesStats| s.last().map(|v| v.mean()).unwrap_or(f64::NAN);
    println!(
        "{:>10} → reshaping {reshaping}, final homogeneity {:.3} (ref {:.3}), \
         survival {:.1}%, {:.1} pts/node, {:.1}s wall",
        row.label,
        last(&row.summary.homogeneity),
        last(&row.summary.reference_homogeneity),
        last(&row.summary.surviving_points) * 100.0,
        last(&row.summary.points_per_node),
        row.wall_secs,
    );
}

/// The recovery gate's failure report: names every tripped sweep row
/// with its size, drop rate, recovery ratio and the reshaping rounds
/// actually observed — a bare "no recovery at loss=0.1" forced a rerun
/// just to learn which scale failed and how close it came.
fn gate_failure_report(failed: &[&SweepRow]) -> String {
    let rows: Vec<String> = failed
        .iter()
        .map(|r| {
            let observed = match r.summary.mean_reshaping_rounds() {
                Some(mean) => format!("mean reshaping {mean:.1} rounds"),
                None => format!("no run reshaped within {TAIL_ROUNDS} tail rounds"),
            };
            format!(
                "  {}: {} nodes at {:.0}% loss — {}/{} runs recovered, {}",
                r.label,
                r.nodes,
                r.loss * 100.0,
                r.summary.recovered_runs(),
                r.summary.runs,
                observed
            )
        })
        .collect();
    format!(
        "FAIL: recovery gate (<= 10% loss must recover) tripped on {} sweep row(s):\n{}",
        failed.len(),
        rows.join("\n")
    )
}

fn main() {
    let args = CommonArgs::parse_with(
        CommonArgs {
            cols: 40,
            rows: 25, // 1000 nodes — the sweep's minimum scale
            runs: 1,
            substrate: SubstrateKind::Netsim,
            ..Default::default()
        },
        &["sweep-nodes"],
    );
    assert!(
        args.substrate.has_network_model(),
        "the loss/latency sweep needs a substrate with a network model \
         (netsim, cluster or tcp — the cycle engine has no fabric to disturb)"
    );
    let sweep_nodes = args.extra_usize("sweep-nodes", 0);
    assert!(
        sweep_nodes == 0 || args.substrate == SubstrateKind::Netsim,
        "--sweep-nodes is the netsim scale axis; thread-per-node substrates cannot take it"
    );
    assert!(
        sweep_nodes > 0 || args.cols * args.rows >= 1000 || args.substrate != SubstrateKind::Netsim,
        "the netsim loss/latency sweep is specified at >= 1k nodes (got {})",
        args.cols * args.rows
    );
    // The thread-per-node substrates cannot take the netsim default of
    // 1000 nodes × 4 sweep points on modest hardware: demand an explicit
    // small grid instead of silently grinding the box.
    assert!(
        args.cols * args.rows <= 256 || matches!(args.substrate, SubstrateKind::Netsim),
        "{} spawns threads (and sockets) per node: pass --cols/--rows with <= 256 nodes \
         (e.g. --cols 8 --rows 8), got {}",
        args.substrate,
        args.cols * args.rows
    );

    // One summary per sweep point, every run through the one unified
    // driver with the one (possibly partition-extended) script.
    let mut rows: Vec<SweepRow> = Vec::new();
    if sweep_nodes > 0 {
        let loss = if args.net_loss > 0.0 {
            args.net_loss
        } else {
            SCALE_SWEEP_LOSS
        };
        let sizes = scaling_sizes(sweep_nodes);
        assert!(!sizes.is_empty(), "--sweep-nodes below the smallest grid");
        println!(
            "Scale sweep on {}: up to {} nodes at {:.0}% loss, latency {} ± {} ticks, {} run(s) per size\n",
            args.substrate,
            sizes.last().map(|&(c, r)| c * r).unwrap_or(0),
            loss * 100.0,
            args.net_latency,
            args.net_jitter,
            args.runs,
        );
        for (cols, rows_) in sizes {
            let mut row_args = args.clone();
            row_args.cols = cols;
            row_args.rows = rows_;
            let row = run_row(&row_args, loss, format!("n={}", cols * rows_));
            report_row(&row, args.runs);
            rows.push(row);
        }
    } else {
        let losses = sweep_losses(&args);
        println!(
            "Loss/latency sweep on {}: {} nodes, losses {:?}, latency {} ± {} ticks, {} run(s) per point{}\n",
            args.substrate,
            args.cols * args.rows,
            losses,
            args.net_latency,
            args.net_jitter,
            args.runs,
            if args.partition_rounds > 0 {
                format!(
                    ", {}-round partition during recovery",
                    args.partition_rounds
                )
            } else {
                String::new()
            },
        );
        for &loss in &losses {
            let row = run_row(&args, loss, format!("loss={loss}"));
            report_row(&row, args.runs);
            rows.push(row);
        }
    }

    // Allocation telemetry for the CI trajectory: only the deterministic
    // netsim substrate measures it (the live substrates' thread and
    // socket machinery would make the count scheduling-dependent). The
    // probe reuses the microbench gate's 256-node scenario, so the
    // artifact scalar and the local gate speak the same unit.
    let allocs_per_round = (args.substrate == SubstrateKind::Netsim)
        .then(measure_allocs_per_round)
        .inspect(|n| println!("\nnetsim steady-state: {n} allocations/round (256-node probe)"));

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    let entries: Vec<(String, &ExperimentSummary)> =
        rows.iter().map(|r| (r.label.clone(), &r.summary)).collect();
    let wall_secs = format!(
        "{{{}}}",
        rows.iter()
            .map(|r| format!("\"{}\":{}", r.label, json_f64(r.wall_secs, 3)))
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut meta: Vec<(&str, String)> = vec![
        ("substrate", format!("\"{}\"", args.substrate)),
        (
            "mode",
            format!("\"{}\"", if sweep_nodes > 0 { "scale" } else { "loss" }),
        ),
        ("nodes", (args.cols * args.rows).to_string()),
        ("runs", args.runs.to_string()),
        ("failure_round", FAILURE_ROUND.to_string()),
        ("tail_rounds", TAIL_ROUNDS.to_string()),
        ("partition_rounds", args.partition_rounds.to_string()),
        ("latency", args.net_latency.to_string()),
        ("jitter", args.net_jitter.to_string()),
        // Per-row wall-clock, for the baseline differ and the scale
        // axis: quality regressions and time regressions travel in
        // the same artifact.
        ("wall_secs", wall_secs),
    ];
    if let Some(n) = allocs_per_round {
        // Steady-state heap allocations per round on the 256-node
        // probe — exact on netsim, so `baseline_diff` gates it with no
        // noise floor.
        meta.push(("allocs_per_round", n.to_string()));
    }
    let json = summary_json("fig_loss_latency", &meta, &entries);
    let json_path = args.out.join("fig_loss_latency.json");
    std::fs::write(&json_path, json).expect("failed to write JSON");
    println!("\nJSON written to {}", json_path.display());

    // Regression gate: the protocol must recover everywhere at <= 10%
    // loss. Only the plain netsim kill scenario at the pinned 1k scale
    // is gated — an explicit `--partition-rounds`, a wall-clock
    // substrate (scheduling-sensitive runs), or the scale sweep (whose
    // larger grids legitimately need more than the fixed tail budget)
    // makes the run a diagnostic, not a baseline.
    if sweep_nodes > 0 {
        println!("(recovery gate skipped: --sweep-nodes rows are a scale diagnostic)");
        return;
    }
    if args.partition_rounds > 0 {
        println!("(recovery gate skipped: custom partition scenario)");
        return;
    }
    if args.substrate != SubstrateKind::Netsim {
        println!("(recovery gate skipped: gate is pinned on the deterministic netsim substrate)");
        return;
    }
    let failed: Vec<&SweepRow> = rows
        .iter()
        .filter(|r| r.loss <= 0.10 && r.summary.recovered_runs() < r.summary.runs)
        .collect();
    if !failed.is_empty() {
        eprintln!("{}", gate_failure_report(&failed));
        std::process::exit(1);
    }
    println!("OK: recovery holds at every drop rate <= 10%");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unrecovered_row(label: &str, nodes: usize, loss: f64, runs: usize) -> SweepRow {
        SweepRow {
            label: label.to_string(),
            nodes,
            loss,
            summary: ExperimentSummary {
                runs,
                ..Default::default()
            },
            wall_secs: 1.0,
        }
    }

    #[test]
    fn gate_failure_report_names_size_loss_and_observed_rounds() {
        let a = unrecovered_row("loss=0.1", 1000, 0.10, 3);
        let b = unrecovered_row("n=6400", 6400, 0.05, 1);
        let report = gate_failure_report(&[&a, &b]);
        assert!(report.starts_with("FAIL: recovery gate"));
        assert!(report.contains("tripped on 2 sweep row(s)"));
        assert!(
            report.contains("loss=0.1: 1000 nodes at 10% loss — 0/3 runs recovered"),
            "missing per-row size/loss/ratio detail:\n{report}"
        );
        assert!(
            report.contains(&format!("no run reshaped within {TAIL_ROUNDS} tail rounds")),
            "missing observed-rounds detail:\n{report}"
        );
        assert!(report.contains("n=6400: 6400 nodes at 5% loss — 0/1 runs recovered"));
    }

    #[test]
    fn gate_failure_report_shows_partial_recovery_means() {
        // A row where some runs reshaped: the mean must be printed so the
        // report says how close the gate came.
        let mut row = unrecovered_row("loss=0.05", 1000, 0.05, 2);
        row.summary.reshaping_rounds = vec![Some(41), None];
        let report = gate_failure_report(&[&row]);
        assert!(
            report.contains("1/2 runs recovered, mean reshaping 41.0 rounds"),
            "partial recovery must report the observed mean:\n{report}"
        );
    }
}
