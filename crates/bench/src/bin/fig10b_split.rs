//! **Figure 10b** — impact of the `SPLIT` function on the reshaping time
//! (K = 4): `SPLIT_BASIC` vs the PD and MD heuristics vs the combined
//! `SPLIT_ADVANCED`. At 51 200 nodes the paper reports PD alone cutting
//! the reshaping time by 2.76× and PD+MD by 2.90× (down to 10 rounds).
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig10b_split -- \
//!     --max-nodes 51200 --runs 25       # full paper scale (slow!)
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{render_reshaping_table, scaling_sizes, scaling_sweep, CommonArgs};
use polystyrene_lab::SubstrateKind;
use polystyrene_sim::prelude::write_csv;

// Runs on any execution substrate via `--substrate` (default: engine).

fn main() {
    let args = CommonArgs::parse_with(
        CommonArgs {
            runs: 3,
            ..Default::default()
        },
        &["max-nodes"],
    );
    // Thread-per-node substrates default to a much smaller sweep.
    let default_max = match args.substrate {
        SubstrateKind::Engine | SubstrateKind::Netsim => 6400,
        SubstrateKind::Cluster | SubstrateKind::Tcp => 400,
    };
    let max_nodes = args.extra_usize("max-nodes", default_max);
    let sizes = scaling_sizes(max_nodes);
    println!(
        "Fig. 10b sweep on {}: sizes {:?}, K = {}, {} runs each, all split functions\n",
        args.substrate,
        sizes.iter().map(|&(c, r)| c * r).collect::<Vec<_>>(),
        args.k,
        args.runs
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for strategy in SplitStrategy::ALL {
        let rows = scaling_sweep(
            args.substrate,
            &sizes,
            args.k,
            strategy,
            args.runs,
            &args.lab_config(strategy),
            80,
        );
        println!(
            "{}",
            render_reshaping_table(&format!("Fig. 10b — {strategy}"), &rows)
        );
        for r in &rows {
            csv_rows.push(vec![
                strategy.name().to_string(),
                r.nodes.to_string(),
                format!("{:.3}", r.reshaping.mean),
                format!("{:.3}", r.reshaping.half_width),
                r.unreshaped.to_string(),
            ]);
        }
    }
    write_csv(
        args.out.join("fig10b_split.csv"),
        &[
            "split",
            "nodes",
            "reshaping_mean",
            "reshaping_ci95",
            "unreshaped_runs",
        ],
        &csv_rows,
    )
    .expect("failed to write CSV");
    println!("CSV written to {}", args.out.display());
    println!(
        "\nExpected shape (paper Fig. 10b): Split_Basic degrades steeply with\n\
         size; the diameter heuristic (PD) recovers most of the gap; adding the\n\
         displacement heuristic (MD) brings a further small improvement\n\
         (÷2.76 → ÷2.90 at 51 200 nodes in the paper)."
    );
}
