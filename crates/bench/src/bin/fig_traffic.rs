//! **Traffic figure** — query availability while the shape reshapes:
//! the traffic plane's anchor artifact. A seeded key/value workload
//! (`--traffic-rate` lookups per round over `--traffic-keys` keys,
//! `--read-fraction` reads) rides the paper's catastrophe scenario —
//! converge → kill the right half-torus → recover — on any execution
//! substrate, and the per-round served fraction is gated: the kill must
//! visibly dent availability, and the recovered shape must serve the
//! tail of the run at ≥99% (deterministic substrates) or ≥80%
//! (wall-clock substrates, whose round boundaries snapshot queries
//! mid-flight).
//!
//! Emits one merged `fig_traffic.json` (uploaded as
//! `BENCH_traffic.json`) with one entry per substrate, and exits
//! nonzero when a gate fails.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig_traffic
//! cargo run --release -p polystyrene-bench --bin fig_traffic -- --substrate cluster
//! ```

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_bench::CommonArgs;
use polystyrene_lab::{
    build_substrate, run_experiment_with_traffic, summary_json, ExperimentSummary, LabConfig,
    SubstrateKind, TrafficLoad,
};
use polystyrene_protocol::{Scenario, ScenarioEvent};
use polystyrene_routing::kv::key_position;
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;
use std::sync::Arc;
use std::time::Duration;

/// Scenario length in rounds.
const ROUNDS: u32 = 40;
/// The round the right half-torus dies.
const KILL_ROUND: u32 = 20;
/// Rounds right after the kill inspected for the availability dip.
const DIP_WINDOW: usize = 6;
/// Rounds at the end of the run that must be served near-perfectly.
const TAIL_ROUNDS: usize = 5;

/// Converge 20 rounds → kill the right half-torus → observe the served
/// fraction while the survivors reshape over the full space.
fn traffic_scenario(cols: usize) -> Scenario<[f64; 2]> {
    Scenario::new(ROUNDS).at(
        KILL_ROUND,
        ScenarioEvent::FailOriginalRegion(Arc::new(move |p: &[f64; 2]| p[0] >= cols as f64 / 2.0)),
    )
}

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        cols: 8,
        rows: 4,
        runs: 3,
        ..Default::default()
    });
    let (cols, rows) = (args.cols, args.rows);
    let ttl = args.extra_usize("ttl", 16) as u32;
    let scenario = traffic_scenario(cols);
    // The workload's key universe: hashed positions on the torus, the
    // same addressing scheme `polystyrene_routing::kv` uses.
    let keys: Vec<[f64; 2]> = (0..args.traffic_keys)
        .map(|i| key_position(&format!("key:{i}"), cols as f64, rows as f64))
        .collect();
    let kinds: Vec<SubstrateKind> = if args.substrate_given {
        vec![args.substrate]
    } else {
        vec![SubstrateKind::Engine, SubstrateKind::Netsim]
    };
    println!(
        "Traffic figure: {}×{} torus, {} queries/round over {} keys (ttl {}), \
         right half killed at round {}, on {:?}\n",
        cols,
        rows,
        args.traffic_rate,
        args.traffic_keys,
        ttl,
        KILL_ROUND,
        kinds.iter().map(|k| k.name()).collect::<Vec<_>>()
    );

    let mut cfg = LabConfig::default();
    cfg.area = (cols * rows) as f64;
    cfg.tman.view_cap = 20;
    cfg.tman.m = 8;
    cfg.poly = PolystyreneConfig::builder().replication(args.k).build();
    cfg.tick = Duration::from_millis(8);

    let mut failures = Vec::new();
    let mut summaries: Vec<(String, ExperimentSummary)> = Vec::new();
    let mut walls: Vec<(String, f64)> = Vec::new();
    for &kind in &kinds {
        let started = std::time::Instant::now();
        let mut summary = ExperimentSummary::default();
        for run in 0..args.runs {
            let seed = args.seed + run as u64;
            cfg.seed = seed;
            let mut substrate = build_substrate(
                kind,
                Torus2::new(cols as f64, rows as f64),
                shapes::torus_grid(cols, rows, 1.0),
                &cfg,
            );
            let mut load = TrafficLoad::new(
                keys.clone(),
                args.traffic_rate,
                args.read_fraction,
                ttl,
                seed,
            );
            let trace = run_experiment_with_traffic(substrate.as_mut(), &scenario, Some(&mut load));
            drop(substrate); // live clusters shut down here, before the next spawn
            summary.push(&trace);
        }

        // Availability trajectory over the run: converged plateau →
        // kill-round dip → recovered tail.
        let means = summary.traffic_availability.means();
        let tail = means[means.len() - TAIL_ROUNDS..]
            .iter()
            .copied()
            .sum::<f64>()
            / TAIL_ROUNDS as f64;
        let dip = means[KILL_ROUND as usize..KILL_ROUND as usize + DIP_WINDOW]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        // The wall-clock substrates drain their counters against a live
        // snapshot: queries still in flight at the round boundary count
        // against the round they were offered in and resolve into a
        // later one, so their per-round served fraction sits a notch
        // below the deterministic substrates' even at steady state.
        let deterministic = matches!(kind, SubstrateKind::Engine | SubstrateKind::Netsim);
        let tail_floor = if deterministic { 0.99 } else { 0.80 };
        if tail < tail_floor {
            failures.push(format!(
                "{kind}: tail availability {tail:.4} below the {tail_floor:.2} recovery floor"
            ));
        }
        // The kill must be visible in the traffic plane: losing half the
        // address space cannot leave the served fraction intact. The
        // wall-clock substrates are exempt — their kill lands mid-tick
        // and the dent can fall between observation snapshots.
        if deterministic && dip > tail - 0.02 {
            failures.push(format!(
                "{kind}: no availability dip at the kill (min {dip:.4} vs tail {tail:.4})"
            ));
        }
        println!(
            "{kind:>8}: availability mean {:.4}, kill dip {:.4}, tail {:.4}, p99 latency {:.1} \
             hops, {:.1}s",
            summary.mean_traffic_availability().unwrap_or(f64::NAN),
            dip,
            tail,
            summary
                .traffic_p99
                .last()
                .map(|s| s.mean())
                .unwrap_or(f64::NAN),
            started.elapsed().as_secs_f64(),
        );
        summaries.push((kind.name().to_string(), summary));
        walls.push((kind.name().to_string(), started.elapsed().as_secs_f64()));
    }

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    let entries: Vec<(String, &ExperimentSummary)> = summaries
        .iter()
        .map(|(label, s)| (label.clone(), s))
        .collect();
    let json = summary_json(
        "fig_traffic",
        &[
            ("nodes", (cols * rows).to_string()),
            ("k", args.k.to_string()),
            ("rounds", ROUNDS.to_string()),
            ("kill_round", KILL_ROUND.to_string()),
            ("runs", args.runs.to_string()),
            ("traffic_rate", args.traffic_rate.to_string()),
            ("traffic_keys", args.traffic_keys.to_string()),
            (
                "read_fraction",
                polystyrene_lab::json_f64(args.read_fraction, 3),
            ),
            ("ttl", ttl.to_string()),
            (
                "substrates",
                format!(
                    "[{}]",
                    kinds
                        .iter()
                        .map(|k| format!("\"{k}\""))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ),
            (
                // Per-substrate wall-clock, for the baseline differ.
                "wall_secs",
                format!(
                    "{{{}}}",
                    walls
                        .iter()
                        .map(|(label, secs)| format!(
                            "\"{label}\":{}",
                            polystyrene_lab::json_f64(*secs, 3)
                        ))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ),
        ],
        &entries,
    );
    let json_path = args.out.join("fig_traffic.json");
    std::fs::write(&json_path, json).expect("failed to write JSON");
    println!("\nJSON written to {}", json_path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "OK: the workload collapses at the kill and is served again by the reshaped \
         substrate(s): {:?}",
        kinds.iter().map(|k| k.name()).collect::<Vec<_>>()
    );
}
