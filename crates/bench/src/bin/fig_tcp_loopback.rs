//! **TCP loopback benchmark** (beyond the paper) — the reproduction's
//! first numbers off a real network stack: the catastrophic-failure
//! scenario at ≥ 256 socket-connected nodes on localhost, with the
//! in-process runtime as the baseline the wire must not degrade.
//!
//! Both deployments run the identical node loop (`NodeRuntime` behind
//! its fabric seam) with identical protocol parameters; the only
//! difference is the fabric — in-process mailboxes vs length-framed
//! codec bytes over cached TCP connections. The figure measures
//! rounds-to-reshape after killing half the torus, plus frames/sec over
//! loopback, and **gates** on the TCP deployment reshaping within 2× of
//! the in-process rounds: serialization, framing and socket IO may cost
//! wall-clock time, but they must not cost *protocol* rounds.
//!
//! The default 50 ms tick is sized for modest CI hardware: at 256 nodes
//! a shorter tick saturates small core counts with connection churn and
//! stretches rounds anyway (the node loop's fixed-delay pacing), without
//! changing the round-denominated result the gate checks.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig_tcp_loopback -- \
//!     --cols 16 --rows 16 --tick-ms 50
//! ```

use polystyrene_bench::{json_f64, CommonArgs};
use polystyrene_netsim::prelude::reference_homogeneity;
use polystyrene_runtime::harness::ClusterHarness;
use polystyrene_runtime::{Cluster, ClusterObservation, RuntimeConfig};
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;
use polystyrene_transport::{TcpCluster, TcpConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Rounds of convergence before the catastrophic failure.
const FAILURE_ROUND: u32 = 15;
/// Observation rounds after the failure.
const TAIL_ROUNDS: u32 = 60;

/// One deployment's aggregate over `--runs` seeded repetitions.
struct SubstrateResult {
    label: &'static str,
    /// Per-run reshaping ticks (`None` = that run never reshaped), so
    /// non-recovering runs stay visible in the JSON.
    reshaping_ticks: Vec<Option<u64>>,
    /// Means over the runs.
    final_homogeneity: f64,
    surviving_points: f64,
    /// Total wall clock across the runs.
    elapsed: Duration,
    /// Frames written to sockets, summed (TCP only; the in-process
    /// fabric has no frame counter — `None` keeps the JSON honest
    /// instead of faking 0).
    frames: Option<u64>,
}

impl SubstrateResult {
    fn recovered_runs(&self) -> usize {
        self.reshaping_ticks.iter().flatten().count()
    }

    fn mean_reshaping(&self) -> Option<f64> {
        let done: Vec<u64> = self.reshaping_ticks.iter().flatten().copied().collect();
        if done.is_empty() {
            None
        } else {
            Some(done.iter().sum::<u64>() as f64 / done.len() as f64)
        }
    }
}

/// Drives any [`ClusterHarness`] through the kill-half-the-torus
/// scenario round by round — the shared measurement loop both
/// deployments go through, so the comparison cannot drift. Returns one
/// observation per round plus the *survivors'* protocol-tick floor at
/// kill completion (observed after `kill_region`, when only survivors
/// report): reshaping is denominated in ticks elapsed since the kill,
/// read off each observation's `min_ticks`, so neither wall-clock
/// hiccups in the harness nor tick lag of the about-to-die half can
/// flatter or inflate either deployment.
fn drive<H: ClusterHarness<[f64; 2]>>(
    cluster: &H,
    cols: usize,
    round_timeout: Duration,
) -> (Vec<ClusterObservation>, u64) {
    let mut observations = Vec::new();
    let mut kill_tick = 0;
    for round in 0..FAILURE_ROUND + TAIL_ROUNDS {
        if round == FAILURE_ROUND {
            let right_half = move |p: &[f64; 2]| p[0] >= cols as f64 / 2.0;
            cluster.kill_region(&right_half);
            kill_tick = cluster.observe().min_ticks;
        }
        cluster.await_ticks(u64::from(round) + 1, round_timeout);
        observations.push(cluster.observe());
    }
    (observations, kill_tick)
}

/// Protocol ticks from the kill until the first observation whose
/// homogeneity beats the reference bound for the then-alive population.
///
/// `min_ticks` is the *slowest* survivor's clock, so on a loaded box a
/// deployment with more clock spread (TCP runs ~3 threads per node)
/// reads fewer elapsed ticks for the same recovery — a conservative
/// bias for this gate, which only fails when TCP reads *slower*.
fn reshaping_time(observations: &[ClusterObservation], kill_tick: u64, area: f64) -> Option<u64> {
    observations
        .iter()
        .skip(FAILURE_ROUND as usize)
        .find(|o| o.homogeneity < reference_homogeneity(area, o.alive_nodes))
        .map(|o| o.min_ticks.saturating_sub(kill_tick).max(1))
}

/// Mean of one observation field over the final observations of each run.
fn mean(finals: &[ClusterObservation], f: impl Fn(&ClusterObservation) -> f64) -> f64 {
    finals.iter().map(f).sum::<f64>() / finals.len() as f64
}

fn runtime_config(args: &CommonArgs, tick_ms: usize, run: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig::default();
    config.tick = Duration::from_millis(tick_ms as u64);
    config.poly = polystyrene::prelude::PolystyreneConfig::builder()
        .replication(args.k)
        .build();
    config.seed = args.seed + run as u64;
    config
}

fn to_json(args: &CommonArgs, tick_ms: usize, results: &[SubstrateResult]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"figure\":\"fig_tcp_loopback\",\"nodes\":{},\"k\":{},\"tick_ms\":{tick_ms},\"runs\":{},\
         \"failure_round\":{FAILURE_ROUND},\"tail_rounds\":{TAIL_ROUNDS},\"substrates\":[",
        args.cols * args.rows,
        args.k,
        args.runs,
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let reshaping = match r.mean_reshaping() {
            Some(mean) => json_f64(mean, 2),
            None => "null".to_string(),
        };
        let frames = match r.frames {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        let frames_per_sec = match r.frames {
            Some(n) => json_f64(n as f64 / r.elapsed.as_secs_f64(), 0),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"substrate\":\"{}\",\"mean_reshaping_ticks\":{reshaping},\"recovered_runs\":{},\
             \"final_homogeneity\":{},\"surviving_points\":{},\"elapsed_secs\":{},\
             \"frames\":{frames},\"frames_per_sec\":{frames_per_sec}}}",
            r.label,
            r.recovered_runs(),
            json_f64(r.final_homogeneity, 6),
            json_f64(r.surviving_points, 6),
            json_f64(r.elapsed.as_secs_f64(), 2),
        );
    }
    out.push_str("]}");
    out
}

fn main() {
    let args = CommonArgs::parse_with(
        CommonArgs {
            cols: 16,
            rows: 16, // 256 nodes — the loopback benchmark's base scale
            runs: 1,
            k: 4,
            ..Default::default()
        },
        &["tick-ms"],
    );
    let tick_ms = args.extra_usize("tick-ms", 50);
    let (cols, rows) = (args.cols, args.rows);
    let nodes = cols * rows;
    let area = (cols * rows) as f64;
    let round_timeout = Duration::from_secs(30);
    println!(
        "TCP loopback vs in-process: {nodes} nodes, K={}, {tick_ms} ms ticks, \
         failure at round {FAILURE_ROUND}, observed {TAIL_ROUNDS} rounds\n",
        args.k,
    );

    let mut results = Vec::new();

    // Baseline: the in-process cluster, same node loop, same parameters.
    let started = Instant::now();
    let mut reshaping = Vec::with_capacity(args.runs);
    let mut finals = Vec::with_capacity(args.runs);
    for run in 0..args.runs {
        let cluster = Cluster::spawn(
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            runtime_config(&args, tick_ms, run),
        );
        let (observations, kill_tick) = drive(&cluster, cols, round_timeout);
        cluster.shutdown();
        reshaping.push(reshaping_time(&observations, kill_tick, area));
        finals.push(observations.last().expect("ran").clone());
    }
    results.push(SubstrateResult {
        label: "in-process",
        reshaping_ticks: reshaping,
        final_homogeneity: mean(&finals, |o| o.homogeneity),
        surviving_points: mean(&finals, |o| o.surviving_points),
        elapsed: started.elapsed(),
        frames: None,
    });

    // The wire: every message serialized, framed, and pushed through a
    // loopback socket.
    let started = Instant::now();
    let mut reshaping = Vec::with_capacity(args.runs);
    let mut finals = Vec::with_capacity(args.runs);
    let mut frames = 0u64;
    for run in 0..args.runs {
        let mut tcp_config = TcpConfig::default();
        tcp_config.runtime = runtime_config(&args, tick_ms, run);
        let cluster = TcpCluster::spawn(
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            tcp_config,
        );
        let (observations, kill_tick) = drive(&cluster, cols, round_timeout);
        frames += cluster.sent_frames();
        cluster.shutdown();
        reshaping.push(reshaping_time(&observations, kill_tick, area));
        finals.push(observations.last().expect("ran").clone());
    }
    results.push(SubstrateResult {
        label: "tcp-loopback",
        reshaping_ticks: reshaping,
        final_homogeneity: mean(&finals, |o| o.homogeneity),
        surviving_points: mean(&finals, |o| o.surviving_points),
        elapsed: started.elapsed(),
        frames: Some(frames),
    });

    for r in &results {
        let reshaping = match r.mean_reshaping() {
            Some(m) => format!("{m:.1} ticks ({}/{} runs)", r.recovered_runs(), args.runs),
            None => "never".to_string(),
        };
        let throughput = match r.frames {
            Some(n) => format!(", {n} frames ({:.0}/s)", n as f64 / r.elapsed.as_secs_f64()),
            None => String::new(),
        };
        println!(
            "{:>12}: reshaping {reshaping}, final homogeneity {:.3}, survival {:.1}%, \
             {:.1} s wall{throughput}",
            r.label,
            r.final_homogeneity,
            r.surviving_points * 100.0,
            r.elapsed.as_secs_f64(),
        );
    }

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    let json_path = args.out.join("fig_tcp_loopback.json");
    std::fs::write(&json_path, to_json(&args, tick_ms, &results)).expect("failed to write JSON");
    println!("\nJSON written to {}", json_path.display());

    // Regression gate: the wire may cost wall-clock, never protocol
    // rounds — mean TCP reshaping must stay within 2× of the in-process
    // mean, plus a couple of ticks of integer-noise headroom so a
    // single-run CI invocation comparing small counts (observation
    // sampling quantizes to whole rounds) does not flap.
    let (Some(baseline), Some(tcp)) = (results[0].mean_reshaping(), results[1].mean_reshaping())
    else {
        eprintln!("FAIL: a deployment never reshaped");
        std::process::exit(1);
    };
    if results.iter().any(|r| r.recovered_runs() < args.runs) {
        eprintln!("FAIL: not every run reshaped");
        std::process::exit(1);
    }
    if tcp > baseline.max(1.0) * 2.0 + 2.0 {
        eprintln!("FAIL: TCP reshaped in {tcp:.1} ticks vs {baseline:.1} in-process (> 2x)");
        std::process::exit(1);
    }
    println!("OK: TCP reshaping within 2x of in-process ({tcp:.1} vs {baseline:.1} ticks)");
}
