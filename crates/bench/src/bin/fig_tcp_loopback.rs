//! **TCP loopback benchmark** (beyond the paper) — the reproduction's
//! numbers off a real network stack: the catastrophic-failure scenario
//! at ≥ 256 socket-connected nodes on localhost, with the in-process
//! runtime as the baseline the wire must not degrade.
//!
//! Both deployments run the identical node loop (`NodeRuntime` behind
//! its fabric seam) with identical protocol parameters, driven by the
//! *same* scenario script through the *same* unified experiment driver
//! (`polystyrene-lab`); the only difference is the fabric — in-process
//! mailboxes vs length-framed codec bytes over cached TCP connections.
//! The figure measures reshaping denominated in protocol ticks from the
//! kill (wall-clock kill hiccups can't distort it), plus frames/sec
//! over loopback, and **gates** on the measured deployment reshaping
//! within 2× of the in-process ticks: serialization, framing and socket
//! IO may cost wall-clock time, but they must not cost *protocol*
//! rounds. `--substrate` swaps the measured side (default: tcp), so the
//! same harness compares any substrate against the in-process baseline.
//!
//! The default 50 ms tick is sized for modest CI hardware: at 256 nodes
//! a shorter tick saturates small core counts with connection churn and
//! stretches rounds anyway (the node loop's fixed-delay pacing), without
//! changing the round-denominated result the gate checks.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig_tcp_loopback -- \
//!     --cols 16 --rows 16 --tick-ms 50
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{json_f64, CommonArgs};
use polystyrene_lab::{
    build_substrate, run_experiment, summary_json, ExperimentSummary, LiveSubstrate, SubstrateKind,
};
use polystyrene_protocol::PaperScenario;
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;
use polystyrene_transport::{TcpCluster, TcpConfig};
use std::time::{Duration, Instant};

/// Rounds of convergence before the catastrophic failure.
const FAILURE_ROUND: u32 = 15;
/// Observation rounds after the failure.
const TAIL_ROUNDS: u32 = 60;

/// One deployment's aggregate plus the transport counters the unified
/// record deliberately does not carry.
struct SubstrateResult {
    label: String,
    summary: ExperimentSummary,
    /// Total wall clock across the runs.
    elapsed: Duration,
    /// Frames written to sockets, summed (TCP only; other fabrics have
    /// no frame counter — `None` keeps the JSON honest instead of
    /// faking 0).
    frames: Option<u64>,
}

fn main() {
    let args = CommonArgs::parse_with(
        CommonArgs {
            cols: 16,
            rows: 16, // 256 nodes — the loopback benchmark's base scale
            runs: 1,
            k: 4,
            ..Default::default()
        },
        &["tick-ms"],
    );
    let tick_ms = args.extra_usize("tick-ms", 50);
    let measured_kind = if args.substrate_given {
        args.substrate
    } else {
        SubstrateKind::Tcp
    };
    assert!(
        measured_kind != SubstrateKind::Cluster,
        "the in-process cluster IS the baseline: pick a different --substrate to measure"
    );
    let (cols, rows) = (args.cols, args.rows);
    let nodes = cols * rows;
    let paper = PaperScenario::reshaping_only(cols, rows, FAILURE_ROUND, TAIL_ROUNDS);
    let scenario = paper.script();
    let mut base = args.lab_config(SplitStrategy::Advanced);
    base.tick = Duration::from_millis(tick_ms as u64);
    base.round_timeout = Duration::from_secs(30);
    println!(
        "{measured_kind} vs in-process: {nodes} nodes, K={}, {tick_ms} ms ticks, \
         failure at round {FAILURE_ROUND}, observed {TAIL_ROUNDS} rounds\n",
        args.k,
    );

    let mut results = Vec::new();
    for kind in [SubstrateKind::Cluster, measured_kind] {
        let started = Instant::now();
        let mut summary = ExperimentSummary::default();
        let mut frames = (kind == SubstrateKind::Tcp).then_some(0u64);
        for run in 0..args.runs {
            let mut cfg = base;
            cfg.seed = base.seed + run as u64;
            cfg.area = paper.area();
            let space = Torus2::new(cols as f64, rows as f64);
            let shape = shapes::torus_grid(cols, rows, 1.0);
            if kind == SubstrateKind::Tcp {
                // Built concretely so the socket frame counter stays
                // readable; the driving is the shared path regardless.
                let mut tcp_config = TcpConfig::default();
                tcp_config.runtime = cfg.runtime();
                let mut substrate = LiveSubstrate::new(
                    TcpCluster::spawn(space, shape, tcp_config),
                    cfg.seed,
                    cfg.round_timeout,
                );
                summary.push(&run_experiment(&mut substrate, &scenario));
                *frames.as_mut().unwrap() += substrate.cluster().sent_frames();
            } else {
                let mut substrate = build_substrate(kind, space, shape, &cfg);
                summary.push(&run_experiment(substrate.as_mut(), &scenario));
            }
        }
        results.push(SubstrateResult {
            label: if kind == SubstrateKind::Cluster {
                "in-process".to_string()
            } else {
                format!("{kind}-measured")
            },
            summary,
            elapsed: started.elapsed(),
            frames,
        });
    }

    for r in &results {
        let reshaping = match r.summary.mean_reshaping_ticks() {
            Some(m) => format!(
                "{m:.1} ticks ({}/{} runs)",
                r.summary.recovered_runs(),
                args.runs
            ),
            None => "never".to_string(),
        };
        let throughput = match r.frames {
            Some(n) => format!(", {n} frames ({:.0}/s)", n as f64 / r.elapsed.as_secs_f64()),
            None => String::new(),
        };
        let final_h = r
            .summary
            .homogeneity
            .last()
            .map(|s| s.mean())
            .unwrap_or(f64::NAN);
        let final_survival = r
            .summary
            .surviving_points
            .last()
            .map(|s| s.mean())
            .unwrap_or(f64::NAN);
        println!(
            "{:>16}: reshaping {reshaping}, final homogeneity {final_h:.3}, survival {:.1}%, \
             {:.1} s wall{throughput}",
            r.label,
            final_survival * 100.0,
            r.elapsed.as_secs_f64(),
        );
    }

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    let entries: Vec<(String, &ExperimentSummary)> = results
        .iter()
        .map(|r| (r.label.clone(), &r.summary))
        .collect();
    let mut meta = vec![
        ("nodes", nodes.to_string()),
        ("k", args.k.to_string()),
        ("tick_ms", tick_ms.to_string()),
        ("runs", args.runs.to_string()),
        ("failure_round", FAILURE_ROUND.to_string()),
        ("tail_rounds", TAIL_ROUNDS.to_string()),
    ];
    if let Some(r) = results.iter().find(|r| r.frames.is_some()) {
        let frames = r.frames.unwrap();
        meta.push(("frames", frames.to_string()));
        meta.push((
            "frames_per_sec",
            json_f64(frames as f64 / r.elapsed.as_secs_f64(), 0),
        ));
    }
    let json = summary_json("fig_tcp_loopback", &meta, &entries);
    let json_path = args.out.join("fig_tcp_loopback.json");
    std::fs::write(&json_path, json).expect("failed to write JSON");
    println!("\nJSON written to {}", json_path.display());

    // Regression gate: the wire may cost wall-clock, never protocol
    // rounds — mean measured reshaping must stay within 2× of the
    // in-process mean, plus a couple of ticks of integer-noise headroom
    // so a single-run CI invocation comparing small counts (observation
    // sampling quantizes to whole rounds) does not flap.
    let (Some(baseline), Some(measured)) = (
        results[0].summary.mean_reshaping_ticks(),
        results[1].summary.mean_reshaping_ticks(),
    ) else {
        eprintln!("FAIL: a deployment never reshaped");
        std::process::exit(1);
    };
    if results
        .iter()
        .any(|r| r.summary.recovered_runs() < args.runs)
    {
        eprintln!("FAIL: not every run reshaped");
        std::process::exit(1);
    }
    if measured > baseline.max(1.0) * 2.0 + 2.0 {
        eprintln!(
            "FAIL: {} reshaped in {measured:.1} ticks vs {baseline:.1} in-process (> 2x)",
            results[1].label
        );
        std::process::exit(1);
    }
    println!(
        "OK: {} reshaping within 2x of in-process ({measured:.1} vs {baseline:.1} ticks)",
        results[1].label
    );
}
