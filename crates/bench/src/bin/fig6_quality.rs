//! **Figure 6** — homogeneity (6a) and proximity (6b) over the paper's
//! three-phase scenario, for Polystyrene K ∈ {2, 4, 8} and the T-Man
//! baseline.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig6_quality -- \
//!     --cols 80 --rows 40 --runs 25     # full paper scale
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{run_quality, summarize, CommonArgs, StackKind};
use polystyrene_sim::prelude::*;

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        cols: 40,
        rows: 20,
        runs: 3,
        ..Default::default()
    });
    let paper = args.paper_scenario();
    println!(
        "Fig. 6 scenario: {}-node torus, failure at r={}, reinjection at r={:?}, {} runs",
        paper.node_count(),
        paper.failure_round,
        paper.inject_round,
        args.runs
    );

    let mut homogeneity_series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut proximity_series: Vec<(String, Vec<f64>)> = Vec::new();

    for &k in &[8usize, 4, 2] {
        let result = run_quality(
            &paper,
            StackKind::Polystyrene,
            k,
            SplitStrategy::Advanced,
            args.runs,
            args.seed,
        );
        println!("{}", summarize(&result, &format!("Polystyrene_K{k}")));
        homogeneity_series.push((format!("Polystyrene_K{k}"), result.homogeneity.means()));
        proximity_series.push((format!("Polystyrene_K{k}"), result.proximity.means()));
    }
    let tman = run_quality(
        &paper,
        StackKind::TManOnly,
        4,
        SplitStrategy::Advanced,
        args.runs,
        args.seed,
    );
    println!("{}", summarize(&tman, "TMan"));
    homogeneity_series.push(("TMan".into(), tman.homogeneity.means()));
    proximity_series.push(("TMan".into(), tman.proximity.means()));

    for (title, series, file) in [
        (
            "Fig. 6a — homogeneity (lower is better)",
            &homogeneity_series,
            "fig6a_homogeneity.csv",
        ),
        (
            "Fig. 6b — proximity (lower is better)",
            &proximity_series,
            "fig6b_proximity.csv",
        ),
    ] {
        let refs: Vec<(&str, &[f64])> = series
            .iter()
            .map(|(label, s)| (label.as_str(), s.as_slice()))
            .collect();
        println!("\n{}", ascii_plot(title, &refs, 14, 72));
        let (headers, rows) = series_rows(&refs);
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        write_csv(args.out.join(file), &headers_ref, &rows).expect("failed to write CSV");
    }
    println!("CSV series written to {}", args.out.display());
    println!(
        "\nExpected shape (paper Fig. 6): Polystyrene homogeneity returns below\n\
         H after ≲10 rounds for every K and drops near zero after reinjection,\n\
         while T-Man plateaus after the failure (5.25 at paper scale) and\n\
         keeps a residual offset (0.35) after reinjection."
    );
}
