//! **Figures 8 & 9** — visual repair and reinjection snapshots.
//!
//! Fig. 8: Polystyrene (K=4) two rounds after the half-torus failure
//! (repair started) and eight rounds after (repair complete). Fig. 9: the
//! overlay 25 rounds after fresh nodes are re-injected, under T-Man alone
//! vs under Polystyrene.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig8_9_snapshots -- \
//!     --cols 80 --rows 40
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{experiment_config, CommonArgs};
use polystyrene_sim::prelude::*;
use polystyrene_space::shapes;
use polystyrene_space::torus::Torus2;

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        cols: 40,
        rows: 20,
        ..Default::default()
    });
    let paper = args.paper_scenario();
    let (w, h) = paper.extents();
    let cells_x = args.cols.min(72);
    let cells_y = args.rows.min(24);

    let dump = |engine: &Engine<Torus2>, label: &str| {
        let snap = Snapshot::capture(engine, 4);
        println!(
            "--- {label} (round {}, {} alive) ---",
            snap.round,
            snap.positions.len()
        );
        println!("{}", snap.render_density(w, h, cells_x, cells_y));
        snap.write_positions_csv(args.out.join(format!("{label}.csv")))
            .expect("failed to write CSV");
    };

    for (name, tman_only) in [("Polystyrene_K4", false), ("TMan", true)] {
        let mut cfg = experiment_config(args.k, SplitStrategy::Advanced, args.seed);
        cfg.area = paper.area();
        let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
        if tman_only {
            engine.disable_polystyrene();
        }
        engine.run(paper.failure_round);
        engine.fail_original_region(shapes::in_right_half(w));
        if !tman_only {
            engine.run(2);
            dump(&engine, &format!("fig8a_repair_started_{name}"));
            engine.run(6);
            dump(&engine, &format!("fig8b_repair_completed_{name}"));
            engine.run(paper.inject_round.unwrap_or(100) - paper.failure_round - 8);
        } else {
            engine.run(paper.inject_round.unwrap_or(100) - paper.failure_round);
        }
        engine.inject(shapes::torus_grid_offset(args.cols / 2, args.rows, 1.0));
        engine.run(25);
        dump(&engine, &format!("fig9_reinjection_{name}"));
        let m = engine.history().last().unwrap();
        println!(
            "{name}: homogeneity {:.3} (reference {:.3})\n",
            m.homogeneity, m.reference_homogeneity
        );
    }
    println!("CSV point clouds written to {}", args.out.display());
    println!(
        "Expected shape (paper Figs. 8-9): under Polystyrene the hole left by\n\
         the failure fills within ~8 rounds, and after reinjection the torus is\n\
         uniformly dense (homogeneity ≈ 0.035 at paper scale); under T-Man the\n\
         re-injected nodes stay on their injection lattice and the original\n\
         half-torus stays torn (homogeneity ≈ 0.35)."
    );
}
