//! **Figure 1** — catastrophic correlated failure under plain T-Man.
//!
//! Reproduces the three panels of paper Fig. 1: (a) the random initial
//! overlay, (b) the converged torus, (c) the broken shape after the
//! right half of the torus crashes — T-Man heals links but the torus is
//! gone for good. Snapshots are rendered as ASCII density maps and dumped
//! as CSV point clouds.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig1_tman_failure -- \
//!     --cols 80 --rows 40
//! ```

use polystyrene_bench::CommonArgs;
use polystyrene_sim::prelude::*;
use polystyrene_space::shapes;
use polystyrene_space::torus::Torus2;

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        cols: 40,
        rows: 20,
        ..Default::default()
    });
    let paper = args.paper_scenario();
    let (w, h) = paper.extents();
    let mut cfg = EngineConfig::default();
    cfg.area = paper.area();
    cfg.seed = args.seed;
    let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
    engine.disable_polystyrene();

    let cells_x = args.cols.min(72);
    let cells_y = args.rows.min(24);
    let dump = |engine: &Engine<Torus2>, label: &str, out: &std::path::Path| {
        let snap = Snapshot::capture(engine, 4);
        println!(
            "--- Fig. 1{label} (round {}, {} alive) ---",
            snap.round,
            snap.positions.len()
        );
        println!("{}", snap.render_density(w, h, cells_x, cells_y));
        snap.write_positions_csv(out.join(format!("fig1{label}.csv")))
            .expect("failed to write CSV");
    };

    dump(&engine, "a_round0", &args.out);
    engine.run(paper.failure_round);
    dump(&engine, "b_converged", &args.out);
    engine.fail_original_region(shapes::in_right_half(w));
    engine.run(20); // give T-Man time to heal its links
    dump(&engine, "c_after_failure", &args.out);

    let m = engine.history().last().unwrap();
    println!(
        "T-Man healed its links (proximity {:.2}) but the shape is lost:\n\
         homogeneity {:.2} vs reference {:.2} — the paper reports the same\n\
         plateau (5.25 for the 80×40 torus).",
        m.proximity, m.homogeneity, m.reference_homogeneity
    );
    println!("CSV point clouds written to {}", args.out.display());
}
