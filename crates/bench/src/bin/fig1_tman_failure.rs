//! **Figure 1** — catastrophic correlated failure under plain T-Man,
//! against the full stack's recovery.
//!
//! Reproduces the three panels of paper Fig. 1 on the cycle engine —
//! (a) the random initial overlay, (b) the converged torus, (c) the
//! broken shape after the right half crashes; T-Man heals links but the
//! torus is gone for good — then runs the *same* failure script with
//! the full Polystyrene stack on `--substrate` (default: the engine)
//! through the unified experiment driver, which recovers the shape the
//! baseline cannot. Both runs share one scenario value and one driver.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig1_tman_failure -- \
//!     --cols 80 --rows 40
//! cargo run --release -p polystyrene-bench --bin fig1_tman_failure -- \
//!     --cols 16 --rows 8 --substrate cluster
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{run_summary, CommonArgs};
use polystyrene_lab::run_experiment;
use polystyrene_protocol::{PaperScenario, Scenario, ScenarioEvent};
use polystyrene_sim::prelude::*;
use polystyrene_space::torus::Torus2;
use std::sync::Arc;

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        cols: 40,
        rows: 20,
        ..Default::default()
    });
    let paper = args.paper_scenario();
    let (w, h) = paper.extents();

    // ------------------------------------------------------------------
    // Panels a-c: the T-Man-only baseline, engine-rendered (the density
    // snapshots need engine internals), driven segment by segment
    // through the one experiment driver.
    // ------------------------------------------------------------------
    let mut cfg = EngineConfig::default();
    cfg.area = paper.area();
    cfg.seed = args.seed;
    let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
    engine.disable_polystyrene();

    let cells_x = args.cols.min(72);
    let cells_y = args.rows.min(24);
    let dump = |engine: &Engine<Torus2>, label: &str, out: &std::path::Path| {
        let snap = Snapshot::capture(engine, 4);
        println!(
            "--- Fig. 1{label} (round {}, {} alive) ---",
            snap.round,
            snap.positions.len()
        );
        println!("{}", snap.render_density(w, h, cells_x, cells_y));
        snap.write_positions_csv(out.join(format!("fig1{label}.csv")))
            .expect("failed to write CSV");
    };

    dump(&engine, "a_round0", &args.out);
    run_experiment(&mut engine, &Scenario::new(paper.failure_round));
    dump(&engine, "b_converged", &args.out);
    let kill_script: Scenario<[f64; 2]> = Scenario::new(20) // T-Man heals links in ~20 rounds
        .at(
            0,
            ScenarioEvent::FailOriginalRegion(Arc::new(move |p: &[f64; 2]| p[0] >= w / 2.0)),
        );
    run_experiment(&mut engine, &kill_script);
    dump(&engine, "c_after_failure", &args.out);

    let m = engine.history().last().unwrap();
    println!(
        "T-Man healed its links (proximity {:.2}) but the shape is lost:\n\
         homogeneity {:.2} vs reference {:.2} — the paper reports the same\n\
         plateau (5.25 for the 80×40 torus).",
        m.proximity, m.homogeneity, m.reference_homogeneity
    );
    println!("CSV point clouds written to {}", args.out.display());

    // ------------------------------------------------------------------
    // The contrast panel: the identical failure with the full stack, on
    // whatever substrate was asked for.
    // ------------------------------------------------------------------
    let reshaping_only =
        PaperScenario::reshaping_only(args.cols, args.rows, paper.failure_round, 40);
    let summary = run_summary(
        args.substrate,
        &reshaping_only,
        &args.lab_config(SplitStrategy::Advanced),
        1,
    );
    match summary.mean_reshaping_rounds() {
        Some(rounds) => println!(
            "\nFull Polystyrene stack on {}: same failure, shape recovered in {rounds:.0} rounds\n\
             (K={}) — the contrast the paper's Fig. 1 motivates.",
            args.substrate, args.k
        ),
        None => println!(
            "\nFull Polystyrene stack on {}: did NOT recover within {} rounds — unexpected;\n\
             inspect the configuration.",
            args.substrate,
            reshaping_only.total_rounds - paper.failure_round
        ),
    }
}
