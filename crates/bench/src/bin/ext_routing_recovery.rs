//! **Extension experiment E1** — routing quality through the three-phase
//! scenario (not a paper figure, but the paper's motivating claim made
//! quantitative: "Losing the shape of the topology might affect system
//! performance, e.g. routing").
//!
//! At sampled rounds the harness freezes the overlay, runs a greedy
//! routing survey over random keys, and reports delivery rate, mean hops
//! and mean final distance to the key — for Polystyrene and for the
//! T-Man baseline, through two oracles: the *ideal* engine oracle
//! (routing over ground-truth positions, the geometry's best case) and
//! the *view* oracle (routing over what each node's protocol view
//! actually knows, stale entries dead-ending — what the traffic plane's
//! query wires experience). The gap between the two columns is the
//! price of distribution.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin ext_routing_recovery -- \
//!     --cols 80 --rows 40
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{experiment_config, CommonArgs};
use polystyrene_routing::prelude::*;
use polystyrene_sim::prelude::*;
use polystyrene_space::shapes;
use polystyrene_space::torus::Torus2;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn survey_at(
    engine: &Engine<Torus2>,
    ideal: bool,
    w: f64,
    h: f64,
    attempts: usize,
    rng: &mut StdRng,
) -> RoutingSurvey {
    // Routing uses 8 links per hop: greedy geographic routing over the 4
    // drawn-in-figures neighbors is fragile on the irregular post-failure
    // layout (directional gaps create local minima); 8 closest view
    // entries restore CAN-like routability on both stacks.
    fn survey_with(
        engine: &Engine<Torus2>,
        oracle: &impl NeighborOracle<[f64; 2]>,
        w: f64,
        h: f64,
        attempts: usize,
        rng: &mut StdRng,
    ) -> RoutingSurvey {
        routing_survey(
            engine.space(),
            oracle,
            |rng: &mut StdRng| [rng.random_range(0.0..w), rng.random_range(0.0..h)],
            attempts,
            (w + h) as usize * 2,
            0.75,
            rng,
        )
    }
    if ideal {
        survey_with(engine, &EngineOracle::new(engine, 8), w, h, attempts, rng)
    } else {
        survey_with(
            engine,
            &ViewOracle::from_engine(engine, 8),
            w,
            h,
            attempts,
            rng,
        )
    }
}

fn main() {
    let args = CommonArgs::parse_with(
        CommonArgs {
            cols: 40,
            rows: 20,
            ..Default::default()
        },
        &["attempts"],
    );
    let paper = args.paper_scenario();
    let (w, h) = paper.extents();
    let attempts = args.extra_usize("attempts", 400);
    println!(
        "E1 routing recovery: {}-node torus, {} lookups per sample\n",
        paper.node_count(),
        attempts
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, tman_only) in [("Polystyrene_K4", false), ("TMan", true)] {
        let mut cfg = experiment_config(args.k, SplitStrategy::Advanced, args.seed);
        cfg.area = paper.area();
        let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
        if tman_only {
            engine.disable_polystyrene();
        }
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xE1);

        let mut sample = |engine: &Engine<Torus2>, label: &str, rng: &mut StdRng| {
            for (oracle, ideal) in [("ideal", true), ("view", false)] {
                let s = survey_at(engine, ideal, w, h, attempts, rng);
                rows.push(vec![
                    name.to_string(),
                    label.to_string(),
                    oracle.to_string(),
                    format!("{:.1}", s.success_rate() * 100.0),
                    format!("{:.2}", s.mean_hops),
                    format!("{:.3}", s.mean_final_distance),
                ]);
            }
        };

        engine.run(paper.failure_round);
        sample(&engine, "converged", &mut rng);
        engine.fail_original_region(shapes::in_right_half(w));
        sample(&engine, "just after failure", &mut rng);
        engine.run(3);
        sample(&engine, "failure + 3 rounds", &mut rng);
        engine.run(12);
        sample(&engine, "failure + 15 rounds", &mut rng);
    }

    println!(
        "{}",
        render_table(
            "E1 — greedy routing through the catastrophe",
            &[
                "stack",
                "moment",
                "oracle",
                "delivery (%)",
                "mean hops",
                "mean dist to key"
            ],
            &rows,
        )
    );
    write_csv(
        args.out.join("ext_routing_recovery.csv"),
        &[
            "stack",
            "moment",
            "oracle",
            "delivery_pct",
            "mean_hops",
            "mean_final_distance",
        ],
        &rows,
    )
    .expect("failed to write CSV");
    println!("CSV written to {}", args.out.display());
    println!(
        "\nExpected shape: both stacks route fine when converged; right after\n\
         the blast the mean distance to keys explodes (keys in the hole).\n\
         Under Polystyrene it returns to ~pre-failure levels within ~15\n\
         rounds; under T-Man it stays high forever. The view oracle trails\n\
         the ideal one hardest just after the failure (views still hold the\n\
         dead half and stale links dead-end), then closes the gap as gossip\n\
         refreshes the views."
    );
}
