//! **Substrate matrix** — the experiment plane's anchor artifact: one
//! shared failure script (converge → kill the right half-torus → churn
//! → re-inject) executed on *every* execution substrate through the one
//! `Substrate` seam and the one driver, asserting that the population
//! arithmetic is identical across the whole matrix and that every
//! substrate recovers the shape.
//!
//! This is the CI smoke step for the paper's core claim: the
//! self-organizing shape survives the same failure scenario regardless
//! of how messages move. Emits one merged `substrate_matrix.json`
//! (uploaded as `BENCH_matrix.json`) with one entry per substrate, and
//! exits nonzero on any disagreement or non-recovery.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin substrate_matrix
//! cargo run --release -p polystyrene-bench --bin substrate_matrix -- --substrate tcp
//! ```

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_bench::CommonArgs;
use polystyrene_lab::{
    build_substrate, run_experiment, summary_json, ExperimentSummary, ExperimentTrace, LabConfig,
    SubstrateKind,
};
use polystyrene_protocol::{Scenario, ScenarioEvent};
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;
use std::sync::Arc;
use std::time::Duration;

/// Converge 20 rounds → kill the right half-torus → 2 rounds of 5%
/// churn → re-inject `cols/2 × rows` fresh nodes → observe to round 55.
fn shared_scenario(cols: usize, rows: usize) -> Scenario<[f64; 2]> {
    Scenario::new(55)
        .at(
            20,
            ScenarioEvent::FailOriginalRegion(Arc::new(move |p: &[f64; 2]| {
                p[0] >= cols as f64 / 2.0
            })),
        )
        .at(
            25,
            ScenarioEvent::Churn {
                rate: 0.05,
                rounds: 2,
            },
        )
        .at(
            35,
            ScenarioEvent::Inject(shapes::torus_grid_offset(cols / 2, rows, 1.0)),
        )
}

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        cols: 8,
        rows: 4,
        runs: 1,
        ..Default::default()
    });
    let (cols, rows) = (args.cols, args.rows);
    let scenario = shared_scenario(cols, rows);
    let kinds: Vec<SubstrateKind> = if args.substrate_given {
        vec![args.substrate]
    } else {
        SubstrateKind::ALL.to_vec()
    };
    println!(
        "Substrate matrix: {}×{} torus, the shared failure+churn+inject script on {:?}\n",
        cols,
        rows,
        kinds.iter().map(|k| k.name()).collect::<Vec<_>>()
    );

    let mut cfg = LabConfig::default();
    cfg.area = (cols * rows) as f64;
    cfg.seed = args.seed + 10; // seed 11 = the historical equivalence anchor
    cfg.tman.view_cap = 20;
    cfg.tman.m = 8;
    cfg.poly = PolystyreneConfig::builder().replication(args.k).build();
    // 8 ms leaves debug-build message handling headroom per round on a
    // loaded CI box for the wall-clock substrates.
    cfg.tick = Duration::from_millis(8);

    let mut failures = Vec::new();
    let mut reference_populations: Option<Vec<usize>> = None;
    let mut summaries: Vec<(String, ExperimentSummary)> = Vec::new();
    let mut walls: Vec<(String, f64)> = Vec::new();
    for &kind in &kinds {
        let started = std::time::Instant::now();
        let mut substrate = build_substrate(
            kind,
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            &cfg,
        );
        let trace: ExperimentTrace = run_experiment(substrate.as_mut(), &scenario);
        drop(substrate); // live clusters shut down here, before the next spawn
        let populations = trace.populations();
        match &reference_populations {
            None => reference_populations = Some(populations.clone()),
            Some(reference) => {
                if *reference != populations {
                    failures.push(format!(
                        "{kind}: population arithmetic diverged from {}'s",
                        kinds[0]
                    ));
                }
            }
        }
        // Recovery: the deterministic substrates must end below the
        // reference bound; the wall-clock ones are snapshot-noisy
        // (points mid-migration), so their bar is the tail minimum
        // against a loosened threshold.
        let recovered = match kind {
            SubstrateKind::Engine | SubstrateKind::Netsim => {
                let last = trace.final_observation().expect("ran");
                last.homogeneity < last.reference_homogeneity
            }
            SubstrateKind::Cluster | SubstrateKind::Tcp => trace
                .observations
                .iter()
                .skip(40)
                .any(|o| o.homogeneity < o.reference_homogeneity.max(1.0)),
        };
        if !recovered {
            failures.push(format!("{kind}: shape did not recover"));
        }
        let last = trace.final_observation().expect("ran");
        if last.surviving_points <= 0.6 {
            failures.push(format!(
                "{kind}: lost too many points ({:.2})",
                last.surviving_points
            ));
        }
        println!(
            "{kind:>8}: final alive {} (expect {}), homogeneity {:.3} (ref {:.3}), \
             survival {:.1}%, {:.1}s",
            last.alive_nodes,
            reference_populations.as_ref().unwrap().last().unwrap(),
            last.homogeneity,
            last.reference_homogeneity,
            last.surviving_points * 100.0,
            started.elapsed().as_secs_f64(),
        );
        let mut summary = ExperimentSummary::default();
        summary.push(&trace);
        summaries.push((kind.name().to_string(), summary));
        walls.push((kind.name().to_string(), started.elapsed().as_secs_f64()));
    }

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    let entries: Vec<(String, &ExperimentSummary)> = summaries
        .iter()
        .map(|(label, s)| (label.clone(), s))
        .collect();
    let json = summary_json(
        "substrate_matrix",
        &[
            ("nodes", (cols * rows).to_string()),
            ("k", args.k.to_string()),
            ("rounds", 55.to_string()),
            (
                "substrates",
                format!(
                    "[{}]",
                    kinds
                        .iter()
                        .map(|k| format!("\"{k}\""))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ),
            (
                // Per-substrate wall-clock, for the baseline differ.
                "wall_secs",
                format!(
                    "{{{}}}",
                    walls
                        .iter()
                        .map(|(label, secs)| format!(
                            "\"{label}\":{}",
                            polystyrene_lab::json_f64(*secs, 3)
                        ))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ),
        ],
        &entries,
    );
    let json_path = args.out.join("substrate_matrix.json");
    std::fs::write(&json_path, json).expect("failed to write JSON");
    println!("\nJSON written to {}", json_path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "OK: identical population arithmetic and shape recovery across {} substrate(s)",
        kinds.len()
    );
}
