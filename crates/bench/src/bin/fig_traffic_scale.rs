//! **Traffic saturation sweep** — the batched query plane pushed to its
//! knee. Each substrate converges its population once, then serves a
//! geometric ladder of offered rates (`base × 2^i` queries per round,
//! zipf-skewed keys by default) on the *same* converged fabric; every
//! rung is one JSON entry (`netsim@r4000`, `cluster@r1024`, …) whose
//! availability and latency percentiles ride the existing
//! `baseline_diff` gates. The **knee** — the first rung served below
//! 99% — is reported per substrate in the metadata.
//!
//! Two different saturation mechanisms are exercised:
//!
//! * the deterministic kernel (`netsim`, default 160×160 = 25 600
//!   nodes) has no admission bound — its sweep measures routing cost at
//!   scale, and a paired batched-vs-unbatched run at the top rung
//!   reports the wall-clock speedup of the `QueryBatch` hot path;
//! * the live substrates (`cluster`, `tcp`, figure-scale grids) bound
//!   every gateway's ingress at [`GATEWAY_INGRESS_BOUND`] queries —
//!   past the knee they *shed* load at the gateway (counted separately
//!   from in-flight expiry) instead of collapsing, and the sweep gates
//!   that the shed path actually engages.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin fig_traffic_scale
//! cargo run --release -p polystyrene-bench --bin fig_traffic_scale -- \
//!     --cols 40 --rows 40 --base-rate 500 --rate-steps 3
//! ```

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_bench::{json_f64, CommonArgs};
use polystyrene_lab::{
    build_substrate, run_experiment, run_experiment_with_traffic, summary_json, ExperimentSummary,
    LabConfig, SubstrateKind, TrafficLoad,
};
use polystyrene_netsim::{NetSim, NetSimConfig};
use polystyrene_protocol::Scenario;
use polystyrene_routing::kv::key_position;
use polystyrene_runtime::GATEWAY_INGRESS_BOUND;
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;
use std::time::{Duration, Instant};

/// A rung is "served" while its mean availability stays at or above
/// this; the first rung below it is the substrate's knee.
const KNEE_AVAILABILITY: f64 = 0.99;

/// One substrate's sweep configuration.
struct Plan {
    kind: SubstrateKind,
    cols: usize,
    rows: usize,
    base_rate: usize,
    rate_steps: usize,
}

impl Plan {
    fn nodes(&self) -> usize {
        self.cols * self.rows
    }

    fn rates(&self) -> Vec<usize> {
        (0..self.rate_steps).map(|i| self.base_rate << i).collect()
    }

    /// Queries may need to cross half the torus on each axis; the +4
    /// covers greedy detours around freshly-converged edges.
    fn ttl(&self) -> u32 {
        (self.cols / 2 + self.rows / 2 + 4) as u32
    }

    fn is_live(&self) -> bool {
        matches!(self.kind, SubstrateKind::Cluster | SubstrateKind::Tcp)
    }

    fn lab_config(&self, args: &CommonArgs) -> LabConfig {
        let mut cfg = LabConfig::default();
        cfg.seed = args.seed;
        cfg.area = self.nodes() as f64;
        cfg.link = args.link_profile();
        cfg.poly = PolystyreneConfig::builder().replication(args.k).build();
        if self.is_live() {
            cfg.tman.view_cap = 20;
            cfg.tman.m = 8;
            cfg.tick = Duration::from_millis(8);
            cfg.round_timeout = Duration::from_secs(5);
        }
        cfg
    }
}

/// The workload's key universe: hashed positions on the torus, the same
/// addressing scheme `polystyrene_routing::kv` uses.
fn key_universe(count: usize, cols: usize, rows: usize) -> Vec<[f64; 2]> {
    (0..count)
        .map(|i| key_position(&format!("key:{i}"), cols as f64, rows as f64))
        .collect()
}

/// The outcome of one substrate's rate ladder.
struct SweepResult {
    entries: Vec<(String, ExperimentSummary)>,
    knee_rate: Option<usize>,
    total_shed: u64,
    wall_secs: f64,
}

fn sweep(plan: &Plan, args: &CommonArgs, warmup: u32, rounds: u32) -> SweepResult {
    let started = Instant::now();
    let cfg = plan.lab_config(args);
    let keys = key_universe(args.traffic_keys, plan.cols, plan.rows);
    let mut substrate = build_substrate(
        plan.kind,
        Torus2::new(plan.cols as f64, plan.rows as f64),
        shapes::torus_grid(plan.cols, plan.rows, 1.0),
        &cfg,
    );
    // Converge the population once; every rung then shares the fabric.
    run_experiment(substrate.as_mut(), &Scenario::new(warmup));

    let mut entries = Vec::new();
    let mut knee_rate = None;
    let mut total_shed = 0;
    for (i, rate) in plan.rates().into_iter().enumerate() {
        let mut load = TrafficLoad::with_dist(
            keys.clone(),
            rate,
            args.read_fraction,
            plan.ttl(),
            args.seed + i as u64,
            args.traffic_dist,
        );
        let trace = run_experiment_with_traffic(
            substrate.as_mut(),
            &Scenario::new(rounds),
            Some(&mut load),
        );
        let mut summary = ExperimentSummary::default();
        // Rung availability is judged on the *cumulative* window counters,
        // not the mean of per-round ratios: on the wall-clock substrates a
        // query routinely resolves a round or two after it was offered, so
        // per-round ratios seesaw around 1.0 while the window total is
        // exact. Live rungs get two quiet settle rounds so their own
        // stragglers resolve inside their own window instead of bleeding
        // into the next rung's.
        let mut window = (0u64, 0u64, 0u64); // offered, delivered, shed
        let mut absorb = |trace: &polystyrene_lab::ExperimentTrace| {
            for o in &trace.observations {
                window.0 += o.traffic.offered;
                window.1 += o.traffic.delivered;
                window.2 += o.traffic.shed;
            }
        };
        absorb(&trace);
        summary.push(&trace);
        if plan.is_live() {
            let mut settle = TrafficLoad::with_dist(
                keys.clone(),
                0,
                args.read_fraction,
                plan.ttl(),
                args.seed,
                args.traffic_dist,
            );
            let tail = run_experiment_with_traffic(
                substrate.as_mut(),
                &Scenario::new(2),
                Some(&mut settle),
            );
            absorb(&tail);
            summary.push(&tail);
        }
        let presented = window.0 + window.2;
        let availability = window.1 as f64 / presented.max(1) as f64;
        if knee_rate.is_none() && availability < KNEE_AVAILABILITY {
            knee_rate = Some(rate);
        }
        total_shed += summary.traffic_shed;
        println!(
            "{:>8}@r{rate:<6} availability {availability:.4}  p50 {:>6}  p99 {:>6}  shed {}",
            plan.kind.name(),
            json_f64(summary.mean_traffic_p50().unwrap_or(f64::NAN), 1),
            json_f64(summary.mean_traffic_p99().unwrap_or(f64::NAN), 1),
            summary.traffic_shed,
        );
        entries.push((format!("{}@r{rate}", plan.kind.name()), summary));
    }
    drop(substrate); // live clusters shut down here, before the next spawn
    SweepResult {
        entries,
        knee_rate,
        total_shed,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Times `rounds` rounds of the top rung on twin converged kernels —
/// one offering through the batched hot path, one through the retained
/// per-wire reference path — and returns
/// `(speedup, batched_secs, unbatched_secs)`.
fn batched_speedup(
    args: &CommonArgs,
    plan: &Plan,
    warmup: u32,
    rounds: u32,
    rate: usize,
) -> (f64, f64, f64) {
    let keys = key_universe(args.traffic_keys, plan.cols, plan.rows);
    let time_one = |batched: bool| {
        let mut cfg = NetSimConfig::default();
        cfg.poly = PolystyreneConfig::builder().replication(args.k).build();
        cfg.area = plan.nodes() as f64;
        cfg.seed = args.seed;
        cfg.link = args.link_profile();
        let mut sim = NetSim::new(
            Torus2::new(plan.cols as f64, plan.rows as f64),
            shapes::torus_grid(plan.cols, plan.rows, 1.0),
            cfg,
        );
        sim.run(warmup);
        let mut load = TrafficLoad::with_dist(
            keys.clone(),
            rate,
            args.read_fraction,
            plan.ttl(),
            args.seed,
            args.traffic_dist,
        );
        let started = Instant::now();
        for _ in 0..rounds {
            let ttl = load.ttl();
            if batched {
                sim.offer_traffic(load.next_round(), ttl);
            } else {
                sim.offer_traffic_unbatched(load.next_round(), ttl);
            }
            sim.step();
        }
        started.elapsed().as_secs_f64()
    };
    let unbatched = time_one(false);
    let batched = time_one(true);
    (unbatched / batched, batched, unbatched)
}

fn main() {
    let args = CommonArgs::parse_with(
        CommonArgs {
            cols: 160,
            rows: 160,
            runs: 1,
            traffic_keys: 1024,
            traffic_dist: polystyrene_lab::TrafficDist::Zipf(0.99),
            net_latency: 0,
            net_jitter: 0,
            ..Default::default()
        },
        &[
            "warmup",
            "rounds",
            "base-rate",
            "rate-steps",
            "live-cols",
            "live-rows",
            "live-base-rate",
            "live-rate-steps",
            "speedup-rounds",
        ],
    );
    let warmup = args.extra_usize("warmup", 20) as u32;
    let rounds = args.extra_usize("rounds", 6) as u32;
    let speedup_rounds = args.extra_usize("speedup-rounds", 8) as u32;
    let sim_plan = |kind| Plan {
        kind,
        cols: args.cols,
        rows: args.rows,
        base_rate: args.extra_usize("base-rate", 2000),
        rate_steps: args.extra_usize("rate-steps", 4),
    };
    let live_plan = |kind| Plan {
        kind,
        cols: args.extra_usize("live-cols", 8),
        rows: args.extra_usize("live-rows", 4),
        base_rate: args.extra_usize("live-base-rate", 512),
        rate_steps: args.extra_usize("live-rate-steps", 6),
    };
    let plans: Vec<Plan> = if args.substrate_given {
        vec![match args.substrate {
            SubstrateKind::Engine | SubstrateKind::Netsim => sim_plan(args.substrate),
            SubstrateKind::Cluster | SubstrateKind::Tcp => live_plan(args.substrate),
        }]
    } else {
        vec![
            sim_plan(SubstrateKind::Netsim),
            live_plan(SubstrateKind::Cluster),
            live_plan(SubstrateKind::Tcp),
        ]
    };
    println!(
        "Traffic saturation sweep: {} dist over {} keys, {} rounds per rung \
         (warmup {warmup}), gateway ingress bound {GATEWAY_INGRESS_BOUND}\n",
        args.traffic_dist, args.traffic_keys, rounds
    );

    let mut failures: Vec<String> = Vec::new();
    let mut results: Vec<(String, SweepResult)> = Vec::new();
    for plan in &plans {
        println!(
            "-- {} on a {}x{} torus ({} nodes), rates {:?}, ttl {}",
            plan.kind.name(),
            plan.cols,
            plan.rows,
            plan.nodes(),
            plan.rates(),
            plan.ttl()
        );
        let result = sweep(plan, &args, warmup, rounds);
        let base_floor = if plan.is_live() {
            0.80
        } else {
            KNEE_AVAILABILITY
        };
        let base_availability = result.entries[0]
            .1
            .mean_traffic_availability()
            .unwrap_or(0.0);
        if base_availability < base_floor {
            failures.push(format!(
                "{}: base rung availability {base_availability:.4} below the \
                 {base_floor:.2} floor — the fabric cannot serve its lightest load",
                plan.kind.name()
            ));
        }
        if plan.is_live() {
            // The ladder tops out past the admission bound: the gateways
            // must have refused load at ingress rather than wedging.
            if result.total_shed == 0 {
                failures.push(format!(
                    "{}: ladder crossed the ingress bound but nothing was shed",
                    plan.kind.name()
                ));
            }
            if result.knee_rate.is_none() {
                failures.push(format!(
                    "{}: no knee found — the sweep never saturated the gateways",
                    plan.kind.name()
                ));
            }
        }
        match result.knee_rate {
            Some(knee) => println!("   knee at r{knee} (shed {} total)\n", result.total_shed),
            None => println!("   no knee within the ladder\n"),
        }
        results.push((plan.kind.name().to_string(), result));
    }

    // Batched-vs-unbatched wall clock at the top rung, on the kernel
    // sweep's own grid (skipped when the sweep only ran live kinds).
    let speedup = plans
        .iter()
        .find(|p| matches!(p.kind, SubstrateKind::Netsim | SubstrateKind::Engine))
        .map(|plan| {
            let top = *plan.rates().last().expect("ladder is never empty");
            let plan = Plan {
                kind: SubstrateKind::Netsim,
                ..*plan
            };
            let (speedup, batched, unbatched) =
                batched_speedup(&args, &plan, warmup, speedup_rounds, top);
            println!(
                "batched hot path at r{top}: {batched:.2}s vs unbatched {unbatched:.2}s \
                 ({speedup:.2}x)\n"
            );
            if speedup < 1.0 {
                failures.push(format!(
                    "batching lost to the per-wire path: {speedup:.2}x at r{top}"
                ));
            }
            (speedup, batched, unbatched)
        });

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    let entries: Vec<(String, &ExperimentSummary)> = results
        .iter()
        .flat_map(|(_, r)| r.entries.iter().map(|(label, s)| (label.clone(), s)))
        .collect();
    let knee_obj = results
        .iter()
        .map(|(label, r)| {
            format!(
                "\"{label}\":{}",
                r.knee_rate.map_or("null".to_string(), |k| k.to_string())
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let wall_obj = results
        .iter()
        .map(|(label, r)| format!("\"{label}\":{}", json_f64(r.wall_secs, 3)))
        .collect::<Vec<_>>()
        .join(",");
    let mut meta: Vec<(&str, String)> = vec![
        ("nodes", plans[0].nodes().to_string()),
        ("k", args.k.to_string()),
        ("warmup", warmup.to_string()),
        ("rounds", rounds.to_string()),
        ("traffic_keys", args.traffic_keys.to_string()),
        ("traffic_dist", format!("\"{}\"", args.traffic_dist)),
        ("read_fraction", json_f64(args.read_fraction, 3)),
        ("ingress_bound", GATEWAY_INGRESS_BOUND.to_string()),
        ("knee_rate", format!("{{{knee_obj}}}")),
        ("wall_secs", format!("{{{wall_obj}}}")),
    ];
    if let Some((speedup, batched, unbatched)) = speedup {
        meta.push(("batched_speedup", json_f64(speedup, 3)));
        meta.push(("batched_wall_secs", json_f64(batched, 3)));
        meta.push(("unbatched_wall_secs", json_f64(unbatched, 3)));
    }
    let json = summary_json("fig_traffic_scale", &meta, &entries);
    let json_path = args.out.join("fig_traffic_scale.json");
    std::fs::write(&json_path, json).expect("failed to write JSON");
    println!("JSON written to {}", json_path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "OK: {} rung(s) swept across {} substrate(s)",
        entries.len(),
        results.len()
    );
}
