//! **Table II** — reshaping time and reliability on the 40×80 torus for
//! K ∈ {2, 4, 8}, averaged over repeated runs with 95 % confidence
//! intervals — on any execution substrate via `--substrate`.
//!
//! Paper values (cycle engine): K=2 → 5.00 ± 0.000 rounds / 87.73 ±
//! 0.18 %; K=4 → 6.96 ± 0.083 / 96.88 ± 0.10; K=8 → 9.08 ± 0.114 /
//! 99.80 ± 0.03.
//!
//! ```sh
//! cargo run --release -p polystyrene-bench --bin table2_reshaping -- --runs 25
//! cargo run --release -p polystyrene-bench --bin table2_reshaping -- \
//!     --substrate cluster --cols 16 --rows 8 --runs 2
//! ```

use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{render_reshaping_table, table2_row, CommonArgs};
use polystyrene_sim::prelude::*;

// `--substrate` picks the backend; `--net-*` flags reach the ones that
// honor a network model through the shared lab configuration.

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        runs: 5,
        ..Default::default()
    });
    // Table II only needs the failure phase: converge 20 rounds, crash
    // half the torus, watch the reshaping.
    let paper = PaperScenario::reshaping_only(args.cols, args.rows, 20, 40);
    println!(
        "Table II scenario on {}: {}-node torus, failure at r=20, {} runs per K\n",
        args.substrate,
        paper.node_count(),
        args.runs
    );
    let rows: Vec<_> = [2usize, 4, 8]
        .iter()
        .map(|&k| {
            table2_row(
                args.substrate,
                &paper,
                k,
                SplitStrategy::Advanced,
                args.runs,
                &args.lab_config(SplitStrategy::Advanced),
            )
        })
        .collect();
    println!(
        "{}",
        render_reshaping_table(
            &format!(
                "Table II — reshaping time and reliability ({}×{} torus, {})",
                args.cols, args.rows, args.substrate
            ),
            &rows
        )
    );
    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.3}", r.reshaping.mean),
                format!("{:.3}", r.reshaping.half_width),
                format!("{:.2}", r.reliability.mean),
                format!("{:.2}", r.reliability.half_width),
            ]
        })
        .collect();
    write_csv(
        args.out.join("table2_reshaping.csv"),
        &[
            "K",
            "reshaping_mean",
            "reshaping_ci95",
            "reliability_mean",
            "reliability_ci95",
        ],
        &csv_rows,
    )
    .expect("failed to write CSV");
    println!("CSV written to {}", args.out.display());
    println!(
        "\nExpected shape (paper Table II): reshaping time grows with K\n\
         (more redundant copies to deduplicate: 5.00 → 6.96 → 9.08 rounds)\n\
         while reliability grows towards 1 − 0.5^(K+1) (87.7 → 96.9 → 99.8 %)."
    );
}
