//! Ablation benches for the design choices DESIGN.md §6 calls out:
//! projection strategy, replication factor and split strategy — each
//! printed as a reshaping-time table (the protocol-quality axis) and
//! timed as a scenario run (the compute-cost axis).

use criterion::{criterion_group, BenchmarkId, Criterion};
use polystyrene::prelude::{BackupPlacement, ProjectionStrategy, SplitStrategy};
use polystyrene_bench::{experiment_config, render_reshaping_table, ReshapingRow};
use polystyrene_lab::{run_experiment, ExperimentTrace};
use polystyrene_sim::prelude::*;
use polystyrene_space::torus::Torus2;
use std::time::Instant;

fn ablation_paper() -> PaperScenario {
    PaperScenario::reshaping_only(20, 10, 15, 50)
}

fn run_with(
    projection: ProjectionStrategy,
    split: SplitStrategy,
    k: usize,
    seed: u64,
) -> ExperimentTrace {
    let paper = ablation_paper();
    let (w, h) = paper.extents();
    let mut cfg = experiment_config(k, split, seed);
    cfg.area = paper.area();
    cfg.poly = polystyrene::prelude::PolystyreneConfig::builder()
        .replication(k)
        .split(split)
        .projection(projection)
        .build();
    let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
    run_experiment(&mut engine, &paper.script())
}

fn print_projection_ablation() {
    println!("========== Ablation: projection strategy (K=4, Split_Advanced) ==========");
    let mut rows = Vec::new();
    for (name, projection) in [
        ("Medoid (paper)", ProjectionStrategy::Medoid),
        ("MedoidSampled(8)", ProjectionStrategy::MedoidSampled(8)),
        ("FirstGuest", ProjectionStrategy::FirstGuest),
    ] {
        let mut times = Vec::new();
        let mut unreshaped = 0usize;
        let mut reliabilities = Vec::new();
        let started = Instant::now();
        for seed in 0..3u64 {
            let trace = run_with(projection, SplitStrategy::Advanced, 4, seed);
            match trace.reshaping_rounds() {
                Some(t) => times.push(t as f64),
                None => unreshaped += 1,
            }
            reliabilities.push(trace.reliability() * 100.0);
        }
        let elapsed = started.elapsed();
        rows.push(ReshapingRow {
            label: name.to_string(),
            nodes: ablation_paper().node_count(),
            reshaping: polystyrene_space::stats::ci95(&times),
            unreshaped,
            reliability: polystyrene_space::stats::ci95(&reliabilities),
            elapsed,
        });
    }
    println!("{}", render_reshaping_table("Projection ablation", &rows));
}

fn print_k_ablation() {
    println!("========== Ablation: replication factor K (Split_Advanced) ==========");
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 12] {
        let mut times = Vec::new();
        let mut unreshaped = 0usize;
        let mut reliabilities = Vec::new();
        let started = Instant::now();
        for seed in 0..3u64 {
            let trace = run_with(ProjectionStrategy::Medoid, SplitStrategy::Advanced, k, seed);
            match trace.reshaping_rounds() {
                Some(t) => times.push(t as f64),
                None => unreshaped += 1,
            }
            reliabilities.push(trace.reliability() * 100.0);
        }
        let elapsed = started.elapsed();
        rows.push(ReshapingRow {
            label: format!("K={k}"),
            nodes: ablation_paper().node_count(),
            reshaping: polystyrene_space::stats::ci95(&times),
            unreshaped,
            reliability: polystyrene_space::stats::ci95(&reliabilities),
            elapsed,
        });
    }
    println!("{}", render_reshaping_table("Replication ablation", &rows));
    println!(
        "Expected: reliability tracks 1 − 0.5^(K+1); reshaping slows as K grows\n\
         (more duplicates to drain) — the speed/reliability trade-off of Sec. IV-B.\n"
    );
}

fn print_placement_ablation() {
    println!("========== Ablation: backup placement under a correlated blast ==========");
    let paper = ablation_paper();
    let (w, h) = paper.extents();
    let mut rows = Vec::new();
    for (name, placement) in [
        ("UniformRandom (paper)", BackupPlacement::UniformRandom),
        ("NeighborhoodBiased", BackupPlacement::NeighborhoodBiased),
    ] {
        let mut times = Vec::new();
        let mut unreshaped = 0usize;
        let mut reliabilities = Vec::new();
        let started = Instant::now();
        for seed in 0..3u64 {
            let mut cfg = experiment_config(4, SplitStrategy::Advanced, seed);
            cfg.area = paper.area();
            cfg.poly = polystyrene::prelude::PolystyreneConfig::builder()
                .replication(4)
                .backup_placement(placement)
                .build();
            let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
            let trace = run_experiment(&mut engine, &paper.script());
            match trace.reshaping_rounds() {
                Some(t) => times.push(t as f64),
                None => unreshaped += 1,
            }
            reliabilities.push(trace.reliability() * 100.0);
        }
        let elapsed = started.elapsed();
        rows.push(ReshapingRow {
            label: name.to_string(),
            nodes: paper.node_count(),
            reshaping: polystyrene_space::stats::ci95(&times),
            unreshaped,
            reliability: polystyrene_space::stats::ci95(&reliabilities),
            elapsed,
        });
    }
    println!(
        "{}",
        render_reshaping_table("Backup placement ablation", &rows)
    );
    println!(
        "Expected: localized placement loses most of the dead region's points\n\
         (replicas die with their neighborhood) — the exact trade-off the paper\n\
         argues for random placement in Sec. III-D.\n"
    );
}

fn bench_projection_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_projection_scenario");
    group.sample_size(10);
    for (name, projection) in [
        ("medoid", ProjectionStrategy::Medoid),
        ("first_guest", ProjectionStrategy::FirstGuest),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &projection,
            |b, &projection| {
                b.iter(|| run_with(projection, SplitStrategy::Advanced, 4, 1));
            },
        );
    }
    group.finish();
}

fn bench_split_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_split_scenario");
    group.sample_size(10);
    for strategy in [SplitStrategy::Basic, SplitStrategy::Advanced] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| run_with(ProjectionStrategy::Medoid, strategy, 4, 1));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_projection_cost, bench_split_cost);

fn main() {
    print_projection_ablation();
    print_k_ablation();
    print_placement_ablation();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
