//! `cargo bench` entry point that regenerates a scaled-down version of
//! every table and figure in the paper (printed before the timing runs),
//! then times the simulation engine itself.
//!
//! Full-scale regeneration lives in the `src/bin/` harnesses; this bench
//! keeps sizes small so the whole suite finishes in minutes while still
//! exhibiting every qualitative shape the paper reports.

use criterion::{criterion_group, BenchmarkId, Criterion};
use polystyrene::prelude::SplitStrategy;
use polystyrene_bench::{
    experiment_config, render_reshaping_table, run_quality, scaling_sweep, summarize, table2_row,
    ReshapingRow, StackKind,
};
use polystyrene_lab::{run_experiment, LabConfig, SubstrateKind};
use polystyrene_sim::prelude::*;
use polystyrene_space::shapes;
use polystyrene_space::torus::Torus2;

/// Miniature of the paper's 3-phase scenario: 200-node torus.
fn mini_paper() -> PaperScenario {
    PaperScenario {
        cols: 20,
        rows: 10,
        step: 1.0,
        failure_round: 15,
        inject_round: Some(45),
        total_rounds: 80,
    }
}

fn print_fig1() {
    println!("================ Fig. 1 (mini): T-Man loses the shape ================");
    let paper = PaperScenario::reshaping_only(20, 10, 15, 20);
    let (w, h) = paper.extents();
    let mut cfg = EngineConfig::default();
    cfg.area = paper.area();
    let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
    engine.disable_polystyrene();
    engine.run(paper.failure_round);
    engine.fail_original_region(shapes::in_right_half(w));
    engine.run(20);
    let snap = Snapshot::capture(&engine, 4);
    println!("{}", snap.render_density(w, h, 20, 6));
    let m = engine.history().last().unwrap();
    println!(
        "T-Man after failure: homogeneity {:.2} ≫ reference {:.2} (shape lost)\n",
        m.homogeneity, m.reference_homogeneity
    );
}

fn print_fig6_7() {
    println!("====== Figs. 6 & 7 (mini): quality and overheads, K ∈ {{2,4,8}} vs T-Man ======");
    let paper = mini_paper();
    for &k in &[2usize, 4, 8] {
        let r = run_quality(
            &paper,
            StackKind::Polystyrene,
            k,
            SplitStrategy::Advanced,
            2,
            1,
        );
        println!("{}", summarize(&r, &format!("Polystyrene_K{k}")));
        let pts = r.points_per_node.means();
        println!(
            "  points/node before failure: {:.2} (expect {})",
            pts[paper.failure_round as usize - 1],
            1 + k
        );
    }
    let tman = run_quality(
        &paper,
        StackKind::TManOnly,
        4,
        SplitStrategy::Advanced,
        2,
        1,
    );
    println!("{}\n", summarize(&tman, "TMan (baseline)"));
}

fn print_table2() {
    println!("================ Table II (mini): reshaping time & reliability ================");
    let paper = PaperScenario::reshaping_only(20, 10, 15, 40);
    let rows: Vec<ReshapingRow> = [2usize, 4, 8]
        .iter()
        .map(|&k| {
            table2_row(
                SubstrateKind::Engine,
                &paper,
                k,
                SplitStrategy::Advanced,
                3,
                &LabConfig::default(),
            )
        })
        .collect();
    println!(
        "{}",
        render_reshaping_table("Table II (200-node torus, 3 runs)", &rows)
    );
}

fn print_fig10() {
    println!("================ Fig. 10 (mini): scalability & split ablation ================");
    let sizes = [(10usize, 10usize), (20, 10), (20, 20), (40, 20)];
    for &k in &[4usize, 8] {
        let rows = scaling_sweep(
            SubstrateKind::Engine,
            &sizes,
            k,
            SplitStrategy::Advanced,
            2,
            &LabConfig::default(),
            60,
        );
        println!(
            "{}",
            render_reshaping_table(&format!("Fig. 10a — K={k}"), &rows)
        );
    }
    for strategy in [SplitStrategy::Basic, SplitStrategy::Advanced] {
        let rows = scaling_sweep(
            SubstrateKind::Engine,
            &sizes,
            4,
            strategy,
            2,
            &LabConfig::default(),
            80,
        );
        println!(
            "{}",
            render_reshaping_table(&format!("Fig. 10b — {strategy}"), &rows)
        );
    }
}

fn bench_engine_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_round");
    group.sample_size(10);
    for &(cols, rows) in &[(10usize, 10usize), (20, 20), (40, 40)] {
        let n = cols * rows;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut cfg = EngineConfig::default();
            cfg.area = (cols * rows) as f64;
            let mut engine = Engine::new(
                Torus2::new(cols as f64, rows as f64),
                shapes::torus_grid(cols, rows, 1.0),
                cfg,
            );
            engine.run(5); // warm views
            b.iter(|| engine.step());
        });
    }
    group.finish();
}

fn bench_failure_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("failure_recovery_round");
    group.sample_size(10);
    group.bench_function("20x20_post_failure", |b| {
        let mut cfg = experiment_config(4, SplitStrategy::Advanced, 1);
        cfg.area = 400.0;
        let mut engine = Engine::new(
            Torus2::new(20.0, 20.0),
            shapes::torus_grid(20, 20, 1.0),
            cfg,
        );
        engine.run(10);
        engine.fail_original_region(shapes::in_right_half(20.0));
        b.iter(|| engine.step());
    });
    group.finish();
}

fn bench_full_mini_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_scenario");
    group.sample_size(10);
    group.bench_function("200_nodes_80_rounds", |b| {
        let paper = mini_paper();
        let (w, h) = paper.extents();
        b.iter(|| {
            let mut cfg = experiment_config(4, SplitStrategy::Advanced, 1);
            cfg.area = paper.area();
            let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
            run_experiment(&mut engine, &paper.script())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_round,
    bench_failure_recovery,
    bench_full_mini_scenario
);

fn main() {
    print_fig1();
    print_fig6_7();
    print_table2();
    print_fig10();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
