//! Microbenchmarks of the algorithmic kernels: medoid projection,
//! diameter heuristics, split functions, and single gossip exchanges.
//!
//! These quantify the cost trade-offs the paper discusses qualitatively:
//! the O(n²) medoid/diameter vs their sampled approximations
//! (Sec. III-F), and the per-exchange price of each `SPLIT` variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polystyrene::prelude::*;
use polystyrene_lab::TrafficLoad;
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_netsim::prelude::{LinkProfile, NetSim, NetSimConfig};
use polystyrene_sim::prelude::{Engine, EngineConfig};
use polystyrene_space::diameter::{diameter_exact, diameter_sampled, diameter_two_sweep};
use polystyrene_space::medoid::{medoid_index, medoid_index_sampled};
use polystyrene_space::shapes;
use polystyrene_space::torus::Torus2;
use polystyrene_topology::{tman_exchange, TMan, TManConfig, TopologyConstruction};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation counter, so the netsim
/// steady-state gate below can assert on the *count* of heap
/// allocations, not just time them.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn random_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| [rng.random_range(0.0..80.0), rng.random_range(0.0..40.0)])
        .collect()
}

fn random_datapoints(n: usize, seed: u64) -> Vec<DataPoint<[f64; 2]>> {
    random_points(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, p)| DataPoint::new(PointId::new(i as u64), p))
        .collect()
}

fn bench_medoid(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let mut group = c.benchmark_group("medoid");
    for &n in &[4usize, 16, 64, 256] {
        let pts = random_points(n, 1);
        group.bench_with_input(BenchmarkId::new("exact", n), &pts, |b, pts| {
            b.iter(|| medoid_index(&space, pts));
        });
        group.bench_with_input(BenchmarkId::new("sampled16", n), &pts, |b, pts| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| medoid_index_sampled(&space, pts, 16, &mut rng));
        });
    }
    group.finish();
}

fn bench_diameter(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let mut group = c.benchmark_group("diameter");
    for &n in &[16usize, 64, 256] {
        let pts = random_points(n, 3);
        group.bench_with_input(BenchmarkId::new("exact", n), &pts, |b, pts| {
            b.iter(|| diameter_exact(&space, pts));
        });
        group.bench_with_input(BenchmarkId::new("sampled4n", n), &pts, |b, pts| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| diameter_sampled(&space, pts, pts.len() * 4, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("two_sweep", n), &pts, |b, pts| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| diameter_two_sweep(&space, pts, &mut rng));
        });
    }
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let mut group = c.benchmark_group("split");
    for &n in &[8usize, 40, 120] {
        let pts = random_datapoints(n, 7);
        for strategy in SplitStrategy::ALL {
            group.bench_with_input(BenchmarkId::new(strategy.name(), n), &pts, |b, pts| {
                let mut rng = StdRng::seed_from_u64(8);
                b.iter(|| {
                    split(
                        &space,
                        strategy,
                        pts.clone(),
                        &[10.0, 10.0],
                        &[60.0, 30.0],
                        30,
                        &mut rng,
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_migration_exchange(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let cfg = PolystyreneConfig::default();
    let mut group = c.benchmark_group("migration_exchange");
    for &n in &[2usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(9);
            let pts = random_datapoints(n, 10);
            b.iter(|| {
                let mut p: PolyState<[f64; 2]> = PolyState::empty_at([0.0, 0.0]);
                let mut q: PolyState<[f64; 2]> = PolyState::empty_at([40.0, 20.0]);
                p.absorb_guests(pts[..n / 2].to_vec());
                q.absorb_guests(pts[n / 2..].to_vec());
                migrate_exchange(&space, &cfg, &mut p, &mut q, &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_tman_exchange(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let mut group = c.benchmark_group("tman_exchange");
    group.bench_function("view100_m20", |b| {
        let config = TManConfig::default();
        let mut a = TMan::new(space, config);
        let mut q = TMan::new(space, config);
        let pts = random_points(100, 11);
        let descs: Vec<Descriptor<[f64; 2]>> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| Descriptor::new(NodeId::new(i as u64 + 10), p))
            .collect();
        a.integrate(NodeId::new(0), &[0.0, 0.0], &descs[..50]);
        q.integrate(NodeId::new(1), &[40.0, 20.0], &descs[50..]);
        b.iter(|| {
            tman_exchange(
                &mut a,
                Descriptor::new(NodeId::new(0), [0.0, 0.0]),
                &mut q,
                Descriptor::new(NodeId::new(1), [40.0, 20.0]),
            )
        });
    });
    group.finish();
}

/// Steady-state allocation gate for the event kernel's activation loop.
///
/// After warm-up, a netsim round should allocate almost nothing: the
/// kernel's machinery (calendar event queue, effect sink, dispatch
/// queue, activation order, measurement tables) is reusable scratch,
/// and since the payload pool landed the wire messages' descriptor and
/// point vectors recycle through `EffectSink`'s `BufPool` too. What
/// remains is protocol-internal churn that genuinely varies per round
/// (split/merge working sets, occasional view growth). The bound is the
/// empirical pooled per-round count (~580 at 256 nodes) with ~2.5×
/// headroom; the pre-pool payload-dominated count was ~5 700, so a
/// regression that reintroduces per-message payload allocations — let
/// alone per-event kernel ones — blows well past it.
///
/// The rounds carry a live query workload: the traffic hot path —
/// batched offers, pooled `QueryBatch` envelopes, per-hop forwarding
/// scratch, the drain — must stay inside the same budget as a quiet
/// round, or batching has regressed into per-query allocation.
fn assert_netsim_steady_state_allocations(
    sim: &mut NetSim<Torus2>,
    load: &mut TrafficLoad<[f64; 2]>,
) {
    const ROUNDS: u64 = 8;
    const PER_ROUND_BOUND: u64 = 1_500;
    let mut samples: Vec<(u32, u64)> = Vec::with_capacity(1024);
    // One loaded warm-up round: the workload's own scratch, the query
    // pool and the per-gateway grouping buffers reach steady capacity.
    let ttl = load.ttl();
    sim.offer_traffic(load.next_round(), ttl);
    sim.step();
    let _ = sim.drain_traffic(&mut samples);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..ROUNDS {
        samples.clear();
        let ttl = load.ttl();
        sim.offer_traffic(load.next_round(), ttl);
        sim.step();
        let _ = sim.drain_traffic(&mut samples);
    }
    let per_round = (ALLOCATIONS.load(Ordering::Relaxed) - before) / ROUNDS;
    println!("netsim steady-state: {per_round} allocations/round (bound {PER_ROUND_BOUND})");
    assert!(
        per_round <= PER_ROUND_BOUND,
        "netsim activation loop allocated {per_round} times per steady-state round \
         (bound {PER_ROUND_BOUND}): protocol/kernel hot-path allocations have regressed"
    );
}

/// Steady-state allocation gate for the cycle engine's round loop —
/// the same budget idea as the netsim gate, on the slab-pooled engine.
///
/// The engine's round machinery (slab phase pipeline, dispatch queue,
/// metric tables) reuses its scratch, and the protocol payloads recycle
/// through the sink's pool, so a steady-state round at 256 nodes is
/// down to protocol-internal churn plus the rayon fan-out of the
/// measurement pass. Bound = measured (~800) with ~3× headroom; the
/// pre-pool count was ~6 000. As in the netsim gate, every measured
/// round serves a live query workload inside the same budget.
fn assert_engine_steady_state_allocations(
    engine: &mut Engine<Torus2>,
    load: &mut TrafficLoad<[f64; 2]>,
) {
    const ROUNDS: u64 = 8;
    const PER_ROUND_BOUND: u64 = 2_500;
    let mut samples: Vec<(u32, u64)> = Vec::with_capacity(1024);
    let ttl = load.ttl();
    engine.offer_traffic(load.next_round(), ttl);
    engine.step();
    let _ = engine.drain_traffic(&mut samples);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..ROUNDS {
        samples.clear();
        let ttl = load.ttl();
        engine.offer_traffic(load.next_round(), ttl);
        engine.step();
        let _ = engine.drain_traffic(&mut samples);
    }
    let per_round = (ALLOCATIONS.load(Ordering::Relaxed) - before) / ROUNDS;
    println!("engine steady-state: {per_round} allocations/round (bound {PER_ROUND_BOUND})");
    assert!(
        per_round <= PER_ROUND_BOUND,
        "engine round loop allocated {per_round} times per steady-state round \
         (bound {PER_ROUND_BOUND}): protocol/engine hot-path allocations have regressed"
    );
}

fn bench_engine_round(c: &mut Criterion) {
    let mut cfg = EngineConfig::default();
    cfg.area = 256.0;
    cfg.seed = 21;
    let mut engine = Engine::new(Torus2::new(32.0, 8.0), shapes::torus_grid(32, 8, 1.0), cfg);
    // Warm-up: views fill, slabs and scratch reach steady capacities.
    engine.run(10);
    let mut load = TrafficLoad::new(shapes::torus_grid(32, 8, 1.0), 32, 0.9, 16, 21);
    assert_engine_steady_state_allocations(&mut engine, &mut load);
    let mut group = c.benchmark_group("engine_round");
    group.bench_function("n256", |b| b.iter(|| engine.step()));
    group.finish();
}

fn bench_netsim_round(c: &mut Criterion) {
    let mut cfg = NetSimConfig::default();
    cfg.area = 256.0;
    cfg.seed = 21;
    cfg.link = LinkProfile {
        latency: 2,
        jitter: 1,
        loss: 0.05,
    };
    let mut sim = NetSim::new(Torus2::new(32.0, 8.0), shapes::torus_grid(32, 8, 1.0), cfg);
    // Warm-up: views fill, the event queue and kernel scratch reach
    // their steady capacities.
    sim.run(10);
    let mut load = TrafficLoad::new(shapes::torus_grid(32, 8, 1.0), 32, 0.9, 16, 21);
    assert_netsim_steady_state_allocations(&mut sim, &mut load);
    let mut group = c.benchmark_group("netsim_round");
    group.bench_function("n256_loss5", |b| b.iter(|| sim.step()));
    group.finish();
}

criterion_group!(
    benches,
    bench_medoid,
    bench_diameter,
    bench_split,
    bench_migration_exchange,
    bench_tman_exchange,
    bench_engine_round,
    bench_netsim_round
);
criterion_main!(benches);
