//! Microbenchmarks of the algorithmic kernels: medoid projection,
//! diameter heuristics, split functions, and single gossip exchanges.
//!
//! These quantify the cost trade-offs the paper discusses qualitatively:
//! the O(n²) medoid/diameter vs their sampled approximations
//! (Sec. III-F), and the per-exchange price of each `SPLIT` variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polystyrene::prelude::*;
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_space::diameter::{diameter_exact, diameter_sampled, diameter_two_sweep};
use polystyrene_space::medoid::{medoid_index, medoid_index_sampled};
use polystyrene_space::torus::Torus2;
use polystyrene_topology::{tman_exchange, TMan, TManConfig, TopologyConstruction};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| [rng.random_range(0.0..80.0), rng.random_range(0.0..40.0)])
        .collect()
}

fn random_datapoints(n: usize, seed: u64) -> Vec<DataPoint<[f64; 2]>> {
    random_points(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, p)| DataPoint::new(PointId::new(i as u64), p))
        .collect()
}

fn bench_medoid(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let mut group = c.benchmark_group("medoid");
    for &n in &[4usize, 16, 64, 256] {
        let pts = random_points(n, 1);
        group.bench_with_input(BenchmarkId::new("exact", n), &pts, |b, pts| {
            b.iter(|| medoid_index(&space, pts));
        });
        group.bench_with_input(BenchmarkId::new("sampled16", n), &pts, |b, pts| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| medoid_index_sampled(&space, pts, 16, &mut rng));
        });
    }
    group.finish();
}

fn bench_diameter(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let mut group = c.benchmark_group("diameter");
    for &n in &[16usize, 64, 256] {
        let pts = random_points(n, 3);
        group.bench_with_input(BenchmarkId::new("exact", n), &pts, |b, pts| {
            b.iter(|| diameter_exact(&space, pts));
        });
        group.bench_with_input(BenchmarkId::new("sampled4n", n), &pts, |b, pts| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| diameter_sampled(&space, pts, pts.len() * 4, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("two_sweep", n), &pts, |b, pts| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| diameter_two_sweep(&space, pts, &mut rng));
        });
    }
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let mut group = c.benchmark_group("split");
    for &n in &[8usize, 40, 120] {
        let pts = random_datapoints(n, 7);
        for strategy in SplitStrategy::ALL {
            group.bench_with_input(BenchmarkId::new(strategy.name(), n), &pts, |b, pts| {
                let mut rng = StdRng::seed_from_u64(8);
                b.iter(|| {
                    split(
                        &space,
                        strategy,
                        pts.clone(),
                        &[10.0, 10.0],
                        &[60.0, 30.0],
                        30,
                        &mut rng,
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_migration_exchange(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let cfg = PolystyreneConfig::default();
    let mut group = c.benchmark_group("migration_exchange");
    for &n in &[2usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(9);
            let pts = random_datapoints(n, 10);
            b.iter(|| {
                let mut p: PolyState<[f64; 2]> = PolyState::empty_at([0.0, 0.0]);
                let mut q: PolyState<[f64; 2]> = PolyState::empty_at([40.0, 20.0]);
                p.absorb_guests(pts[..n / 2].to_vec());
                q.absorb_guests(pts[n / 2..].to_vec());
                migrate_exchange(&space, &cfg, &mut p, &mut q, &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_tman_exchange(c: &mut Criterion) {
    let space = Torus2::new(80.0, 40.0);
    let mut group = c.benchmark_group("tman_exchange");
    group.bench_function("view100_m20", |b| {
        let config = TManConfig::default();
        let mut a = TMan::new(space, config);
        let mut q = TMan::new(space, config);
        let pts = random_points(100, 11);
        let descs: Vec<Descriptor<[f64; 2]>> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| Descriptor::new(NodeId::new(i as u64 + 10), p))
            .collect();
        a.integrate(NodeId::new(0), &[0.0, 0.0], &descs[..50]);
        q.integrate(NodeId::new(1), &[40.0, 20.0], &descs[50..]);
        b.iter(|| {
            tman_exchange(
                &mut a,
                Descriptor::new(NodeId::new(0), [0.0, 0.0]),
                &mut q,
                Descriptor::new(NodeId::new(1), [40.0, 20.0]),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_medoid,
    bench_diameter,
    bench_split,
    bench_migration_exchange,
    bench_tman_exchange
);
criterion_main!(benches);
