//! Polystyrene configuration.

use crate::projection::ProjectionStrategy;
use crate::split::SplitStrategy;
use serde::{Deserialize, Serialize};

/// Where backup replicas are placed (paper Sec. III-D).
///
/// "Because we assume catastrophic correlated failures, we spread copies
/// as randomly as possible in the system … There is however a downside to
/// this strategy: In case of a localized failure, data points will take
/// longer to percolate back … other more localized strategies (e.g.
/// replicating data points to nodes only a few hops away) could be
/// considered." Both ends of that trade-off are implemented; the ablation
/// bench quantifies it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackupPlacement {
    /// Replicas on uniformly random nodes (from the peer-sampling layer) —
    /// the paper's choice, robust to *correlated* regional failures.
    UniformRandom,
    /// Replicas on topologically close nodes (from the topology layer) —
    /// faster percolation after small localized failures, but replicas
    /// share the fate of their region in a correlated blast.
    NeighborhoodBiased,
}

/// Parameters of the Polystyrene layer.
///
/// Construct via [`PolystyreneConfig::builder`]; defaults follow the
/// paper's evaluation (Sec. IV-A): `K = 4` backup copies, partner drawn
/// from the `ψ = 5` closest T-Man neighbors plus one random RPS peer, the
/// `SPLIT_ADVANCED` migration strategy, and exact diameters up to 30
/// points.
///
/// # Example
///
/// ```
/// use polystyrene::prelude::*;
///
/// let cfg = PolystyreneConfig::builder()
///     .replication(8)
///     .split(SplitStrategy::Basic)
///     .build();
/// assert_eq!(cfg.replication, 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolystyreneConfig {
    /// Number of backup copies per data point (the paper's `K`).
    pub replication: usize,
    /// Number of closest topology neighbors considered as migration
    /// partners (the paper's `ψ`, Algorithm 3 line 1).
    pub psi: usize,
    /// Random RPS peers added to the migration candidate set
    /// (Algorithm 3 line 2 adds exactly one).
    pub random_candidates: usize,
    /// How guests are projected to a node position (Step 1 of Fig. 4).
    pub projection: ProjectionStrategy,
    /// Which `SPLIT` function migration uses (Step 4 of Fig. 4).
    pub split: SplitStrategy,
    /// Point-set size up to which diameters are computed exactly; above
    /// it, pair sampling is used (the paper suggests ~30, Sec. III-F).
    pub diameter_exact_threshold: usize,
    /// Where backup replicas are placed (Step 2 of Fig. 4).
    pub backup_placement: BackupPlacement,
}

impl Default for PolystyreneConfig {
    fn default() -> Self {
        Self {
            replication: 4,
            psi: 5,
            random_candidates: 1,
            projection: ProjectionStrategy::Medoid,
            split: SplitStrategy::Advanced,
            diameter_exact_threshold: 30,
            backup_placement: BackupPlacement::UniformRandom,
        }
    }
}

impl PolystyreneConfig {
    /// Starts building a configuration from the paper defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            config: Self::default(),
        }
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if `replication` or `psi` is zero.
    pub fn validate(&self) {
        assert!(
            self.replication > 0,
            "replication factor K must be positive"
        );
        assert!(self.psi > 0, "psi must be positive");
    }
}

/// Builder for [`PolystyreneConfig`].
#[derive(Clone, Debug)]
pub struct ConfigBuilder {
    config: PolystyreneConfig,
}

impl ConfigBuilder {
    /// Sets the replication factor `K` (paper Sec. III-D).
    pub fn replication(mut self, k: usize) -> Self {
        self.config.replication = k;
        self
    }

    /// Sets `ψ`, the number of closest neighbors among migration candidates.
    pub fn psi(mut self, psi: usize) -> Self {
        self.config.psi = psi;
        self
    }

    /// Sets how many random RPS peers join the migration candidate set.
    pub fn random_candidates(mut self, n: usize) -> Self {
        self.config.random_candidates = n;
        self
    }

    /// Sets the projection strategy.
    pub fn projection(mut self, projection: ProjectionStrategy) -> Self {
        self.config.projection = projection;
        self
    }

    /// Sets the migration split strategy.
    pub fn split(mut self, split: SplitStrategy) -> Self {
        self.config.split = split;
        self
    }

    /// Sets the exact-diameter threshold.
    pub fn diameter_exact_threshold(mut self, threshold: usize) -> Self {
        self.config.diameter_exact_threshold = threshold;
        self
    }

    /// Sets the backup placement strategy.
    pub fn backup_placement(mut self, placement: BackupPlacement) -> Self {
        self.config.backup_placement = placement;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the resulting configuration fails
    /// [`PolystyreneConfig::validate`].
    pub fn build(self) -> PolystyreneConfig {
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PolystyreneConfig::default();
        assert_eq!(c.replication, 4);
        assert_eq!(c.psi, 5);
        assert_eq!(c.random_candidates, 1);
        assert_eq!(c.split, SplitStrategy::Advanced);
        assert_eq!(c.projection, ProjectionStrategy::Medoid);
        assert_eq!(c.diameter_exact_threshold, 30);
        assert_eq!(c.backup_placement, BackupPlacement::UniformRandom);
    }

    #[test]
    fn builder_sets_backup_placement() {
        let c = PolystyreneConfig::builder()
            .backup_placement(BackupPlacement::NeighborhoodBiased)
            .build();
        assert_eq!(c.backup_placement, BackupPlacement::NeighborhoodBiased);
    }

    #[test]
    fn builder_overrides() {
        let c = PolystyreneConfig::builder()
            .replication(8)
            .psi(3)
            .random_candidates(2)
            .split(SplitStrategy::Basic)
            .projection(ProjectionStrategy::FirstGuest)
            .diameter_exact_threshold(10)
            .build();
        assert_eq!(c.replication, 8);
        assert_eq!(c.psi, 3);
        assert_eq!(c.random_candidates, 2);
        assert_eq!(c.split, SplitStrategy::Basic);
        assert_eq!(c.projection, ProjectionStrategy::FirstGuest);
        assert_eq!(c.diameter_exact_threshold, 10);
    }

    #[test]
    #[should_panic(expected = "replication factor K")]
    fn zero_replication_rejected() {
        let _ = PolystyreneConfig::builder().replication(0).build();
    }

    #[test]
    #[should_panic(expected = "psi must be positive")]
    fn zero_psi_rejected() {
        let _ = PolystyreneConfig::builder().psi(0).build();
    }
}
