//! Data points — the passive positions that define the target shape.
//!
//! "Data points differ from virtual nodes as they do not maintain any
//! neighborhood. They are passive data, and do not execute any protocol.
//! The set of all data points defines the underlying shape the topology
//! should converge to." (paper Sec. II-C)

use serde::{Deserialize, Serialize};

/// Stable identity of a data point, assigned when the target shape is
/// created and preserved across every migration and replication.
///
/// Identity (rather than position equality) is what lets migration
/// deduplicate redundant copies after a recovery wave (the replica spike of
/// paper Fig. 7a) and what the homogeneity metric traces: "the mean
/// distance between each initial data point and the nearest node hosting
/// this data point" (Sec. IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PointId(u64);

impl PointId {
    /// Creates a point id from a raw integer.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw integer value.
    pub const fn as_u64(&self) -> u64 {
        self.0
    }

    /// The raw value as a usize (ids are allocated contiguously by the
    /// shape generators).
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for PointId {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl std::fmt::Display for PointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A data point: a stable identity plus a position in the data space.
///
/// # Example
///
/// ```
/// use polystyrene::{DataPoint, PointId};
///
/// let p = DataPoint::new(PointId::new(3), [1.0, 2.0]);
/// assert_eq!(p.id, PointId::new(3));
/// assert_eq!(p.pos, [1.0, 2.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataPoint<P> {
    /// Stable identity.
    pub id: PointId,
    /// Position in the data space. Usually immutable; the evolving-shape
    /// extension (paper footnote 1) mutates it in place.
    pub pos: P,
}

impl<P> DataPoint<P> {
    /// Creates a data point.
    pub fn new(id: PointId, pos: P) -> Self {
        Self { id, pos }
    }
}

thread_local! {
    /// Reusable id set for [`dedup_by_id_in_place`] — the dedup runs once
    /// per migration union, and a fresh `HashSet` there was a steady
    /// per-exchange allocation.
    static SEEN_IDS: std::cell::RefCell<std::collections::HashSet<PointId>> =
        std::cell::RefCell::new(std::collections::HashSet::new());
}

/// Removes duplicate data points by id, keeping the first occurrence —
/// the dedup rule of the migration union ("all points ← p.guests ∪
/// q.guests", Algorithm 3 line 4, where ∪ is a set union over identities).
pub fn dedup_by_id<P>(mut points: Vec<DataPoint<P>>) -> Vec<DataPoint<P>> {
    dedup_by_id_in_place(&mut points);
    points
}

/// [`dedup_by_id`] on a buffer in place: order-preserving `retain` over a
/// thread-local seen-set, so the union → dedup step of every exchange
/// costs zero steady-state allocations.
pub fn dedup_by_id_in_place<P>(points: &mut Vec<DataPoint<P>>) {
    SEEN_IDS.with(|cell| {
        let mut seen = cell.borrow_mut();
        seen.clear();
        points.retain(|p| seen.insert(p.id));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_id_roundtrip() {
        let id = PointId::new(9);
        assert_eq!(id.as_u64(), 9);
        assert_eq!(id.index(), 9);
        assert_eq!(PointId::from(9u64), id);
        assert_eq!(id.to_string(), "p9");
    }

    #[test]
    fn datapoint_generic_over_position() {
        let a = DataPoint::new(PointId::new(0), 0.5f64);
        assert_eq!(a.pos, 0.5);
        let b = DataPoint::new(PointId::new(1), [0.0, 1.0]);
        assert_eq!(b.pos[1], 1.0);
    }

    #[test]
    fn dedup_keeps_first_occurrence() {
        let pts = vec![
            DataPoint::new(PointId::new(1), [0.0, 0.0]),
            DataPoint::new(PointId::new(2), [1.0, 0.0]),
            DataPoint::new(PointId::new(1), [9.0, 9.0]),
        ];
        let out = dedup_by_id(pts);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].pos, [0.0, 0.0]); // first copy of id 1 kept
        assert_eq!(out[1].id, PointId::new(2));
    }

    #[test]
    fn dedup_of_empty_is_empty() {
        let out: Vec<DataPoint<f64>> = dedup_by_id(Vec::new());
        assert!(out.is_empty());
    }
}
