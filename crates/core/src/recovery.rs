//! Recovery — reactivating ghosts of crashed holders (paper Algorithm 2,
//! Step 3 of Fig. 4).
//!
//! ```text
//! for each q ∈ keys(ghosts) ∩ failed do
//!     guests ← guests ∪ ghosts[q]      ⊲ recovery
//!     delete entry q from ghosts
//! end for
//! ```

use crate::state::PolyState;
use polystyrene_membership::NodeId;

/// Result of one recovery pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Origins whose ghosts were reactivated.
    pub recovered_from: Vec<NodeId>,
    /// Data points newly added to the guest set (after deduplication —
    /// a reactivated ghost the node already hosts is not counted).
    pub reactivated_points: usize,
}

impl RecoveryOutcome {
    /// Whether anything was recovered.
    pub fn is_empty(&self) -> bool {
        self.recovered_from.is_empty()
    }
}

/// Runs Algorithm 2 on `state`: every ghost entry whose origin the failure
/// detector flags is merged into the guest set and dropped from the ghost
/// dictionary.
///
/// # Example
///
/// ```
/// use polystyrene::prelude::*;
/// use polystyrene::recovery::recover;
/// use polystyrene_membership::NodeId;
///
/// let mut s = PolyState::with_initial_point(DataPoint::new(PointId::new(0), [0.0, 0.0]));
/// s.store_ghosts(NodeId::new(9), vec![DataPoint::new(PointId::new(1), [1.0, 1.0])]);
/// let outcome = recover(&mut s, |id| id == NodeId::new(9));
/// assert_eq!(outcome.reactivated_points, 1);
/// assert_eq!(s.guests.len(), 2);
/// assert!(s.ghosts.is_empty());
/// ```
pub fn recover<P: Clone>(
    state: &mut PolyState<P>,
    is_failed: impl Fn(NodeId) -> bool,
) -> RecoveryOutcome {
    let failed_origins: Vec<NodeId> = state
        .ghosts
        .keys()
        .copied()
        .filter(|&q| is_failed(q))
        .collect();
    let mut outcome = RecoveryOutcome::default();
    for q in failed_origins {
        let points = state.ghosts.remove(&q).unwrap_or_default();
        let before = state.guests.len();
        state.absorb_guests(points);
        outcome.reactivated_points += state.guests.len() - before;
        outcome.recovered_from.push(q);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapoint::{DataPoint, PointId};

    fn dp(id: u64, x: f64) -> DataPoint<[f64; 2]> {
        DataPoint::new(PointId::new(id), [x, 0.0])
    }

    #[test]
    fn no_failures_means_no_recovery() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        s.store_ghosts(NodeId::new(1), vec![dp(10, 1.0)]);
        let outcome = recover(&mut s, |_| false);
        assert!(outcome.is_empty());
        assert_eq!(outcome.reactivated_points, 0);
        assert_eq!(s.guests.len(), 1);
        assert_eq!(s.ghosts.len(), 1);
    }

    #[test]
    fn reactivates_only_failed_origins() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        s.store_ghosts(NodeId::new(1), vec![dp(10, 1.0), dp(11, 2.0)]);
        s.store_ghosts(NodeId::new(2), vec![dp(12, 3.0)]);
        let outcome = recover(&mut s, |id| id == NodeId::new(1));
        assert_eq!(outcome.recovered_from, vec![NodeId::new(1)]);
        assert_eq!(outcome.reactivated_points, 2);
        assert_eq!(s.guests.len(), 3);
        assert_eq!(s.ghosts.len(), 1);
        assert!(s.ghosts.contains_key(&NodeId::new(2)));
    }

    #[test]
    fn reactivation_dedups_against_existing_guests() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        // The ghost contains a copy of a point we already host.
        s.store_ghosts(NodeId::new(1), vec![dp(0, 9.0), dp(10, 1.0)]);
        let outcome = recover(&mut s, |_| true);
        assert_eq!(outcome.reactivated_points, 1);
        assert_eq!(s.guests.len(), 2);
        // Our own copy of point 0 kept its position.
        assert_eq!(s.guests[0].pos, [0.0, 0.0]);
    }

    #[test]
    fn multiple_failed_origins_all_recovered() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        for i in 1..=4 {
            s.store_ghosts(NodeId::new(i), vec![dp(10 + i, i as f64)]);
        }
        let outcome = recover(&mut s, |_| true);
        assert_eq!(outcome.recovered_from.len(), 4);
        assert_eq!(outcome.reactivated_points, 4);
        assert_eq!(s.guests.len(), 5);
        assert!(s.ghosts.is_empty());
    }

    #[test]
    fn empty_ghost_entry_recovers_zero_points() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        s.store_ghosts(NodeId::new(1), Vec::new());
        let outcome = recover(&mut s, |_| true);
        assert_eq!(outcome.recovered_from, vec![NodeId::new(1)]);
        assert_eq!(outcome.reactivated_points, 0);
    }
}
