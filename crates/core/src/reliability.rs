//! Replication-factor arithmetic (paper Sec. III-D).
//!
//! A data point survives a catastrophic failure if its primary holder or
//! any of its `K` backups survives. With backups placed uniformly at
//! random and a fraction `p_f` of nodes failing simultaneously, survival
//! probability is `1 − p_f^(K+1)`, and the minimum `K` for a target
//! survival probability `p_s` is `K > log(1 − p_s)/log(p_f) − 1`.
//! The paper's worked example: `p_f = 0.5`, `p_s = 0.99` ⇒ `K ≥ 6`.

/// Probability that a data point survives when a fraction `failure_fraction`
/// of nodes crash simultaneously and the point has `replication` backups.
///
/// # Panics
///
/// Panics if `failure_fraction` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use polystyrene::reliability::survival_probability;
///
/// // The paper's Table II settings: half the torus dies.
/// assert!((survival_probability(0.5, 2) - 0.875).abs() < 1e-12);
/// assert!((survival_probability(0.5, 4) - 0.96875).abs() < 1e-12);
/// assert!((survival_probability(0.5, 8) - 0.998046875).abs() < 1e-12);
/// ```
pub fn survival_probability(failure_fraction: f64, replication: usize) -> f64 {
    assert!(
        (0.0..=1.0).contains(&failure_fraction),
        "failure fraction must be in [0, 1], got {failure_fraction}"
    );
    1.0 - failure_fraction.powi(replication as i32 + 1)
}

/// Minimum replication factor `K` achieving survival probability at least
/// `target_survival` under a simultaneous failure of `failure_fraction`
/// of the nodes (paper inequality `K > log(1 − p_s)/log(p_f) − 1`).
///
/// Degenerate cases: returns 0 when `failure_fraction == 0` (nothing ever
/// dies) and `usize::MAX` when `failure_fraction == 1` and
/// `target_survival > 0` (everything always dies).
///
/// # Panics
///
/// Panics if either argument is outside `[0, 1)` for `target_survival` or
/// `[0, 1]` for `failure_fraction`.
///
/// # Example
///
/// ```
/// use polystyrene::reliability::required_replication;
///
/// // The paper's example: pf = 0.5, ps = 99% ⇒ K = 6 (from K > 5.64).
/// assert_eq!(required_replication(0.5, 0.99), 6);
/// ```
pub fn required_replication(failure_fraction: f64, target_survival: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&failure_fraction),
        "failure fraction must be in [0, 1], got {failure_fraction}"
    );
    assert!(
        (0.0..1.0).contains(&target_survival),
        "target survival must be in [0, 1), got {target_survival}"
    );
    if failure_fraction == 0.0 || target_survival == 0.0 {
        return 0;
    }
    if failure_fraction == 1.0 {
        return usize::MAX;
    }
    let bound = (1.0 - target_survival).ln() / failure_fraction.ln() - 1.0;
    if bound < 0.0 {
        0
    } else {
        // Strict inequality: the smallest integer strictly greater than
        // bound (floor + 1 covers both the integer and fractional cases).
        bound.floor() as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_worked_example() {
        // "a probability of survival of ps = 99% for individual data points
        //  would require ... K > 5.64, i.e. a replication factor K of at
        //  least 6."
        assert_eq!(required_replication(0.5, 0.99), 6);
    }

    #[test]
    fn table_ii_survival_levels() {
        // "2, 4 or 8 back-up copies per data point, yielding an 87.5%,
        //  96.9% or 99.8% probability of survival".
        assert!((survival_probability(0.5, 2) - 0.875).abs() < 1e-9);
        assert!((survival_probability(0.5, 4) - 0.969).abs() < 1e-3);
        assert!((survival_probability(0.5, 8) - 0.998).abs() < 1e-3);
    }

    #[test]
    fn degenerate_fractions() {
        assert_eq!(required_replication(0.0, 0.99), 0);
        assert_eq!(required_replication(1.0, 0.5), usize::MAX);
        assert_eq!(required_replication(0.5, 0.0), 0);
        assert_eq!(survival_probability(0.0, 3), 1.0);
        assert_eq!(survival_probability(1.0, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "failure fraction")]
    fn rejects_bad_fraction() {
        let _ = survival_probability(1.5, 2);
    }

    #[test]
    #[should_panic(expected = "target survival")]
    fn rejects_survival_of_one() {
        // ps = 1 needs infinite replication with pf > 0; the API refuses it.
        let _ = required_replication(0.5, 1.0);
    }

    proptest! {
        #[test]
        fn survival_monotone_in_replication(pf in 0.01..0.99f64, k in 0usize..20) {
            prop_assert!(
                survival_probability(pf, k + 1) >= survival_probability(pf, k)
            );
        }

        #[test]
        fn required_replication_achieves_target(
            pf in 0.05..0.95f64,
            ps in 0.05..0.995f64,
        ) {
            let k = required_replication(pf, ps);
            prop_assert!(survival_probability(pf, k) >= ps - 1e-12);
            // And it is minimal: one less fails the target (when k > 0).
            if k > 0 {
                prop_assert!(survival_probability(pf, k - 1) < ps + 1e-12);
            }
        }
    }
}
