//! `SPLIT` functions — how a migration exchange partitions the merged
//! guest set between the two participants (paper Sec. III-F).
//!
//! * [`SplitStrategy::Basic`] — Algorithm 4, `SPLIT_BASIC`: each point goes
//!   to the closer of the two node positions (one distributed k-means
//!   step, k = 2). Can get stuck in status-quo configurations (paper
//!   Fig. 5a).
//! * [`SplitStrategy::Advanced`] — Algorithm 5, `SPLIT_ADVANCED`: combines
//!   the **PD** heuristic (partition the points along one of their
//!   diameters) with the **MD** heuristic (assign the two clusters to the
//!   nodes so as to minimize their displacement).
//! * [`SplitStrategy::Pd`] / [`SplitStrategy::Md`] — each heuristic alone,
//!   the ablations of paper Fig. 10b.

use crate::datapoint::DataPoint;
use polystyrene_space::diameter::diameter_of_by;
use polystyrene_space::medoid::medoid_index_by;
use polystyrene_space::MetricSpace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which `SPLIT` function migration uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitStrategy {
    /// `SPLIT_BASIC` (Algorithm 4): nearest-position assignment.
    Basic,
    /// Partition along a diameter only (PD), clusters assigned in
    /// diameter-endpoint order without the displacement check.
    Pd,
    /// Nearest-position partition (as `Basic`) followed by the
    /// displacement-minimizing cluster assignment (MD).
    Md,
    /// `SPLIT_ADVANCED` (Algorithm 5): PD partition + MD assignment —
    /// the paper's default for all headline results.
    Advanced,
}

impl SplitStrategy {
    /// All strategies, in the order the Fig. 10b ablation reports them.
    pub const ALL: [SplitStrategy; 4] = [
        SplitStrategy::Basic,
        SplitStrategy::Pd,
        SplitStrategy::Md,
        SplitStrategy::Advanced,
    ];

    /// Human-readable name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            SplitStrategy::Basic => "Split_Basic",
            SplitStrategy::Pd => "Split_PD",
            SplitStrategy::Md => "Split_MD",
            SplitStrategy::Advanced => "Split_Advanced (MD+PD)",
        }
    }
}

impl std::fmt::Display for SplitStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Distributes `points` between a node at `pos_p` and a node at `pos_q`
/// according to `strategy`, returning `(points_for_p, points_for_q)`.
///
/// `diameter_exact_threshold` bounds the exact-diameter computation of the
/// PD heuristic (pair sampling above it, paper Sec. III-F).
///
/// The two returned vectors always partition the input: every input point
/// appears in exactly one of them.
///
/// # Example
///
/// ```
/// use polystyrene::prelude::*;
/// use polystyrene_space::prelude::*;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let pts = vec![
///     DataPoint::new(PointId::new(0), [0.0, 0.0]),
///     DataPoint::new(PointId::new(1), [10.0, 0.0]),
/// ];
/// let (for_p, for_q) = split(
///     &Euclidean2, SplitStrategy::Basic, pts, &[0.0, 0.0], &[10.0, 0.0], 30, &mut rng,
/// );
/// assert_eq!(for_p[0].id, PointId::new(0));
/// assert_eq!(for_q[0].id, PointId::new(1));
/// ```
#[allow(clippy::type_complexity)]
pub fn split<S: MetricSpace, R: Rng + ?Sized>(
    space: &S,
    strategy: SplitStrategy,
    points: Vec<DataPoint<S::Point>>,
    pos_p: &S::Point,
    pos_q: &S::Point,
    diameter_exact_threshold: usize,
    rng: &mut R,
) -> (Vec<DataPoint<S::Point>>, Vec<DataPoint<S::Point>>) {
    if points.len() < 2 {
        // Nothing to partition: give what exists to its closer node.
        return split_basic(space, points, pos_p, pos_q);
    }
    match strategy {
        SplitStrategy::Basic => split_basic(space, points, pos_p, pos_q),
        SplitStrategy::Pd => {
            let (u_side, v_side) =
                partition_along_diameter(space, points, diameter_exact_threshold, rng);
            (u_side, v_side)
        }
        SplitStrategy::Md => {
            let (a, b) = split_basic(space, points, pos_p, pos_q);
            assign_minimizing_displacement(space, a, b, pos_p, pos_q)
        }
        SplitStrategy::Advanced => {
            let (u_side, v_side) =
                partition_along_diameter(space, points, diameter_exact_threshold, rng);
            assign_minimizing_displacement(space, u_side, v_side, pos_p, pos_q)
        }
    }
}

/// `SPLIT_BASIC` (Algorithm 4): strict-closer points go to `p`, ties and
/// closer-to-q points go to `q` (the paper's `<` / `≤` asymmetry).
///
/// The p-side stays in the input buffer (a stable `retain`), so the
/// exchange's union `Vec` — typically a pooled wire buffer — survives as
/// one of the two outputs instead of being dropped for two fresh ones.
#[allow(clippy::type_complexity)]
fn split_basic<S: MetricSpace>(
    space: &S,
    mut points: Vec<DataPoint<S::Point>>,
    pos_p: &S::Point,
    pos_q: &S::Point,
) -> (Vec<DataPoint<S::Point>>, Vec<DataPoint<S::Point>>) {
    let for_q: Vec<DataPoint<S::Point>> = points
        .extract_if(.., |x| {
            space.distance(&x.pos, pos_p) >= space.distance(&x.pos, pos_q)
        })
        .collect();
    (points, for_q)
}

/// The PD heuristic (Algorithm 5 lines 2-4): find a diameter `(u, v)` of
/// the point set and partition by proximity to its endpoints (`<` to `u`,
/// ties to `v`).
#[allow(clippy::type_complexity)]
fn partition_along_diameter<S: MetricSpace, R: Rng + ?Sized>(
    space: &S,
    mut points: Vec<DataPoint<S::Point>>,
    exact_threshold: usize,
    rng: &mut R,
) -> (Vec<DataPoint<S::Point>>, Vec<DataPoint<S::Point>>) {
    let diameter = diameter_of_by(space, &points, |p| &p.pos, exact_threshold, rng)
        .expect("partition_along_diameter requires at least two points");
    let u = points[diameter.a].pos.clone();
    let v = points[diameter.b].pos.clone();
    // The u-side stays in the input buffer (order preserved), the v-side
    // moves out — same outputs as the old two-fresh-`Vec` build.
    let v_side: Vec<DataPoint<S::Point>> = points
        .extract_if(.., |x| {
            space.distance(&x.pos, &u) >= space.distance(&x.pos, &v)
        })
        .collect();
    (points, v_side)
}

/// The MD heuristic (Algorithm 5 lines 5-13): compute each cluster's
/// medoid and hand the clusters to `p` and `q` in whichever order
/// minimizes the total displacement
/// `d(medoid_for_p, pos_p) + d(medoid_for_q, pos_q)`.
///
/// An empty cluster contributes zero displacement (the node will simply
/// keep its position).
#[allow(clippy::type_complexity)]
fn assign_minimizing_displacement<S: MetricSpace>(
    space: &S,
    cluster_a: Vec<DataPoint<S::Point>>,
    cluster_b: Vec<DataPoint<S::Point>>,
    pos_p: &S::Point,
    pos_q: &S::Point,
) -> (Vec<DataPoint<S::Point>>, Vec<DataPoint<S::Point>>) {
    let medoid_of = |cluster: &[DataPoint<S::Point>]| -> Option<S::Point> {
        medoid_index_by(space, cluster, |p| &p.pos).map(|i| cluster[i].pos.clone())
    };
    let displacement = |m: &Option<S::Point>, target: &S::Point| -> f64 {
        m.as_ref().map_or(0.0, |m| space.distance(m, target))
    };
    let ma = medoid_of(&cluster_a);
    let mb = medoid_of(&cluster_b);
    let delta_ab = displacement(&ma, pos_p) + displacement(&mb, pos_q);
    let delta_ba = displacement(&mb, pos_p) + displacement(&ma, pos_q);
    if delta_ab < delta_ba {
        (cluster_a, cluster_b)
    } else {
        (cluster_b, cluster_a)
    }
}

/// The clustering objective the paper scores partitions with
/// (Sec. III-F): the sum over both clusters of all intra-cluster squared
/// distances. Lower is better.
pub fn partition_cost<S: MetricSpace>(
    space: &S,
    cluster_p: &[DataPoint<S::Point>],
    cluster_q: &[DataPoint<S::Point>],
) -> f64 {
    let intra = |cluster: &[DataPoint<S::Point>]| -> f64 {
        let mut acc = 0.0;
        for i in 0..cluster.len() {
            for j in (i + 1)..cluster.len() {
                // The paper's double sum counts each unordered pair twice.
                acc += 2.0 * space.distance_sq(&cluster[i].pos, &cluster[j].pos);
            }
        }
        acc
    };
    intra(cluster_p) + intra(cluster_q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapoint::PointId;
    use polystyrene_space::prelude::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn dp(id: u64, x: f64, y: f64) -> DataPoint<[f64; 2]> {
        DataPoint::new(PointId::new(id), [x, y])
    }

    fn ids(v: &[DataPoint<[f64; 2]>]) -> BTreeSet<u64> {
        v.iter().map(|p| p.id.as_u64()).collect()
    }

    /// The worked example of paper Fig. 5, in coordinates chosen so that
    /// the geometry matches the figure: p holds {a, b, c} around `pos_p =
    /// c`, q holds {d, e, f} around `pos_q = e`, and (b, d) is the unique
    /// diameter of the union.
    ///
    ///            a(2,4)  d(3,4)
    ///
    ///   b(0,0) c(1,0)      e(4,0) f(4.1,0)
    fn figure5() -> (Vec<DataPoint<[f64; 2]>>, [f64; 2], [f64; 2]) {
        let points = vec![
            dp(0, 2.0, 4.0), // a
            dp(1, 0.0, 0.0), // b
            dp(2, 1.0, 0.0), // c
            dp(3, 3.0, 4.0), // d
            dp(4, 4.0, 0.0), // e
            dp(5, 4.1, 0.0), // f
        ];
        let pos_p = [1.0, 0.0]; // c
        let pos_q = [4.0, 0.0]; // e
        (points, pos_p, pos_q)
    }

    #[test]
    fn basic_split_reproduces_figure5_status_quo() {
        let (points, pos_p, pos_q) = figure5();
        let mut rng = StdRng::seed_from_u64(1);
        let (for_p, for_q) = split(
            &Euclidean2,
            SplitStrategy::Basic,
            points,
            &pos_p,
            &pos_q,
            30,
            &mut rng,
        );
        // "Applying SPLIT_BASIC to this configuration leads to a status
        //  quo: p and q do not exchange any point."
        assert_eq!(ids(&for_p), [0, 1, 2].into());
        assert_eq!(ids(&for_q), [3, 4, 5].into());
    }

    #[test]
    fn advanced_split_reproduces_figure5_improvement() {
        let (points, pos_p, pos_q) = figure5();
        let mut rng = StdRng::seed_from_u64(1);
        let (for_p, for_q) = split(
            &Euclidean2,
            SplitStrategy::Advanced,
            points.clone(),
            &pos_p,
            &pos_q,
            30,
            &mut rng,
        );
        // PD partitions along the diameter (b, d) into {a, d} / {b, c, e,
        // f}; MD hands the top cluster {a, d} to q and the bottom one to p.
        assert_eq!(ids(&for_p), [1, 2, 4, 5].into());
        assert_eq!(ids(&for_q), [0, 3].into());
        // And the paper's objective agrees this improves on the status quo.
        let (bp, bq) = split(
            &Euclidean2,
            SplitStrategy::Basic,
            points,
            &pos_p,
            &pos_q,
            30,
            &mut StdRng::seed_from_u64(2),
        );
        assert!(
            partition_cost(&Euclidean2, &for_p, &for_q) < partition_cost(&Euclidean2, &bp, &bq)
        );
    }

    #[test]
    fn basic_ties_go_to_q() {
        // Algorithm 4: `<` for p, `≤` for q.
        let pts = vec![dp(0, 1.0, 0.0)];
        let (for_p, for_q) = split_basic(&Euclidean2, pts, &[0.0, 0.0], &[2.0, 0.0]);
        assert!(for_p.is_empty());
        assert_eq!(for_q.len(), 1);
    }

    #[test]
    fn singleton_and_empty_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        for strategy in SplitStrategy::ALL {
            let (p, q) = split(
                &Euclidean2,
                strategy,
                Vec::new(),
                &[0.0, 0.0],
                &[1.0, 0.0],
                30,
                &mut rng,
            );
            assert!(p.is_empty() && q.is_empty());
            let (p, q) = split(
                &Euclidean2,
                strategy,
                vec![dp(0, 0.1, 0.0)],
                &[0.0, 0.0],
                &[1.0, 0.0],
                30,
                &mut rng,
            );
            assert_eq!(p.len() + q.len(), 1);
            assert_eq!(p.len(), 1, "single point near p must go to p ({strategy})");
        }
    }

    #[test]
    fn md_fixes_a_swapped_configuration() {
        // p sits amid q's points and vice versa; Basic alone would already
        // swap them, but MD must *not* undo a good assignment.
        let pts = vec![
            dp(0, 0.0, 0.0),
            dp(1, 0.2, 0.0),
            dp(2, 10.0, 0.0),
            dp(3, 10.2, 0.0),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let (for_p, for_q) = split(
            &Euclidean2,
            SplitStrategy::Md,
            pts,
            &[0.1, 0.0],
            &[10.1, 0.0],
            30,
            &mut rng,
        );
        assert_eq!(ids(&for_p), [0, 1].into());
        assert_eq!(ids(&for_q), [2, 3].into());
    }

    #[test]
    fn advanced_assigns_clusters_to_nearest_node() {
        // Two tight clusters; p is near the left one, q near the right one.
        let pts = vec![
            dp(0, 0.0, 0.0),
            dp(1, 1.0, 0.0),
            dp(2, 20.0, 0.0),
            dp(3, 21.0, 0.0),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let (for_p, for_q) = split(
            &Euclidean2,
            SplitStrategy::Advanced,
            pts,
            &[2.0, 0.0],
            &[19.0, 0.0],
            30,
            &mut rng,
        );
        assert_eq!(ids(&for_p), [0, 1].into());
        assert_eq!(ids(&for_q), [2, 3].into());
    }

    #[test]
    fn advanced_moves_points_even_from_status_quo_on_torus() {
        // Same shape as figure5 but on a torus, exercising wrap-around.
        let t = Torus2::new(16.0, 16.0);
        let pts = vec![
            dp(0, 15.0, 0.0), // left of seam
            dp(1, 0.5, 0.0),  // right of seam — same cluster via wrap
            dp(2, 8.0, 0.0),
            dp(3, 8.5, 0.0),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let (for_p, for_q) = split(
            &t,
            SplitStrategy::Advanced,
            pts,
            &[0.0, 0.0],
            &[8.2, 0.0],
            30,
            &mut rng,
        );
        assert_eq!(ids(&for_p), [0, 1].into(), "seam-straddling cluster to p");
        assert_eq!(ids(&for_q), [2, 3].into());
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(SplitStrategy::Basic.name(), "Split_Basic");
        assert_eq!(
            SplitStrategy::Advanced.to_string(),
            "Split_Advanced (MD+PD)"
        );
        assert_eq!(SplitStrategy::ALL.len(), 4);
    }

    #[test]
    fn partition_cost_counts_ordered_pairs() {
        let a = [dp(0, 0.0, 0.0), dp(1, 3.0, 4.0)];
        // One pair at squared distance 25, counted twice (i,j) and (j,i).
        assert_eq!(partition_cost(&Euclidean2, &a, &[]), 50.0);
        assert_eq!(partition_cost(&Euclidean2, &[], &a), 50.0);
    }

    fn arb_points() -> impl Strategy<Value = Vec<DataPoint<[f64; 2]>>> {
        proptest::collection::vec([-50.0..50.0f64, -50.0..50.0f64], 0..40).prop_map(|coords| {
            coords
                .into_iter()
                .enumerate()
                .map(|(i, [x, y])| dp(i as u64, x, y))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn every_strategy_partitions_the_input(
            pts in arb_points(),
            px in -50.0..50.0f64,
            qx in -50.0..50.0f64,
            seed in 0u64..100,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let input_ids = ids(&pts);
            for strategy in SplitStrategy::ALL {
                let (p, q) = split(
                    &Euclidean2,
                    strategy,
                    pts.clone(),
                    &[px, 0.0],
                    &[qx, 0.0],
                    8, // small threshold to exercise the sampled diameter
                    &mut rng,
                );
                prop_assert_eq!(p.len() + q.len(), pts.len());
                let mut together = ids(&p);
                together.extend(ids(&q));
                prop_assert_eq!(&together, &input_ids);
                let overlap: Vec<_> = ids(&p).intersection(&ids(&q)).cloned().collect();
                prop_assert!(overlap.is_empty(), "clusters overlap: {:?}", overlap);
            }
        }

        #[test]
        fn advanced_never_worse_than_its_own_swap(
            pts in arb_points(),
            px in -50.0..50.0f64,
            qx in -50.0..50.0f64,
            seed in 0u64..100,
        ) {
            // MD's guarantee: among the two assignments of the PD clusters,
            // the chosen one has minimal displacement.
            prop_assume!(pts.len() >= 2);
            let mut rng = StdRng::seed_from_u64(seed);
            let pos_p = [px, 0.0];
            let pos_q = [qx, 0.0];
            let (for_p, for_q) = split(
                &Euclidean2,
                SplitStrategy::Advanced,
                pts.clone(),
                &pos_p,
                &pos_q,
                100,
                &mut rng,
            );
            let med = |c: &[DataPoint<[f64; 2]>]| -> Option<[f64; 2]> {
                let pos: Vec<_> = c.iter().map(|p| p.pos).collect();
                polystyrene_space::medoid::medoid(&Euclidean2, &pos).copied()
            };
            let disp = |m: Option<[f64; 2]>, t: [f64; 2]| {
                m.map_or(0.0, |m| Euclidean2.distance(&m, &t))
            };
            let chosen = disp(med(&for_p), pos_p) + disp(med(&for_q), pos_q);
            let swapped = disp(med(&for_q), pos_p) + disp(med(&for_p), pos_q);
            prop_assert!(chosen <= swapped + 1e-9);
        }
    }
}
