//! Projection — deriving a node's published position from its guests
//! (Step 1 of paper Fig. 4).
//!
//! "At any given time, guest data points are used to derive a node's
//! actual position, which is then fed to the underlying topology
//! construction protocol. … we use a simple projection mechanism, but this
//! is an independent piece of our protocol that can be easily adapted"
//! (paper Sec. II-C). The default is the medoid (Sec. III-C); alternatives
//! are provided for the modularity ablations of DESIGN.md §6.

use crate::datapoint::DataPoint;
use polystyrene_space::medoid::{medoid_index_by, medoid_index_sampled_by};
use polystyrene_space::MetricSpace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a node position is computed from its guest set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProjectionStrategy {
    /// The exact medoid of the guest points — the paper's choice,
    /// well-defined in any metric space (Sec. III-C).
    Medoid,
    /// Approximate medoid evaluating only this many random candidates,
    /// for nodes hosting very large guest sets.
    MedoidSampled(usize),
    /// The first guest point (an O(1) ablation; poor load balance but
    /// useful to measure how much the medoid actually buys).
    FirstGuest,
}

impl ProjectionStrategy {
    /// Projects `guests` to a position, or `None` when `guests` is empty
    /// (freshly injected nodes keep their initialization position — paper
    /// Sec. IV-A Phase 3 re-injects nodes "containing no data point, but
    /// with their pos parameters initialized").
    pub fn project<S: MetricSpace, R: Rng + ?Sized>(
        &self,
        space: &S,
        guests: &[DataPoint<S::Point>],
        rng: &mut R,
    ) -> Option<S::Point> {
        if guests.is_empty() {
            return None;
        }
        let idx = match self {
            Self::Medoid => medoid_index_by(space, guests, |g| &g.pos),
            Self::MedoidSampled(candidates) => {
                medoid_index_sampled_by(space, guests, |g| &g.pos, *candidates, rng)
            }
            Self::FirstGuest => Some(0),
        }?;
        Some(guests[idx].pos.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapoint::PointId;
    use polystyrene_space::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pts(coords: &[[f64; 2]]) -> Vec<DataPoint<[f64; 2]>> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &c)| DataPoint::new(PointId::new(i as u64), c))
            .collect()
    }

    #[test]
    fn empty_guests_project_to_none() {
        let mut rng = StdRng::seed_from_u64(1);
        for strategy in [
            ProjectionStrategy::Medoid,
            ProjectionStrategy::MedoidSampled(4),
            ProjectionStrategy::FirstGuest,
        ] {
            assert_eq!(strategy.project(&Euclidean2, &[], &mut rng), None);
        }
    }

    #[test]
    fn medoid_projection_picks_central_point() {
        let mut rng = StdRng::seed_from_u64(1);
        let guests = pts(&[[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]);
        let pos = ProjectionStrategy::Medoid
            .project(&Euclidean2, &guests, &mut rng)
            .unwrap();
        assert_eq!(pos, [1.0, 0.0]);
    }

    #[test]
    fn medoid_projection_wraps_on_torus() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Torus2::new(16.0, 16.0);
        let guests = pts(&[[15.0, 0.0], [0.0, 0.0], [1.0, 0.0]]);
        let pos = ProjectionStrategy::Medoid
            .project(&t, &guests, &mut rng)
            .unwrap();
        assert_eq!(pos, [0.0, 0.0]);
    }

    #[test]
    fn first_guest_projection_is_constant_time_choice() {
        let mut rng = StdRng::seed_from_u64(1);
        let guests = pts(&[[5.0, 5.0], [0.0, 0.0]]);
        let pos = ProjectionStrategy::FirstGuest
            .project(&Euclidean2, &guests, &mut rng)
            .unwrap();
        assert_eq!(pos, [5.0, 5.0]);
    }

    #[test]
    fn sampled_medoid_projects_to_a_member() {
        let mut rng = StdRng::seed_from_u64(3);
        let guests = pts(&[[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0], [4.0, 0.0]]);
        let pos = ProjectionStrategy::MedoidSampled(2)
            .project(&Euclidean2, &guests, &mut rng)
            .unwrap();
        assert!(guests.iter().any(|g| g.pos == pos));
    }
}
