//! A node's Polystyrene-local state (paper Table I).
//!
//! | variable  | paper definition                                           |
//! |-----------|------------------------------------------------------------|
//! | `guests`  | the data points currently hosted by the local node          |
//! | `pos`     | the node's virtual position                                  |
//! | `ghosts`  | inactivated data points replicated to this node, keyed by the node they came from |
//! | `backups` | the nodes where the local node has replicated its state      |

use crate::config::PolystyreneConfig;
use crate::datapoint::{dedup_by_id_in_place, DataPoint, PointId};
use polystyrene_membership::NodeId;
use polystyrene_space::MetricSpace;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Polystyrene state of one node, generic over the data-space point type.
///
/// # Example
///
/// ```
/// use polystyrene::prelude::*;
///
/// let origin = DataPoint::new(PointId::new(0), [2.0, 3.0]);
/// let state = PolyState::with_initial_point(origin);
/// assert_eq!(state.pos, [2.0, 3.0]);         // pos starts at the origin point
/// assert_eq!(state.guests.len(), 1);         // one guest: the origin point
/// assert!(state.ghosts.is_empty());          // no ghosts at start
/// assert!(state.backups.is_empty());         // no backups at start
/// ```
#[derive(Clone, Debug)]
pub struct PolyState<P> {
    /// Data points this node is the *primary holder* of.
    pub guests: Vec<DataPoint<P>>,
    /// The node's virtual position, as published to the topology layer.
    pub pos: P,
    /// Deactivated replicas received from other nodes, keyed by origin:
    /// `ghosts[q]` is the last state `q` pushed here.
    pub ghosts: BTreeMap<NodeId, Vec<DataPoint<P>>>,
    /// The nodes currently holding a replica of `guests`.
    pub backups: BTreeSet<NodeId>,
    /// Per-backup record of the point ids last pushed there (sorted
    /// ascending), enabling the incremental-delta traffic optimization of
    /// paper Sec. III-D. Sorted `Vec`s instead of sets: the delta walk is
    /// a linear merge, and an unchanged replica costs zero allocations to
    /// re-verify each round.
    pub(crate) last_sent: BTreeMap<NodeId, Vec<PointId>>,
}

impl<P: Clone> PolyState<P> {
    /// State of a founding node: hosts (only) its own original data point,
    /// and its position is that point ("guests only contains one data
    /// point: the node's initial position", paper Sec. III-A).
    pub fn with_initial_point(origin: DataPoint<P>) -> Self {
        Self {
            pos: origin.pos.clone(),
            guests: vec![origin],
            ghosts: BTreeMap::new(),
            backups: BTreeSet::new(),
            last_sent: BTreeMap::new(),
        }
    }

    /// State of a freshly injected node: a position but **no** data points
    /// (paper Sec. IV-A Phase 3: nodes "containing no data point, but with
    /// their pos parameters initialized").
    pub fn empty_at(pos: P) -> Self {
        Self {
            pos,
            guests: Vec::new(),
            ghosts: BTreeMap::new(),
            backups: BTreeSet::new(),
            last_sent: BTreeMap::new(),
        }
    }

    /// Ids of the hosted guests.
    pub fn guest_ids(&self) -> Vec<PointId> {
        self.guests.iter().map(|g| g.id).collect()
    }

    /// Total data points stored locally (guests + ghost copies) — the
    /// memory-overhead metric of paper Fig. 7a.
    pub fn stored_points(&self) -> usize {
        self.guests.len() + self.ghosts.values().map(Vec::len).sum::<usize>()
    }

    /// Adds guests, deduplicating by id against the existing set.
    pub fn absorb_guests(&mut self, incoming: Vec<DataPoint<P>>) {
        self.guests.extend(incoming);
        dedup_by_id_in_place(&mut self.guests);
    }

    /// Recomputes `pos` from the guests using the configured projection
    /// (Step 1 of paper Fig. 4). Empty-guest nodes keep their position.
    /// Returns `true` when the position was recomputed.
    pub fn project<S, R>(&mut self, space: &S, config: &PolystyreneConfig, rng: &mut R) -> bool
    where
        S: MetricSpace<Point = P>,
        R: Rng + ?Sized,
    {
        match config.projection.project(space, &self.guests, rng) {
            Some(pos) => {
                self.pos = pos;
                true
            }
            None => false,
        }
    }

    /// Records an incoming backup push: `from` replicated its guest set
    /// here (Step 2' of paper Fig. 4). Returns the replica it replaces,
    /// if any, so a pooling driver can recycle the buffer instead of
    /// dropping one per received push.
    pub fn store_ghosts(
        &mut self,
        from: NodeId,
        points: Vec<DataPoint<P>>,
    ) -> Option<Vec<DataPoint<P>>> {
        self.ghosts.insert(from, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_space::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dp(id: u64, x: f64, y: f64) -> DataPoint<[f64; 2]> {
        DataPoint::new(PointId::new(id), [x, y])
    }

    #[test]
    fn founding_node_invariants() {
        let s = PolyState::with_initial_point(dp(7, 1.0, 2.0));
        assert_eq!(s.pos, [1.0, 2.0]);
        assert_eq!(s.guest_ids(), vec![PointId::new(7)]);
        assert!(s.ghosts.is_empty());
        assert!(s.backups.is_empty());
        assert_eq!(s.stored_points(), 1);
    }

    #[test]
    fn injected_node_is_empty() {
        let s: PolyState<[f64; 2]> = PolyState::empty_at([3.0, 3.0]);
        assert!(s.guests.is_empty());
        assert_eq!(s.pos, [3.0, 3.0]);
        assert_eq!(s.stored_points(), 0);
    }

    #[test]
    fn absorb_guests_dedups() {
        let mut s = PolyState::with_initial_point(dp(1, 0.0, 0.0));
        s.absorb_guests(vec![dp(1, 9.0, 9.0), dp(2, 1.0, 1.0)]);
        assert_eq!(s.guests.len(), 2);
        // Existing copy of id 1 wins.
        assert_eq!(s.guests[0].pos, [0.0, 0.0]);
    }

    #[test]
    fn stored_points_counts_ghosts() {
        let mut s = PolyState::with_initial_point(dp(1, 0.0, 0.0));
        s.store_ghosts(NodeId::new(5), vec![dp(10, 1.0, 1.0), dp(11, 2.0, 2.0)]);
        s.store_ghosts(NodeId::new(6), vec![dp(12, 3.0, 3.0)]);
        assert_eq!(s.stored_points(), 4);
        // Re-push from the same origin replaces, not accumulates.
        s.store_ghosts(NodeId::new(5), vec![dp(10, 1.0, 1.0)]);
        assert_eq!(s.stored_points(), 3);
    }

    #[test]
    fn project_updates_position_to_medoid() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PolystyreneConfig::default();
        let mut s = PolyState::with_initial_point(dp(1, 0.0, 0.0));
        s.absorb_guests(vec![dp(2, 1.0, 0.0), dp(3, 2.0, 0.0)]);
        assert!(s.project(&Euclidean2, &cfg, &mut rng));
        assert_eq!(s.pos, [1.0, 0.0]);
    }

    #[test]
    fn project_keeps_position_when_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PolystyreneConfig::default();
        let mut s: PolyState<[f64; 2]> = PolyState::empty_at([4.0, 4.0]);
        assert!(!s.project(&Euclidean2, &cfg, &mut rng));
        assert_eq!(s.pos, [4.0, 4.0]);
    }
}
