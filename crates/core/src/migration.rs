//! Migration — the pairwise data-point exchange that re-balances the
//! shape (paper Algorithm 3, Step 4 of Fig. 4).
//!
//! ```text
//! C ← ψ closest neighbors in local T-Man view
//! C ← C ∪ { one random neighbor from RPS }
//! q ← random node from C
//! ⊲ Pair-wise pull-push exchange with q
//! all_points ← p.guests ∪ q.guests            ⊲ pull exchange
//! (points1, points2) ← SPLIT(all_points, p.pos, q.pos)
//! p.guests ← points1                           ⊲ updating one's state
//! q.guests ← points2                           ⊲ push exchange
//! ```
//!
//! "This last step is very similar to a decentralized k-means algorithm,
//! and is what allows Polystyrene to re-converge towards the desired
//! shape" (paper Sec. III-B). Partner *selection* (lines 1–3) lives in the
//! driver (simulator / runtime), which owns the T-Man view and RPS; this
//! module implements the exchange itself (lines 4–7) plus the
//! re-projection both participants perform afterwards.

use crate::config::PolystyreneConfig;
use crate::datapoint::{dedup_by_id_in_place, DataPoint, PointId};
use crate::split::split;
use crate::state::PolyState;
use polystyrene_space::MetricSpace;
use rand::Rng;
use std::collections::BTreeSet;

/// Result of one migration exchange, with the traffic breakdown the
/// simulator converts into the paper's cost units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationOutcome {
    /// Points held by the initiator after the exchange.
    pub kept_by_p: usize,
    /// Points held by the responder after the exchange.
    pub kept_by_q: usize,
    /// Points that changed primary holder.
    pub transferred_points: usize,
    /// Points the responder shipped to the initiator (the *pull* leg).
    pub pulled_points: usize,
    /// Points the initiator shipped back (the *push* leg).
    pub pushed_points: usize,
    /// Duplicate copies eliminated by the union — this is what drains the
    /// post-recovery replica spike of paper Fig. 7a.
    pub deduplicated_points: usize,
}

/// Executes the pull-push exchange of Algorithm 3 between initiator `p`
/// and responder `q`, then re-projects both positions (Step 1 of Fig. 4).
///
/// The union of the two guest sets is deduplicated by [`PointId`] — after
/// a recovery wave many nodes hold redundant copies of the same points,
/// and these meetings are what removes them ("These copies rapidly
/// disappear as the migration process detects and removes them",
/// Sec. IV-B).
///
/// # Example
///
/// ```
/// use polystyrene::prelude::*;
/// use polystyrene_space::prelude::*;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let cfg = PolystyreneConfig::default();
/// // q ended up with everything after a recovery; p is empty.
/// let mut p: PolyState<[f64; 2]> = PolyState::empty_at([0.0, 0.0]);
/// let mut q = PolyState::with_initial_point(DataPoint::new(PointId::new(0), [10.0, 0.0]));
/// q.absorb_guests(vec![DataPoint::new(PointId::new(1), [0.5, 0.0])]);
///
/// let out = migrate_exchange(&Euclidean2, &cfg, &mut p, &mut q, &mut rng);
/// // The point near p migrated to p; the far one stayed with q.
/// assert_eq!(p.guests.len(), 1);
/// assert_eq!(q.guests.len(), 1);
/// assert_eq!(out.transferred_points, 1);
/// ```
pub fn migrate_exchange<S: MetricSpace, R: Rng + ?Sized>(
    space: &S,
    config: &PolystyreneConfig,
    p: &mut PolyState<S::Point>,
    q: &mut PolyState<S::Point>,
    rng: &mut R,
) -> MigrationOutcome {
    let p_before: BTreeSet<PointId> = p.guests.iter().map(|g| g.id).collect();
    let q_before: BTreeSet<PointId> = q.guests.iter().map(|g| g.id).collect();

    let incoming = std::mem::take(&mut p.guests);
    let outcome = absorb_and_split(space, config, q, &p.pos, incoming, rng);
    p.guests = outcome.for_initiator;
    p.project(space, config, rng);

    let transferred = p
        .guests
        .iter()
        .filter(|x| !p_before.contains(&x.id))
        .count()
        + q.guests
            .iter()
            .filter(|x| !q_before.contains(&x.id))
            .count();

    MigrationOutcome {
        kept_by_p: p.guests.len(),
        kept_by_q: q.guests.len(),
        transferred_points: transferred,
        pulled_points: outcome.pulled,
        pushed_points: outcome.pushed,
        deduplicated_points: outcome.deduplicated,
    }
}

/// Result of the responder half of the exchange ([`absorb_and_split`]).
#[derive(Clone, Debug)]
pub struct SplitOutcome<P> {
    /// The initiator's share of the union, to be shipped back.
    pub for_initiator: Vec<DataPoint<P>>,
    /// Points the responder contributed to the union (its guests before
    /// the exchange) — the *pull* leg of the paper's traffic accounting.
    pub pulled: usize,
    /// Points the responder kept after the split — the *push* leg.
    pub pushed: usize,
    /// Duplicate copies eliminated by the union.
    pub deduplicated: usize,
}

/// The responder half of Algorithm 3 in message form — the single
/// implementation of union → dedup → `SPLIT` → re-projection that both
/// [`migrate_exchange`] and the sans-IO protocol node's
/// `MigrationRequest` handler execute, so the exchange semantics cannot
/// drift between the direct and the message-decomposed form.
///
/// Unions `incoming` (the initiator's guests, listed first so their
/// copies win deduplication) with the responder's own guests, splits the
/// union between `initiator_pos` and the responder's position, keeps the
/// responder's share, re-projects the responder, and returns the
/// initiator's share. The caller (the initiator, or [`migrate_exchange`]
/// acting for it) installs `for_initiator` and re-projects.
pub fn absorb_and_split<S: MetricSpace, R: Rng + ?Sized>(
    space: &S,
    config: &PolystyreneConfig,
    responder: &mut PolyState<S::Point>,
    initiator_pos: &S::Point,
    incoming: Vec<DataPoint<S::Point>>,
    rng: &mut R,
) -> SplitOutcome<S::Point> {
    let pulled = responder.guests.len();
    let mut all_points = incoming;
    all_points.extend(std::mem::take(&mut responder.guests));
    let total_before = all_points.len();
    dedup_by_id_in_place(&mut all_points);
    let deduplicated = total_before - all_points.len();

    let (for_initiator, for_responder) = split(
        space,
        config.split,
        all_points,
        initiator_pos,
        &responder.pos,
        config.diameter_exact_threshold,
        rng,
    );
    let pushed = for_responder.len();
    responder.guests = for_responder;
    responder.project(space, config, rng);

    SplitOutcome {
        for_initiator,
        pulled,
        pushed,
        deduplicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapoint::DataPoint;
    use crate::split::SplitStrategy;
    use polystyrene_space::prelude::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dp(id: u64, x: f64, y: f64) -> DataPoint<[f64; 2]> {
        DataPoint::new(PointId::new(id), [x, y])
    }

    fn cfg(split: SplitStrategy) -> PolystyreneConfig {
        PolystyreneConfig::builder().split(split).build()
    }

    #[test]
    fn exchange_conserves_points() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = PolyState::with_initial_point(dp(0, 0.0, 0.0));
        p.absorb_guests(vec![dp(1, 1.0, 0.0), dp(2, 6.0, 0.0)]);
        let mut q = PolyState::with_initial_point(dp(3, 10.0, 0.0));
        let out = migrate_exchange(
            &Euclidean2,
            &cfg(SplitStrategy::Advanced),
            &mut p,
            &mut q,
            &mut rng,
        );
        assert_eq!(p.guests.len() + q.guests.len(), 4);
        assert_eq!(out.kept_by_p, p.guests.len());
        assert_eq!(out.kept_by_q, q.guests.len());
        assert_eq!(out.pulled_points, 1);
    }

    #[test]
    fn exchange_deduplicates_shared_copies() {
        let mut rng = StdRng::seed_from_u64(2);
        // Both nodes hold a copy of point 7 (post-recovery duplication).
        let mut p = PolyState::with_initial_point(dp(7, 0.0, 0.0));
        let mut q = PolyState::with_initial_point(dp(7, 0.0, 0.0));
        q.absorb_guests(vec![dp(8, 10.0, 0.0)]);
        let out = migrate_exchange(
            &Euclidean2,
            &cfg(SplitStrategy::Basic),
            &mut p,
            &mut q,
            &mut rng,
        );
        assert_eq!(out.deduplicated_points, 1);
        let total: usize = p.guests.len() + q.guests.len();
        assert_eq!(total, 2, "duplicate of point 7 must be gone");
    }

    #[test]
    fn empty_node_pulls_its_share() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut p: PolyState<[f64; 2]> = PolyState::empty_at([0.0, 0.0]);
        let mut q = PolyState::with_initial_point(dp(0, 10.0, 0.0));
        q.absorb_guests(vec![dp(1, 0.5, 0.0), dp(2, 9.5, 0.0)]);
        let out = migrate_exchange(
            &Euclidean2,
            &cfg(SplitStrategy::Basic),
            &mut p,
            &mut q,
            &mut rng,
        );
        assert_eq!(p.guests.len(), 1);
        assert_eq!(p.guests[0].id, PointId::new(1));
        assert_eq!(out.transferred_points, 1);
        // p's position moved onto its new point.
        assert_eq!(p.pos, [0.5, 0.0]);
    }

    #[test]
    fn both_positions_reprojected_to_medoids() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = PolyState::with_initial_point(dp(0, 0.0, 0.0));
        p.absorb_guests(vec![dp(1, 1.0, 0.0), dp(2, 2.0, 0.0)]);
        let mut q = PolyState::with_initial_point(dp(3, 20.0, 0.0));
        q.absorb_guests(vec![dp(4, 21.0, 0.0), dp(5, 22.0, 0.0)]);
        migrate_exchange(
            &Euclidean2,
            &cfg(SplitStrategy::Advanced),
            &mut p,
            &mut q,
            &mut rng,
        );
        assert_eq!(p.pos, [1.0, 0.0]);
        assert_eq!(q.pos, [21.0, 0.0]);
    }

    #[test]
    fn status_quo_exchange_transfers_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = PolyState::with_initial_point(dp(0, 0.0, 0.0));
        let mut q = PolyState::with_initial_point(dp(1, 10.0, 0.0));
        let out = migrate_exchange(
            &Euclidean2,
            &cfg(SplitStrategy::Basic),
            &mut p,
            &mut q,
            &mut rng,
        );
        assert_eq!(out.transferred_points, 0);
        assert_eq!(p.guests[0].id, PointId::new(0));
        assert_eq!(q.guests[0].id, PointId::new(1));
    }

    #[test]
    fn repeated_exchanges_level_loads() {
        // One node starts with every point of a small segment; repeated
        // migration with a neighbor must spread them roughly evenly —
        // the "density-aware tessellation" of Sec. II-C in miniature.
        let mut rng = StdRng::seed_from_u64(6);
        let config = cfg(SplitStrategy::Advanced);
        let mut p: PolyState<[f64; 2]> = PolyState::empty_at([0.0, 0.0]);
        let mut q: PolyState<[f64; 2]> = PolyState::empty_at([9.0, 0.0]);
        q.absorb_guests((0..10).map(|i| dp(i, i as f64, 0.0)).collect::<Vec<_>>());
        for _ in 0..6 {
            migrate_exchange(&Euclidean2, &config, &mut p, &mut q, &mut rng);
        }
        assert!(
            p.guests.len() >= 3 && q.guests.len() >= 3,
            "load did not level: p={}, q={}",
            p.guests.len(),
            q.guests.len()
        );
    }

    proptest! {
        #[test]
        fn conservation_under_all_strategies(
            p_pts in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 0..15),
            q_pts in proptest::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 0..15),
            seed in 0u64..200,
        ) {
            for strategy in SplitStrategy::ALL {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut p: PolyState<[f64; 2]> = PolyState::empty_at([-1.0, 0.0]);
                let mut q: PolyState<[f64; 2]> = PolyState::empty_at([1.0, 0.0]);
                p.absorb_guests(
                    p_pts.iter().enumerate()
                        .map(|(i, &(x, y))| dp(i as u64, x, y)).collect::<Vec<_>>(),
                );
                q.absorb_guests(
                    q_pts.iter().enumerate()
                        .map(|(i, &(x, y))| dp(1000 + i as u64, x, y)).collect::<Vec<_>>(),
                );
                let total = p.guests.len() + q.guests.len();
                let out = migrate_exchange(&Euclidean2, &cfg(strategy), &mut p, &mut q, &mut rng);
                prop_assert_eq!(p.guests.len() + q.guests.len(), total);
                prop_assert_eq!(out.deduplicated_points, 0);
                prop_assert!(out.transferred_points <= total);
                // Guests stay unique network-wide.
                let mut all: Vec<_> = p.guest_ids();
                all.extend(q.guest_ids());
                all.sort();
                let n = all.len();
                all.dedup();
                prop_assert_eq!(all.len(), n);
            }
        }
    }
}
