//! # Polystyrene — the decentralized data shape that never dies
//!
//! A from-scratch Rust implementation of *Polystyrene* (Simon Bouget,
//! Anne-Marie Kermarrec, Hoel Kervadec, François Taïani — ICDCS 2014,
//! DOI 10.1109/ICDCS.2014.37): a shape-preserving add-on layer for
//! decentralized topology-construction protocols.
//!
//! ## The idea
//!
//! Topology-construction protocols (T-Man, Vicinity, …) organize nodes
//! along a target shape — a torus, a ring — but when a *correlated
//! catastrophic failure* wipes out a whole region (say, a datacenter
//! hosting one half of the torus), surviving nodes heal their links yet
//! the overall shape is lost forever. Polystyrene fixes this by
//! **decoupling data points from physical nodes**: positions become
//! passive, replicated data that surviving nodes re-adopt and re-balance,
//! so the shape itself survives — merely at a lower sampling density.
//!
//! Four epidemic mechanisms cooperate (paper Fig. 4):
//!
//! 1. **Projection** ([`projection`]) — a node's published position is the
//!    medoid of its hosted data points (`guests`);
//! 2. **Backup** ([`backup`], paper Algorithm 1) — guests are replicated
//!    as `ghosts` on `K` random nodes;
//! 3. **Recovery** ([`recovery`], Algorithm 2) — ghosts of crashed holders
//!    are reactivated into guests;
//! 4. **Migration** ([`migration`], Algorithm 3) — pairwise guest
//!    exchanges driven by a [`split::SplitStrategy`] (Algorithms 4 and 5)
//!    re-balance points towards a density-aware tessellation, a
//!    decentralized 2-means step per exchange.
//!
//! ## Quick start
//!
//! ```
//! use polystyrene::prelude::*;
//! use polystyrene_space::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let space = Torus2::new(8.0, 8.0);
//! let cfg = PolystyreneConfig::builder().replication(4).build();
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // Two nodes, each hosting its own original data point.
//! let mut p = PolyState::with_initial_point(DataPoint::new(PointId::new(0), [0.0, 0.0]));
//! let mut q = PolyState::with_initial_point(DataPoint::new(PointId::new(1), [1.0, 0.0]));
//!
//! // A migration exchange re-partitions the union of their guests.
//! let outcome = migrate_exchange(&space, &cfg, &mut p, &mut q, &mut rng);
//! assert_eq!(p.guests.len() + q.guests.len(), 2);
//! assert!(outcome.transferred_points <= 2);
//! ```
//!
//! The `polystyrene-sim` crate drives this state machine for thousands of
//! nodes and reproduces every figure of the paper; `polystyrene-runtime`
//! runs it over real threads and channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
pub mod config;
pub mod datapoint;
pub mod migration;
pub mod projection;
pub mod recovery;
pub mod reliability;
pub mod split;
pub mod state;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::backup::{plan_backups, push_cost_units, BackupPush};
    pub use crate::config::{BackupPlacement, ConfigBuilder, PolystyreneConfig};
    pub use crate::datapoint::{DataPoint, PointId};
    pub use crate::migration::{
        absorb_and_split, migrate_exchange, MigrationOutcome, SplitOutcome,
    };
    pub use crate::projection::ProjectionStrategy;
    pub use crate::recovery::{recover, RecoveryOutcome};
    pub use crate::reliability::{required_replication, survival_probability};
    pub use crate::split::{split, SplitStrategy};
    pub use crate::state::PolyState;
}

pub use prelude::*;
