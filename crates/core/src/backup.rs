//! Backup — replicating guests to `K` other nodes (paper Algorithm 1,
//! Steps 2/2' of Fig. 4).
//!
//! ```text
//! backups ← backups \ failed
//! backups ← backups ∪ { (K − |backups|) random nodes }
//! for each b ∈ backups do
//!     b.ghosts[p] ← guests            ⊲ push operation
//! end for
//! ```
//!
//! Backup targets are drawn uniformly at random (from the peer-sampling
//! layer) because the paper assumes *correlated* failures: spreading
//! replicas maximizes the chance that some holder survives a regional
//! outage (Sec. III-D). The paper also notes the full-copy push "could be
//! further improved by sending only incremental deltas"; this module
//! implements that optimization — each push records what actually changed
//! with respect to the previous push to the same target, pushes whose
//! delta is empty are elided entirely, and the simulator charges only the
//! delta.

use crate::datapoint::{DataPoint, PointId};
use crate::state::PolyState;
use polystyrene_membership::NodeId;
use std::cmp::Ordering;

/// One planned replica push from a node to one of its backup targets.
#[derive(Clone, Debug, PartialEq)]
pub struct BackupPush<P> {
    /// The backup node receiving the replica.
    pub target: NodeId,
    /// The full replica the target must store (`b.ghosts[p] ← guests`).
    pub points: Vec<DataPoint<P>>,
    /// Whether the target is a brand-new backup (full-state transfer).
    pub new_target: bool,
    /// Points added with respect to the previous push to this target.
    pub added_points: usize,
    /// Point ids removed with respect to the previous push (transmitted as
    /// bare ids).
    pub removed_ids: usize,
}

impl<P> BackupPush<P> {
    /// Wire cost of this push in the paper's units, given the cost of one
    /// data point (2 units for a 2-D point).
    pub fn cost_units(&self, units_per_point: usize) -> usize {
        push_cost_units(self.added_points, self.removed_ids, units_per_point)
    }
}

/// The incremental-delta cost of one replica push, in the paper's units:
/// changed points are shipped whole, removals as bare ids (1 unit each).
/// The single formula behind [`BackupPush::cost_units`] and the
/// simulators' wire accounting.
pub fn push_cost_units(added_points: usize, removed_ids: usize, units_per_point: usize) -> usize {
    added_points * units_per_point + removed_ids
}

/// Added/removed counts between two **sorted** id slices, via one linear
/// merge walk — the allocation-free core of the delta elision.
fn sorted_delta_counts(current: &[PointId], previous: &[PointId]) -> (usize, usize) {
    let (mut i, mut j) = (0, 0);
    let (mut added, mut removed) = (0, 0);
    while i < current.len() && j < previous.len() {
        match current[i].cmp(&previous[j]) {
            Ordering::Less => {
                added += 1;
                i += 1;
            }
            Ordering::Greater => {
                removed += 1;
                j += 1;
            }
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    (added + current.len() - i, removed + previous.len() - j)
}

/// Runs Algorithm 1 for `state`, owned by `self_id`:
///
/// 1. drops failed backup targets,
/// 2. recruits random replacements from `candidates` until `replication`
///    targets are enrolled (candidates equal to `self_id`, already
///    enrolled, or flagged failed are skipped; recruitment gives up after
///    a bounded number of draws so a shrunken network cannot hang it),
/// 3. plans one [`BackupPush`] per target whose replica is stale.
///
/// `ids_scratch` is caller-owned scratch for the current guest-id
/// snapshot (a pooled buffer under a batch driver); it is cleared and
/// refilled here. In the converged steady state — replicas up to date,
/// no failures — the whole call allocates nothing.
///
/// The caller (simulator or runtime) is responsible for delivering each
/// push, i.e. executing `target.ghosts[self_id] ← push.points`.
pub fn plan_backups<P: Clone>(
    state: &mut PolyState<P>,
    self_id: NodeId,
    replication: usize,
    is_failed: impl Fn(NodeId) -> bool,
    mut candidates: impl FnMut() -> Option<NodeId>,
    ids_scratch: &mut Vec<PointId>,
) -> Vec<BackupPush<P>> {
    // Line 1: backups ← backups \ failed (their delta records go too).
    // `retain` on the set would be cleaner but the records must go in the
    // same pass; collect-free double walk keeps this allocation-free.
    while let Some(&b) = state.backups.iter().find(|&&b| is_failed(b)) {
        state.backups.remove(&b);
        state.last_sent.remove(&b);
    }

    // Line 2: recruit replacements, bounded attempts.
    let mut attempts = replication.saturating_mul(20) + 20;
    while state.backups.len() < replication && attempts > 0 {
        attempts -= 1;
        match candidates() {
            Some(c) => {
                if c != self_id && !is_failed(c) && !state.backups.contains(&c) {
                    state.backups.insert(c);
                }
            }
            None => break,
        }
    }

    // Lines 3-5: plan pushes, eliding unchanged replicas.
    ids_scratch.clear();
    ids_scratch.extend(state.guests.iter().map(|g| g.id));
    ids_scratch.sort_unstable();
    let mut pushes = Vec::new();
    for &target in &state.backups {
        let previous = state.last_sent.get(&target);
        let new_target = previous.is_none();
        let previous = previous.map(Vec::as_slice).unwrap_or_default();
        let (added, removed) = sorted_delta_counts(ids_scratch, previous);
        if !new_target && added == 0 && removed == 0 {
            continue; // replica already up to date: no traffic at all
        }
        pushes.push(BackupPush {
            target,
            points: state.guests.clone(),
            new_target,
            added_points: added,
            removed_ids: removed,
        });
    }
    for push in &pushes {
        state
            .last_sent
            .entry(push.target)
            .and_modify(|ids| {
                ids.clear();
                ids.extend_from_slice(ids_scratch);
            })
            .or_insert_with(|| ids_scratch.clone());
    }
    pushes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapoint::{DataPoint, PointId};

    fn dp(id: u64, x: f64) -> DataPoint<[f64; 2]> {
        DataPoint::new(PointId::new(id), [x, 0.0])
    }

    fn cycle_candidates(ids: Vec<u64>) -> impl FnMut() -> Option<NodeId> {
        let mut i = 0;
        move || {
            if ids.is_empty() {
                return None;
            }
            let out = NodeId::new(ids[i % ids.len()]);
            i += 1;
            Some(out)
        }
    }

    #[test]
    fn first_round_enrolls_k_targets_with_full_pushes() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        let pushes = plan_backups(
            &mut s,
            NodeId::new(0),
            3,
            |_| false,
            cycle_candidates(vec![1, 2, 3, 4]),
            &mut Vec::new(),
        );
        assert_eq!(s.backups.len(), 3);
        assert_eq!(pushes.len(), 3);
        for p in &pushes {
            assert!(p.new_target);
            assert_eq!(p.added_points, 1);
            assert_eq!(p.removed_ids, 0);
            assert_eq!(p.points.len(), 1);
            assert_eq!(p.cost_units(2), 2);
        }
    }

    #[test]
    fn unchanged_state_sends_nothing() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        let _ = plan_backups(
            &mut s,
            NodeId::new(0),
            2,
            |_| false,
            cycle_candidates(vec![1, 2]),
            &mut Vec::new(),
        );
        let again = plan_backups(
            &mut s,
            NodeId::new(0),
            2,
            |_| false,
            cycle_candidates(vec![1, 2]),
            &mut Vec::new(),
        );
        assert!(again.is_empty(), "idle steady state must cost zero traffic");
    }

    #[test]
    fn guest_changes_produce_deltas() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        let _ = plan_backups(
            &mut s,
            NodeId::new(0),
            1,
            |_| false,
            cycle_candidates(vec![1]),
            &mut Vec::new(),
        );
        s.absorb_guests(vec![dp(5, 1.0), dp(6, 2.0)]);
        s.guests.retain(|g| g.id != PointId::new(0));
        let pushes = plan_backups(
            &mut s,
            NodeId::new(0),
            1,
            |_| false,
            cycle_candidates(vec![1]),
            &mut Vec::new(),
        );
        assert_eq!(pushes.len(), 1);
        let p = &pushes[0];
        assert!(!p.new_target);
        assert_eq!(p.added_points, 2); // ids 5 and 6
        assert_eq!(p.removed_ids, 1); // id 0
        assert_eq!(p.cost_units(2), 5); // 2*2 + 1
    }

    #[test]
    fn failed_backups_are_replaced() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        let _ = plan_backups(
            &mut s,
            NodeId::new(0),
            2,
            |_| false,
            cycle_candidates(vec![1, 2]),
            &mut Vec::new(),
        );
        assert!(s.backups.contains(&NodeId::new(1)));
        // Node 1 dies; a replacement (3) must be enrolled and receive a
        // full push, while the survivor (2) stays silent.
        let pushes = plan_backups(
            &mut s,
            NodeId::new(0),
            2,
            |id| id == NodeId::new(1),
            cycle_candidates(vec![3]),
            &mut Vec::new(),
        );
        assert!(!s.backups.contains(&NodeId::new(1)));
        assert!(s.backups.contains(&NodeId::new(3)));
        assert_eq!(pushes.len(), 1);
        assert_eq!(pushes[0].target, NodeId::new(3));
        assert!(pushes[0].new_target);
    }

    #[test]
    fn never_enrolls_self_failed_or_duplicates() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        let _ = plan_backups(
            &mut s,
            NodeId::new(0),
            3,
            |id| id == NodeId::new(9),
            cycle_candidates(vec![0, 9, 1, 1, 2, 3]),
            &mut Vec::new(),
        );
        assert!(!s.backups.contains(&NodeId::new(0)), "enrolled itself");
        assert!(!s.backups.contains(&NodeId::new(9)), "enrolled a dead node");
        assert_eq!(s.backups.len(), 3);
    }

    #[test]
    fn gives_up_when_candidates_exhausted() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        // Only one valid candidate exists for K = 4.
        let pushes = plan_backups(
            &mut s,
            NodeId::new(0),
            4,
            |_| false,
            cycle_candidates(vec![1]),
            &mut Vec::new(),
        );
        assert_eq!(s.backups.len(), 1);
        assert_eq!(pushes.len(), 1);
        // And a `None`-returning supplier terminates immediately.
        let mut s2 = PolyState::with_initial_point(dp(0, 0.0));
        let pushes = plan_backups(
            &mut s2,
            NodeId::new(0),
            4,
            |_| false,
            || None,
            &mut Vec::new(),
        );
        assert!(pushes.is_empty());
    }

    #[test]
    fn replacement_after_loss_of_delta_record_is_full_push() {
        let mut s = PolyState::with_initial_point(dp(0, 0.0));
        let _ = plan_backups(
            &mut s,
            NodeId::new(0),
            1,
            |_| false,
            cycle_candidates(vec![1]),
            &mut Vec::new(),
        );
        // Backup 1 dies; its delta record must die with it so that a
        // re-enrollment of the *same id* (e.g. id reuse) is a full push.
        let _ = plan_backups(
            &mut s,
            NodeId::new(0),
            1,
            |id| id == NodeId::new(1),
            || None,
            &mut Vec::new(),
        );
        assert!(s.last_sent.is_empty());
        let pushes = plan_backups(
            &mut s,
            NodeId::new(0),
            1,
            |_| false,
            cycle_candidates(vec![1]),
            &mut Vec::new(),
        );
        assert_eq!(pushes.len(), 1);
        assert!(pushes[0].new_target);
    }
}
