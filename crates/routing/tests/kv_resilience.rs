//! Property tests for the key-value facade under catastrophe: whatever
//! the seed and wherever the blast boundary falls, once the shape has
//! reshaped every surviving value must be addressable again — through
//! the ideal engine oracle *and* through the view oracle (what the
//! traffic plane's query wires actually route over), on the cycle
//! engine and on the discrete-event network kernel alike.

use polystyrene_netsim::prelude::{NetSim, NetSimConfig};
use polystyrene_routing::kv::{KeyValueStore, KvError};
use polystyrene_routing::oracle::{EngineOracle, NeighborOracle, ViewOracle};
use polystyrene_sim::engine::{Engine, EngineConfig};
use polystyrene_space::prelude::*;
use polystyrene_space::shapes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const COLS: usize = 12;
const ROWS: usize = 6;
const W: f64 = COLS as f64;
const H: f64 = ROWS as f64;

/// Delivery radius sized for the post-failure density (half the nodes
/// gone ⇒ spacing ~sqrt(2), a key can sit ~1 cell-diagonal out).
const RADIUS: f64 = 2.0;
const TTL: usize = 64;

/// The store-level property: after a rebalance, every surviving value
/// is addressable again. Each `get` already routes through up to three
/// random gateways and fails with [`KvError::ValueLost`] when the
/// holder is dead, so a success *is* the liveness proof; because greedy
/// routing is gateway-dependent, a client-side retry (fresh gateways
/// each attempt) absorbs the residual source sensitivity exactly as a
/// deployed lookup would.
fn assert_addressable(
    store: &mut KeyValueStore,
    space: &Torus2,
    oracle: &impl NeighborOracle<[f64; 2]>,
    keys: &[String],
    rng: &mut StdRng,
) {
    let (_moved, lost) = store.rebalance(space, oracle, rng);
    assert!(
        lost < keys.len(),
        "the blast spares half the torus, some values must survive"
    );
    let mut served = 0usize;
    for key in keys {
        let mut outcome = Err(KvError::Unroutable);
        for _attempt in 0..3 {
            outcome = store.get(space, oracle, key, rng);
            if !matches!(outcome, Err(KvError::Unroutable)) {
                break;
            }
        }
        match outcome {
            Ok(_) => served += 1,
            Err(KvError::NotFound) => {} // dropped by the rebalance: its holder died
            Err(e) => panic!("{key}: surviving value unaddressable after reshape: {e}"),
        }
    }
    assert_eq!(
        served,
        store.len(),
        "every value the rebalance kept must be served"
    );
}

proptest! {
    // Each case converges a full overlay and reshapes it after a kill;
    // a handful of cases already sweeps seeds and blast boundaries.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cycle engine: both oracles serve every surviving key after the
    /// reshape, wherever the blast boundary fell.
    #[test]
    fn engine_keys_resolve_after_any_regional_blast(
        seed in 0u64..1_000,
        boundary in 4u32..9,
    ) {
        let mut cfg = EngineConfig::default();
        cfg.area = W * H;
        cfg.seed = seed;
        cfg.tman.view_cap = 24;
        cfg.tman.m = 8;
        let mut engine = Engine::new(
            Torus2::new(W, H),
            shapes::torus_grid(COLS, ROWS, 1.0),
            cfg,
        );
        engine.run(12);
        let space = *engine.space();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6b76);
        let mut store = KeyValueStore::new(W, H, TTL, RADIUS);
        let keys: Vec<String> = (0..32).map(|i| format!("key:{i}")).collect();
        {
            let oracle = EngineOracle::new(&engine, 8);
            for k in &keys {
                store.put(&space, &oracle, k, "v", &mut rng).expect("put on a converged overlay");
            }
        }

        let cut = f64::from(boundary);
        engine.fail_original_region(move |p: &[f64; 2]| p[0] >= cut);
        engine.run(15); // Polystyrene reshapes

        let ideal = EngineOracle::new(&engine, 8);
        assert_addressable(&mut store, &space, &ideal, &keys, &mut rng);
        let view = ViewOracle::from_engine(&engine, 8);
        assert_addressable(&mut store, &space, &view, &keys, &mut rng);
    }

    /// Network kernel: the same property through the view oracle built
    /// from the kernel's per-node protocol views — message latency and
    /// per-node clocks instead of the engine's atomic rounds.
    #[test]
    fn netsim_keys_resolve_after_any_regional_blast(
        seed in 0u64..1_000,
        boundary in 4u32..9,
    ) {
        let mut cfg = NetSimConfig::default();
        cfg.area = W * H;
        cfg.seed = seed;
        cfg.tman.view_cap = 24;
        cfg.tman.m = 8;
        let mut sim = NetSim::new(
            Torus2::new(W, H),
            shapes::torus_grid(COLS, ROWS, 1.0),
            cfg,
        );
        sim.run(12);
        let space = Torus2::new(W, H);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6b76);
        let mut store = KeyValueStore::new(W, H, TTL, RADIUS);
        let keys: Vec<String> = (0..32).map(|i| format!("key:{i}")).collect();
        let snapshot = |sim: &NetSim<Torus2>| {
            ViewOracle::from_views(
                &space,
                8,
                sim.alive_ids().to_vec().into_iter().map(|id| {
                    (
                        id,
                        *sim.pool().position(id).expect("alive id"),
                        sim.view_entries_of(id).expect("alive id"),
                    )
                }),
            )
        };
        {
            let oracle = snapshot(&sim);
            for k in &keys {
                store.put(&space, &oracle, k, "v", &mut rng).expect("put on a converged overlay");
            }
        }

        let cut = f64::from(boundary);
        sim.fail_original_region(&move |p: &[f64; 2]| p[0] >= cut);
        sim.run(15);

        let view = snapshot(&sim);
        assert_addressable(&mut store, &space, &view, &keys, &mut rng);
    }
}
