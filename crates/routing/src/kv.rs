//! A key-value facade over the overlay — the "storage systems" use case
//! of the paper's introduction.
//!
//! Keys hash onto positions of the data space; the node whose published
//! position is closest to a key's position is *responsible* for it, and
//! lookups reach it by greedy routing. The store keeps its value payloads
//! in an in-memory placement map (payload replication is orthogonal to
//! Polystyrene — the paper replicates *positions*, not application data),
//! so what this facade measures is exactly what the paper argues:
//! **addressability**. When the overlay tears, keys in the hole stop
//! resolving; when Polystyrene re-forms the shape, every key resolves
//! again — at a surviving node.

use crate::greedy::greedy_route;
use crate::oracle::NeighborOracle;
use polystyrene_membership::NodeId;
use polystyrene_space::MetricSpace;
use rand::Rng;
use std::collections::HashMap;

/// Errors of the key-value facade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvError {
    /// No route reached the node responsible for the key.
    Unroutable,
    /// The key resolved, but the node holding the value has crashed and
    /// no handoff ran since (see [`KeyValueStore::rebalance`]).
    ValueLost,
    /// The key was never stored.
    NotFound,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Unroutable => write!(f, "no route to the responsible node"),
            KvError::ValueLost => write!(f, "value holder crashed before handoff"),
            KvError::NotFound => write!(f, "key not found"),
        }
    }
}

impl std::error::Error for KvError {}

/// FNV-1a hash of a key with a splitmix64 finalizer (plain FNV has weak
/// high-bit avalanche on short keys, which would cluster key positions).
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // splitmix64 finalizer for full avalanche.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Maps a key to a position on a `width × height` rectangle (the torus
/// fundamental domain), uniformly by hash.
pub fn key_position(key: &str, width: f64, height: f64) -> [f64; 2] {
    let h = fnv1a(key);
    let x = (h >> 32) as f64 / u32::MAX as f64 * width;
    let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 * height;
    [x.min(width), y.min(height)]
}

/// The key-value facade. Generic over the oracle so it runs over a live
/// engine, a static table, or the threaded runtime's observation plane.
pub struct KeyValueStore {
    width: f64,
    height: f64,
    ttl: usize,
    delivery_radius: f64,
    /// `key → (value, placed-at)`.
    values: HashMap<String, (String, NodeId)>,
}

impl KeyValueStore {
    /// A store addressing a `width × height` torus, routing with the
    /// given TTL and delivery radius.
    pub fn new(width: f64, height: f64, ttl: usize, delivery_radius: f64) -> Self {
        Self {
            width,
            height,
            ttl,
            delivery_radius,
            values: HashMap::new(),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Resolves the node currently responsible for `key`, routing from a
    /// random alive source.
    ///
    /// Greedy routing can strand in a local minimum of an imperfectly
    /// converged overlay, and whether it does depends on the source's
    /// basin — so, like a deployed lookup that retries through another
    /// gateway, up to three distinct random sources are attempted before
    /// reporting [`KvError::Unroutable`].
    pub fn resolve<S, R>(
        &self,
        space: &S,
        oracle: &impl NeighborOracle<S::Point>,
        key: &str,
        rng: &mut R,
    ) -> Result<NodeId, KvError>
    where
        S: MetricSpace<Point = [f64; 2]>,
        R: Rng + ?Sized,
    {
        let nodes = oracle.nodes();
        if nodes.is_empty() {
            return Err(KvError::Unroutable);
        }
        let target = key_position(key, self.width, self.height);
        // Distinct sources: greedy_route is deterministic per source, so
        // re-trying the same gateway would be a guaranteed no-op.
        let sources = rand::seq::index::sample(rng, nodes.len(), nodes.len().min(3));
        for i in sources {
            let route = greedy_route(
                space,
                oracle,
                nodes[i],
                &target,
                self.ttl,
                self.delivery_radius,
            );
            if route.delivered {
                return Ok(route.terminus);
            }
        }
        Err(KvError::Unroutable)
    }

    /// Stores `value` under `key` at the currently responsible node.
    ///
    /// # Errors
    ///
    /// [`KvError::Unroutable`] when the key's position cannot be reached.
    pub fn put<S, R>(
        &mut self,
        space: &S,
        oracle: &impl NeighborOracle<S::Point>,
        key: &str,
        value: &str,
        rng: &mut R,
    ) -> Result<NodeId, KvError>
    where
        S: MetricSpace<Point = [f64; 2]>,
        R: Rng + ?Sized,
    {
        let holder = self.resolve(space, oracle, key, rng)?;
        self.values
            .insert(key.to_string(), (value.to_string(), holder));
        Ok(holder)
    }

    /// Looks `key` up: routes to the responsible node and returns the
    /// value if that node (still) holds it.
    ///
    /// # Errors
    ///
    /// [`KvError::NotFound`] for unknown keys, [`KvError::Unroutable`]
    /// when routing fails, [`KvError::ValueLost`] when the value's holder
    /// crashed and no [`Self::rebalance`] has run since.
    pub fn get<S, R>(
        &self,
        space: &S,
        oracle: &impl NeighborOracle<S::Point>,
        key: &str,
        rng: &mut R,
    ) -> Result<String, KvError>
    where
        S: MetricSpace<Point = [f64; 2]>,
        R: Rng + ?Sized,
    {
        let (value, holder) = self.values.get(key).ok_or(KvError::NotFound)?;
        let responsible = self.resolve(space, oracle, key, rng)?;
        if oracle.position(*holder).is_none() {
            return Err(KvError::ValueLost);
        }
        // In a deployed system the responsible node would proxy to the
        // holder during the handoff window; both resolving and holding
        // being alive makes the value reachable.
        let _ = responsible;
        Ok(value.clone())
    }

    /// Hands values over to the currently responsible nodes (the
    /// background repair a deployed store runs after membership changes).
    /// Values whose holder crashed are dropped; returns `(moved, lost)`.
    pub fn rebalance<S, R>(
        &mut self,
        space: &S,
        oracle: &impl NeighborOracle<S::Point>,
        rng: &mut R,
    ) -> (usize, usize)
    where
        S: MetricSpace<Point = [f64; 2]>,
        R: Rng + ?Sized,
    {
        let keys: Vec<String> = self.values.keys().cloned().collect();
        let mut moved = 0;
        let mut lost = 0;
        for key in keys {
            let holder_alive = {
                let (_, holder) = &self.values[&key];
                oracle.position(*holder).is_some()
            };
            if !holder_alive {
                self.values.remove(&key);
                lost += 1;
                continue;
            }
            if let Ok(responsible) = self.resolve(space, oracle, &key, rng) {
                let entry = self.values.get_mut(&key).expect("key present");
                if entry.1 != responsible {
                    entry.1 = responsible;
                    moved += 1;
                }
            }
        }
        (moved, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::EngineOracle;
    use polystyrene_sim::engine::{Engine, EngineConfig};
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn key_positions_are_stable_and_in_bounds() {
        let a = key_position("alpha", 80.0, 40.0);
        let b = key_position("alpha", 80.0, 40.0);
        assert_eq!(a, b);
        for key in ["a", "b", "hello", "🦀", ""] {
            let p = key_position(key, 80.0, 40.0);
            assert!((0.0..=80.0).contains(&p[0]));
            assert!((0.0..=40.0).contains(&p[1]));
        }
        assert_ne!(key_position("a", 80.0, 40.0), key_position("b", 80.0, 40.0));
    }

    fn converged_engine(seed: u64) -> Engine<Torus2> {
        let mut cfg = EngineConfig::default();
        cfg.area = 128.0;
        cfg.seed = seed;
        cfg.tman.view_cap = 24;
        cfg.tman.m = 8;
        let mut e = Engine::new(Torus2::new(16.0, 8.0), shapes::torus_grid(16, 8, 1.0), cfg);
        e.run(12);
        e
    }

    #[test]
    fn put_get_roundtrip_on_healthy_overlay() {
        let engine = converged_engine(1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = KeyValueStore::new(16.0, 8.0, 64, 1.2);
        let oracle = EngineOracle::new(&engine, 4);
        let space = *engine.space();
        for (k, v) in [("user:42", "alice"), ("user:43", "bob"), ("cfg", "on")] {
            store
                .put(&space, &oracle, k, v, &mut rng)
                .expect("put failed");
        }
        assert_eq!(store.len(), 3);
        assert_eq!(
            store.get(&space, &oracle, "user:42", &mut rng),
            Ok("alice".to_string())
        );
        assert_eq!(
            store.get(&space, &oracle, "nope", &mut rng),
            Err(KvError::NotFound)
        );
    }

    #[test]
    fn catastrophe_then_reshaping_restores_addressability() {
        let mut engine = converged_engine(3);
        let mut rng = StdRng::seed_from_u64(4);
        // Delivery radius sized for the *post-failure* density: with half
        // the nodes gone, spacing grows to ~sqrt(2), so a key can sit up
        // to ~1 cell-diagonal from its closest node.
        let mut store = KeyValueStore::new(16.0, 8.0, 64, 2.0);
        let space = *engine.space();
        let keys: Vec<String> = (0..40).map(|i| format!("key:{i}")).collect();
        {
            let oracle = EngineOracle::new(&engine, 8);
            for k in &keys {
                store.put(&space, &oracle, k, "v", &mut rng).expect("put");
            }
        }

        // Kill the right half of the torus mid-operation.
        engine.fail_original_region(shapes::in_right_half(16.0));

        // Immediately after the blast the torus is torn: lookups for keys
        // hashing into the hole stall at its rim, far from their targets.
        let torn_stretch = {
            let oracle = EngineOracle::new(&engine, 8);
            crate::survey::routing_survey(
                &space,
                &oracle,
                |rng: &mut StdRng| [rng.random_range(0.0..16.0), rng.random_range(0.0..8.0)],
                200,
                64,
                0.75,
                &mut rng,
            )
            .mean_final_distance
        };

        engine.run(15); // Polystyrene reshapes

        let oracle = EngineOracle::new(&engine, 8);
        let healed_stretch = crate::survey::routing_survey(
            &space,
            &oracle,
            |rng: &mut StdRng| [rng.random_range(0.0..16.0), rng.random_range(0.0..8.0)],
            200,
            64,
            0.75,
            &mut rng,
        )
        .mean_final_distance;
        assert!(
            healed_stretch < torn_stretch * 0.75,
            "reshaping should bring lookups closer to their keys: \
             torn {torn_stretch:.2}, healed {healed_stretch:.2}"
        );

        // Store-level repair: after a rebalance, every surviving value is
        // addressable again.
        let (moved, lost) = store.rebalance(&space, &oracle, &mut rng);
        assert!(lost > 5 && lost < 35, "lost {lost}");
        assert!(moved + store.len() >= keys.len() - lost);
        let ok = keys
            .iter()
            .filter(|k| store.get(&space, &oracle, k, &mut rng).is_ok())
            .count();
        assert_eq!(
            ok,
            store.len(),
            "every surviving value must be addressable after rebalance"
        );
        assert!(ok > 5, "suspiciously few survivors: {ok}");
    }
}
