//! Neighbor oracles: where the router learns each node's links.

use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_sim::engine::Engine;
use polystyrene_space::MetricSpace;
use std::collections::HashMap;

/// A read-only view of an overlay's nodes and links, as the router sees
/// them. Implementations answer from the *local knowledge* of each node
/// (its topology view), exactly like a real lookup would hop.
pub trait NeighborOracle<P> {
    /// Position of `node`, or `None` if it is unknown/dead.
    fn position(&self, node: NodeId) -> Option<P>;

    /// Ids of `node`'s current topology neighbors.
    fn neighbors(&self, node: NodeId) -> Vec<NodeId>;

    /// All alive node ids (for choosing routing sources and for the
    /// closest-alive-node ground truth in stretch accounting).
    fn nodes(&self) -> Vec<NodeId>;
}

/// A static oracle built from an explicit adjacency table — for unit
/// tests and hand-crafted topologies.
#[derive(Clone, Debug, Default)]
pub struct TableOracle<P> {
    positions: HashMap<NodeId, P>,
    adjacency: HashMap<NodeId, Vec<NodeId>>,
}

impl<P: Clone> TableOracle<P> {
    /// Builds an oracle over `positions[i]` for node `i`, linking `i → j`
    /// whenever `link(i, j)` returns true.
    pub fn from_positions(positions: &[P], link: impl Fn(usize, usize) -> bool) -> Self {
        let mut out = Self {
            positions: HashMap::new(),
            adjacency: HashMap::new(),
        };
        for (i, p) in positions.iter().enumerate() {
            out.positions.insert(NodeId::new(i as u64), p.clone());
        }
        for i in 0..positions.len() {
            let links: Vec<NodeId> = (0..positions.len())
                .filter(|&j| j != i && link(i, j))
                .map(|j| NodeId::new(j as u64))
                .collect();
            out.adjacency.insert(NodeId::new(i as u64), links);
        }
        out
    }

    /// Inserts or replaces one node.
    pub fn insert(&mut self, node: NodeId, pos: P, neighbors: Vec<NodeId>) {
        self.positions.insert(node, pos);
        self.adjacency.insert(node, neighbors);
    }

    /// Removes a node entirely (its inbound links dangle, like a crash).
    pub fn remove(&mut self, node: NodeId) {
        self.positions.remove(&node);
        self.adjacency.remove(&node);
    }
}

impl<P: Clone> NeighborOracle<P> for TableOracle<P> {
    fn position(&self, node: NodeId) -> Option<P> {
        self.positions.get(&node).cloned()
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.adjacency.get(&node).cloned().unwrap_or_default()
    }

    fn nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.positions.keys().copied().collect();
        ids.sort();
        ids
    }
}

/// An oracle answering from the *local knowledge* of each protocol node:
/// a snapshot of every alive node's self-reported position and T-Man
/// view, exactly the information a hop-by-hop lookup riding a live
/// substrate would see.
///
/// The contrast with [`EngineOracle`] is the point: the engine oracle
/// answers positions from ground truth and prunes dead neighbors, while
/// this one keeps stale view entries — a link to a crashed peer dangles
/// (known position, no outgoing links), so routes that trust a torn
/// view dead-end at the hole instead of teleporting across it.
pub struct ViewOracle<P> {
    /// Alive nodes' self-reported positions.
    alive: HashMap<NodeId, P>,
    /// Positions the views *believe* — including entries naming dead
    /// peers. Alive self-reports take precedence at lookup.
    hearsay: HashMap<NodeId, P>,
    /// Each alive node's k-closest view entries (possibly dead).
    adjacency: HashMap<NodeId, Vec<NodeId>>,
}

impl<P: Clone> ViewOracle<P> {
    /// Snapshots the per-node views: each item is one alive node's id,
    /// self-reported position, and raw topology view; `k` caps the
    /// neighbors kept per node (closest first, as routing would try
    /// them).
    pub fn from_views<'a, S>(
        space: &S,
        k: usize,
        views: impl IntoIterator<Item = (NodeId, P, &'a [Descriptor<P>])>,
    ) -> Self
    where
        S: MetricSpace<Point = P>,
        P: 'a,
    {
        let mut out = Self {
            alive: HashMap::new(),
            hearsay: HashMap::new(),
            adjacency: HashMap::new(),
        };
        for (id, pos, entries) in views {
            let mut ranked: Vec<&Descriptor<P>> = entries.iter().collect();
            ranked.sort_by(|a, b| {
                space
                    .distance(&pos, &a.pos)
                    .total_cmp(&space.distance(&pos, &b.pos))
            });
            ranked.truncate(k);
            for d in entries {
                out.hearsay.entry(d.id).or_insert_with(|| d.pos.clone());
            }
            out.adjacency
                .insert(id, ranked.into_iter().map(|d| d.id).collect());
            out.alive.insert(id, pos);
        }
        out
    }
}

impl<P: Clone> ViewOracle<P> {
    /// Snapshots a live engine's per-node views — the view-knowledge
    /// counterpart of [`EngineOracle::new`], for the same `k`.
    pub fn from_engine<S: MetricSpace<Point = P>>(engine: &Engine<S>, k: usize) -> Self {
        Self::from_views(
            engine.space(),
            k,
            engine.alive_id_slice().iter().map(|&id| {
                (
                    id,
                    engine.position_of(id).expect("alive id"),
                    engine.view_entries_of(id).expect("alive id"),
                )
            }),
        )
    }
}

impl<P: Clone> NeighborOracle<P> for ViewOracle<P> {
    fn position(&self, node: NodeId) -> Option<P> {
        self.alive
            .get(&node)
            .or_else(|| self.hearsay.get(&node))
            .cloned()
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        // Dead (hearsay-only) nodes have no outgoing links: a route led
        // into a stale entry strands there.
        self.adjacency.get(&node).cloned().unwrap_or_default()
    }

    fn nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.alive.keys().copied().collect();
        ids.sort();
        ids
    }
}

/// An oracle answering from a live simulation engine: each node's links
/// are its `k` closest T-Man view entries — the neighborhood the paper
/// draws in its figures (k = 4).
pub struct EngineOracle<'a, S: MetricSpace> {
    engine: &'a Engine<S>,
    k: usize,
}

impl<'a, S: MetricSpace> EngineOracle<'a, S> {
    /// Wraps an engine, reporting `k` neighbors per node.
    pub fn new(engine: &'a Engine<S>, k: usize) -> Self {
        Self { engine, k }
    }
}

impl<'a, S: MetricSpace> NeighborOracle<S::Point> for EngineOracle<'a, S> {
    fn position(&self, node: NodeId) -> Option<S::Point> {
        self.engine.position_of(node)
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.engine.neighbors_of(node, self.k)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.engine.alive_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_sim::engine::EngineConfig;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    /// One node's snapshot: id, self-reported position, raw view.
    type ViewRow = (NodeId, [f64; 2], Vec<Descriptor<[f64; 2]>>);

    #[test]
    fn table_oracle_basics() {
        let positions: Vec<[f64; 2]> = (0..4).map(|i| [i as f64, 0.0]).collect();
        let mut oracle = TableOracle::from_positions(&positions, |i, j| i.abs_diff(j) == 1);
        assert_eq!(oracle.nodes().len(), 4);
        assert_eq!(oracle.position(NodeId::new(2)), Some([2.0, 0.0]));
        assert_eq!(
            oracle.neighbors(NodeId::new(1)),
            vec![NodeId::new(0), NodeId::new(2)]
        );
        oracle.remove(NodeId::new(2));
        assert_eq!(oracle.position(NodeId::new(2)), None);
        assert!(oracle.neighbors(NodeId::new(2)).is_empty());
        // Dangling link from 1 to the removed 2 still listed; the router
        // must skip unknown-position hops.
        assert!(oracle.neighbors(NodeId::new(1)).contains(&NodeId::new(2)));
    }

    #[test]
    fn view_oracle_keeps_stale_entries_and_dead_ends_them() {
        use polystyrene_space::prelude::Euclidean2;
        // Two alive nodes; node 0's view still names the dead node 9.
        let views: Vec<ViewRow> = vec![
            (
                NodeId::new(0),
                [0.0, 0.0],
                vec![
                    Descriptor::new(NodeId::new(1), [1.0, 0.0]),
                    Descriptor::new(NodeId::new(9), [2.0, 0.0]),
                ],
            ),
            (
                NodeId::new(1),
                [1.0, 0.0],
                vec![Descriptor::new(NodeId::new(0), [0.0, 0.0])],
            ),
        ];
        let oracle = ViewOracle::from_views(
            &Euclidean2,
            4,
            views.iter().map(|(id, pos, v)| (*id, *pos, v.as_slice())),
        );
        assert_eq!(oracle.nodes(), vec![NodeId::new(0), NodeId::new(1)]);
        // The dead peer is addressable at its believed position…
        assert_eq!(oracle.position(NodeId::new(9)), Some([2.0, 0.0]));
        // …still listed as a neighbor (closest first)…
        assert_eq!(
            oracle.neighbors(NodeId::new(0)),
            vec![NodeId::new(1), NodeId::new(9)]
        );
        // …but has no outgoing links: a route led there strands.
        assert!(oracle.neighbors(NodeId::new(9)).is_empty());
    }

    #[test]
    fn view_oracle_prefers_self_reported_positions() {
        use polystyrene_space::prelude::Euclidean2;
        // Node 1's view holds a stale position for node 0; node 0's own
        // report must win.
        let views: Vec<ViewRow> = vec![
            (
                NodeId::new(1),
                [1.0, 0.0],
                vec![Descriptor::new(NodeId::new(0), [5.0, 5.0])],
            ),
            (NodeId::new(0), [0.0, 0.0], vec![]),
        ];
        let oracle = ViewOracle::from_views(
            &Euclidean2,
            4,
            views.iter().map(|(id, pos, v)| (*id, *pos, v.as_slice())),
        );
        assert_eq!(oracle.position(NodeId::new(0)), Some([0.0, 0.0]));
    }

    #[test]
    fn view_oracle_from_engine_matches_local_knowledge() {
        let mut cfg = EngineConfig::default();
        cfg.area = 32.0;
        cfg.tman.view_cap = 16;
        cfg.tman.m = 6;
        let mut engine = Engine::new(Torus2::new(8.0, 4.0), shapes::torus_grid(8, 4, 1.0), cfg);
        engine.run(10);
        let oracle = ViewOracle::from_engine(&engine, 4);
        assert_eq!(oracle.nodes().len(), 32);
        let n0 = NodeId::new(0);
        assert_eq!(oracle.position(n0), engine.position_of(n0));
        assert_eq!(oracle.neighbors(n0).len(), 4);
        // Converged healthy overlay: view knowledge equals ground truth
        // (rank ties may order differently, so compare as sets).
        let mut ours = oracle.neighbors(n0);
        let mut truth = engine.neighbors_of(n0, 4);
        ours.sort();
        truth.sort();
        assert_eq!(ours, truth);
    }

    #[test]
    fn engine_oracle_reflects_the_overlay() {
        let mut cfg = EngineConfig::default();
        cfg.area = 32.0;
        cfg.tman.view_cap = 16;
        cfg.tman.m = 6;
        let mut engine = Engine::new(Torus2::new(8.0, 4.0), shapes::torus_grid(8, 4, 1.0), cfg);
        engine.run(10);
        let oracle = EngineOracle::new(&engine, 4);
        assert_eq!(oracle.nodes().len(), 32);
        let n0 = NodeId::new(0);
        assert!(oracle.position(n0).is_some());
        let neighbors = oracle.neighbors(n0);
        assert_eq!(neighbors.len(), 4);
        // Converged torus: all 4 reported neighbors are at grid distance 1.
        let p0 = oracle.position(n0).unwrap();
        let space = Torus2::new(8.0, 4.0);
        for n in neighbors {
            let pn = oracle.position(n).unwrap();
            assert!(space.distance(&p0, &pn) <= 1.5);
        }
    }
}
