//! Neighbor oracles: where the router learns each node's links.

use polystyrene_membership::NodeId;
use polystyrene_sim::engine::Engine;
use polystyrene_space::MetricSpace;
use std::collections::HashMap;

/// A read-only view of an overlay's nodes and links, as the router sees
/// them. Implementations answer from the *local knowledge* of each node
/// (its topology view), exactly like a real lookup would hop.
pub trait NeighborOracle<P> {
    /// Position of `node`, or `None` if it is unknown/dead.
    fn position(&self, node: NodeId) -> Option<P>;

    /// Ids of `node`'s current topology neighbors.
    fn neighbors(&self, node: NodeId) -> Vec<NodeId>;

    /// All alive node ids (for choosing routing sources and for the
    /// closest-alive-node ground truth in stretch accounting).
    fn nodes(&self) -> Vec<NodeId>;
}

/// A static oracle built from an explicit adjacency table — for unit
/// tests and hand-crafted topologies.
#[derive(Clone, Debug, Default)]
pub struct TableOracle<P> {
    positions: HashMap<NodeId, P>,
    adjacency: HashMap<NodeId, Vec<NodeId>>,
}

impl<P: Clone> TableOracle<P> {
    /// Builds an oracle over `positions[i]` for node `i`, linking `i → j`
    /// whenever `link(i, j)` returns true.
    pub fn from_positions(positions: &[P], link: impl Fn(usize, usize) -> bool) -> Self {
        let mut out = Self {
            positions: HashMap::new(),
            adjacency: HashMap::new(),
        };
        for (i, p) in positions.iter().enumerate() {
            out.positions.insert(NodeId::new(i as u64), p.clone());
        }
        for i in 0..positions.len() {
            let links: Vec<NodeId> = (0..positions.len())
                .filter(|&j| j != i && link(i, j))
                .map(|j| NodeId::new(j as u64))
                .collect();
            out.adjacency.insert(NodeId::new(i as u64), links);
        }
        out
    }

    /// Inserts or replaces one node.
    pub fn insert(&mut self, node: NodeId, pos: P, neighbors: Vec<NodeId>) {
        self.positions.insert(node, pos);
        self.adjacency.insert(node, neighbors);
    }

    /// Removes a node entirely (its inbound links dangle, like a crash).
    pub fn remove(&mut self, node: NodeId) {
        self.positions.remove(&node);
        self.adjacency.remove(&node);
    }
}

impl<P: Clone> NeighborOracle<P> for TableOracle<P> {
    fn position(&self, node: NodeId) -> Option<P> {
        self.positions.get(&node).cloned()
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.adjacency.get(&node).cloned().unwrap_or_default()
    }

    fn nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.positions.keys().copied().collect();
        ids.sort();
        ids
    }
}

/// An oracle answering from a live simulation engine: each node's links
/// are its `k` closest T-Man view entries — the neighborhood the paper
/// draws in its figures (k = 4).
pub struct EngineOracle<'a, S: MetricSpace> {
    engine: &'a Engine<S>,
    k: usize,
}

impl<'a, S: MetricSpace> EngineOracle<'a, S> {
    /// Wraps an engine, reporting `k` neighbors per node.
    pub fn new(engine: &'a Engine<S>, k: usize) -> Self {
        Self { engine, k }
    }
}

impl<'a, S: MetricSpace> NeighborOracle<S::Point> for EngineOracle<'a, S> {
    fn position(&self, node: NodeId) -> Option<S::Point> {
        self.engine.position_of(node)
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.engine.neighbors_of(node, self.k)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.engine.alive_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_sim::engine::EngineConfig;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    #[test]
    fn table_oracle_basics() {
        let positions: Vec<[f64; 2]> = (0..4).map(|i| [i as f64, 0.0]).collect();
        let mut oracle = TableOracle::from_positions(&positions, |i, j| i.abs_diff(j) == 1);
        assert_eq!(oracle.nodes().len(), 4);
        assert_eq!(oracle.position(NodeId::new(2)), Some([2.0, 0.0]));
        assert_eq!(
            oracle.neighbors(NodeId::new(1)),
            vec![NodeId::new(0), NodeId::new(2)]
        );
        oracle.remove(NodeId::new(2));
        assert_eq!(oracle.position(NodeId::new(2)), None);
        assert!(oracle.neighbors(NodeId::new(2)).is_empty());
        // Dangling link from 1 to the removed 2 still listed; the router
        // must skip unknown-position hops.
        assert!(oracle.neighbors(NodeId::new(1)).contains(&NodeId::new(2)));
    }

    #[test]
    fn engine_oracle_reflects_the_overlay() {
        let mut cfg = EngineConfig::default();
        cfg.area = 32.0;
        cfg.tman.view_cap = 16;
        cfg.tman.m = 6;
        let mut engine = Engine::new(Torus2::new(8.0, 4.0), shapes::torus_grid(8, 4, 1.0), cfg);
        engine.run(10);
        let oracle = EngineOracle::new(&engine, 4);
        assert_eq!(oracle.nodes().len(), 32);
        let n0 = NodeId::new(0);
        assert!(oracle.position(n0).is_some());
        let neighbors = oracle.neighbors(n0);
        assert_eq!(neighbors.len(), 4);
        // Converged torus: all 4 reported neighbors are at grid distance 1.
        let p0 = oracle.position(n0).unwrap();
        let space = Torus2::new(8.0, 4.0);
        for n in neighbors {
            let pn = oracle.position(n).unwrap();
            assert!(space.distance(&p0, &pn) <= 1.5);
        }
    }
}
