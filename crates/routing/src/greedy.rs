//! CAN-style greedy geographic routing.
//!
//! Each hop forwards to the neighbor strictly closest to the target
//! position; routing stops on delivery (a node within `delivery_radius`
//! of the target with no strictly closer neighbor), on a local minimum,
//! on a dangling link, or when the TTL runs out. Greedy routing's
//! performance is exactly what degrades when an overlay loses its shape:
//! holes create local minima.

use crate::oracle::NeighborOracle;
use polystyrene_membership::NodeId;
use polystyrene_space::MetricSpace;
use serde::{Deserialize, Serialize};

/// Outcome of one greedy route.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteResult {
    /// Whether the route terminated at the node closest to the target
    /// (within `delivery_radius`, or a global greedy minimum that is the
    /// true closest alive node).
    pub delivered: bool,
    /// Hops taken (edges traversed).
    pub hops: usize,
    /// The node the route ended at (the source itself for a dead start).
    pub terminus: NodeId,
    /// Nodes visited, in order (starts with the source) — recorded only
    /// by [`greedy_route_with_path`]; empty for [`greedy_route`], which
    /// keeps survey-scale routing free of per-route path buffers.
    pub path: Vec<NodeId>,
    /// Distance from the final node to the target position.
    pub final_distance: f64,
}

/// Routes greedily from `start` towards `target` over `oracle`.
///
/// Delivery is declared when the current node is within
/// `delivery_radius` of the target, or when it is a greedy minimum that
/// is *also* the globally closest alive node to the target (the best any
/// routing scheme could do). A greedy minimum that is not globally
/// closest counts as a failure — that is the signature of a torn shape.
///
/// The result's `path` is left empty; callers that need the visited
/// sequence (figures, debugging) opt into [`greedy_route_with_path`].
pub fn greedy_route<S: MetricSpace>(
    space: &S,
    oracle: &impl NeighborOracle<S::Point>,
    start: NodeId,
    target: &S::Point,
    ttl: usize,
    delivery_radius: f64,
) -> RouteResult {
    route_impl(space, oracle, start, target, ttl, delivery_radius, false)
}

/// [`greedy_route`] with the full visited sequence materialized in
/// `path` — same routing decisions, plus one `Vec` per call.
pub fn greedy_route_with_path<S: MetricSpace>(
    space: &S,
    oracle: &impl NeighborOracle<S::Point>,
    start: NodeId,
    target: &S::Point,
    ttl: usize,
    delivery_radius: f64,
) -> RouteResult {
    route_impl(space, oracle, start, target, ttl, delivery_radius, true)
}

fn route_impl<S: MetricSpace>(
    space: &S,
    oracle: &impl NeighborOracle<S::Point>,
    start: NodeId,
    target: &S::Point,
    ttl: usize,
    delivery_radius: f64,
    record_path: bool,
) -> RouteResult {
    // The visited set is the loop guard (plateau hops may revisit
    // otherwise); it doubles as the optional path since it is exactly
    // the visit sequence.
    let mut visited = vec![start];
    let result = |delivered, hops, terminus, final_distance, visited: Vec<NodeId>| RouteResult {
        delivered,
        hops,
        terminus,
        path: if record_path { visited } else { Vec::new() },
        final_distance,
    };
    let Some(mut current_pos) = oracle.position(start) else {
        return result(false, 0, start, f64::INFINITY, visited);
    };
    let mut current = start;
    let mut hops = 0;

    loop {
        let current_distance = space.distance(&current_pos, target);
        if current_distance <= delivery_radius {
            return result(true, hops, current, current_distance, visited);
        }
        if hops >= ttl {
            return result(false, hops, current, current_distance, visited);
        }
        // Best unvisited neighbor. Plateau hops (equal distance) are
        // allowed — after a recovery wave several nodes may project to
        // identical medoid positions, and strict-improvement greedy would
        // stall inside such a clump; the visited-set plus the TTL keep
        // plateau walks finite.
        let mut best: Option<(NodeId, S::Point, f64)> = None;
        for n in oracle.neighbors(current) {
            if visited.contains(&n) {
                continue; // loop guard
            }
            let Some(pos) = oracle.position(n) else {
                continue; // dangling link to a dead node
            };
            let d = space.distance(&pos, target);
            if d <= current_distance + 1e-12
                && best.as_ref().map(|&(_, _, bd)| d < bd).unwrap_or(true)
            {
                best = Some((n, pos, d));
            }
        }
        match best {
            Some((n, pos, _)) => {
                current = n;
                current_pos = pos;
                visited.push(n);
                hops += 1;
            }
            None => {
                // Greedy minimum: success only if no alive node anywhere is
                // closer — i.e. we genuinely reached the best possible spot.
                let globally_best = oracle
                    .nodes()
                    .into_iter()
                    .filter_map(|id| oracle.position(id))
                    .map(|p| space.distance(&p, target))
                    .fold(f64::INFINITY, f64::min);
                let delivered = current_distance <= globally_best + 1e-9;
                return result(delivered, hops, current, current_distance, visited);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TableOracle;
    use polystyrene_space::prelude::*;

    fn line_oracle(n: usize) -> TableOracle<[f64; 2]> {
        let positions: Vec<[f64; 2]> = (0..n).map(|i| [i as f64, 0.0]).collect();
        TableOracle::from_positions(&positions, |i, j| i.abs_diff(j) == 1)
    }

    #[test]
    fn routes_along_a_line() {
        let oracle = line_oracle(10);
        let r = greedy_route(&Euclidean2, &oracle, NodeId::new(0), &[9.0, 0.0], 20, 0.25);
        assert!(r.delivered);
        assert_eq!(r.hops, 9);
        assert_eq!(r.terminus, NodeId::new(9));
        assert!(r.path.is_empty(), "path is opt-in");
        assert!(r.final_distance < 0.25);
        let with_path =
            greedy_route_with_path(&Euclidean2, &oracle, NodeId::new(0), &[9.0, 0.0], 20, 0.25);
        assert_eq!(with_path.path.len(), 10);
        assert_eq!(*with_path.path.last().unwrap(), with_path.terminus);
        assert_eq!(with_path.hops, r.hops);
    }

    #[test]
    fn immediate_delivery_at_source() {
        let oracle = line_oracle(3);
        let r = greedy_route(&Euclidean2, &oracle, NodeId::new(1), &[1.1, 0.0], 5, 0.5);
        assert!(r.delivered);
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn ttl_expiry_fails_the_route() {
        let oracle = line_oracle(10);
        let r = greedy_route(&Euclidean2, &oracle, NodeId::new(0), &[9.0, 0.0], 3, 0.25);
        assert!(!r.delivered);
        assert_eq!(r.hops, 3);
    }

    #[test]
    fn dead_node_source_fails_cleanly() {
        let mut oracle = line_oracle(4);
        oracle.remove(NodeId::new(0));
        let r = greedy_route(&Euclidean2, &oracle, NodeId::new(0), &[3.0, 0.0], 8, 0.25);
        assert!(!r.delivered);
        assert_eq!(r.final_distance, f64::INFINITY);
    }

    #[test]
    fn hole_creates_local_minimum_failure() {
        // A chain with its middle removed: the route stops at the rim of
        // the hole — NOT the closest alive node to the target — and must
        // be reported as a failure.
        let mut oracle = line_oracle(10);
        for i in 4..7 {
            oracle.remove(NodeId::new(i));
        }
        let r = greedy_route(&Euclidean2, &oracle, NodeId::new(0), &[9.0, 0.0], 20, 0.25);
        assert!(!r.delivered, "route through the hole must fail");
        assert_eq!(r.terminus, NodeId::new(3)); // rim of the hole
    }

    #[test]
    fn greedy_minimum_at_true_closest_counts_as_delivered() {
        // Target lies beyond the last node: node 9 is a greedy minimum but
        // also the closest alive node — that's a successful lookup.
        let oracle = line_oracle(10);
        let r = greedy_route(&Euclidean2, &oracle, NodeId::new(0), &[14.0, 0.0], 20, 0.25);
        assert!(r.delivered);
        assert_eq!(r.terminus, NodeId::new(9));
        assert_eq!(r.final_distance, 5.0);
    }

    #[test]
    fn wraps_around_a_torus() {
        let t = Torus2::new(10.0, 10.0);
        let positions: Vec<[f64; 2]> = (0..10).map(|i| [i as f64, 0.0]).collect();
        let oracle = TableOracle::from_positions(&positions, |i, j| {
            i.abs_diff(j) == 1 || i.abs_diff(j) == 9 // ring links incl. seam
        });
        // From 1 to 9: the short way crosses the seam via 0.
        let r = greedy_route_with_path(&t, &oracle, NodeId::new(1), &[9.0, 0.0], 10, 0.25);
        assert!(r.delivered);
        assert_eq!(r.hops, 2);
        assert_eq!(r.path, vec![NodeId::new(1), NodeId::new(0), NodeId::new(9)]);
        assert_eq!(r.terminus, NodeId::new(9));
    }
}
