//! Greedy overlay routing and a key-value facade — the application layer
//! the paper motivates Polystyrene with.
//!
//! "Such topologies have been used in many contexts ranging from routing
//! and storage systems, to publish-subscribe and event dissemination …
//! Losing the shape of the topology might affect system performance, e.g.
//! routing or load balancing, which often relies on a uniform distribution
//! of nodes along the topology" (paper abstract & Sec. I). This crate
//! makes that claim measurable:
//!
//! * [`greedy`] — CAN-style greedy geographic routing over any neighbor
//!   oracle, with success/hop/stretch accounting;
//! * [`oracle`] — neighbor oracles, including one backed by a live
//!   [`polystyrene_sim::engine::Engine`];
//! * [`kv`] — a key-value store whose keys hash onto the data space, so
//!   lookups ride the overlay: when the torus tears, lookups fail; when
//!   Polystyrene re-forms it, they succeed again;
//! * [`survey`] — routing surveys over many random keys, the raw material
//!   of the routing-recovery experiment (`EXPERIMENTS.md`, extension E1).
//!
//! # Example
//!
//! ```
//! use polystyrene_routing::prelude::*;
//! use polystyrene_space::prelude::*;
//!
//! // A hand-built 1-D oracle: nodes 0..8 on a line, each knowing ±1.
//! let space = Euclidean2;
//! let positions: Vec<[f64; 2]> = (0..8).map(|i| [i as f64, 0.0]).collect();
//! let oracle = TableOracle::from_positions(&positions, |i, j| {
//!     i.abs_diff(j) == 1
//! });
//! let route = greedy_route(&space, &oracle, NodeId::new(0), &[7.0, 0.0], 16, 0.5);
//! assert!(route.delivered);
//! assert_eq!(route.hops, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod kv;
pub mod oracle;
pub mod survey;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::greedy::{greedy_route, greedy_route_with_path, RouteResult};
    pub use crate::kv::{KeyValueStore, KvError};
    pub use crate::oracle::{EngineOracle, NeighborOracle, TableOracle, ViewOracle};
    pub use crate::survey::{routing_survey, RoutingSurvey};
    pub use polystyrene_membership::NodeId;
}

pub use prelude::*;
