//! Routing surveys: success rate and path quality over many random keys —
//! the quantitative form of the paper's "losing the shape … might impact
//! the system's routing efficiency".

use crate::greedy::greedy_route;
use crate::oracle::NeighborOracle;
use polystyrene_space::MetricSpace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Aggregate outcome of a routing survey.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoutingSurvey {
    /// Routes attempted.
    pub attempts: usize,
    /// Routes delivered to the node closest to their key.
    pub delivered: usize,
    /// Mean hops over delivered routes.
    pub mean_hops: f64,
    /// Mean distance from the final node to the key, over all routes.
    pub mean_final_distance: f64,
}

impl RoutingSurvey {
    /// Delivery success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.delivered as f64 / self.attempts as f64
        }
    }
}

/// Routes `attempts` lookups from random alive sources to random key
/// positions drawn by `key_gen`, and aggregates.
pub fn routing_survey<S: MetricSpace, R: Rng + ?Sized>(
    space: &S,
    oracle: &impl NeighborOracle<S::Point>,
    mut key_gen: impl FnMut(&mut R) -> S::Point,
    attempts: usize,
    ttl: usize,
    delivery_radius: f64,
    rng: &mut R,
) -> RoutingSurvey {
    let nodes = oracle.nodes();
    if nodes.is_empty() || attempts == 0 {
        return RoutingSurvey::default();
    }
    let mut delivered = 0usize;
    let mut hops_acc = 0usize;
    let mut dist_acc = 0.0f64;
    for _ in 0..attempts {
        let source = nodes[rng.random_range(0..nodes.len())];
        let key = key_gen(rng);
        let route = greedy_route(space, oracle, source, &key, ttl, delivery_radius);
        if route.delivered {
            delivered += 1;
            hops_acc += route.hops;
        }
        if route.final_distance.is_finite() {
            dist_acc += route.final_distance;
        }
    }
    RoutingSurvey {
        attempts,
        delivered,
        mean_hops: if delivered == 0 {
            0.0
        } else {
            hops_acc as f64 / delivered as f64
        },
        mean_final_distance: dist_acc / attempts as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TableOracle;
    use polystyrene_space::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn survey_on_a_healthy_ring_succeeds() {
        let t = Torus2::new(16.0, 1.0);
        let positions: Vec<[f64; 2]> = (0..16).map(|i| [i as f64, 0.0]).collect();
        let n = positions.len();
        let oracle = TableOracle::from_positions(&positions, move |i, j| {
            (i + 1) % n == j || (j + 1) % n == i
        });
        let mut rng = StdRng::seed_from_u64(1);
        let survey = routing_survey(
            &t,
            &oracle,
            |rng: &mut StdRng| [rng.random_range(0.0..16.0), 0.0],
            100,
            32,
            0.6,
            &mut rng,
        );
        assert_eq!(survey.attempts, 100);
        assert!(
            survey.success_rate() > 0.99,
            "rate {}",
            survey.success_rate()
        );
        // Ring of 16: mean greedy hop count ≲ 4.
        assert!(survey.mean_hops <= 5.0, "hops {}", survey.mean_hops);
    }

    #[test]
    fn survey_detects_a_torn_ring() {
        // Remove the wrap links and a middle segment: many keys become
        // unreachable from many sources.
        let e = Euclidean2;
        let positions: Vec<[f64; 2]> = (0..16).map(|i| [i as f64, 0.0]).collect();
        let mut oracle = TableOracle::from_positions(&positions, |i, j| i.abs_diff(j) == 1);
        for i in 7..10 {
            oracle.remove(polystyrene_membership::NodeId::new(i));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let survey = routing_survey(
            &e,
            &oracle,
            |rng: &mut StdRng| [rng.random_range(0.0..16.0), 0.0],
            200,
            32,
            0.6,
            &mut rng,
        );
        assert!(
            survey.success_rate() < 0.9,
            "a torn line should fail some routes: {}",
            survey.success_rate()
        );
        assert!(survey.mean_final_distance > 0.2);
    }

    #[test]
    fn empty_oracle_survey_is_empty() {
        let oracle: TableOracle<[f64; 2]> = TableOracle::from_positions(&[], |_, _| false);
        let mut rng = StdRng::seed_from_u64(3);
        let survey = routing_survey(
            &Euclidean2,
            &oracle,
            |_: &mut StdRng| [0.0, 0.0],
            10,
            8,
            0.5,
            &mut rng,
        );
        assert_eq!(survey, RoutingSurvey::default());
        assert_eq!(survey.success_rate(), 0.0);
    }
}
