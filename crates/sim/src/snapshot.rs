//! Point-cloud snapshots of the overlay — the raw material of the paper's
//! visual figures (Fig. 1: T-Man losing the torus; Fig. 8: repair; Fig. 9:
//! re-injection).
//!
//! A snapshot captures every alive node's position and its reported
//! topology edges; it can be dumped as CSV for external plotting or
//! rendered as an ASCII density map for terminal inspection.

use crate::engine::Engine;
use polystyrene_space::MetricSpace;
use serde::{Deserialize, Serialize};

/// A frozen view of the overlay at some round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Round at which the snapshot was taken.
    pub round: u32,
    /// `(node id, position)` of every alive node.
    pub positions: Vec<(u64, [f64; 2])>,
    /// Topology edges `(from, to)` — each node's k closest neighbors.
    pub edges: Vec<(u64, u64)>,
}

impl Snapshot {
    /// Captures the current state of a 2-D engine, reporting `k` edges per
    /// node (the paper draws k = 4).
    pub fn capture<S>(engine: &Engine<S>, k: usize) -> Self
    where
        S: MetricSpace<Point = [f64; 2]>,
    {
        let positions: Vec<(u64, [f64; 2])> = engine
            .snapshot_positions()
            .into_iter()
            .map(|(id, p)| (id.as_u64(), p))
            .collect();
        let mut edges = Vec::new();
        for &(id, _) in &positions {
            for n in engine.neighbors_of(polystyrene_membership::NodeId::new(id), k) {
                edges.push((id, n.as_u64()));
            }
        }
        Self {
            round: engine.round(),
            positions,
            edges,
        }
    }

    /// Writes the node positions as CSV (`id,x,y`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_positions_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let rows: Vec<Vec<String>> = self
            .positions
            .iter()
            .map(|(id, [x, y])| vec![id.to_string(), format!("{x:.4}"), format!("{y:.4}")])
            .collect();
        crate::report::write_csv(path, &["id", "x", "y"], &rows)
    }

    /// Renders the node density over the rectangle `[0, width) × [0,
    /// height)` as an ASCII map of `cols × rows` character cells — empty
    /// regions show as spaces, so a half-dead torus (Fig. 1c) is instantly
    /// visible in a terminal.
    pub fn render_density(&self, width: f64, height: f64, cols: usize, rows: usize) -> String {
        let mut counts = vec![vec![0usize; cols]; rows];
        for &(_, [x, y]) in &self.positions {
            let cx = ((x / width) * cols as f64).floor() as isize;
            let cy = ((y / height) * rows as f64).floor() as isize;
            if cx >= 0 && cy >= 0 && (cx as usize) < cols && (cy as usize) < rows {
                counts[cy as usize][cx as usize] += 1;
            }
        }
        let palette = [' ', '.', ':', '+', '#', '@'];
        let max = counts
            .iter()
            .flat_map(|r| r.iter())
            .copied()
            .max()
            .unwrap_or(0)
            .max(1);
        let mut out = String::with_capacity((cols + 3) * rows);
        for row in counts.iter().rev() {
            out.push('|');
            for &c in row {
                let idx = if c == 0 {
                    0
                } else {
                    1 + (c * (palette.len() - 2)) / max
                };
                out.push(palette[idx.min(palette.len() - 1)]);
            }
            out.push('|');
            out.push('\n');
        }
        out
    }

    /// Fraction of density cells that are empty — a scalar summary of how
    /// much of the target surface the overlay still covers.
    pub fn empty_cell_fraction(&self, width: f64, height: f64, cols: usize, rows: usize) -> f64 {
        let map = self.render_density(width, height, cols, rows);
        let total = cols * rows;
        let empty = map.chars().filter(|&c| c == ' ').count();
        empty as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    fn engine() -> Engine<Torus2> {
        let mut cfg = EngineConfig::default();
        cfg.area = 64.0;
        cfg.tman.view_cap = 20;
        cfg.tman.m = 8;
        Engine::new(Torus2::new(16.0, 4.0), shapes::torus_grid(16, 4, 1.0), cfg)
    }

    #[test]
    fn capture_contains_all_alive_nodes() {
        let mut e = engine();
        e.run(3);
        let s = Snapshot::capture(&e, 4);
        assert_eq!(s.positions.len(), 64);
        assert_eq!(s.round, 3);
        assert!(!s.edges.is_empty());
        // All edge endpoints are alive nodes.
        let ids: std::collections::HashSet<u64> = s.positions.iter().map(|&(id, _)| id).collect();
        for &(a, _b) in &s.edges {
            assert!(ids.contains(&a));
        }
    }

    #[test]
    fn density_map_shows_failure_hole() {
        let mut e = engine();
        e.run(8);
        let before = Snapshot::capture(&e, 4);
        let empty_before = before.empty_cell_fraction(16.0, 4.0, 8, 2);
        e.fail_original_region(shapes::in_right_half(16.0));
        let after = Snapshot::capture(&e, 4);
        let empty_after = after.empty_cell_fraction(16.0, 4.0, 8, 2);
        assert!(
            empty_after > empty_before + 0.3,
            "half the torus should be dark: before={empty_before}, after={empty_after}"
        );
        // And after reshaping, the hole closes again.
        e.run(12);
        let healed = Snapshot::capture(&e, 4);
        let empty_healed = healed.empty_cell_fraction(16.0, 4.0, 8, 2);
        assert!(
            empty_healed < empty_after - 0.2,
            "reshaping should repopulate the hole: after={empty_after}, healed={empty_healed}"
        );
    }

    #[test]
    fn csv_dump_roundtrip() {
        let e = engine();
        let s = Snapshot::capture(&e, 2);
        let dir = std::env::temp_dir().join("polystyrene-snapshot-test");
        let path = dir.join("snap.csv");
        s.write_positions_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("id,x,y\n"));
        assert_eq!(content.lines().count(), 65); // header + 64 nodes
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn density_render_dimensions() {
        let e = engine();
        let s = Snapshot::capture(&e, 2);
        let map = s.render_density(16.0, 4.0, 8, 4);
        assert_eq!(map.lines().count(), 4);
        assert!(map.lines().all(|l| l.len() == 10)); // 8 cells + 2 borders
    }
}
