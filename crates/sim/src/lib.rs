//! Round-based discrete-event simulator and experiment harness for the
//! Polystyrene reproduction — the stand-in for PeerSim \[26\], which the
//! paper used for all results ("All results were computed with PeerSim",
//! Sec. IV-B).
//!
//! * [`engine`] — the cycle-driven engine running the full stack
//!   (RPS → T-Man → Polystyrene) with failure and churn injection;
//! * [`metrics`] — the paper's five metrics (proximity, homogeneity,
//!   reference homogeneity / reshaping time, data points per node,
//!   message cost);
//! * [`cost`] — wire-cost accounting in the paper's units;
//! * [`scenario`] — timed event scripts, including the paper's three-phase
//!   evaluation scenario;
//! * [`experiment`] — repeated seeded runs aggregated with 95 % confidence
//!   intervals;
//! * [`snapshot`] — point-cloud captures for the visual figures;
//! * [`report`] — ASCII tables, terminal plots and CSV output.
//!
//! # Example: the paper's headline result, in miniature
//!
//! ```
//! use polystyrene_sim::prelude::*;
//! use polystyrene_space::prelude::*;
//!
//! // A 16×4 torus of 64 nodes.
//! let mut cfg = EngineConfig::default();
//! cfg.area = 64.0;
//! cfg.tman.view_cap = 20;
//! cfg.tman.m = 8;
//! let mut engine = Engine::new(Torus2::new(16.0, 4.0), shapes::torus_grid(16, 4, 1.0), cfg);
//!
//! // Converge, then kill the right half of the torus.
//! engine.run(10);
//! engine.fail_original_region(shapes::in_right_half(16.0));
//! assert!(engine.compute_metrics().homogeneity > 1.0);
//!
//! // A few rounds later the survivors have re-formed the full torus.
//! engine.run(12);
//! let m = engine.history().last().unwrap();
//! assert!(m.homogeneity < m.reference_homogeneity);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod experiment;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod snapshot;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::cost::{CostModel, RoundCost};
    pub use crate::engine::{Engine, EngineConfig};
    pub use crate::experiment::{
        run_paper_experiment, ExperimentResult, ReshapingRow, RunRecord, StackKind,
    };
    pub use crate::metrics::{reference_homogeneity, reshaping_time, RoundMetrics};
    pub use crate::report::{ascii_plot, render_table, series_rows, write_csv};
    pub use crate::scenario::{run_scenario, PaperScenario, Scenario, ScenarioEvent};
    pub use crate::snapshot::Snapshot;
}

pub use prelude::*;
