//! Round-based discrete-event simulator and experiment harness for the
//! Polystyrene reproduction — the stand-in for PeerSim \[26\], which the
//! paper used for all results ("All results were computed with PeerSim",
//! Sec. IV-B).
//!
//! * [`engine`] — the cycle-driven engine running the full stack
//!   (RPS → T-Man → Polystyrene) with failure and churn injection;
//! * [`metrics`] — the paper's five metrics (proximity, homogeneity,
//!   reference homogeneity / reshaping time, data points per node,
//!   message cost);
//! * [`cost`] — wire-cost accounting in the paper's units;
//! * [`snapshot`] — point-cloud captures for the visual figures;
//! * [`report`] — ASCII tables, terminal plots and CSV output.
//!
//! # Scaling: the grid-index engine
//!
//! The engine's per-round measurement pass needs a "nearest alive node"
//! answer for every data point that currently lacks a holder — after a
//! catastrophic failure that is up to half of all points, so an
//! exhaustive scan makes each round `O(points × nodes)` and walls the
//! simulator at a few thousand peers. With
//! [`EngineConfig::grid_index`](engine::EngineConfig::grid_index)
//! (the default) the engine builds a spatial-grid candidate index
//! (`polystyrene_topology::rank::GridIndex`, bucketed by `Torus2`/`Ring`
//! coordinates) over the alive nodes each round and answers those
//! queries in `O(1)` expected per point. The index is exact, so metrics
//! are bit-identical with it on or off; networks under a few hundred
//! nodes and spaces without grid support automatically fall back to the
//! exhaustive scan. Together with the rayon fan-out of the rng-free
//! phases (recovery, position refresh, measurement), this is what lets
//! `fig10a_scaling` complete 10k+-node runs.
//!
//! # Example: the paper's headline result, in miniature
//!
//! ```
//! use polystyrene_sim::prelude::*;
//! use polystyrene_space::prelude::*;
//!
//! // A 16×4 torus of 64 nodes.
//! let mut cfg = EngineConfig::default();
//! cfg.area = 64.0;
//! cfg.tman.view_cap = 20;
//! cfg.tman.m = 8;
//! let mut engine = Engine::new(Torus2::new(16.0, 4.0), shapes::torus_grid(16, 4, 1.0), cfg);
//!
//! // Converge, then kill the right half of the torus.
//! engine.run(10);
//! engine.fail_original_region(shapes::in_right_half(16.0));
//! assert!(engine.compute_metrics().homogeneity > 1.0);
//!
//! // A few rounds later the survivors have re-formed the full torus.
//! engine.run(12);
//! let m = engine.history().last().unwrap();
//! assert!(m.homogeneity < m.reference_homogeneity);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod snapshot;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::cost::{CostModel, RoundCost};
    pub use crate::engine::{Engine, EngineConfig};
    pub use crate::metrics::{reference_homogeneity, reshaping_time, RoundMetrics};
    pub use crate::report::{ascii_plot, render_table, series_rows, write_csv};
    pub use crate::snapshot::Snapshot;
    pub use polystyrene_protocol::scenario::{PaperScenario, Scenario, ScenarioEvent};
}

pub use prelude::*;
