//! Dense node storage for the cycle engine — re-exported from
//! [`polystyrene_protocol::pool`], where the slot pool moved once the
//! discrete-event kernel adopted the same layout. The engine-facing
//! paths (`polystyrene_sim::pool::NodePool`) are unchanged; see the
//! protocol crate's module docs for the layout and its invariants.

pub use polystyrene_protocol::pool::{NodePool, SlotRef};
