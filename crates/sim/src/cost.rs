//! Message-cost accounting in the paper's units (Sec. IV-A).
//!
//! The unit prices and the per-round tally now live next to the wire
//! format itself, in [`polystyrene_protocol::cost`], so every substrate
//! (engine, netsim, runtime, TCP) charges the same prices off the same
//! [`Wire`](polystyrene_protocol::Wire) routing. This module re-exports
//! them under their historical simulator path.

pub use polystyrene_protocol::cost::{CostModel, RoundCost};
