//! Message-cost accounting in the paper's units (Sec. IV-A).
//!
//! "We assume a single coordinate uses the same size as a node ID, and
//! take this as our arbitrary communication unit. Under these assumptions,
//! sending a node descriptor (its ID, plus its coordinates) counts as 3
//! units, while a set of 2D coordinates counts as 2. In a first
//! approximation, we ignore overheads caused by the underlying
//! communication network (e.g. headers, checksums), and do not include the
//! peer sampling protocol in our measurements."

use serde::{Deserialize, Serialize};

/// Unit prices for the quantities that cross the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Units per bare data point (a set of coordinates; 2 for 2-D).
    pub units_per_point: usize,
    /// Units per node descriptor (ID + coordinates; 3 for 2-D).
    pub units_per_descriptor: usize,
    /// Units per bare node/point id.
    pub units_per_id: usize,
}

impl CostModel {
    /// The paper's cost model for a `dim`-dimensional coordinate space:
    /// one unit per coordinate, one per id.
    pub fn for_dimension(dim: usize) -> Self {
        Self {
            units_per_point: dim,
            units_per_descriptor: dim + 1,
            units_per_id: 1,
        }
    }
}

impl Default for CostModel {
    /// The 2-D torus model of the paper's evaluation.
    fn default() -> Self {
        Self::for_dimension(2)
    }
}

/// Per-round traffic tally, split by origin so Fig. 7b's observation
/// ("most of the communication overhead … is caused by T-Man") can be
/// reproduced exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundCost {
    /// Units spent by T-Man view exchanges.
    pub tman_units: u64,
    /// Units spent migrating data points (pull + push legs).
    pub migration_units: u64,
    /// Units spent pushing backup deltas.
    pub backup_units: u64,
}

impl RoundCost {
    /// Total units this round across all protocols (peer sampling is
    /// excluded by the paper's convention).
    pub fn total(&self) -> u64 {
        self.tman_units + self.migration_units + self.backup_units
    }

    /// Resets the tally for the next round.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Fraction of the total attributable to T-Man (≈ 93.6 % for K = 8 in
    /// the paper).
    pub fn tman_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.tman_units as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prices_for_2d() {
        let m = CostModel::default();
        assert_eq!(m.units_per_point, 2);
        assert_eq!(m.units_per_descriptor, 3);
        assert_eq!(m.units_per_id, 1);
    }

    #[test]
    fn dimension_scaling() {
        let m = CostModel::for_dimension(3);
        assert_eq!(m.units_per_point, 3);
        assert_eq!(m.units_per_descriptor, 4);
    }

    #[test]
    fn tally_totals_and_share() {
        let mut c = RoundCost::default();
        c.tman_units = 90;
        c.migration_units = 6;
        c.backup_units = 4;
        assert_eq!(c.total(), 100);
        assert!((c.tman_share() - 0.9).abs() < 1e-12);
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.tman_share(), 0.0);
    }
}
