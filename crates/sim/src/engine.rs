//! The cycle-driven simulation engine (PeerSim substitute).
//!
//! PeerSim's cycle-driven mode — what the paper used ("All results were
//! computed with PeerSim", Sec. IV-B) — activates every node once per
//! round in arbitrary order, with pairwise gossip exchanges applied
//! atomically. The per-node protocol itself lives in
//! [`polystyrene_protocol::ProtocolNode`]; this engine is a *driver*: it
//! owns ground truth (who is really alive), activates each node
//! phase-by-phase across the population, and executes the resulting
//! effects synchronously — a [`Effect::Send`] is delivered to the
//! destination node in the same instant, which is exactly the atomic
//! pairwise exchange of the cycle model:
//!
//! ```text
//!   Polystyrene   (recovery → backup → migration, Steps 2-4 of Fig. 4)
//!   T-Man         (topology construction, Step 1')
//!   RPS           (Cyclon-style peer sampling; traffic not accounted)
//! ```
//!
//! Reachability probes are answered from ground truth *before* a request
//! is built, so no entropy is spent on exchanges that cannot happen —
//! seeded histories are bit-identical to the engine that predates the
//! protocol extraction. The engine also injects failures and fresh
//! nodes, and measures the paper's five metrics after each round.
//!
//! # Storage and the hot loop
//!
//! The population lives in a [`NodePool`]: dense
//! recycled slots with generation ids, a slot-indexed position slab, and
//! an incrementally maintained sorted alive list (see the pool module
//! docs for the layout). The phase pipeline drives each node through the
//! sink-based `*_into` protocol entry points with one engine-owned
//! [`EffectSink`] and one reusable dispatch queue, so a steady-state
//! round performs no per-activation allocation. Failure verdicts are
//! snapshotted into a dense flag table once per phase instead of taking
//! a read lock per view-membership test. All of it is bit-identical to
//! the boxed `Vec<Option<ProtocolNode>>` layout it replaced — same
//! activation order, same RNG draws, same delivery order — which is
//! pinned by the golden-history fingerprint suites.

use crate::cost::{CostModel, RoundCost};
use crate::metrics::{reference_homogeneity, RoundMetrics};
use crate::pool::NodePool;
use polystyrene::prelude::*;
use polystyrene_membership::{Descriptor, NodeId, SharedFailureDetector};
use polystyrene_protocol::{
    Channel, Effect, EffectSink, Event, Phase, ProtocolConfig, ProtocolNode, QueryItem, Wire,
};
use polystyrene_space::MetricSpace;
use polystyrene_topology::rank::GridIndex;
use polystyrene_topology::{TManConfig, TopologyConstruction};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Below this many alive nodes the engine skips building the spatial-grid
/// candidate index and scans exhaustively: at small scale the build costs
/// more than the scan it replaces.
const GRID_INDEX_MIN_NODES: usize = 256;

/// Seed tag of the application-traffic entropy stream. Query gateways are
/// drawn from a dedicated RNG seeded with `config.seed ^ TRAFFIC_SEED_TAG`
/// so offering load never advances the protocol stream — seeded histories
/// stay bit-identical with traffic on or off ("traffic" in ASCII).
pub use polystyrene_protocol::TRAFFIC_SEED_TAG;

/// Engine-level configuration: protocol parameters plus simulation knobs.
///
/// Defaults are the paper's evaluation settings (Sec. IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// T-Man parameters (view cap 100, m = 20, ψ = 5).
    pub tman: TManConfig,
    /// Polystyrene parameters (K, split strategy, projection, …).
    pub poly: PolystyreneConfig,
    /// RPS view capacity.
    pub rps_view_cap: usize,
    /// Descriptors exchanged per RPS shuffle.
    pub rps_shuffle_len: usize,
    /// Random contacts seeded into each T-Man view at start ("each
    /// physical node is initialized with 10 random neighbors taken from
    /// the RPS layer").
    pub tman_bootstrap: usize,
    /// Neighborhood size for the proximity metric ("we represent the 4
    /// closest nodes returned by T-Man").
    pub report_neighbors: usize,
    /// Wire-cost unit prices.
    pub cost: CostModel,
    /// Surface area of the data space, for the reference homogeneity
    /// (3200 for the paper's 80×40 torus).
    pub area: f64,
    /// Failure-detection delay in rounds: a crash at round `r` is only
    /// reported by the nodes' detector from round `r + detection_delay`
    /// on (the paper's "possibly imperfect" detector, Sec. III-A). Zero
    /// models the perfect detector of the paper's evaluation.
    pub detection_delay: u32,
    /// Use the spatial-grid candidate index for the engine's global
    /// nearest-node queries (the homogeneity metric's fallback scan).
    ///
    /// The index is exact — results are identical with it on or off — so
    /// this is purely a performance knob: without it the per-round metric
    /// pass degenerates to `O(points × nodes)` after a catastrophic
    /// failure, which is the wall that stops >10k-node runs. Ignored
    /// (exhaustive scan) for spaces without grid support and for networks
    /// below a few hundred nodes.
    pub grid_index: bool,
    /// Master seed; every run with the same seed is bit-identical.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            tman: TManConfig::default(),
            poly: PolystyreneConfig::default(),
            rps_view_cap: 20,
            rps_shuffle_len: 8,
            tman_bootstrap: 10,
            report_neighbors: 4,
            cost: CostModel::default(),
            area: 3200.0,
            detection_delay: 0,
            grid_index: true,
            seed: 0,
        }
    }
}

impl EngineConfig {
    /// The protocol-level slice of this configuration. The engine
    /// resolves every exchange within the round it starts in and supplies
    /// its own failure detector, so the tick-denominated timeouts of the
    /// asynchronous drivers are disabled.
    pub fn protocol(&self) -> ProtocolConfig {
        ProtocolConfig {
            tman: self.tman,
            poly: self.poly,
            rps_view_cap: self.rps_view_cap,
            rps_shuffle_len: self.rps_shuffle_len,
            heartbeat_timeout_ticks: u32::MAX,
            migration_timeout_ticks: u32::MAX,
            // Cycle exchanges are atomic, so an unanswered query can never
            // complete later; the engine expires pendings at drain time
            // itself and the tick-denominated timeout is inert.
            query_timeout_ticks: ProtocolConfig::default().query_timeout_ticks,
        }
    }
}

/// The cycle-driven simulator.
///
/// # Example
///
/// ```
/// use polystyrene_sim::prelude::*;
/// use polystyrene_space::prelude::*;
///
/// let space = Torus2::new(8.0, 4.0);
/// let shape = shapes::torus_grid(8, 4, 1.0);
/// let mut cfg = EngineConfig::default();
/// cfg.area = 32.0;
/// let mut engine = Engine::new(space, shape, cfg);
/// let metrics = engine.step();
/// assert_eq!(metrics.alive_nodes, 32);
/// ```
pub struct Engine<S: MetricSpace> {
    space: S,
    config: EngineConfig,
    pool: NodePool<S>,
    /// The initial data points of the founding population — the target
    /// shape, and the reference set of the homogeneity metric.
    original_points: Vec<DataPoint<S::Point>>,
    fd: SharedFailureDetector,
    round: u32,
    rng: StdRng,
    cost: RoundCost,
    history: Vec<RoundMetrics>,
    poly_enabled: bool,
    scratch: MetricsScratch,
    /// The one effect buffer every activation pushes into.
    sink: EffectSink<S::Point>,
    /// Reusable synchronous-delivery queue of [`Engine::dispatch`].
    queue: VecDeque<(NodeId, Effect<S::Point>)>,
    /// Reusable activation-order buffer of [`Engine::run_phase`].
    order: Vec<NodeId>,
    /// Application-traffic entropy stream: gateway draws come from here,
    /// never from the protocol `rng` (see [`TRAFFIC_SEED_TAG`]).
    traffic_rng: StdRng,
    /// Query-id counter for [`Engine::offer_traffic`].
    next_qid: u64,
    /// Reusable `(gateway, qid, key index)` scratch of the batched
    /// [`Engine::offer_traffic`] grouping pass.
    traffic_batch: Vec<(NodeId, u64, usize)>,
}

/// Reusable buffers of the per-round measurement pass. At scale the
/// pass ran tens of thousands of allocations per round — a fresh
/// holder map (one `Vec` per data point), a ghost set, and the
/// per-node/per-point result vectors — all dropped again at round end.
/// Keeping them on the engine and clearing instead of dropping makes
/// the observation hot path allocation-free in steady state. The holder
/// and ghost tables are dense, indexed by point id (founding ids are
/// contiguous by construction), which also replaces per-point hashing
/// with direct indexing. Results are bit-identical: same insertion
/// order, same lookup semantics, pinned by the golden-history
/// fingerprints and the grid-index equivalence test.
#[derive(Default)]
struct MetricsScratch {
    /// Ids of alive nodes, ascending.
    alive: Vec<NodeId>,
    /// `holders[point]` = slots of alive nodes hosting that point as a
    /// guest (empty = no holder).
    holders: Vec<Vec<usize>>,
    /// Whether any alive node stores a ghost replica of the point.
    ghost_present: Vec<bool>,
    /// Per-node (proximity sum, sample count).
    per_node: Vec<(f64, usize)>,
    /// Per-point (nearest-holder distance, survived).
    per_point: Vec<(f64, bool)>,
}

impl<S: MetricSpace> Engine<S> {
    /// Builds a network of `shape.len()` nodes, node `i` founding data
    /// point `i` at `shape[i]`, and bootstraps both gossip layers with
    /// uniformly random contacts.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn new(space: S, shape: Vec<S::Point>, config: EngineConfig) -> Self {
        assert!(!shape.is_empty(), "cannot simulate an empty network");
        config.poly.validate();
        config.tman.validate();
        let protocol = config.protocol();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = shape.len();
        let original_points: Vec<DataPoint<S::Point>> = shape
            .iter()
            .enumerate()
            .map(|(i, p)| DataPoint::new(PointId::new(i as u64), p.clone()))
            .collect();

        let mut pool = NodePool::with_capacity(n);
        for (i, origin) in original_points.iter().enumerate() {
            let mut contacts = Vec::new();
            while contacts.len() < config.rps_view_cap.min(n - 1) {
                let j = rng.random_range(0..n);
                if j != i
                    && !contacts
                        .iter()
                        .any(|d: &Descriptor<S::Point>| d.id.index() == j)
                {
                    contacts.push(Descriptor::new(NodeId::new(j as u64), shape[j].clone()));
                }
                if contacts.len() >= config.rps_view_cap || n <= 1 {
                    break;
                }
            }

            let mut boot = Vec::new();
            for _ in 0..config.tman_bootstrap {
                let j = rng.random_range(0..n);
                if j != i {
                    boot.push(Descriptor::new(NodeId::new(j as u64), shape[j].clone()));
                }
            }

            let space = &space;
            pool.insert_with(|id| {
                debug_assert_eq!(id.index(), i, "founding ids must be contiguous");
                ProtocolNode::new(
                    id,
                    space.clone(),
                    protocol,
                    PolyState::with_initial_point(origin.clone()),
                    contacts,
                    boot,
                )
            });
        }

        Self {
            space,
            config,
            pool,
            original_points,
            fd: SharedFailureDetector::new(),
            round: 0,
            rng,
            cost: RoundCost::default(),
            history: Vec::new(),
            poly_enabled: true,
            scratch: MetricsScratch::default(),
            sink: EffectSink::new(),
            queue: VecDeque::new(),
            order: Vec::new(),
            traffic_rng: StdRng::seed_from_u64(config.seed ^ TRAFFIC_SEED_TAG),
            next_qid: 0,
            traffic_batch: Vec::new(),
        }
    }

    /// Turns the Polystyrene layer off, leaving plain T-Man over RPS — the
    /// paper's baseline configuration ("second with T-Man alone (termed
    /// T-Man)", Sec. IV-A). Each node then forever hosts its single
    /// original data point and never migrates, backs up, or recovers.
    pub fn disable_polystyrene(&mut self) {
        self.poly_enabled = false;
    }

    /// Whether the Polystyrene layer is active.
    pub fn polystyrene_enabled(&self) -> bool {
        self.poly_enabled
    }

    /// The current round number (rounds completed so far).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The metric space being simulated.
    pub fn space(&self) -> &S {
        &self.space
    }

    /// Ids of currently alive nodes, ascending.
    ///
    /// Allocates; bulk readers should prefer [`Engine::alive_id_slice`],
    /// which borrows the pool's incrementally maintained list.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.pool.alive_ids().to_vec()
    }

    /// Ids of currently alive nodes, ascending, borrowed from the pool.
    pub fn alive_id_slice(&self) -> &[NodeId] {
        self.pool.alive_ids()
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.pool.alive_count()
    }

    /// The initial data points defining the target shape.
    pub fn original_points(&self) -> &[DataPoint<S::Point>] {
        &self.original_points
    }

    /// Per-round metric history.
    pub fn history(&self) -> &[RoundMetrics] {
        &self.history
    }

    /// The published position of a node, if alive.
    ///
    /// Reads the live node state, not the slab: mid-round callers (the
    /// probe ground truth of `Engine::dispatch`) need the position as
    /// of *now*, including moves earlier in the same round.
    pub fn position_of(&self, id: NodeId) -> Option<S::Point> {
        self.pool.get(id).map(|c| c.poly.pos.clone())
    }

    /// Read access to a node's Polystyrene state, if alive (tests and
    /// snapshot tooling).
    pub fn poly_state(&self, id: NodeId) -> Option<&PolyState<S::Point>> {
        self.pool.get(id).map(|c| &c.poly)
    }

    /// Number of migration-split points the node currently has parked,
    /// if alive — counted without materializing the id list.
    pub fn parked_points_of(&self, id: NodeId) -> Option<usize> {
        self.pool.get(id).map(|c| c.parked_points())
    }

    /// The `k` closest T-Man neighbors a node currently reports.
    pub fn neighbors_of(&self, id: NodeId, k: usize) -> Vec<NodeId> {
        match self.pool.get(id) {
            Some(node) => node
                .tman
                .closest(&node.poly.pos, k)
                .into_iter()
                .map(|d| d.id)
                .collect(),
            None => Vec::new(),
        }
    }

    /// The raw T-Man view a node currently holds, if alive — the local
    /// knowledge a `polystyrene_routing`-style view oracle is built
    /// from (stale entries pointing at dead peers included).
    pub fn view_entries_of(&self, id: NodeId) -> Option<&[Descriptor<S::Point>]> {
        self.pool.get(id).map(|c| c.tman.view_entries())
    }

    // ------------------------------------------------------------------
    // Application traffic
    // ------------------------------------------------------------------

    /// Offers one query per key through a random alive gateway each, and
    /// routes them to completion within the call — the cycle model's
    /// atomic-exchange semantics applied to the traffic plane. Gateways
    /// are drawn from the dedicated traffic RNG and query handling draws
    /// no entropy at all, so the protocol stream is untouched.
    ///
    /// Co-gateway queries share one [`Wire::QueryBatch`] envelope: every
    /// gateway is drawn first, in key order (the exact rng stream and
    /// qid assignment of the per-wire path), then the round's queries
    /// are grouped per gateway and injected as one event each.
    pub fn offer_traffic(&mut self, keys: &[S::Point], ttl: u32) {
        if self.pool.alive_count() == 0 {
            return;
        }
        let mut batch = std::mem::take(&mut self.traffic_batch);
        batch.clear();
        {
            let alive = self.pool.alive_ids();
            let n = alive.len();
            for idx in 0..keys.len() {
                let gateway = alive[self.traffic_rng.random_range(0..n)];
                self.next_qid += 1;
                batch.push((gateway, self.next_qid, idx));
            }
        }
        // Group by gateway; qids ascend within a gateway, so each batch
        // carries its queries in the order the per-wire path issued them.
        batch.sort_unstable();
        let mut sink = std::mem::take(&mut self.sink);
        let mut at = 0;
        while at < batch.len() {
            let gateway = batch[at].0;
            let mut queries = sink.take_queries();
            while at < batch.len() && batch[at].0 == gateway {
                let (_, qid, idx) = batch[at];
                queries.push(QueryItem {
                    qid,
                    origin: gateway,
                    key: keys[idx].clone(),
                    ttl,
                    hops: 0,
                });
                at += 1;
            }
            sink.clear();
            let node = self.pool.get_mut(gateway).expect("alive id");
            node.on_event_into(
                Event::Message {
                    from: gateway,
                    wire: Wire::QueryBatch { queries },
                },
                &mut self.rng,
                &mut sink,
            );
            if !sink.is_empty() {
                self.dispatch(gateway, &mut sink);
            }
        }
        self.sink = sink;
        self.traffic_batch = batch;
    }

    /// The pre-batching per-wire offer path: one [`Wire::Query`] event
    /// per key, dispatched to completion individually. Kept as a paired
    /// baseline — the batched path must deliver the identical outcome
    /// set (pinned by a lab test) and beat this on wall-clock (measured
    /// by `fig_traffic_scale`).
    pub fn offer_traffic_unbatched(&mut self, keys: &[S::Point], ttl: u32) {
        if self.pool.alive_count() == 0 {
            return;
        }
        let mut sink = std::mem::take(&mut self.sink);
        for key in keys {
            let n = self.pool.alive_count();
            let gateway = self.pool.alive_ids()[self.traffic_rng.random_range(0..n)];
            self.next_qid += 1;
            let qid = self.next_qid;
            sink.clear();
            let node = self.pool.get_mut(gateway).expect("alive id");
            node.on_event_into(
                Event::Message {
                    from: gateway,
                    wire: Wire::Query {
                        qid,
                        origin: gateway,
                        key: key.clone(),
                        ttl,
                        hops: 0,
                    },
                },
                &mut self.rng,
                &mut sink,
            );
            if !sink.is_empty() {
                self.dispatch(gateway, &mut sink);
            }
        }
        self.sink = sink;
    }

    /// Drains every alive node's gateway-side traffic counters, appending
    /// completion samples to `samples` and returning the summed
    /// `(offered, delivered, dropped)`. Exchanges are atomic here, so any
    /// query still pending at drain time was lost to a stale view entry
    /// (its hop was sent to a dead node) and is written off immediately.
    pub fn drain_traffic(&mut self, samples: &mut Vec<(u32, u64)>) -> (u64, u64, u64) {
        let (mut offered, mut delivered, mut dropped) = (0u64, 0u64, 0u64);
        for slot in self.pool.slots_mut().iter_mut() {
            if let Some(node) = slot.as_mut() {
                node.expire_all_pending_queries();
                let (o, d, x) = node.take_traffic(samples);
                offered += o;
                delivered += d;
                dropped += x;
            }
        }
        (offered, delivered, dropped)
    }

    // ------------------------------------------------------------------
    // Failure and churn injection
    // ------------------------------------------------------------------

    /// Crashes every alive *founding* node whose original data point
    /// satisfies `predicate` — the paper's correlated catastrophic
    /// failure, e.g. "all the 1600 nodes located in one half of the torus"
    /// (Sec. IV-A Phase 2). Victim selection goes through the shared
    /// [`polystyrene_protocol::select_region_victims`] path, like every
    /// other substrate's. Returns the crashed ids.
    pub fn fail_original_region(
        &mut self,
        predicate: impl Fn(&S::Point) -> bool + Send + Sync,
    ) -> Vec<NodeId> {
        let killed =
            polystyrene_protocol::select_region_victims(&self.original_points, &predicate, &|id| {
                self.pool.contains(id)
            });
        for &id in &killed {
            self.crash(id);
        }
        killed
    }

    /// Crashes a uniformly random fraction of the alive population
    /// (uncorrelated churn), with victim selection shared with the
    /// runtime substrate. Returns the crashed ids.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn fail_random_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        let killed = polystyrene_protocol::scenario::select_victims(
            self.alive_ids(),
            fraction,
            &mut self.rng,
        );
        for &id in &killed {
            self.crash(id);
        }
        killed
    }

    /// Crashes one specific node (no-op if already dead). The pool frees
    /// and recycles the slot; the id is never reused.
    pub fn crash(&mut self, id: NodeId) {
        if self.pool.remove(id).is_some() {
            self.fd.mark_failed(id, self.round);
        }
    }

    /// Injects fresh nodes at the given positions: no data points, `pos`
    /// initialized (Sec. IV-A Phase 3), both gossip layers bootstrapped
    /// from random alive contacts drawn through the shared
    /// [`polystyrene_protocol::sample_bootstrap_contacts`] path. Returns
    /// the new ids.
    pub fn inject(&mut self, positions: Vec<S::Point>) -> Vec<NodeId> {
        let alive = self.pool.alive_ids().to_vec();
        let protocol = self.config.protocol();
        let mut new_ids = Vec::with_capacity(positions.len());
        for pos in positions {
            let (contacts, boot) = {
                let pool = &self.pool;
                let pos_of = |j: NodeId| pool.get(j).map(|c| c.poly.pos.clone());
                (
                    polystyrene_protocol::sample_bootstrap_contacts(
                        &alive,
                        &pos_of,
                        self.config.rps_view_cap,
                        &mut self.rng,
                    ),
                    polystyrene_protocol::sample_bootstrap_contacts(
                        &alive,
                        &pos_of,
                        self.config.tman_bootstrap,
                        &mut self.rng,
                    ),
                )
            };
            let space = &self.space;
            let id = self.pool.insert_with(|id| {
                ProtocolNode::new(
                    id,
                    space.clone(),
                    protocol,
                    PolyState::empty_at(pos),
                    contacts,
                    boot,
                )
            });
            new_ids.push(id);
        }
        new_ids
    }

    /// Morphs the target shape in place (paper footnote 1: the shape
    /// "could, however, keep evolving as the algorithm executes"): applies
    /// `transform` to every data point — the originals that define the
    /// shape and every live guest and ghost copy. Nodes then migrate to
    /// follow their moved points over the next rounds.
    pub fn morph_shape(&mut self, transform: impl Fn(&S::Point) -> S::Point) {
        for point in &mut self.original_points {
            point.pos = transform(&point.pos);
        }
        for node in self.pool.slots_mut().iter_mut().flatten() {
            for g in &mut node.poly.guests {
                g.pos = transform(&g.pos);
            }
            for pts in node.poly.ghosts.values_mut() {
                for g in pts {
                    g.pos = transform(&g.pos);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The round loop
    // ------------------------------------------------------------------

    /// Runs one full round — RPS, T-Man, then the Polystyrene pipeline
    /// (recovery → backup → migration) — and returns the metrics measured
    /// at the end of it.
    pub fn step(&mut self) -> RoundMetrics {
        self.round += 1;
        self.cost.reset();
        self.run_phase(Phase::PeerSampling);
        self.run_phase(Phase::Topology);
        if self.poly_enabled {
            self.recovery_phase();
            self.run_phase(Phase::Backup);
            self.run_phase(Phase::Migration);
        }
        self.position_refresh_phase();
        // Reuse the engine-owned scratch buffers (taken and restored
        // around the `&self` measurement pass to satisfy the borrows).
        let mut scratch = std::mem::take(&mut self.scratch);
        let metrics = self.measure(&mut scratch);
        self.scratch = scratch;
        self.history.push(metrics);
        metrics
    }

    /// Runs `rounds` consecutive rounds.
    pub fn run(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Dense per-id failure verdicts at the current round: a crash
    /// becomes visible `detection_delay` rounds after it happened.
    ///
    /// One lock acquisition per phase; the phases then test membership
    /// against a flag table instead of a shared `RwLock`-guarded map
    /// (T-Man's per-entry purges alone query the detector millions of
    /// times per round at 10k+ nodes). Verdicts cannot change mid-phase —
    /// crashes are injected only between rounds — so the snapshot is
    /// exactly the closure it replaced.
    fn detector_flags(&self) -> Vec<bool> {
        let mut flags = vec![false; self.pool.peek_next_id().index()];
        let delay = self.config.detection_delay;
        let now = self.round;
        for (id, at) in self.fd.failure_records() {
            if now >= at.saturating_add(delay) {
                if let Some(f) = flags.get_mut(id.index()) {
                    *f = true;
                }
            }
        }
        flags
    }

    /// One protocol phase across the whole population, each node
    /// activated once in a fresh random order (the cycle-driven model).
    fn run_phase(&mut self, phase: Phase) {
        let flags = self.detector_flags();
        let detected = |id: NodeId| flags.get(id.index()).copied().unwrap_or(false);
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend_from_slice(self.pool.alive_ids());
        order.shuffle(&mut self.rng);
        let mut sink = std::mem::take(&mut self.sink);
        for &id in &order {
            let Some(node) = self.pool.get_mut(id) else {
                continue;
            };
            sink.clear();
            node.on_phase_into(phase, &detected, &mut self.rng, &mut sink);
            if !sink.is_empty() {
                self.dispatch(id, &mut sink);
            }
        }
        self.sink = sink;
        self.order = order;
    }

    /// Executes one node's queued effects synchronously: probes are
    /// answered from ground truth (with the peer's live position — the
    /// atomic exchange of the cycle model), sends are delivered to the
    /// destination node in the same instant, and wire traffic is
    /// converted to the paper's cost units as it passes through. Drains
    /// `sink` into the engine's reusable queue and hands it back empty to
    /// the event handlers for their follow-up effects.
    fn dispatch(&mut self, origin: NodeId, sink: &mut EffectSink<S::Point>) {
        let mut queue = std::mem::take(&mut self.queue);
        debug_assert!(queue.is_empty());
        queue.extend(sink.drain().map(|e| (origin, e)));
        while let Some((at, effect)) = queue.pop_front() {
            match effect {
                Effect::Probe { peer, channel } => {
                    let event = if self.pool.contains(peer) {
                        Event::ProbeOk {
                            peer,
                            channel,
                            pos: self.position_of(peer),
                        }
                    } else {
                        // Imperfect detection: the exchange times out; a
                        // T-Man request was still paid for.
                        if channel == Channel::Topology {
                            self.cost.tman_units +=
                                (self.config.tman.m * self.config.cost.units_per_descriptor) as u64;
                        }
                        Event::PeerUnreachable { peer, channel }
                    };
                    let node = self.pool.get_mut(at).expect("active node vanished");
                    node.on_event_into(event, &mut self.rng, sink);
                    queue.extend(sink.drain().map(|e| (at, e)));
                }
                Effect::Send { to, wire } => {
                    self.cost.charge_wire(&self.config.cost, &wire);
                    if let Some(node) = self.pool.get_mut(to) {
                        node.on_event_into(Event::Message { from: at, wire }, &mut self.rng, sink);
                        queue.extend(sink.drain().map(|e| (to, e)));
                    } else {
                        // A send to an undetected-dead node is simply
                        // lost — its payload buffer goes back to the pool.
                        sink.recycle_wire(wire);
                    }
                }
            }
        }
        self.queue = queue;
    }

    /// Recovery pass (Step 3 of Fig. 4, Algorithm 2): reactivate ghosts of
    /// crashed holders. Purely local, no traffic, no randomness — which
    /// makes it the one protocol step that parallelizes freely: each node
    /// only touches its own state, so the outcome is identical in any
    /// activation order and the pass fans out across the pool's slots.
    fn recovery_phase(&mut self) {
        let flags = self.detector_flags();
        let detected = move |id: NodeId| flags.get(id.index()).copied().unwrap_or(false);
        self.pool.slots_mut().par_iter_mut().for_each(|slot| {
            if let Some(node) = slot.as_mut() {
                node.recover_ghosts(&detected);
            }
        });
    }

    /// Position-refresh pass: every node updates the coordinates of its
    /// view entries to the subjects' current positions. "Because nodes
    /// move, T-Man must update their positions in its view in each round,
    /// causing most of the traffic" (Sec. IV-B) — each *changed* entry is
    /// charged as one descriptor. When nodes are stationary (T-Man alone,
    /// or a converged Polystyrene network at rest) this costs nothing.
    ///
    /// The phases above are the last movers of the round, so this is also
    /// where the pool's position slab is brought up to date — the
    /// measurement pass below then reads coordinates off the dense slab.
    fn position_refresh_phase(&mut self) {
        self.pool.sync_positions();
        let unit = self.config.cost.units_per_descriptor as u64;
        let changed_total = self.pool.refresh_tman_positions();
        self.cost.tman_units += changed_total * unit;
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Measures the paper's metrics over the current state.
    ///
    /// At scale this is the engine's hot spot, so it uses three
    /// accelerations — none changes any measured value:
    ///
    /// * a [`GridIndex`] over the alive nodes' positions answers the
    ///   "nearest alive node" queries of the homogeneity metric for data
    ///   points that currently have no holder (after a catastrophic
    ///   failure that is up to half of all points, which otherwise makes
    ///   this pass `O(points × nodes)`);
    /// * the per-node and per-point measurement loops fan out across
    ///   cores with rayon, folding partial sums back in input order so
    ///   results stay bit-identical to a sequential pass, and read
    ///   coordinates off the pool's position slab instead of chasing
    ///   into each node;
    /// * repeated rounds reuse the engine-owned `MetricsScratch` buffers
    ///   (this public entry point measures into a throwaway scratch, so
    ///   ad-hoc callers pay the allocations instead of holding them).
    pub fn compute_metrics(&self) -> RoundMetrics {
        self.measure(&mut MetricsScratch::default())
    }

    fn measure(&self, scratch: &mut MetricsScratch) -> RoundMetrics {
        let MetricsScratch {
            alive,
            holders,
            ghost_present,
            per_node,
            per_point,
        } = scratch;
        alive.clear();
        alive.extend_from_slice(self.pool.alive_ids());
        let alive: &[NodeId] = alive;
        let alive_count = alive.len();
        let positions = self.pool.positions();

        // Proximity: mean distance to the k closest T-Man neighbors,
        // measured against the neighbors' *true* current positions (the
        // slab mirrors them whenever measurement runs).
        alive
            .par_iter()
            .map(|&id| {
                let node = self.pool.get(id).expect("alive id");
                let mut acc = 0.0;
                let mut samples = 0usize;
                // Visitor form of `closest`: same ranking, same order, no
                // per-node result vector (the rank scratch is per-thread,
                // so this is safe under the rayon fan-out).
                node.tman
                    .for_closest(&node.poly.pos, self.config.report_neighbors, |d| {
                        if let Some(actual) = self.pool.position(d.id) {
                            acc += self.space.distance(&node.poly.pos, actual);
                            samples += 1;
                        }
                    });
                (acc, samples)
            })
            .collect_into_vec(per_node);
        let (proximity_acc, proximity_samples) = per_node
            .iter()
            .fold((0.0, 0usize), |(a, n), &(pa, pn)| (a + pa, n + pn));
        let proximity = if proximity_samples == 0 {
            0.0
        } else {
            proximity_acc / proximity_samples as f64
        };

        // Homogeneity: map every original data point to its primary
        // holders (paper Sec. IV-A's ĝuests⁻¹). Dense tables indexed by
        // point id (founding ids are contiguous by construction); ghost
        // presence also counts for survival (the copy exists even if
        // not yet reactivated). Holders are recorded by pool slot, so
        // the distance loops below are straight slab reads.
        let n_points = self.original_points.len();
        for slot in holders.iter_mut() {
            slot.clear();
        }
        holders.resize_with(n_points, Vec::new);
        ghost_present.clear();
        ghost_present.resize(n_points, false);
        for &id in alive {
            let s = self.pool.slot_of(id).expect("alive id");
            let node = self.pool.slots()[s].as_ref().expect("occupied slot");
            for g in &node.poly.guests {
                if let Some(slot) = holders.get_mut(g.id.index()) {
                    slot.push(s);
                }
            }
            for pts in node.poly.ghosts.values() {
                for p in pts {
                    if let Some(flag) = ghost_present.get_mut(p.id.index()) {
                        *flag = true;
                    }
                }
            }
        }
        let holders: &[Vec<usize>] = holders;
        let ghost_present: &[bool] = ghost_present;
        // Exact nearest-alive-node index for holderless points. `None`
        // (small network, grid off, gridless space, or no holderless
        // point to serve — the common healthy-round case) falls back to
        // the exhaustive scan; both paths return identical distances.
        let any_holderless = holders.iter().any(Vec::is_empty);
        let alive_index: Option<GridIndex<S>> =
            if self.config.grid_index && any_holderless && alive_count >= GRID_INDEX_MIN_NODES {
                GridIndex::build(
                    &self.space,
                    alive.iter().map(|&id| {
                        (
                            id.as_u64(),
                            self.pool.position(id).expect("alive id").clone(),
                        )
                    }),
                )
            } else {
                None
            };
        self.original_points
            .par_iter()
            .map(|point| {
                let hs = &holders[point.id.index()];
                let nearest = if !hs.is_empty() {
                    hs.iter()
                        .map(|&s| self.space.distance(&point.pos, &positions[s]))
                        .fold(f64::INFINITY, f64::min)
                } else {
                    match &alive_index {
                        Some(index) => index
                            .nearest(&point.pos)
                            .map(|(_, d)| d)
                            .unwrap_or(f64::INFINITY),
                        None => alive
                            .iter()
                            .map(|&id| {
                                let pos = self.pool.position(id).expect("alive id");
                                self.space.distance(&point.pos, pos)
                            })
                            .fold(f64::INFINITY, f64::min),
                    }
                };
                let survived = !hs.is_empty() || ghost_present[point.id.index()];
                (nearest, survived)
            })
            .collect_into_vec(per_point);
        let mut homogeneity_acc = 0.0;
        let mut surviving = 0usize;
        for &(nearest, survived) in per_point.iter() {
            if nearest.is_finite() {
                homogeneity_acc += nearest;
            }
            if survived {
                surviving += 1;
            }
        }
        let homogeneity = if self.original_points.is_empty() || alive_count == 0 {
            f64::INFINITY
        } else {
            homogeneity_acc / self.original_points.len() as f64
        };

        let points_per_node = if alive_count == 0 {
            0.0
        } else {
            alive
                .iter()
                .map(|&id| self.pool.get(id).expect("alive id").poly.stored_points())
                .sum::<usize>() as f64
                / alive_count as f64
        };

        let cost_per_node = if alive_count == 0 {
            0.0
        } else {
            self.cost.total() as f64 / alive_count as f64
        };

        RoundMetrics {
            round: self.round,
            alive_nodes: alive_count,
            proximity,
            homogeneity,
            reference_homogeneity: reference_homogeneity(self.config.area, alive_count),
            points_per_node,
            cost_per_node,
            tman_cost_share: self.cost.tman_share(),
            surviving_points: if self.original_points.is_empty() {
                1.0
            } else {
                surviving as f64 / self.original_points.len() as f64
            },
        }
    }

    /// Positions of all alive nodes, for the snapshot figures (1, 8, 9) —
    /// read off the pool's position slab in ascending id order.
    pub fn snapshot_positions(&self) -> Vec<(NodeId, S::Point)> {
        self.pool
            .alive_ids()
            .iter()
            .map(|&id| (id, self.pool.position(id).expect("alive id").clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    fn tiny_config(seed: u64) -> EngineConfig {
        EngineConfig {
            tman: TManConfig {
                view_cap: 20,
                m: 8,
                psi: 3,
            },
            poly: PolystyreneConfig::builder().replication(3).build(),
            rps_view_cap: 10,
            rps_shuffle_len: 5,
            tman_bootstrap: 5,
            report_neighbors: 4,
            cost: CostModel::default(),
            area: 64.0,
            detection_delay: 0,
            grid_index: true,
            seed,
        }
    }

    fn tiny_engine(seed: u64) -> Engine<Torus2> {
        let space = Torus2::new(16.0, 4.0);
        let shape = shapes::torus_grid(16, 4, 1.0);
        Engine::new(space, shape, tiny_config(seed))
    }

    #[test]
    fn construction_invariants() {
        let e = tiny_engine(1);
        assert_eq!(e.alive_count(), 64);
        assert_eq!(e.original_points().len(), 64);
        assert_eq!(e.round(), 0);
        // Every node initially hosts exactly its own point.
        for id in e.alive_ids() {
            let s = e.poly_state(id).unwrap();
            assert_eq!(s.guests.len(), 1);
            assert_eq!(s.guests[0].id.as_u64(), id.as_u64());
        }
    }

    #[test]
    fn initial_homogeneity_is_zero() {
        let e = tiny_engine(2);
        let m = e.compute_metrics();
        assert!(m.homogeneity.abs() < 1e-12, "each node hosts its own point");
        assert_eq!(m.surviving_points, 1.0);
    }

    #[test]
    fn convergence_brings_proximity_down() {
        let mut e = tiny_engine(3);
        e.run(15);
        let m = e.history().last().unwrap();
        // On a unit-step grid the 4 closest neighbors are at distance 1.
        assert!(
            m.proximity < 1.6,
            "proximity failed to converge: {}",
            m.proximity
        );
        // Steady state: replication reached, so stored points ≈ 1 + K.
        assert!(
            (m.points_per_node - 4.0).abs() < 0.8,
            "expected ≈ 1+K=4 stored points, got {}",
            m.points_per_node
        );
    }

    #[test]
    fn catastrophic_failure_and_recovery() {
        let mut e = tiny_engine(4);
        e.run(12);
        let killed = e.fail_original_region(shapes::in_right_half(16.0));
        assert_eq!(killed.len(), 32);
        assert_eq!(e.alive_count(), 32);
        let at_failure = e.compute_metrics();
        assert!(at_failure.homogeneity > 1.0, "half the shape just vanished");
        e.run(15);
        let m = *e.history().last().unwrap();
        assert!(
            m.homogeneity < m.reference_homogeneity,
            "failed to reshape: homogeneity {} vs reference {}",
            m.homogeneity,
            m.reference_homogeneity
        );
        // Most points survived (K = 3 over 50% failure ⇒ ~94%).
        assert!(
            m.surviving_points > 0.80,
            "reliability {}",
            m.surviving_points
        );
    }

    #[test]
    fn grid_index_metrics_identical_to_exhaustive() {
        // 512 nodes clears GRID_INDEX_MIN_NODES, so the grid path really
        // runs; the exact index must reproduce the exhaustive metrics
        // bit for bit through convergence, catastrophe and reshaping.
        let run = |grid: bool| {
            let mut cfg = tiny_config(11);
            cfg.area = 512.0;
            cfg.grid_index = grid;
            let space = Torus2::new(32.0, 16.0);
            let mut e = Engine::new(space, shapes::torus_grid(32, 16, 1.0), cfg);
            e.run(6);
            e.fail_original_region(shapes::in_right_half(32.0));
            e.run(8);
            e.history().to_vec()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let mut a = tiny_engine(7);
        let mut b = tiny_engine(7);
        a.run(8);
        b.run(8);
        assert_eq!(a.history(), b.history());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = tiny_engine(7);
        let mut b = tiny_engine(8);
        a.run(5);
        b.run(5);
        assert_ne!(a.history(), b.history());
    }

    #[test]
    fn injection_adds_empty_nodes_that_acquire_points() {
        let mut e = tiny_engine(5);
        e.run(10);
        e.fail_original_region(shapes::in_right_half(16.0));
        e.run(10);
        let fresh = e.inject(shapes::torus_grid_offset(16, 2, 1.0));
        assert_eq!(fresh.len(), 32);
        assert_eq!(e.alive_count(), 64);
        for &id in &fresh {
            assert!(e.poly_state(id).unwrap().guests.is_empty());
        }
        e.run(15);
        let with_points = fresh
            .iter()
            .filter(|&&id| !e.poly_state(id).unwrap().guests.is_empty())
            .count();
        assert!(
            with_points > fresh.len() / 2,
            "only {with_points}/32 injected nodes acquired data points"
        );
    }

    #[test]
    fn random_failure_fraction() {
        let mut e = tiny_engine(6);
        e.run(3);
        let killed = e.fail_random_fraction(0.25);
        assert_eq!(killed.len(), 16);
        assert_eq!(e.alive_count(), 48);
    }

    #[test]
    fn crash_is_idempotent() {
        let mut e = tiny_engine(9);
        e.crash(NodeId::new(0));
        e.crash(NodeId::new(0));
        assert_eq!(e.alive_count(), 63);
    }

    #[test]
    fn cost_accounting_is_dominated_by_tman() {
        let mut e = tiny_engine(10);
        e.run(10);
        let m = e.history().last().unwrap();
        assert!(m.cost_per_node > 0.0);
        assert!(
            m.tman_cost_share > 0.5,
            "T-Man should dominate traffic (paper Fig. 7b), got {}",
            m.tman_cost_share
        );
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_shape_rejected() {
        let _ = Engine::new(Torus2::new(4.0, 4.0), Vec::new(), tiny_config(0));
    }

    #[test]
    fn delayed_detection_still_recovers_but_later() {
        let run = |delay: u32| {
            let mut cfg = tiny_config(21);
            cfg.detection_delay = delay;
            let space = Torus2::new(16.0, 4.0);
            let mut e = Engine::new(space, shapes::torus_grid(16, 4, 1.0), cfg);
            e.run(12);
            e.fail_original_region(shapes::in_right_half(16.0));
            // First round at which homogeneity recrosses the reference.
            for extra in 1..=30u32 {
                let m = e.step();
                if m.homogeneity < m.reference_homogeneity {
                    return Some(extra);
                }
            }
            None
        };
        let fast = run(0).expect("perfect detector must reshape");
        let slow = run(4).expect("delayed detector must still reshape");
        assert!(
            slow >= fast,
            "detection lag cannot speed up reshaping: {slow} < {fast}"
        );
        // The lag lower-bounds recovery: nothing reactivates before
        // detection, so at least `delay` extra rounds pass.
        assert!(slow >= 4, "reshaped in {slow} rounds despite 4-round lag");
    }

    #[test]
    fn localized_backups_crumble_under_correlated_failure() {
        // Paper Sec. III-D: random placement is chosen *because* failures
        // are correlated. Localized placement must lose far more points
        // when a whole region dies.
        let run = |placement: BackupPlacement| {
            let mut cfg = tiny_config(22);
            cfg.poly = PolystyreneConfig::builder()
                .replication(3)
                .backup_placement(placement)
                .build();
            let space = Torus2::new(16.0, 4.0);
            let mut e = Engine::new(space, shapes::torus_grid(16, 4, 1.0), cfg);
            e.run(12);
            e.fail_original_region(shapes::in_right_half(16.0));
            e.run(5);
            e.history().last().unwrap().surviving_points
        };
        let random = run(BackupPlacement::UniformRandom);
        let local = run(BackupPlacement::NeighborhoodBiased);
        assert!(
            random > local + 0.15,
            "random placement ({random:.3}) should clearly beat localized \
             ({local:.3}) under a regional blast"
        );
        // Localized backups sit in the dead region: roughly only the
        // surviving half's own points remain.
        assert!(
            local < 0.75,
            "localized placement suspiciously good: {local:.3}"
        );
    }
}
