//! Plain-text tables and CSV output for experiment results.
//!
//! Every bench harness prints the same rows/series the paper reports and
//! drops a CSV next to it, so results can be re-plotted externally.

use std::io::Write;
use std::path::Path;

/// Renders a fixed-width ASCII table with a title line.
///
/// # Example
///
/// ```
/// use polystyrene_sim::report::render_table;
///
/// let s = render_table(
///     "Table II",
///     &["K", "Reshaping time", "Reliability (%)"],
///     &[vec!["2".into(), "5.00 ± 0.00".into(), "87.7".into()]],
/// );
/// assert!(s.contains("Table II"));
/// assert!(s.contains("Reshaping time"));
/// ```
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&sep);
    out.push('\n');
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    " {:<width$} ",
                    c,
                    width = widths.get(i).copied().unwrap_or(0)
                )
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(
        headers.iter().map(|h| h.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Writes a CSV file: a header row, then one row per record.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file (including a
/// missing parent directory).
pub fn write_csv(
    path: impl AsRef<Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Formats a float series as CSV rows `(index, value...)` for multi-series
/// figures: one row per round, one column per labeled series.
pub fn series_rows(series: &[(&str, &[f64])]) -> (Vec<String>, Vec<Vec<String>>) {
    let headers: Vec<String> = std::iter::once("round".to_string())
        .chain(series.iter().map(|(label, _)| label.to_string()))
        .collect();
    let rounds = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut rows = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let mut row = vec![r.to_string()];
        for (_, s) in series {
            row.push(s.get(r).map(|v| format!("{v:.6}")).unwrap_or_default());
        }
        rows.push(row);
    }
    (headers, rows)
}

/// Downsamples a per-round series for compact terminal plots: keeps every
/// `stride`-th point.
pub fn downsample(series: &[f64], stride: usize) -> Vec<(usize, f64)> {
    if stride == 0 {
        return Vec::new();
    }
    series
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0)
        .map(|(i, &v)| (i, v))
        .collect()
}

/// A crude terminal line plot of one or more series, good enough to see
/// the shape of Figs. 6 and 7 directly in `cargo bench` output.
pub fn ascii_plot(title: &str, series: &[(&str, &[f64])], height: usize, width: usize) -> String {
    let mut out = format!("{title}\n");
    let max = series
        .iter()
        .flat_map(|(_, s)| s.iter())
        .fold(0.0f64, |a, &b| a.max(b));
    let rounds = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    if max <= 0.0 || rounds == 0 || height == 0 || width == 0 {
        out.push_str("(empty)\n");
        return out;
    }
    let markers = ['*', '+', 'o', 'x', '#', '%'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let marker = markers[si % markers.len()];
        for (i, &v) in s.iter().enumerate() {
            let col = i * (width - 1) / rounds.max(1);
            let row = if v.is_finite() {
                ((v / max) * (height - 1) as f64).round() as usize
            } else {
                height - 1
            };
            let row = (height - 1).saturating_sub(row.min(height - 1));
            grid[row][col.min(width - 1)] = marker;
        }
    }
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (label, _))| format!("{} {label}", markers[i % markers.len()]))
        .collect();
    out.push_str(&format!("  max={max:.3}  {}\n", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_content() {
        let t = render_table(
            "T",
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333333".into(), "4".into()],
            ],
        );
        assert!(t.contains("long-header"));
        assert!(t.contains("333333"));
        let lines: Vec<&str> = t.lines().collect();
        // title + sep + header + sep + 2 rows + sep
        assert_eq!(lines.len(), 7);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("polystyrene-report-test");
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["round", "value"],
            &[
                vec!["0".into(), "1.5".into()],
                vec!["1".into(), "2.5".into()],
            ],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "round,value\n0,1.5\n1,2.5\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn series_rows_pads_ragged_series() {
        let a = [1.0, 2.0, 3.0];
        let b = [9.0];
        let (headers, rows) = series_rows(&[("a", &a), ("b", &b)]);
        assert_eq!(headers, vec!["round", "a", "b"]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2][2], ""); // missing b value at round 2
    }

    #[test]
    fn downsample_strides() {
        let s = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(downsample(&s, 2), vec![(0, 0.0), (2, 2.0), (4, 4.0)]);
        assert!(downsample(&s, 0).is_empty());
    }

    #[test]
    fn ascii_plot_renders_axes_and_legend() {
        let s1 = [0.0, 1.0, 2.0, 3.0];
        let s2 = [3.0, 2.0, 1.0, 0.0];
        let p = ascii_plot("shape", &[("up", &s1), ("down", &s2)], 5, 20);
        assert!(p.contains("shape"));
        assert!(p.contains("* up"));
        assert!(p.contains("+ down"));
        assert!(p.contains("max=3.000"));
    }

    #[test]
    fn ascii_plot_handles_empty() {
        let p = ascii_plot("e", &[("x", &[] as &[f64])], 4, 10);
        assert!(p.contains("(empty)"));
    }
}
