//! Scenario scripting: timed failure and churn events over an engine run.
//!
//! The paper's evaluation scenario (Sec. IV-A) is a three-phase script:
//! convergence for 20 rounds, a catastrophic half-torus failure at round
//! 20, and re-injection of 1600 fresh nodes at round 100, observed until
//! round 200. [`Scenario`] generalizes that: arbitrary events at arbitrary
//! rounds, applied *before* the round with that index runs.

use crate::engine::Engine;
use crate::metrics::RoundMetrics;
use polystyrene_membership::NodeId;
use polystyrene_space::MetricSpace;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One scripted event.
#[derive(Clone)]
pub enum ScenarioEvent<P> {
    /// Crash every founding node whose *original* data point satisfies the
    /// predicate (correlated regional failure).
    FailOriginalRegion(Arc<dyn Fn(&P) -> bool + Send + Sync>),
    /// Crash a uniformly random fraction of the alive population.
    FailRandomFraction(f64),
    /// Crash these specific nodes.
    FailNodes(Vec<NodeId>),
    /// Inject fresh, empty nodes at these positions.
    Inject(Vec<P>),
}

impl<P> std::fmt::Debug for ScenarioEvent<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FailOriginalRegion(_) => write!(f, "FailOriginalRegion(<predicate>)"),
            Self::FailRandomFraction(x) => write!(f, "FailRandomFraction({x})"),
            Self::FailNodes(ids) => write!(f, "FailNodes({} nodes)", ids.len()),
            Self::Inject(ps) => write!(f, "Inject({} nodes)", ps.len()),
        }
    }
}

/// A timed script of [`ScenarioEvent`]s plus a total duration.
#[derive(Clone, Debug)]
pub struct Scenario<P> {
    total_rounds: u32,
    events: BTreeMap<u32, Vec<ScenarioEvent<P>>>,
}

impl<P> Scenario<P> {
    /// An event-free scenario of the given duration.
    pub fn new(total_rounds: u32) -> Self {
        Self {
            total_rounds,
            events: BTreeMap::new(),
        }
    }

    /// Schedules `event` to fire just before round `round` executes
    /// (round indices count completed rounds, so `at(20, …)` fires after
    /// 20 rounds have run — the paper's "at round 20").
    pub fn at(mut self, round: u32, event: ScenarioEvent<P>) -> Self {
        self.events.entry(round).or_default().push(event);
        self
    }

    /// Total rounds the scenario runs for.
    pub fn total_rounds(&self) -> u32 {
        self.total_rounds
    }

    /// Rounds at which at least one event fires.
    pub fn event_rounds(&self) -> Vec<u32> {
        self.events.keys().copied().collect()
    }

    /// The first round at which a failure event fires, if any — the
    /// reference point of the reshaping-time metric.
    pub fn first_failure_round(&self) -> Option<u32> {
        self.events
            .iter()
            .find(|(_, evs)| {
                evs.iter().any(|e| {
                    matches!(
                        e,
                        ScenarioEvent::FailOriginalRegion(_)
                            | ScenarioEvent::FailRandomFraction(_)
                            | ScenarioEvent::FailNodes(_)
                    )
                })
            })
            .map(|(&r, _)| r)
    }
}

/// Drives `engine` through `scenario`, returning the metrics of every
/// round.
pub fn run_scenario<S: MetricSpace>(
    engine: &mut Engine<S>,
    scenario: &Scenario<S::Point>,
) -> Vec<RoundMetrics> {
    let mut out = Vec::with_capacity(scenario.total_rounds as usize);
    for round in 0..scenario.total_rounds {
        if let Some(events) = scenario.events.get(&round) {
            for event in events {
                apply_event(engine, event);
            }
        }
        out.push(engine.step());
    }
    out
}

fn apply_event<S: MetricSpace>(engine: &mut Engine<S>, event: &ScenarioEvent<S::Point>) {
    match event {
        ScenarioEvent::FailOriginalRegion(pred) => {
            let pred = Arc::clone(pred);
            engine.fail_original_region(move |p| pred(p));
        }
        ScenarioEvent::FailRandomFraction(fraction) => {
            engine.fail_random_fraction(*fraction);
        }
        ScenarioEvent::FailNodes(ids) => {
            for &id in ids {
                engine.crash(id);
            }
        }
        ScenarioEvent::Inject(positions) => {
            engine.inject(positions.clone());
        }
    }
}

/// The paper's three-phase evaluation scenario on a `cols × rows` torus
/// grid (Sec. IV-A), parameterized so the scaling experiments (Fig. 10)
/// can reuse it at every network size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperScenario {
    /// Grid columns (paper: 80).
    pub cols: usize,
    /// Grid rows (paper: 40).
    pub rows: usize,
    /// Grid step (paper: 1.0).
    pub step: f64,
    /// Round of the catastrophic half-torus failure (paper: 20).
    pub failure_round: u32,
    /// Round of the fresh-node re-injection, `None` to skip Phase 3
    /// (paper: 100).
    pub inject_round: Option<u32>,
    /// Total rounds observed (paper: 200).
    pub total_rounds: u32,
}

impl Default for PaperScenario {
    fn default() -> Self {
        Self {
            cols: 80,
            rows: 40,
            step: 1.0,
            failure_round: 20,
            inject_round: Some(100),
            total_rounds: 200,
        }
    }
}

impl PaperScenario {
    /// A smaller variant for quick runs and CI: same phases on a reduced
    /// grid and timeline.
    pub fn small() -> Self {
        Self {
            cols: 20,
            rows: 10,
            step: 1.0,
            failure_round: 15,
            inject_round: Some(45),
            total_rounds: 70,
        }
    }

    /// A scaling variant with Phase 3 disabled, used by the Fig. 10
    /// reshaping-time sweeps.
    pub fn reshaping_only(cols: usize, rows: usize, failure_round: u32, tail: u32) -> Self {
        Self {
            cols,
            rows,
            step: 1.0,
            failure_round,
            inject_round: None,
            total_rounds: failure_round + tail,
        }
    }

    /// Number of nodes in the founding population.
    pub fn node_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Torus extents.
    pub fn extents(&self) -> (f64, f64) {
        (self.cols as f64 * self.step, self.rows as f64 * self.step)
    }

    /// Torus area (for the reference homogeneity).
    pub fn area(&self) -> f64 {
        let (w, h) = self.extents();
        w * h
    }

    /// The initial positions (the target shape).
    pub fn shape(&self) -> Vec<[f64; 2]> {
        polystyrene_space::shapes::torus_grid(self.cols, self.rows, self.step)
    }

    /// Builds the timed event script.
    pub fn script(&self) -> Scenario<[f64; 2]> {
        let (width, _) = self.extents();
        let mut scenario = Scenario::new(self.total_rounds).at(
            self.failure_round,
            ScenarioEvent::FailOriginalRegion(Arc::new(move |p: &[f64; 2]| p[0] >= width / 2.0)),
        );
        if let Some(inject_round) = self.inject_round {
            scenario = scenario.at(
                inject_round,
                ScenarioEvent::Inject(polystyrene_space::shapes::torus_grid_offset(
                    self.cols / 2,
                    self.rows,
                    self.step,
                )),
            );
        }
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    fn small_engine(seed: u64) -> Engine<Torus2> {
        let p = PaperScenario::small();
        let (w, h) = p.extents();
        let mut cfg = EngineConfig::default();
        cfg.area = p.area();
        cfg.seed = seed;
        cfg.tman.view_cap = 30;
        cfg.tman.m = 10;
        Engine::new(Torus2::new(w, h), p.shape(), cfg)
    }

    #[test]
    fn paper_scenario_defaults_match_section_iv() {
        let p = PaperScenario::default();
        assert_eq!(p.node_count(), 3200);
        assert_eq!(p.area(), 3200.0);
        assert_eq!(p.failure_round, 20);
        assert_eq!(p.inject_round, Some(100));
        assert_eq!(p.total_rounds, 200);
        let script = p.script();
        assert_eq!(script.event_rounds(), vec![20, 100]);
        assert_eq!(script.first_failure_round(), Some(20));
    }

    #[test]
    fn script_kills_exactly_half_and_reinjects_same_count() {
        let p = PaperScenario::small();
        let mut engine = small_engine(1);
        let metrics = run_scenario(&mut engine, &p.script());
        assert_eq!(metrics.len(), p.total_rounds as usize);
        // Before failure: full population.
        assert_eq!(metrics[(p.failure_round - 1) as usize].alive_nodes, 200);
        // After failure: half.
        assert_eq!(metrics[p.failure_round as usize].alive_nodes, 100);
        // After injection: back to full.
        let ir = p.inject_round.unwrap() as usize;
        assert_eq!(metrics[ir].alive_nodes, 200);
    }

    #[test]
    fn scenario_event_rounds_and_failure_detection() {
        let s: Scenario<[f64; 2]> = Scenario::new(50)
            .at(10, ScenarioEvent::FailRandomFraction(0.1))
            .at(30, ScenarioEvent::Inject(vec![[0.0, 0.0]]));
        assert_eq!(s.event_rounds(), vec![10, 30]);
        assert_eq!(s.first_failure_round(), Some(10));
        let s2: Scenario<[f64; 2]> = Scenario::new(10).at(5, ScenarioEvent::Inject(vec![]));
        assert_eq!(s2.first_failure_round(), None);
    }

    #[test]
    fn fail_nodes_event_applies() {
        let mut engine = small_engine(2);
        let scenario = Scenario::new(3).at(
            1,
            ScenarioEvent::FailNodes(vec![NodeId::new(0), NodeId::new(1)]),
        );
        let metrics = run_scenario(&mut engine, &scenario);
        assert_eq!(metrics[0].alive_nodes, 200);
        assert_eq!(metrics[1].alive_nodes, 198);
    }

    #[test]
    fn reshaping_only_variant_has_no_injection() {
        let p = PaperScenario::reshaping_only(16, 8, 10, 30);
        assert_eq!(p.total_rounds, 40);
        assert_eq!(p.script().event_rounds(), vec![10]);
        // Small smoke run: the torus reshapes after losing its right half.
        let (w, h) = p.extents();
        let mut cfg = EngineConfig::default();
        cfg.area = p.area();
        cfg.seed = 3;
        cfg.tman.view_cap = 30;
        cfg.tman.m = 10;
        let mut engine = Engine::new(Torus2::new(w, h), p.shape(), cfg);
        let metrics = run_scenario(&mut engine, &p.script());
        let t = crate::metrics::reshaping_time(&metrics, p.failure_round);
        assert!(t.is_some(), "small torus failed to reshape in 30 rounds");
    }

    #[test]
    fn shapes_helpers_consistency() {
        let p = PaperScenario::default();
        assert_eq!(p.shape().len(), 3200);
        assert_eq!(
            p.shape().len(),
            shapes::torus_grid(p.cols, p.rows, p.step).len()
        );
    }
}
