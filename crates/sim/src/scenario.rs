//! Scenario execution on the cycle engine.
//!
//! The scenario *language* — [`Scenario`], [`ScenarioEvent`] (including
//! the continuous `Churn` extension) and [`PaperScenario`] — lives in
//! `polystyrene-protocol` and is shared with the threaded runtime; this
//! module plugs the [`Engine`] in as a [`ScenarioSubstrate`], so the same
//! script value drives both execution substrates through one code path
//! ([`polystyrene_protocol::scenario::apply_event`]) and failure
//! injection cannot drift between them.

use crate::engine::Engine;
use crate::metrics::RoundMetrics;
use polystyrene_membership::NodeId;
use polystyrene_space::MetricSpace;

pub use polystyrene_protocol::scenario::{
    apply_event, drive_scenario, PaperScenario, Scenario, ScenarioEvent, ScenarioSubstrate,
};

impl<S: MetricSpace> ScenarioSubstrate<S::Point> for Engine<S> {
    fn fail_region(
        &mut self,
        predicate: &(dyn Fn(&S::Point) -> bool + Send + Sync),
    ) -> Vec<NodeId> {
        self.fail_original_region(predicate)
    }

    fn fail_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        self.fail_random_fraction(fraction)
    }

    fn fail_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId> {
        let mut killed = Vec::new();
        for &id in ids {
            let was_alive = self.poly_state(id).is_some();
            self.crash(id);
            if was_alive {
                killed.push(id);
            }
        }
        killed
    }

    fn inject(&mut self, positions: &[S::Point]) -> Vec<NodeId> {
        Engine::inject(self, positions.to_vec())
    }

    fn advance_round(&mut self) {
        self.step();
    }
}

/// Drives `engine` through `scenario`, returning the metrics of every
/// round.
pub fn run_scenario<S: MetricSpace>(
    engine: &mut Engine<S>,
    scenario: &Scenario<S::Point>,
) -> Vec<RoundMetrics> {
    let before = engine.history().len();
    drive_scenario(engine, scenario);
    engine.history()[before..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use polystyrene_space::prelude::*;

    fn small_engine(seed: u64) -> Engine<Torus2> {
        let p = PaperScenario::small();
        let (w, h) = p.extents();
        let mut cfg = EngineConfig::default();
        cfg.area = p.area();
        cfg.seed = seed;
        cfg.tman.view_cap = 30;
        cfg.tman.m = 10;
        Engine::new(Torus2::new(w, h), p.shape(), cfg)
    }

    #[test]
    fn script_kills_exactly_half_and_reinjects_same_count() {
        let p = PaperScenario::small();
        let mut engine = small_engine(1);
        let metrics = run_scenario(&mut engine, &p.script());
        assert_eq!(metrics.len(), p.total_rounds as usize);
        // Before failure: full population.
        assert_eq!(metrics[(p.failure_round - 1) as usize].alive_nodes, 200);
        // After failure: half.
        assert_eq!(metrics[p.failure_round as usize].alive_nodes, 100);
        // After injection: back to full.
        let ir = p.inject_round.unwrap() as usize;
        assert_eq!(metrics[ir].alive_nodes, 200);
    }

    #[test]
    fn fail_nodes_event_applies() {
        let mut engine = small_engine(2);
        let scenario = Scenario::new(3).at(
            1,
            ScenarioEvent::FailNodes(vec![NodeId::new(0), NodeId::new(1)]),
        );
        let metrics = run_scenario(&mut engine, &scenario);
        assert_eq!(metrics[0].alive_nodes, 200);
        assert_eq!(metrics[1].alive_nodes, 198);
    }

    #[test]
    fn churn_event_drains_population_every_round() {
        let mut engine = small_engine(4);
        let scenario = Scenario::new(6).at(
            2,
            ScenarioEvent::Churn {
                rate: 0.1,
                rounds: 3,
            },
        );
        let metrics = run_scenario(&mut engine, &scenario);
        assert_eq!(metrics[1].alive_nodes, 200, "churn must not start early");
        assert_eq!(metrics[2].alive_nodes, 180);
        assert_eq!(metrics[3].alive_nodes, 162);
        assert_eq!(metrics[4].alive_nodes, 146);
        assert_eq!(metrics[5].alive_nodes, 146, "window expired");
    }

    #[test]
    fn reshaping_only_variant_has_no_injection() {
        let p = PaperScenario::reshaping_only(16, 8, 10, 30);
        assert_eq!(p.total_rounds, 40);
        assert_eq!(p.script().event_rounds(), vec![10]);
        // Small smoke run: the torus reshapes after losing its right half.
        let (w, h) = p.extents();
        let mut cfg = EngineConfig::default();
        cfg.area = p.area();
        cfg.seed = 3;
        cfg.tman.view_cap = 30;
        cfg.tman.m = 10;
        let mut engine = Engine::new(Torus2::new(w, h), p.shape(), cfg);
        let metrics = run_scenario(&mut engine, &p.script());
        let t = crate::metrics::reshaping_time(&metrics, p.failure_round);
        assert!(t.is_some(), "small torus failed to reshape in 30 rounds");
    }

    #[test]
    fn run_scenario_returns_only_its_own_rounds() {
        let mut engine = small_engine(5);
        engine.run(3);
        let scenario: Scenario<[f64; 2]> = Scenario::new(2);
        let metrics = run_scenario(&mut engine, &scenario);
        assert_eq!(metrics.len(), 2);
        assert_eq!(engine.history().len(), 5);
        assert_eq!(metrics[0].round, 4);
    }
}
