//! Multi-run experiment harness: repeated seeded runs, aggregated with
//! 95 % confidence intervals — the paper's protocol ("Results are averaged
//! over 25 experiments, and when mentioned, intervals of confidence are
//! computed at a 95% confidence level", Sec. IV-B).

use crate::engine::{Engine, EngineConfig};
use crate::metrics::{reshaping_time, RoundMetrics};
use crate::scenario::{run_scenario, PaperScenario};
use polystyrene_space::stats::{ci95, ConfidenceInterval, SeriesAccumulator};
use polystyrene_space::torus::Torus2;

/// Outcome of one seeded run of a scenario.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Per-round metrics.
    pub metrics: Vec<RoundMetrics>,
    /// Rounds from the failure until homogeneity first dropped below the
    /// reference (Sec. IV-A), if it did.
    pub reshaping_time: Option<u32>,
    /// Fraction of initial data points surviving the failure — Table II's
    /// "Reliability", measured on the round right after the failure.
    pub reliability: f64,
}

impl RunRecord {
    /// Builds the record from raw metrics and the scenario's failure round.
    pub fn analyze(metrics: Vec<RoundMetrics>, failure_round: Option<u32>) -> Self {
        let reshaping = failure_round.and_then(|fr| reshaping_time(&metrics, fr));
        let reliability = failure_round
            .and_then(|fr| metrics.iter().find(|m| m.round > fr))
            .map(|m| m.surviving_points)
            .unwrap_or(1.0);
        Self {
            metrics,
            reshaping_time: reshaping,
            reliability,
        }
    }
}

/// Aggregated results of repeated runs.
#[derive(Clone, Debug, Default)]
pub struct ExperimentResult {
    /// Per-round homogeneity across runs.
    pub homogeneity: SeriesAccumulator,
    /// Per-round proximity across runs.
    pub proximity: SeriesAccumulator,
    /// Per-round stored points per node across runs.
    pub points_per_node: SeriesAccumulator,
    /// Per-round message cost per node across runs.
    pub cost_per_node: SeriesAccumulator,
    /// Per-round reference homogeneity (population-driven, identical
    /// across runs with the same scenario).
    pub reference_homogeneity: Vec<f64>,
    /// Reshaping time of each run that reshaped, in rounds.
    pub reshaping_times: Vec<f64>,
    /// Number of runs that never reshaped within the scenario.
    pub unreshaped_runs: usize,
    /// Reliability of each run.
    pub reliabilities: Vec<f64>,
}

impl ExperimentResult {
    /// Folds one run into the aggregate.
    pub fn push(&mut self, record: &RunRecord) {
        self.homogeneity
            .push_run(record.metrics.iter().map(|m| m.homogeneity).collect());
        self.proximity
            .push_run(record.metrics.iter().map(|m| m.proximity).collect());
        self.points_per_node
            .push_run(record.metrics.iter().map(|m| m.points_per_node).collect());
        self.cost_per_node
            .push_run(record.metrics.iter().map(|m| m.cost_per_node).collect());
        if self.reference_homogeneity.len() < record.metrics.len() {
            self.reference_homogeneity = record
                .metrics
                .iter()
                .map(|m| m.reference_homogeneity)
                .collect();
        }
        match record.reshaping_time {
            Some(t) => self.reshaping_times.push(t as f64),
            None => self.unreshaped_runs += 1,
        }
        self.reliabilities.push(record.reliability);
    }

    /// Number of aggregated runs.
    pub fn runs(&self) -> usize {
        self.homogeneity.run_count()
    }

    /// Mean ± CI95 of the reshaping time (over runs that reshaped).
    pub fn reshaping_ci(&self) -> ConfidenceInterval {
        ci95(&self.reshaping_times)
    }

    /// Mean ± CI95 of the reliability, in percent (Table II convention).
    pub fn reliability_percent_ci(&self) -> ConfidenceInterval {
        let percents: Vec<f64> = self.reliabilities.iter().map(|r| r * 100.0).collect();
        ci95(&percents)
    }
}

/// Which protocol stack a comparison run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackKind {
    /// The full stack: Polystyrene over T-Man over RPS.
    Polystyrene,
    /// T-Man alone (the paper's baseline): equivalent to Polystyrene with
    /// migration, backup and recovery disabled.
    TManOnly,
}

/// Runs the paper scenario `runs` times with consecutive seeds and
/// aggregates. `configure` may tweak the engine config (replication,
/// split strategy, …) before each run.
pub fn run_paper_experiment(
    paper: &PaperScenario,
    base_config: EngineConfig,
    stack: StackKind,
    runs: usize,
    configure: impl Fn(&mut EngineConfig),
) -> ExperimentResult {
    let mut result = ExperimentResult::default();
    let (w, h) = paper.extents();
    for run in 0..runs {
        let mut config = base_config;
        config.area = paper.area();
        config.seed = base_config.seed + run as u64;
        configure(&mut config);
        let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), config);
        if stack == StackKind::TManOnly {
            engine.disable_polystyrene();
        }
        let metrics = run_scenario(&mut engine, &paper.script());
        let record = RunRecord::analyze(metrics, Some(paper.failure_round));
        result.push(&record);
    }
    result
}

/// One row of the Table II / Fig. 10 reshaping-time sweeps.
#[derive(Clone, Debug)]
pub struct ReshapingRow {
    /// Label of the row (e.g. "K=4" or a network size).
    pub label: String,
    /// Number of founding nodes.
    pub nodes: usize,
    /// Reshaping time mean ± CI95 (rounds).
    pub reshaping: ConfidenceInterval,
    /// Runs that never reshaped.
    pub unreshaped: usize,
    /// Reliability mean ± CI95 (percent).
    pub reliability: ConfidenceInterval,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> EngineConfig {
        let mut cfg = EngineConfig::default();
        cfg.tman.view_cap = 30;
        cfg.tman.m = 10;
        cfg
    }

    #[test]
    fn run_record_analysis() {
        use crate::metrics::RoundMetrics;
        let mk = |round: u32, h: f64, surv: f64| RoundMetrics {
            round,
            homogeneity: h,
            reference_homogeneity: 0.7,
            surviving_points: surv,
            ..Default::default()
        };
        let metrics = vec![mk(1, 0.1, 1.0), mk(2, 5.0, 0.9), mk(3, 0.5, 0.9)];
        // Failure at round 2: homogeneity recrosses the reference at round
        // 3, i.e. one round later; reliability read from round 3 (> 2).
        let rec = RunRecord::analyze(metrics.clone(), Some(2));
        assert_eq!(rec.reshaping_time, Some(1));
        assert_eq!(rec.reliability, 0.9);
        // No failure round: trivially "reshaped", full reliability.
        let rec_none = RunRecord::analyze(metrics, None);
        assert_eq!(rec_none.reshaping_time, None);
        assert_eq!(rec_none.reliability, 1.0);
    }

    #[test]
    fn experiment_aggregates_runs() {
        let paper = PaperScenario {
            cols: 12,
            rows: 6,
            step: 1.0,
            failure_round: 10,
            inject_round: None,
            total_rounds: 30,
        };
        let result =
            run_paper_experiment(&paper, quick_config(), StackKind::Polystyrene, 3, |_| {});
        assert_eq!(result.runs(), 3);
        assert_eq!(result.reliabilities.len(), 3);
        assert_eq!(result.reshaping_times.len() + result.unreshaped_runs, 3);
        // Homogeneity series spans the full scenario.
        assert_eq!(result.homogeneity.rounds(), 30);
        assert_eq!(result.reference_homogeneity.len(), 30);
        // Small torus, K=4 ⇒ reshaping expected.
        assert!(result.unreshaped_runs == 0, "tiny torus must reshape");
        let ci = result.reshaping_ci();
        assert!(ci.mean > 0.0 && ci.mean < 25.0);
        let rel = result.reliability_percent_ci();
        assert!(rel.mean > 80.0, "reliability {rel}");
    }

    #[test]
    fn tman_only_baseline_never_reshapes() {
        let paper = PaperScenario {
            cols: 12,
            rows: 6,
            step: 1.0,
            failure_round: 10,
            inject_round: None,
            total_rounds: 25,
        };
        let result = run_paper_experiment(&paper, quick_config(), StackKind::TManOnly, 2, |_| {});
        // The baseline heals links but the shape is lost for good.
        assert_eq!(result.reshaping_times.len(), 0);
        assert_eq!(result.unreshaped_runs, 2);
        // And with no replication, about half the points are simply gone.
        let rel = result.reliability_percent_ci();
        assert!(rel.mean < 60.0, "T-Man alone kept {rel}% of points");
    }
}
