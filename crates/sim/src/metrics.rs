//! The paper's five evaluation metrics (Sec. IV-A).
//!
//! * **proximity** — mean distance between a node and its `k` closest
//!   topology neighbors (lower is better; T-Man's own metric);
//! * **homogeneity** — mean distance between each *initial* data point and
//!   the nearest node hosting it as a guest (or the nearest node overall
//!   if the point was lost); lower is better;
//! * **reference homogeneity `H`** — the ideal-distribution bound
//!   `H = 1/2 · sqrt(A/|N|)` used to define the **reshaping time**;
//! * **data points per node** — memory overhead (guests + ghosts);
//! * **message cost** — see [`crate::cost`].

use serde::{Deserialize, Serialize};

/// All per-round observables the experiment harness records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// Simulation round the sample was taken at (after the round ran).
    pub round: u32,
    /// Number of alive nodes.
    pub alive_nodes: usize,
    /// Mean distance to the k closest topology neighbors.
    pub proximity: f64,
    /// Mean distance from each initial data point to its nearest holder.
    pub homogeneity: f64,
    /// Reference homogeneity `H` for the current population.
    pub reference_homogeneity: f64,
    /// Mean stored data points per node (guests + ghosts).
    pub points_per_node: f64,
    /// Message cost per node this round (paper units).
    pub cost_per_node: f64,
    /// T-Man's share of this round's traffic, in `[0, 1]`.
    pub tman_cost_share: f64,
    /// Fraction of the initial data points that still have at least one
    /// alive holder (guest or ghost copy) — Table II's "Reliability".
    pub surviving_points: f64,
}

pub use polystyrene_protocol::observe::reference_homogeneity;

/// Detects the reshaping time from a homogeneity series (Sec. IV-A): the
/// number of rounds after `failure_round` until homogeneity first drops
/// below the reference value, or `None` if it never does.
///
/// Only rounds *strictly after* the failure round are considered: the
/// sample labeled with the failure round was measured before the failure
/// was injected (events fire at the start of the following round), so its
/// healthy pre-failure homogeneity must not count as a recovery.
pub fn reshaping_time(series: &[RoundMetrics], failure_round: u32) -> Option<u32> {
    series
        .iter()
        .filter(|m| m.round > failure_round)
        .find(|m| m.homogeneity < m.reference_homogeneity)
        .map(|m| m.round - failure_round)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_match_paper() {
        assert!((reference_homogeneity(3200.0, 3200) - 0.5).abs() < 1e-12);
        let h1600 = reference_homogeneity(3200.0, 1600);
        assert!((h1600 - std::f64::consts::SQRT_2 / 2.0).abs() < 1e-12);
        assert_eq!(reference_homogeneity(3200.0, 0), f64::INFINITY);
    }

    fn m(round: u32, homogeneity: f64, h: f64) -> RoundMetrics {
        RoundMetrics {
            round,
            homogeneity,
            reference_homogeneity: h,
            ..Default::default()
        }
    }

    #[test]
    fn reshaping_time_first_crossing() {
        let series = vec![
            m(19, 0.1, 0.5), // pre-failure, ignored
            m(20, 0.1, 0.5), // measured just before the failure: ignored
            m(21, 2.0, 0.71),
            m(22, 0.6, 0.71), // first crossing, 2 rounds after failure
            m(23, 0.5, 0.71),
        ];
        assert_eq!(reshaping_time(&series, 20), Some(2));
    }

    #[test]
    fn reshaping_time_none_when_never_recovers() {
        let series = vec![m(20, 0.1, 0.5), m(21, 5.0, 0.71), m(22, 5.0, 0.71)];
        assert_eq!(reshaping_time(&series, 20), None);
    }

    #[test]
    fn reshaping_time_ignores_the_failure_round_sample() {
        // Round 20's sample predates the crash; even though it is below
        // the reference it must not count.
        let series = vec![m(20, 0.1, 0.71), m(21, 0.2, 0.71)];
        assert_eq!(reshaping_time(&series, 20), Some(1));
    }
}
