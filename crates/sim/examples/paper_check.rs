//! Quick sanity run of the paper's headline scenario at full scale.
//!
//! ```sh
//! cargo run --release -p polystyrene-sim --example paper_check
//! ```

use polystyrene_sim::prelude::*;
use polystyrene_space::torus::Torus2;
use std::time::Instant;

fn main() {
    let paper = PaperScenario {
        total_rounds: 45,
        inject_round: None,
        ..Default::default()
    };
    let (w, h) = paper.extents();
    let mut cfg = EngineConfig::default();
    cfg.area = paper.area();
    cfg.seed = 42;

    let t0 = Instant::now();
    let mut engine = Engine::new(Torus2::new(w, h), paper.shape(), cfg);
    println!("built {} nodes in {:?}", engine.alive_count(), t0.elapsed());

    // The paper's failure-only scenario, driven directly on the engine
    // (the full scenario × substrate matrix lives in `polystyrene-lab`).
    let t0 = Instant::now();
    engine.run(paper.failure_round);
    engine.fail_original_region(polystyrene_space::shapes::in_right_half(w));
    engine.run(paper.total_rounds - paper.failure_round);
    let metrics = engine.history().to_vec();
    println!("ran {} rounds in {:?}", metrics.len(), t0.elapsed());

    for m in &metrics {
        if m.round % 5 == 0 || (m.round >= 20 && m.round <= 32) {
            println!(
                "round {:>3}  alive {:>5}  homog {:>8.3} (H {:.3})  prox {:>7.3}  pts/node {:>6.2}  cost/node {:>7.1}",
                m.round, m.alive_nodes, m.homogeneity, m.reference_homogeneity,
                m.proximity, m.points_per_node, m.cost_per_node
            );
        }
    }
    let rt = reshaping_time(&metrics, paper.failure_round);
    println!("reshaping time: {rt:?} (paper: 6.96 ± 0.08 for K=4)");
    let rel = metrics
        .iter()
        .find(|m| m.round > paper.failure_round)
        .unwrap()
        .surviving_points;
    println!(
        "reliability: {:.2}% (paper: 96.88 ± 0.10 for K=4)",
        rel * 100.0
    );
}
