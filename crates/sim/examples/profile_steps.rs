//! Per-round wall-clock profile of the cycle engine at sweep scale:
//! builds a square-ish torus of `N` nodes (default 12 800), warms the
//! shape up, kills the right half, and prints each recovery round's
//! total time alongside the shape metrics. Useful for spotting
//! observation-path or phase-pipeline regressions without firing up
//! the full fig10a sweep.
//!
//! ```sh
//! cargo run --release -p polystyrene-sim --example profile_steps -- 12800
//! ```

use polystyrene_sim::prelude::*;
use polystyrene_space::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12800);
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let mut cfg = EngineConfig::default();
    cfg.area = (cols * rows) as f64;
    let space = Torus2::new(cols as f64, rows as f64);
    let shape = shapes::torus_grid(cols, rows, 1.0);
    let build = Instant::now();
    let mut engine = Engine::new(space, shape, cfg);
    eprintln!(
        "built {} nodes in {:?}",
        engine.alive_count(),
        build.elapsed()
    );
    let warm = Instant::now();
    engine.run(12);
    eprintln!(
        "warmup 12 rounds in {:?} ({:?}/round)",
        warm.elapsed(),
        warm.elapsed() / 12
    );
    engine.fail_original_region(shapes::in_right_half(cols as f64));
    eprintln!("-- failed half, alive {}", engine.alive_count());
    for _ in 0..8 {
        let t = Instant::now();
        let m = engine.step();
        eprintln!(
            "round {} total {:?} (proximity {:.3}, cost/node {:.1})",
            m.round,
            t.elapsed(),
            m.proximity,
            m.cost_per_node
        );
    }
}
