//! Engine scaling probe: wall time of warm and post-catastrophe rounds
//! at growing network sizes — the quick check that the grid-index
//! measurement path keeps per-round cost linear in `n`.
//!
//! ```sh
//! cargo run --release -p polystyrene-sim --example scale_probe
//! ```

use polystyrene_sim::prelude::*;
use polystyrene_space::shapes;
use polystyrene_space::torus::Torus2;
use std::time::Instant;

fn main() {
    for &(c, r) in &[(40usize, 40usize), (80, 40), (80, 80), (160, 80)] {
        let n = c * r;
        let mut cfg = EngineConfig::default();
        cfg.area = n as f64;
        let mut e = Engine::new(
            Torus2::new(c as f64, r as f64),
            shapes::torus_grid(c, r, 1.0),
            cfg,
        );
        let t0 = Instant::now();
        e.run(3);
        let warm = t0.elapsed();
        // After a catastrophic failure the homogeneity metric must find
        // the nearest alive node for every orphaned point — the exact
        // path the grid index accelerates.
        e.fail_original_region(shapes::in_right_half(c as f64));
        let t1 = Instant::now();
        e.run(3);
        let post = t1.elapsed();
        println!("n={n:6}  3 warm rounds {warm:?}   3 post-failure rounds {post:?}");
    }
}
