//! Property coverage for the engine's [`NodePool`]: arbitrary
//! interleavings of joins, kills and position migrations, checked
//! against a boxed-layout oracle — the id-indexed `Vec<Option<…>>` the
//! engine stored its population in before the slab refactor.
//!
//! The two invariants the free list must never lose:
//!
//! * **No resurrection.** A recycled slot must be unreachable through any
//!   dead id: generation ids are bumped on every free, so the stale
//!   `SlotRef` a dead id held can never alias the slot's new occupant —
//!   neither the node nor its entry in the position slab.
//! * **Boxed arithmetic.** Ids, populations, and the sorted alive list
//!   must match the boxed layout exactly — that equivalence is what lets
//!   the slab swap under the engine without re-pinning a single golden
//!   history fingerprint.

use polystyrene::prelude::{DataPoint, PointId, PolyState};
use polystyrene_membership::NodeId;
use polystyrene_protocol::{ProtocolConfig, ProtocolNode};
use polystyrene_sim::pool::NodePool;
use polystyrene_space::prelude::Torus2;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

/// One step of the churn script. Selector values are reduced modulo the
/// current population (or id space) when the op applies.
#[derive(Clone, Debug)]
enum Op {
    /// Spawn a node at `[x, 0]`.
    Join { x: f64 },
    /// Kill the `sel`-th alive node (no-op on an empty pool).
    Kill { sel: usize },
    /// Kill an id that is already dead or never issued — must be a no-op.
    KillDead { sel: usize },
    /// Move the `sel`-th alive node to `[x, 0]` and publish the slab.
    Migrate { sel: usize, x: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0usize..1024, 0.0..64.0f64).prop_map(|(tag, sel, x)| match tag {
        0..=2 => Op::Join { x },
        3 | 4 => Op::Kill { sel },
        5 => Op::KillDead { sel },
        _ => Op::Migrate { sel, x },
    })
}

fn spawn(pool: &mut NodePool<Torus2>, x: f64) -> NodeId {
    pool.insert_with(|id| {
        ProtocolNode::new(
            id,
            Torus2::new(64.0, 64.0),
            ProtocolConfig::default(),
            PolyState::with_initial_point(DataPoint::new(PointId::new(id.as_u64()), [x, 0.0])),
            Vec::new(),
            Vec::new(),
        )
    })
}

proptest! {
    #[test]
    fn churn_scripts_preserve_the_boxed_layout_arithmetic(
        ops in vec(op_strategy(), 1..120)
    ) {
        let mut pool: NodePool<Torus2> = NodePool::new();
        // The boxed oracle: id-indexed, holes forever, position as
        // payload. `None` = dead (or, below the length, never alive).
        let mut boxed: Vec<Option<f64>> = Vec::new();
        // Last generation seen per slot, to check monotonicity across
        // every recycle.
        let mut last_gen: HashMap<u32, u32> = HashMap::new();
        let mut peak_alive = 0usize;

        for op in ops {
            match op {
                Op::Join { x } => {
                    let expected = NodeId::new(boxed.len() as u64);
                    prop_assert_eq!(pool.peek_next_id(), expected);
                    let id = spawn(&mut pool, x);
                    prop_assert_eq!(id, expected, "ids issue monotonically, never recycled");
                    boxed.push(Some(x));
                    let handle = pool.slot_ref(id).expect("fresh node has a live handle");
                    match last_gen.get(&handle.slot) {
                        // A recycled slot must come back under a strictly
                        // newer generation than any earlier occupancy.
                        Some(&g) => prop_assert!(handle.gen > g, "gen {} !> {}", handle.gen, g),
                        None => prop_assert_eq!(handle.gen, 0, "fresh slots start at gen 0"),
                    }
                    last_gen.insert(handle.slot, handle.gen);
                    prop_assert_eq!(pool.position(id), Some(&[x, 0.0]));
                }
                Op::Kill { sel } => {
                    if pool.alive_count() == 0 {
                        continue;
                    }
                    let id = pool.alive_ids()[sel % pool.alive_count()];
                    prop_assert!(pool.remove(id).is_some());
                    boxed[id.index()] = None;
                    prop_assert!(pool.get(id).is_none());
                    prop_assert!(pool.position(id).is_none());
                    prop_assert!(pool.slot_ref(id).is_none(), "stale handle must die");
                }
                Op::KillDead { sel } => {
                    let id = NodeId::new(sel as u64);
                    if boxed.get(id.index()).copied().flatten().is_none() {
                        prop_assert!(pool.remove(id).is_none(), "dead kill is a no-op");
                    }
                }
                Op::Migrate { sel, x } => {
                    if pool.alive_count() == 0 {
                        continue;
                    }
                    let id = pool.alive_ids()[sel % pool.alive_count()];
                    pool.get_mut(id).unwrap().poly.pos = [x, 0.0];
                    pool.sync_positions();
                    boxed[id.index()] = Some(x);
                }
            }

            // Population arithmetic against the boxed oracle, every step.
            let oracle_alive: Vec<NodeId> = boxed
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.map(|_| NodeId::new(i as u64)))
                .collect();
            prop_assert_eq!(pool.alive_count(), oracle_alive.len());
            prop_assert_eq!(pool.alive_ids(), oracle_alive.as_slice(), "sorted alive list");
            peak_alive = peak_alive.max(oracle_alive.len());
            prop_assert!(
                pool.slot_count() <= peak_alive,
                "storage bounded by peak population ({} slots > {} peak)",
                pool.slot_count(),
                peak_alive
            );

            // No aliasing through any id ever issued: alive ids read
            // their own node and slab cell, dead ids read nothing.
            for (i, cell) in boxed.iter().enumerate() {
                let id = NodeId::new(i as u64);
                match cell {
                    Some(x) => {
                        prop_assert_eq!(pool.get(id).expect("oracle-alive").id(), id);
                        prop_assert_eq!(pool.position(id), Some(&[*x, 0.0]));
                    }
                    None => {
                        prop_assert!(pool.get(id).is_none(), "dead id {} resurrected", i);
                        prop_assert!(pool.position(id).is_none());
                    }
                }
            }
        }
    }
}
