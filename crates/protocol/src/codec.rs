//! Binary codec for the sans-IO surface: [`Wire`], [`Event`] and
//! [`Effect`] to and from bytes.
//!
//! Today's two transports (the cycle engine's synchronous dispatch and
//! the runtime's in-process channels) move these enums by value and never
//! serialize; a real socket transport will. This module pins the encoding
//! *now* — little-endian fixed-width scalars, one leading format-version
//! byte, a one-byte tag per enum variant, `u64`-length-prefixed
//! sequences — so the property suite can guard round-trip fidelity before
//! any network code exists, and a future transport cannot quietly invent
//! its own incompatible framing.
//!
//! Positions are encoded through [`PointCodec`], implemented for the
//! workspace's concrete point types (`f64` rings, `[f64; 2]` surfaces).
//!
//! ```
//! use polystyrene_protocol::codec::{decode_wire, encode_wire};
//! use polystyrene_protocol::wire::Wire;
//!
//! let wire: Wire<[f64; 2]> = Wire::Heartbeat;
//! let bytes = encode_wire(&wire);
//! assert_eq!(decode_wire::<[f64; 2]>(&bytes).unwrap(), wire);
//! ```

use crate::wire::{Channel, Effect, Event, QueryItem, QueryReplyItem, Wire};
use polystyrene::prelude::{DataPoint, PointId};
use polystyrene_membership::{Descriptor, NodeId};

/// Format version written as the first byte of every encoded value.
pub const FORMAT_VERSION: u8 = 1;

/// Version byte of the *frame* layer a stream transport wraps encoded
/// values in — pinned here, next to [`FORMAT_VERSION`], so the two wire
/// versions evolve in one place.
///
/// # Frame format
///
/// A byte stream carrying codec values (the TCP transport in
/// `polystyrene-transport`) frames each one as:
///
/// ```text
/// ┌──────────────┬───────────────┬─────────────────────────────┐
/// │ len: u32 LE  │ FRAME_VERSION │ payload (len − 1 bytes)     │
/// └──────────────┴───────────────┴─────────────────────────────┘
/// ```
///
/// * `len` counts everything after the length prefix (the version byte
///   plus the payload), so `len ≥ 1` always;
/// * `len` must not exceed [`MAX_FRAME_BYTES`] — a reader rejects the
///   frame *before* allocating, so a corrupt or adversarial prefix can
///   never drive a giant allocation;
/// * the payload is one encoded value of this module (its own leading
///   byte is [`FORMAT_VERSION`] — the frame version guards the framing
///   rules, the format version guards the value encoding).
pub const FRAME_VERSION: u8 = 1;

/// Upper bound on the declared length of one frame (version byte +
/// payload). Generous for the protocol's largest messages — a migration
/// request ships a whole guest set, tens of kilobytes at paper scales —
/// while keeping the worst-case allocation a corrupt prefix can cause
/// far below memory-exhaustion territory.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Why a byte string failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended in the middle of a value.
    UnexpectedEof,
    /// The leading version byte is not [`FORMAT_VERSION`].
    BadVersion(u8),
    /// An enum tag byte had no matching variant.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A declared sequence length exceeds the remaining input (corrupt or
    /// adversarial length prefix — rejected before allocating).
    BadLength(u64),
    /// Input bytes remained after the value was fully decoded.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "input truncated mid-value"),
            CodecError::BadVersion(v) => {
                write!(f, "format version {v} (expected {FORMAT_VERSION})")
            }
            CodecError::BadTag { what, tag } => write!(f, "no {what} variant has tag {tag}"),
            CodecError::BadLength(n) => write!(f, "length prefix {n} exceeds the input"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Cursor over an encoded byte string.
pub struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.at).ok_or(CodecError::UnexpectedEof)?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let end = self.at + 4;
        if end > self.bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let v = u32::from_le_bytes(self.bytes[self.at..end].try_into().expect("4 bytes"));
        self.at = end;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let end = self.at + 8;
        if end > self.bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let v = u64::from_le_bytes(self.bytes[self.at..end].try_into().expect("8 bytes"));
        self.at = end;
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` length prefix, sanity-checked against the bytes actually
    /// left (`min_element_size` ≥ 1): a corrupt prefix must fail cleanly
    /// instead of driving a giant allocation.
    fn len(&mut self, min_element_size: usize) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let fits = usize::try_from(n)
            .ok()
            .is_some_and(|n| n.saturating_mul(min_element_size) <= self.remaining());
        if !fits {
            return Err(CodecError::BadLength(n));
        }
        Ok(n as usize)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A position type with a stable byte encoding.
pub trait PointCodec: Sized {
    /// Smallest possible encoded size in bytes (used to sanity-check
    /// sequence length prefixes before allocating).
    const MIN_ENCODED_SIZE: usize;

    /// Appends the encoded position to `out`.
    fn encode_point(&self, out: &mut Vec<u8>);

    /// Decodes one position from the reader.
    fn decode_point(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

impl PointCodec for f64 {
    const MIN_ENCODED_SIZE: usize = 8;

    fn encode_point(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }

    fn decode_point(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.f64()
    }
}

impl<const N: usize> PointCodec for [f64; N] {
    const MIN_ENCODED_SIZE: usize = 8 * N;

    fn encode_point(&self, out: &mut Vec<u8>) {
        for c in self {
            put_f64(out, *c);
        }
    }

    fn decode_point(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut coords = [0.0; N];
        for c in &mut coords {
            *c = r.f64()?;
        }
        Ok(coords)
    }
}

fn put_descriptor<P: PointCodec>(out: &mut Vec<u8>, d: &Descriptor<P>) {
    put_u64(out, d.id.as_u64());
    d.pos.encode_point(out);
    put_u32(out, d.age);
}

fn get_descriptor<P: PointCodec>(r: &mut Reader<'_>) -> Result<Descriptor<P>, CodecError> {
    let id = NodeId::new(r.u64()?);
    let pos = P::decode_point(r)?;
    let age = r.u32()?;
    Ok(Descriptor::with_age(id, pos, age))
}

fn put_descriptors<P: PointCodec>(out: &mut Vec<u8>, ds: &[Descriptor<P>]) {
    put_u64(out, ds.len() as u64);
    for d in ds {
        put_descriptor(out, d);
    }
}

fn get_descriptors<P: PointCodec>(r: &mut Reader<'_>) -> Result<Vec<Descriptor<P>>, CodecError> {
    let n = r.len(8 + P::MIN_ENCODED_SIZE + 4)?;
    (0..n).map(|_| get_descriptor(r)).collect()
}

fn put_points<P: PointCodec>(out: &mut Vec<u8>, points: &[DataPoint<P>]) {
    put_u64(out, points.len() as u64);
    for p in points {
        put_u64(out, p.id.as_u64());
        p.pos.encode_point(out);
    }
}

fn get_points<P: PointCodec>(r: &mut Reader<'_>) -> Result<Vec<DataPoint<P>>, CodecError> {
    let n = r.len(8 + P::MIN_ENCODED_SIZE)?;
    (0..n)
        .map(|_| {
            let id = PointId::new(r.u64()?);
            let pos = P::decode_point(r)?;
            Ok(DataPoint::new(id, pos))
        })
        .collect()
}

fn channel_tag(channel: Channel) -> u8 {
    match channel {
        Channel::PeerSampling => 0,
        Channel::Topology => 1,
        Channel::Migration => 2,
        Channel::Backup => 3,
        Channel::Heartbeat => 4,
        Channel::Query => 5,
    }
}

fn channel_from_tag(tag: u8) -> Result<Channel, CodecError> {
    Ok(match tag {
        0 => Channel::PeerSampling,
        1 => Channel::Topology,
        2 => Channel::Migration,
        3 => Channel::Backup,
        4 => Channel::Heartbeat,
        5 => Channel::Query,
        tag => {
            return Err(CodecError::BadTag {
                what: "Channel",
                tag,
            })
        }
    })
}

fn put_wire<P: PointCodec>(out: &mut Vec<u8>, wire: &Wire<P>) {
    match wire {
        Wire::RpsRequest { descriptors } => {
            out.push(0);
            put_descriptors(out, descriptors);
        }
        Wire::RpsReply { sent, descriptors } => {
            out.push(1);
            put_descriptors(out, sent);
            put_descriptors(out, descriptors);
        }
        Wire::TManRequest {
            from_pos,
            descriptors,
        } => {
            out.push(2);
            from_pos.encode_point(out);
            put_descriptors(out, descriptors);
        }
        Wire::TManReply { descriptors } => {
            out.push(3);
            put_descriptors(out, descriptors);
        }
        Wire::MigrationRequest {
            xid,
            from_pos,
            guests,
        } => {
            out.push(4);
            put_u64(out, *xid);
            from_pos.encode_point(out);
            put_points(out, guests);
        }
        Wire::MigrationReply {
            xid,
            points,
            busy,
            pulled,
            pushed,
        } => {
            out.push(5);
            put_u64(out, *xid);
            put_points(out, points);
            out.push(u8::from(*busy));
            put_u64(out, *pulled as u64);
            put_u64(out, *pushed as u64);
        }
        Wire::MigrationAck { xid } => {
            out.push(6);
            put_u64(out, *xid);
        }
        Wire::BackupPush {
            points,
            added_points,
            removed_ids,
        } => {
            out.push(7);
            put_points(out, points);
            put_u64(out, *added_points as u64);
            put_u64(out, *removed_ids as u64);
        }
        Wire::Heartbeat => out.push(8),
        Wire::Query {
            qid,
            origin,
            key,
            ttl,
            hops,
        } => {
            out.push(9);
            put_u64(out, *qid);
            put_u64(out, origin.as_u64());
            key.encode_point(out);
            put_u32(out, *ttl);
            put_u32(out, *hops);
        }
        Wire::QueryReply { qid, hops, pos } => {
            out.push(10);
            put_u64(out, *qid);
            put_u32(out, *hops);
            pos.encode_point(out);
        }
        Wire::QueryBatch { queries } => {
            out.push(11);
            put_u64(out, queries.len() as u64);
            for q in queries {
                put_u64(out, q.qid);
                put_u64(out, q.origin.as_u64());
                q.key.encode_point(out);
                put_u32(out, q.ttl);
                put_u32(out, q.hops);
            }
        }
        Wire::QueryReplyBatch { replies } => {
            out.push(12);
            put_u64(out, replies.len() as u64);
            for reply in replies {
                put_u64(out, reply.qid);
                put_u32(out, reply.hops);
                reply.pos.encode_point(out);
            }
        }
    }
}

fn get_wire<P: PointCodec>(r: &mut Reader<'_>) -> Result<Wire<P>, CodecError> {
    Ok(match r.u8()? {
        0 => Wire::RpsRequest {
            descriptors: get_descriptors(r)?,
        },
        1 => Wire::RpsReply {
            sent: get_descriptors(r)?,
            descriptors: get_descriptors(r)?,
        },
        2 => Wire::TManRequest {
            from_pos: P::decode_point(r)?,
            descriptors: get_descriptors(r)?,
        },
        3 => Wire::TManReply {
            descriptors: get_descriptors(r)?,
        },
        4 => Wire::MigrationRequest {
            xid: r.u64()?,
            from_pos: P::decode_point(r)?,
            guests: get_points(r)?,
        },
        5 => Wire::MigrationReply {
            xid: r.u64()?,
            points: get_points(r)?,
            busy: r.u8()? != 0,
            pulled: r.u64()? as usize,
            pushed: r.u64()? as usize,
        },
        6 => Wire::MigrationAck { xid: r.u64()? },
        7 => Wire::BackupPush {
            points: get_points(r)?,
            added_points: r.u64()? as usize,
            removed_ids: r.u64()? as usize,
        },
        8 => Wire::Heartbeat,
        9 => Wire::Query {
            qid: r.u64()?,
            origin: NodeId::new(r.u64()?),
            key: P::decode_point(r)?,
            ttl: r.u32()?,
            hops: r.u32()?,
        },
        10 => Wire::QueryReply {
            qid: r.u64()?,
            hops: r.u32()?,
            pos: P::decode_point(r)?,
        },
        11 => Wire::QueryBatch {
            queries: {
                let n = r.len(8 + 8 + P::MIN_ENCODED_SIZE + 4 + 4)?;
                (0..n)
                    .map(|_| {
                        Ok(QueryItem {
                            qid: r.u64()?,
                            origin: NodeId::new(r.u64()?),
                            key: P::decode_point(r)?,
                            ttl: r.u32()?,
                            hops: r.u32()?,
                        })
                    })
                    .collect::<Result<_, CodecError>>()?
            },
        },
        12 => Wire::QueryReplyBatch {
            replies: {
                let n = r.len(8 + 4 + P::MIN_ENCODED_SIZE)?;
                (0..n)
                    .map(|_| {
                        Ok(QueryReplyItem {
                            qid: r.u64()?,
                            hops: r.u32()?,
                            pos: P::decode_point(r)?,
                        })
                    })
                    .collect::<Result<_, CodecError>>()?
            },
        },
        tag => return Err(CodecError::BadTag { what: "Wire", tag }),
    })
}

/// Resets `out` to a fresh value start (version byte only), keeping its
/// capacity — the reuse point of every `encode_*_into` entry.
fn start_into(out: &mut Vec<u8>) {
    out.clear();
    out.push(FORMAT_VERSION);
}

fn open(bytes: &[u8]) -> Result<Reader<'_>, CodecError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    Ok(r)
}

fn finish<T>(r: Reader<'_>, value: T) -> Result<T, CodecError> {
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(value)
}

/// Encodes one wire message.
pub fn encode_wire<P: PointCodec>(wire: &Wire<P>) -> Vec<u8> {
    let mut out = Vec::new();
    encode_wire_into(&mut out, wire);
    out
}

/// Encodes one wire message into `out`, replacing its contents but
/// keeping its capacity — the allocation-free path for send loops that
/// serialize many values through one buffer.
pub fn encode_wire_into<P: PointCodec>(out: &mut Vec<u8>, wire: &Wire<P>) {
    start_into(out);
    put_wire(out, wire);
}

/// Decodes one wire message, rejecting trailing bytes.
pub fn decode_wire<P: PointCodec>(bytes: &[u8]) -> Result<Wire<P>, CodecError> {
    let mut r = open(bytes)?;
    let wire = get_wire(&mut r)?;
    finish(r, wire)
}

/// Encodes one driver event.
pub fn encode_event<P: PointCodec>(event: &Event<P>) -> Vec<u8> {
    let mut out = Vec::new();
    encode_event_into(&mut out, event);
    out
}

/// Encodes one driver event into `out`, replacing its contents but
/// keeping its capacity (see [`encode_wire_into`]).
pub fn encode_event_into<P: PointCodec>(out: &mut Vec<u8>, event: &Event<P>) {
    start_into(out);
    match event {
        Event::Message { from, wire } => {
            out.push(0);
            put_u64(out, from.as_u64());
            put_wire(out, wire);
        }
        Event::ProbeOk { peer, channel, pos } => {
            out.push(1);
            put_u64(out, peer.as_u64());
            out.push(channel_tag(*channel));
            match pos {
                Some(p) => {
                    out.push(1);
                    p.encode_point(out);
                }
                None => out.push(0),
            }
        }
        Event::PeerUnreachable { peer, channel } => {
            out.push(2);
            put_u64(out, peer.as_u64());
            out.push(channel_tag(*channel));
        }
    }
}

/// Decodes one driver event, rejecting trailing bytes.
pub fn decode_event<P: PointCodec>(bytes: &[u8]) -> Result<Event<P>, CodecError> {
    let mut r = open(bytes)?;
    let event = match r.u8()? {
        0 => Event::Message {
            from: NodeId::new(r.u64()?),
            wire: get_wire(&mut r)?,
        },
        1 => Event::ProbeOk {
            peer: NodeId::new(r.u64()?),
            channel: channel_from_tag(r.u8()?)?,
            pos: match r.u8()? {
                0 => None,
                1 => Some(P::decode_point(&mut r)?),
                tag => {
                    return Err(CodecError::BadTag {
                        what: "Option",
                        tag,
                    })
                }
            },
        },
        2 => Event::PeerUnreachable {
            peer: NodeId::new(r.u64()?),
            channel: channel_from_tag(r.u8()?)?,
        },
        tag => return Err(CodecError::BadTag { what: "Event", tag }),
    };
    finish(r, event)
}

/// Encodes one node effect.
pub fn encode_effect<P: PointCodec>(effect: &Effect<P>) -> Vec<u8> {
    let mut out = Vec::new();
    encode_effect_into(&mut out, effect);
    out
}

/// Encodes one node effect into `out`, replacing its contents but
/// keeping its capacity (see [`encode_wire_into`]).
pub fn encode_effect_into<P: PointCodec>(out: &mut Vec<u8>, effect: &Effect<P>) {
    start_into(out);
    match effect {
        Effect::Probe { peer, channel } => {
            out.push(0);
            put_u64(out, peer.as_u64());
            out.push(channel_tag(*channel));
        }
        Effect::Send { to, wire } => {
            out.push(1);
            put_u64(out, to.as_u64());
            put_wire(out, wire);
        }
    }
}

/// Decodes one node effect, rejecting trailing bytes.
pub fn decode_effect<P: PointCodec>(bytes: &[u8]) -> Result<Effect<P>, CodecError> {
    let mut r = open(bytes)?;
    let effect = match r.u8()? {
        0 => Effect::Probe {
            peer: NodeId::new(r.u64()?),
            channel: channel_from_tag(r.u8()?)?,
        },
        1 => Effect::Send {
            to: NodeId::new(r.u64()?),
            wire: get_wire(&mut r)?,
        },
        tag => {
            return Err(CodecError::BadTag {
                what: "Effect",
                tag,
            })
        }
    };
    finish(r, effect)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_input_fails_cleanly() {
        let wire: Wire<[f64; 2]> = Wire::RpsRequest {
            descriptors: vec![Descriptor::new(NodeId::new(3), [1.0, 2.0])],
        };
        let bytes = encode_wire(&wire);
        for cut in 0..bytes.len() {
            assert!(
                decode_wire::<[f64; 2]>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_wire::<f64>(&Wire::Heartbeat);
        bytes.push(0);
        assert_eq!(
            decode_wire::<f64>(&bytes),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_wire::<f64>(&Wire::Heartbeat);
        bytes[0] = 99;
        assert_eq!(decode_wire::<f64>(&bytes), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn corrupt_length_prefix_rejected_without_allocating() {
        let mut out = vec![FORMAT_VERSION, 0]; // RpsRequest
        out.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd length
        assert_eq!(
            decode_wire::<f64>(&out),
            Err(CodecError::BadLength(u64::MAX))
        );
    }

    #[test]
    fn into_variants_reuse_a_dirty_buffer() {
        // One buffer round-trips wire, event and effect back to back:
        // each encode must fully replace the previous (longer) contents,
        // not append to them, and must match the allocating encoder.
        let wire: Wire<[f64; 2]> = Wire::RpsReply {
            sent: vec![Descriptor::new(NodeId::new(1), [0.5, 1.5])],
            descriptors: vec![Descriptor::new(NodeId::new(2), [2.5, 3.5])],
        };
        let event: Event<[f64; 2]> = Event::ProbeOk {
            peer: NodeId::new(9),
            channel: Channel::Migration,
            pos: Some([4.0, 5.0]),
        };
        let effect: Effect<[f64; 2]> = Effect::Send {
            to: NodeId::new(4),
            wire: Wire::Heartbeat,
        };

        let mut buf = vec![0xAA; 256]; // deliberately dirty and oversized
        encode_wire_into(&mut buf, &wire);
        assert_eq!(buf, encode_wire(&wire));
        assert_eq!(decode_wire::<[f64; 2]>(&buf).unwrap(), wire);

        let cap = buf.capacity();
        encode_event_into(&mut buf, &event);
        assert_eq!(buf, encode_event(&event));
        assert_eq!(decode_event::<[f64; 2]>(&buf).unwrap(), event);

        encode_effect_into(&mut buf, &effect);
        assert_eq!(buf, encode_effect(&effect));
        assert_eq!(decode_effect::<[f64; 2]>(&buf).unwrap(), effect);
        assert_eq!(buf.capacity(), cap, "reuse must keep the allocation");
    }

    #[test]
    fn query_variants_roundtrip_through_a_dirty_buffer() {
        let query: Wire<[f64; 2]> = Wire::Query {
            qid: 0xFEED_BEEF,
            origin: NodeId::new(17),
            key: [3.25, 7.5],
            ttl: 64,
            hops: 5,
        };
        let reply: Wire<[f64; 2]> = Wire::QueryReply {
            qid: 0xFEED_BEEF,
            hops: 9,
            pos: [1.0, 2.0],
        };
        let mut buf = vec![0x55; 300]; // dirty and oversized
        for wire in [&query, &reply] {
            encode_wire_into(&mut buf, wire);
            assert_eq!(buf, encode_wire(wire));
            assert_eq!(&decode_wire::<[f64; 2]>(&buf).unwrap(), wire);
            for cut in 0..buf.len() {
                assert!(decode_wire::<[f64; 2]>(&buf[..cut]).is_err());
            }
        }
    }

    #[test]
    fn batch_variants_roundtrip_through_a_dirty_buffer() {
        let batch: Wire<[f64; 2]> = Wire::QueryBatch {
            queries: vec![
                QueryItem {
                    qid: 0xDEAD_BEEF,
                    origin: NodeId::new(17),
                    key: [3.25, 7.5],
                    ttl: 64,
                    hops: 5,
                },
                QueryItem {
                    qid: 0xDEAD_BEF0,
                    origin: NodeId::new(18),
                    key: [0.0, 1.0],
                    ttl: 64,
                    hops: 0,
                },
            ],
        };
        let replies: Wire<[f64; 2]> = Wire::QueryReplyBatch {
            replies: vec![
                QueryReplyItem {
                    qid: 0xDEAD_BEEF,
                    hops: 9,
                    pos: [1.0, 2.0],
                },
                QueryReplyItem {
                    qid: 0xDEAD_BEF0,
                    hops: 1,
                    pos: [5.0, 6.0],
                },
            ],
        };
        let mut buf = vec![0x55; 300]; // dirty and oversized
        for wire in [&batch, &replies] {
            encode_wire_into(&mut buf, wire);
            assert_eq!(buf, encode_wire(wire));
            assert_eq!(&decode_wire::<[f64; 2]>(&buf).unwrap(), wire);
            for cut in 0..buf.len() {
                assert!(decode_wire::<[f64; 2]>(&buf[..cut]).is_err());
            }
        }
        // Empty batches are legal on the wire (senders elide them, but a
        // decoder must not conflate "empty" with "corrupt").
        let empty: Wire<[f64; 2]> = Wire::QueryBatch { queries: vec![] };
        assert_eq!(
            decode_wire::<[f64; 2]>(&encode_wire(&empty)).unwrap(),
            empty
        );
    }

    #[test]
    fn corrupt_batch_length_prefix_rejected_without_allocating() {
        for tag in [11u8, 12u8] {
            let mut out = vec![FORMAT_VERSION, tag];
            out.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd length
            assert_eq!(
                decode_wire::<[f64; 2]>(&out),
                Err(CodecError::BadLength(u64::MAX))
            );
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        let bytes = vec![FORMAT_VERSION, 200];
        assert!(matches!(
            decode_wire::<f64>(&bytes),
            Err(CodecError::BadTag { what: "Wire", .. })
        ));
        assert!(matches!(
            decode_event::<f64>(&bytes),
            Err(CodecError::BadTag { what: "Event", .. })
        ));
        assert!(matches!(
            decode_effect::<f64>(&bytes),
            Err(CodecError::BadTag { what: "Effect", .. })
        ));
    }
}
