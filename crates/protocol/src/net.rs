//! The network model: what happens to a message between two nodes.
//!
//! The sans-IO [`crate::node::ProtocolNode`] never sees a network; its
//! *drivers* do, and each one answers the question "what does the fabric
//! do to this message?" differently — the cycle engine delivers
//! everything atomically, the discrete-event simulator delays, drops and
//! partitions, the threaded runtime can inject loss into its in-process
//! channels. [`NetworkModel`] is the shared answer: a driver hands every
//! outgoing message to the model and obeys the returned [`Fate`].
//!
//! [`FaultyNetwork`] is the standard implementation — per-link latency
//! with uniform jitter, independent drop probability, and a partition
//! mask — deterministic under a fixed seed, so the discrete-event
//! simulator stays replayable. The degenerate profile
//! ([`LinkProfile::ideal`]) delivers everything instantly and losslessly,
//! which is how the simulator reproduces the cycle engine's behavior.

use crate::wire::Channel;
use polystyrene_membership::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// What the network decides to do with one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Deliver after `delay` simulated time units (zero = this instant).
    Deliver {
        /// Transit time in the driver's time units.
        delay: u64,
    },
    /// The message is lost in transit. The *sender cannot tell*: a driver
    /// must not surface a drop as a delivery failure (loss is silent;
    /// only a crashed destination is observable, crash-stop style).
    Drop,
}

/// A driver-pluggable model of the network fabric.
///
/// Implementations may be stateful (entropy for loss draws, partition
/// masks) and are driven from a single thread per driver — the threaded
/// runtime serializes access behind a lock.
pub trait NetworkModel: Send {
    /// Decides the fate of a message from `from` to `to` on `channel`,
    /// sent at time `now` (drivers without a simulated clock pass 0).
    fn route(&mut self, from: NodeId, to: NodeId, channel: Channel, now: u64) -> Fate;

    /// Whether the pair is currently separated by a partition. Unlike the
    /// probabilistic loss of [`NetworkModel::route`], this is a stable,
    /// draw-free query ([`FaultyNetwork::route`] checks it before
    /// spending entropy on a loss draw). The standard drivers do *not*
    /// consult it for reachability probes — a partition is invisible to
    /// a failure detector (nothing crashed), only to traffic — but a
    /// custom driver modeling probe RPCs as real round-trips may.
    fn blocked(&self, _from: NodeId, _to: NodeId) -> bool {
        false
    }

    /// Installs a partition: nodes listed in different groups cannot
    /// exchange messages. Nodes absent from every group form one implicit
    /// extra group ("the rest of the network"), so a script can name just
    /// the minority side. Replaces any previous partition.
    fn set_partition(&mut self, _groups: &[Vec<NodeId>]) {}

    /// Removes the partition, if any.
    fn heal(&mut self) {}
}

/// Per-link delivery profile: fixed base latency, uniform extra jitter,
/// and an independent drop probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkProfile {
    /// Base transit time, in the driver's time units.
    pub latency: u64,
    /// Uniform extra transit time in `[0, jitter]` (inclusive).
    pub jitter: u64,
    /// Probability in `[0, 1]` that a message is lost in transit.
    pub loss: f64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        Self::ideal()
    }
}

impl LinkProfile {
    /// The degenerate profile: instant, lossless delivery. A driver built
    /// on this behaves like a reliable synchronous fabric.
    pub fn ideal() -> Self {
        Self {
            latency: 0,
            jitter: 0,
            loss: 0.0,
        }
    }

    /// Whether this profile can ever perturb a message.
    pub fn is_ideal(&self) -> bool {
        self.latency == 0 && self.jitter == 0 && self.loss == 0.0
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.loss),
            "link loss probability must be in [0, 1], got {}",
            self.loss
        );
    }
}

/// Group index of a node under a partition mask: listed nodes use their
/// group, everyone else shares the implicit "rest of the network" group.
const REST_OF_NETWORK: usize = usize::MAX;

/// The standard [`NetworkModel`]: one [`LinkProfile`] for every link plus
/// an optional partition mask, with a private seeded RNG so identical
/// seeds replay identical loss and jitter streams.
pub struct FaultyNetwork {
    profile: LinkProfile,
    rng: StdRng,
    /// Partition mask: node → group index. `None` = fully connected.
    partition: Option<BTreeMap<NodeId, usize>>,
    delivered: u64,
    dropped: u64,
}

impl FaultyNetwork {
    /// Builds a network with the given profile; `seed` fixes the loss and
    /// jitter streams.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`LinkProfile::validate`].
    pub fn new(profile: LinkProfile, seed: u64) -> Self {
        profile.validate();
        Self {
            profile,
            rng: StdRng::seed_from_u64(seed),
            partition: None,
            delivered: 0,
            dropped: 0,
        }
    }

    /// The link profile in force.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Messages routed to delivery so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped so far (loss draws and partition blocks).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn group_of(&self, id: NodeId) -> usize {
        match &self.partition {
            Some(groups) => groups.get(&id).copied().unwrap_or(REST_OF_NETWORK),
            None => REST_OF_NETWORK,
        }
    }
}

impl NetworkModel for FaultyNetwork {
    fn route(&mut self, from: NodeId, to: NodeId, _channel: Channel, _now: u64) -> Fate {
        if self.blocked(from, to) {
            self.dropped += 1;
            return Fate::Drop;
        }
        if self.profile.loss > 0.0 && self.rng.random_bool(self.profile.loss) {
            self.dropped += 1;
            return Fate::Drop;
        }
        let delay = if self.profile.jitter > 0 {
            self.profile.latency + self.rng.random_range(0..=self.profile.jitter)
        } else {
            self.profile.latency
        };
        self.delivered += 1;
        Fate::Deliver { delay }
    }

    fn blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.partition.is_some() && self.group_of(from) != self.group_of(to)
    }

    fn set_partition(&mut self, groups: &[Vec<NodeId>]) {
        let mut mask = BTreeMap::new();
        for (g, members) in groups.iter().enumerate() {
            for &id in members {
                mask.insert(id, g);
            }
        }
        self.partition = Some(mask);
    }

    fn heal(&mut self) {
        self.partition = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u64) -> NodeId {
        NodeId::new(id)
    }

    #[test]
    fn ideal_profile_delivers_everything_instantly() {
        let mut net = FaultyNetwork::new(LinkProfile::ideal(), 1);
        for i in 0..100 {
            assert_eq!(
                net.route(n(i), n(i + 1), Channel::Topology, 0),
                Fate::Deliver { delay: 0 }
            );
        }
        assert_eq!(net.delivered(), 100);
        assert_eq!(net.dropped(), 0);
    }

    #[test]
    fn latency_and_jitter_bound_the_delay() {
        let profile = LinkProfile {
            latency: 5,
            jitter: 3,
            loss: 0.0,
        };
        let mut net = FaultyNetwork::new(profile, 2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            match net.route(n(0), n(1), Channel::Migration, 7) {
                Fate::Deliver { delay } => {
                    assert!((5..=8).contains(&delay), "delay {delay} out of range");
                    seen.insert(delay);
                }
                Fate::Drop => panic!("lossless profile dropped a message"),
            }
        }
        assert_eq!(seen.len(), 4, "jitter must cover [latency, latency+jitter]");
    }

    #[test]
    fn loss_rate_is_roughly_honored_and_deterministic() {
        let profile = LinkProfile {
            latency: 0,
            jitter: 0,
            loss: 0.3,
        };
        let run = |seed: u64| {
            let mut net = FaultyNetwork::new(profile, seed);
            (0..1000)
                .map(|_| net.route(n(0), n(1), Channel::Backup, 0))
                .collect::<Vec<_>>()
        };
        let a = run(9);
        assert_eq!(a, run(9), "same seed must replay the same fate stream");
        let drops = a.iter().filter(|f| **f == Fate::Drop).count();
        assert!(
            (200..400).contains(&drops),
            "30% loss produced {drops}/1000 drops"
        );
    }

    #[test]
    fn partition_blocks_across_groups_and_heals() {
        let mut net = FaultyNetwork::new(LinkProfile::ideal(), 3);
        net.set_partition(&[vec![n(1), n(2)], vec![n(3)]]);
        assert!(net.blocked(n(1), n(3)), "different groups");
        assert!(!net.blocked(n(1), n(2)), "same group");
        assert!(net.blocked(n(1), n(7)), "listed vs rest of network");
        assert!(!net.blocked(n(7), n(8)), "the rest talk among themselves");
        assert_eq!(net.route(n(1), n(3), Channel::Topology, 0), Fate::Drop);
        net.heal();
        assert!(!net.blocked(n(1), n(3)));
        assert_eq!(
            net.route(n(1), n(3), Channel::Topology, 0),
            Fate::Deliver { delay: 0 }
        );
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn out_of_range_loss_rejected() {
        let _ = FaultyNetwork::new(
            LinkProfile {
                latency: 0,
                jitter: 0,
                loss: 1.5,
            },
            0,
        );
    }
}
