//! Dense node storage shared by the deterministic substrates: a slot
//! pool with a free list, generation ids, and a struct-of-arrays
//! position slab.
//!
//! Both the cycle engine and the discrete-event kernel used to hold
//! their populations as a `Vec<Option<ProtocolNode>>` indexed by node
//! id. Ids are monotonic and never reused, so under churn the vector
//! only ever grew: every activation-order scan, liveness test, and
//! position snapshot walked a prefix of dead `None` slots proportional
//! to *all nodes that ever existed*, not to the population actually
//! alive. A long-running churn scenario degraded linearly with its own
//! history. The pool lives here — next to [`crate::node::ProtocolNode`]
//! — so every driver (the engine in `polystyrene-sim`, the kernel in
//! `polystyrene-netsim`) stores the one protocol stack the same way.
//!
//! [`NodePool`] splits identity from storage:
//!
//! ```text
//!   id_to_slot: [ id → (slot, gen) ]        one entry per id ever issued
//!                       │
//!                       ▼
//!   slots:      [ node | node | ─── | node ]   dense, recycled via free list
//!   positions:  [ pos  | pos  | pos | pos  ]   slab mirror of poly.pos
//!   slot_gen:   [  3   |  1   |  2  |  1   ]   bumped on every free
//!   free:       [ 2 ]                          LIFO recycle order
//!   alive:      [ id₃ < id₇ < id₉ … ]          sorted, maintained incrementally
//! ```
//!
//! * **Slots are recycled.** A kill pushes its slot on the free list; the
//!   next join pops it. Storage is bounded by the peak population, not by
//!   cumulative churn.
//! * **Generations prevent resurrection.** Every free bumps the slot's
//!   generation; a [`SlotRef`] taken before the kill can never pass the
//!   generation check afterwards, so a recycled slot cannot alias its
//!   previous occupant. Ids themselves are never reused — the generation
//!   guards the *slot* indirection, not the id.
//! * **Positions live in a slab.** The per-round position snapshot the
//!   engine took as a fresh `Vec<Option<Point>>` (id-indexed, holes and
//!   all) becomes [`NodePool::sync_positions`] into a persistent
//!   slot-indexed slab — no allocation, no dead-id holes, and the
//!   measurement pass reads coordinates off a dense array instead of
//!   chasing into each node.
//! * **The alive list is incremental.** Ids are issued monotonically, so
//!   a join appends in sorted position and a kill binary-searches out;
//!   the engine's activation order (sorted alive ids, then one shuffle)
//!   no longer rescans the whole slot vector once per phase.
//!
//! The nodes themselves stay whole `ProtocolNode` values inside the slot
//! array: their gossip views and point sets are live protocol state with
//! per-node dynamic sizes, shared by all four substrates, and hoisting
//! them into per-field slabs would change struct layout the golden
//! histories do not observe but every substrate driver touches. The pool
//! deliberately slabs what the *engine* reads in bulk — coordinates and
//! liveness — and leaves protocol-private state where the protocol owns
//! it. Iteration order, id assignment, and position values are all exactly
//! those of the boxed layout, which is what keeps the golden-history
//! fingerprints byte-identical across the swap.

use crate::node::ProtocolNode;
use polystyrene_membership::NodeId;
use polystyrene_space::MetricSpace;
use rayon::prelude::*;

/// A generation-stamped slot handle. Valid only while the slot's current
/// generation matches; any kill of the occupant invalidates it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotRef {
    /// Index into the slot arrays.
    pub slot: u32,
    /// Generation the slot had when this handle was taken.
    pub gen: u32,
}

/// Dense, churn-stable storage for the engine's population. See the
/// module docs for the layout.
pub struct NodePool<S: MetricSpace> {
    /// Node storage, recycled through `free`. `None` only for freed slots.
    slots: Vec<Option<ProtocolNode<S>>>,
    /// Slot-indexed mirror of each occupant's `poly.pos`, refreshed by
    /// [`Self::sync_positions`]. Freed slots keep their stale last value;
    /// nothing reads a position except through a generation-checked id.
    positions: Vec<S::Point>,
    /// Current generation of each slot; bumped when the slot is freed.
    slot_gen: Vec<u32>,
    /// Freed slots, recycled LIFO.
    free: Vec<u32>,
    /// id → current slot handle; `None` once the id's node died. Indexed
    /// by `NodeId::index()`, one entry per id ever issued.
    id_to_slot: Vec<Option<SlotRef>>,
    /// Alive ids, sorted ascending (ids are issued monotonically, so a
    /// join is always a push).
    alive: Vec<NodeId>,
    /// Next id to issue.
    next_id: u64,
}

impl<S: MetricSpace> Default for NodePool<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: MetricSpace> NodePool<S> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            positions: Vec::new(),
            slot_gen: Vec::new(),
            free: Vec::new(),
            id_to_slot: Vec::new(),
            alive: Vec::new(),
            next_id: 0,
        }
    }

    /// An empty pool with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
            positions: Vec::with_capacity(n),
            slot_gen: Vec::with_capacity(n),
            free: Vec::new(),
            id_to_slot: Vec::with_capacity(n),
            alive: Vec::with_capacity(n),
            next_id: 0,
        }
    }

    /// The id the next [`Self::insert_with`] will issue. Monotonic; never
    /// reused, matching the append-only id assignment of the boxed
    /// layout.
    pub fn peek_next_id(&self) -> NodeId {
        NodeId::new(self.next_id)
    }

    /// Issues the next id, builds the node with it, and stores it in a
    /// recycled (or fresh) slot. Returns the id.
    pub fn insert_with(&mut self, make: impl FnOnce(NodeId) -> ProtocolNode<S>) -> NodeId {
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        let node = make(id);
        let pos = node.poly.pos.clone();
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = slot as usize;
                debug_assert!(self.slots[s].is_none(), "free list held an occupied slot");
                self.slots[s] = Some(node);
                self.positions[s] = pos;
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(node));
                self.positions.push(pos);
                self.slot_gen.push(0);
                slot
            }
        };
        debug_assert_eq!(self.id_to_slot.len(), id.index());
        self.id_to_slot.push(Some(SlotRef {
            slot,
            gen: self.slot_gen[slot as usize],
        }));
        // Ids are monotonic: the new id sorts after everything alive.
        self.alive.push(id);
        id
    }

    /// Removes `id`'s node, frees its slot (bumping the generation so any
    /// outstanding [`SlotRef`] dies with it), and returns the node.
    /// `None` if the id was never issued or already dead.
    pub fn remove(&mut self, id: NodeId) -> Option<ProtocolNode<S>> {
        let handle = self.id_to_slot.get_mut(id.index())?.take()?;
        let s = handle.slot as usize;
        debug_assert_eq!(self.slot_gen[s], handle.gen, "live handle out of date");
        let node = self.slots[s].take();
        debug_assert!(node.is_some(), "id_to_slot pointed at an empty slot");
        self.slot_gen[s] = self.slot_gen[s].wrapping_add(1);
        self.free.push(handle.slot);
        if let Ok(at) = self.alive.binary_search(&id) {
            self.alive.remove(at);
        }
        node
    }

    /// Whether `id` is alive.
    pub fn contains(&self, id: NodeId) -> bool {
        self.slot_of(id).is_some()
    }

    /// The current slot of `id`, if alive (generation-checked).
    pub fn slot_of(&self, id: NodeId) -> Option<usize> {
        let handle = self.id_to_slot.get(id.index())?.as_ref()?;
        let s = handle.slot as usize;
        (self.slot_gen[s] == handle.gen).then_some(s)
    }

    /// The current slot handle of `id`, if alive (tests and diagnostics).
    pub fn slot_ref(&self, id: NodeId) -> Option<SlotRef> {
        let handle = (*self.id_to_slot.get(id.index())?)?;
        (self.slot_gen[handle.slot as usize] == handle.gen).then_some(handle)
    }

    /// Shared access to `id`'s node, if alive.
    pub fn get(&self, id: NodeId) -> Option<&ProtocolNode<S>> {
        self.slots[self.slot_of(id)?].as_ref()
    }

    /// Mutable access to `id`'s node, if alive.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut ProtocolNode<S>> {
        let s = self.slot_of(id)?;
        self.slots[s].as_mut()
    }

    /// Alive ids, sorted ascending.
    pub fn alive_ids(&self) -> &[NodeId] {
        &self.alive
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.len()
    }

    /// Total slots currently allocated (alive + free): the peak
    /// population, not cumulative churn.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The slot array. Freed slots are `None`; occupied slots must not be
    /// vacated through this view (use [`Self::remove`], which maintains
    /// the free list and generations).
    pub fn slots(&self) -> &[Option<ProtocolNode<S>>] {
        &self.slots
    }

    /// Mutable slot array, for batch passes that fan out with rayon
    /// (recovery, position refresh). Liveness must not change through
    /// this view.
    pub fn slots_mut(&mut self) -> &mut [Option<ProtocolNode<S>>] {
        &mut self.slots
    }

    /// The position slab, slot-indexed. Valid for occupied slots as of
    /// the last [`Self::sync_positions`] (inserts write their slot
    /// eagerly); freed slots hold stale values.
    pub fn positions(&self) -> &[S::Point] {
        &self.positions
    }

    /// `id`'s position off the slab, if alive — the bulk-read companion
    /// of the engine's live `position_of`.
    pub fn position(&self, id: NodeId) -> Option<&S::Point> {
        Some(&self.positions[self.slot_of(id)?])
    }

    /// Mirrors every occupant's current `poly.pos` into the slab. The
    /// engine calls this once per round, after the last phase that moves
    /// nodes — replacing the id-indexed `Vec<Option<Point>>` it used to
    /// allocate for the refresh pass.
    pub fn sync_positions(&mut self) {
        for (slot, cell) in self.slots.iter().enumerate() {
            if let Some(node) = cell {
                self.positions[slot] = node.poly.pos.clone();
            }
        }
    }

    /// Batch position-refresh pass: every node updates its T-Man view
    /// entries to the subjects' slab positions (dead subjects resolve to
    /// `None`). Returns the total number of changed entries. Fans out
    /// with rayon; the slab is the immutable snapshot, so the pass is
    /// deterministic in any split.
    pub fn refresh_tman_positions(&mut self) -> u64 {
        let Self {
            slots,
            positions,
            slot_gen,
            id_to_slot,
            ..
        } = self;
        let positions: &[S::Point] = positions;
        let slot_gen: &[u32] = slot_gen;
        let id_to_slot: &[Option<SlotRef>] = id_to_slot;
        let lookup = move |id: NodeId| -> Option<&S::Point> {
            let handle = (*id_to_slot.get(id.index())?)?;
            let s = handle.slot as usize;
            (slot_gen[s] == handle.gen).then(|| &positions[s])
        };
        slots
            .par_iter_mut()
            .map(|cell| match cell.as_mut() {
                Some(node) => node.tman.refresh_positions(lookup) as u64,
                None => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use polystyrene::prelude::{DataPoint, PointId, PolyState};
    use polystyrene_space::prelude::Torus2;

    fn mk(pool: &mut NodePool<Torus2>, x: f64) -> NodeId {
        pool.insert_with(|id| {
            ProtocolNode::new(
                id,
                Torus2::new(16.0, 16.0),
                ProtocolConfig::default(),
                PolyState::with_initial_point(DataPoint::new(PointId::new(id.as_u64()), [x, 0.0])),
                Vec::new(),
                Vec::new(),
            )
        })
    }

    #[test]
    fn ids_are_monotonic_and_slots_recycle() {
        let mut pool: NodePool<Torus2> = NodePool::new();
        let a = mk(&mut pool, 1.0);
        let b = mk(&mut pool, 2.0);
        let c = mk(&mut pool, 3.0);
        assert_eq!((a.as_u64(), b.as_u64(), c.as_u64()), (0, 1, 2));
        assert_eq!(pool.slot_count(), 3);

        let b_ref = pool.slot_ref(b).unwrap();
        assert!(pool.remove(b).is_some());
        assert!(pool.remove(b).is_none(), "double kill is a no-op");
        assert_eq!(pool.alive_count(), 2);

        // The join reuses b's slot under a fresh id and generation.
        let d = mk(&mut pool, 4.0);
        assert_eq!(d.as_u64(), 3, "ids never recycle");
        assert_eq!(pool.slot_count(), 3, "storage stays at peak population");
        let d_ref = pool.slot_ref(d).unwrap();
        assert_eq!(d_ref.slot, b_ref.slot, "slot recycled LIFO");
        assert!(d_ref.gen > b_ref.gen, "generation bumped on free");

        // The dead id cannot reach the recycled slot's new occupant.
        assert!(pool.get(b).is_none());
        assert!(pool.position(b).is_none());
        assert_eq!(pool.get(d).unwrap().id(), d);
    }

    #[test]
    fn alive_ids_stay_sorted_through_churn() {
        let mut pool: NodePool<Torus2> = NodePool::new();
        let ids: Vec<NodeId> = (0..8).map(|i| mk(&mut pool, i as f64)).collect();
        pool.remove(ids[3]);
        pool.remove(ids[0]);
        let e = mk(&mut pool, 9.0);
        let alive = pool.alive_ids();
        assert!(alive.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
        assert_eq!(alive.last(), Some(&e));
        assert_eq!(alive.len(), 7);
    }

    #[test]
    fn position_slab_tracks_sync() {
        let mut pool: NodePool<Torus2> = NodePool::new();
        let a = mk(&mut pool, 1.0);
        assert_eq!(pool.position(a), Some(&[1.0, 0.0]), "insert seeds the slab");
        pool.get_mut(a).unwrap().poly.pos = [5.0, 5.0];
        assert_eq!(
            pool.position(a),
            Some(&[1.0, 0.0]),
            "slab is a snapshot, not a live view"
        );
        pool.sync_positions();
        assert_eq!(pool.position(a), Some(&[5.0, 5.0]));
    }
}
