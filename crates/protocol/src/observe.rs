//! The unified observation record of the experiment plane.
//!
//! Every execution substrate used to publish its own observation type —
//! the cycle engine's `RoundMetrics`, the network kernel's
//! `NetRoundMetrics`, the live clusters' `ClusterObservation` — which
//! meant every experiment harness was hand-wired to exactly one
//! substrate. [`RoundObservation`] is the one record they all can
//! produce: the paper's population arithmetic and quality metrics, plus
//! the progress clock the wall-clock substrates denominate reshaping in.
//! Substrate-specific extras (the engine's proximity and cost split, the
//! kernel's drop counters) stay on the substrate-internal history types;
//! anything that crosses the experiment plane crosses it as this record.

/// Per-round application-traffic telemetry: what happened to the
/// queries a workload generator offered this round.
///
/// All-zero ([`TrafficStats::default`]) on substrates or rounds without
/// traffic, so the scenario plane's records are unchanged when no load
/// is offered. Offered/delivered/dropped are counted at the *gateway*
/// nodes (the node a query was issued through records its completion),
/// and a round's delivered count may answer queries offered in an
/// earlier round on substrates with real message latency.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrafficStats {
    /// Queries issued through gateways this round.
    pub offered: u64,
    /// Query replies received by their gateways this round.
    pub delivered: u64,
    /// Queries written off this round: their gateway waited longer than
    /// the query timeout — the signature of a route into a hole.
    pub dropped: u64,
    /// Queries refused at the gateway's ingress this round because its
    /// bounded admission queue was full — load the substrate declined
    /// *before* it entered the overlay, counted separately from
    /// `dropped` (which expired in flight). Always zero on substrates
    /// without an admission bound.
    pub shed: u64,
    /// Read-intent queries the workload generator drew this round.
    /// Workload-side accounting (the overlay routes reads and writes
    /// identically); zero when no generator is attached.
    pub reads: u64,
    /// Write-intent queries the workload generator drew this round.
    pub writes: u64,
    /// Mean hops over the queries completed this round.
    pub mean_hops: f64,
    /// Median query latency in protocol ticks over this round's
    /// completions (0 when nothing completed).
    pub latency_p50: f64,
    /// 99th-percentile query latency in protocol ticks over this
    /// round's completions.
    pub latency_p99: f64,
}

impl TrafficStats {
    /// Builds a record from raw per-query `(hops, latency_ticks)`
    /// samples as drained from the nodes, sorting `samples` in place by
    /// latency to take the percentiles. `delivered` is passed separately
    /// because a wall-clock substrate may expose only a bounded recent
    /// sample window alongside exact counters.
    pub fn from_samples(
        offered: u64,
        delivered: u64,
        dropped: u64,
        samples: &mut [(u32, u64)],
    ) -> Self {
        let mut stats = TrafficStats {
            offered,
            delivered,
            dropped,
            ..TrafficStats::default()
        };
        if samples.is_empty() {
            return stats;
        }
        samples.sort_unstable_by_key(|&(_, latency)| latency);
        stats.mean_hops =
            samples.iter().map(|&(h, _)| f64::from(h)).sum::<f64>() / samples.len() as f64;
        let at = |q: f64| ((samples.len() - 1) as f64 * q).round() as usize;
        stats.latency_p50 = samples[at(0.5)].1 as f64;
        stats.latency_p99 = samples[at(0.99)].1 as f64;
        stats
    }

    /// Delivered fraction of the queries the workload *presented*
    /// (offered into the overlay plus shed at the gateway; `1.0` when
    /// none were — an idle round is trivially available). Shed load
    /// counts against availability: a gateway refusing a query is a
    /// query the application did not get served.
    pub fn availability(&self) -> f64 {
        let presented = self.offered + self.shed;
        if presented == 0 {
            1.0
        } else {
            self.delivered as f64 / presented as f64
        }
    }

    /// Folds another round's counters into this one (percentile fields
    /// keep the worst of the two — an aggregate bound, not a re-rank).
    pub fn merge(&mut self, other: &TrafficStats) {
        let completed = self.delivered + other.delivered;
        if completed > 0 {
            self.mean_hops = (self.mean_hops * self.delivered as f64
                + other.mean_hops * other.delivered as f64)
                / completed as f64;
        }
        self.offered += other.offered;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.shed += other.shed;
        self.reads += other.reads;
        self.writes += other.writes;
        self.latency_p50 = self.latency_p50.max(other.latency_p50);
        self.latency_p99 = self.latency_p99.max(other.latency_p99);
    }
}

/// What any substrate reports after one protocol round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundObservation {
    /// Protocol round the sample was taken at (after the round ran).
    pub round: u32,
    /// Number of alive nodes.
    pub alive_nodes: usize,
    /// Mean distance from each initial data point to its nearest holder
    /// (or the nearest alive node if the point has none) — the paper's
    /// homogeneity metric.
    pub homogeneity: f64,
    /// Reference homogeneity `H` for the current population.
    pub reference_homogeneity: f64,
    /// Fraction of the initial data points that still exist somewhere —
    /// as a guest, a ghost replica, or a parked migration handout.
    pub surviving_points: f64,
    /// Mean stored data points per node (guests + ghosts).
    pub points_per_node: f64,
    /// Migration-handout points parked awaiting acknowledgment across
    /// the population (always zero on substrates whose exchanges are
    /// atomic).
    pub parked_points: usize,
    /// Message cost per node this round, in the paper's units — zero on
    /// substrates that do not meter wire cost.
    pub cost_units: f64,
    /// Monotone protocol-progress clock: the slowest alive node's local
    /// round count. Deterministic substrates report the round number;
    /// wall-clock substrates report the survivors' tick floor, so
    /// reshaping can be denominated in protocol progress rather than
    /// wall time.
    pub ticks: u64,
    /// Application-traffic telemetry for the round (all-zero when no
    /// workload is attached; see [`TrafficStats`]).
    pub traffic: TrafficStats,
}

/// Reference homogeneity `H_A^{|N|} = 1/2 · sqrt(A / |N|)` (paper
/// Sec. IV-A): the highest homogeneity an ideally uniform placement of
/// `nodes` nodes over a surface of area `area` would exhibit — the
/// bound the reshaping-time metric is defined against, shared by every
/// substrate so the recovery criterion cannot drift between them.
///
/// # Example
///
/// ```
/// use polystyrene_protocol::observe::reference_homogeneity;
///
/// // The paper's 80×40 torus: H = 1/2 before the failure…
/// assert!((reference_homogeneity(3200.0, 3200) - 0.5).abs() < 1e-12);
/// // …and √2/2 ≈ 0.71 for the 1600 survivors.
/// assert!((reference_homogeneity(3200.0, 1600) - 0.7071).abs() < 1e-3);
/// ```
pub fn reference_homogeneity(area: f64, nodes: usize) -> f64 {
    if nodes == 0 {
        return f64::INFINITY;
    }
    0.5 * (area / nodes as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_stats_availability_and_merge() {
        let idle = TrafficStats::default();
        assert_eq!(idle.availability(), 1.0);
        let mut a = TrafficStats {
            offered: 10,
            delivered: 8,
            dropped: 1,
            reads: 9,
            writes: 1,
            mean_hops: 4.0,
            latency_p50: 1.0,
            latency_p99: 3.0,
            ..TrafficStats::default()
        };
        let b = TrafficStats {
            offered: 10,
            delivered: 2,
            dropped: 5,
            shed: 4,
            reads: 8,
            writes: 2,
            mean_hops: 9.0,
            latency_p50: 2.0,
            latency_p99: 8.0,
        };
        a.merge(&b);
        assert_eq!(a.offered, 20);
        assert_eq!(a.delivered, 10);
        assert_eq!(a.dropped, 6);
        assert_eq!(a.shed, 4);
        assert_eq!(a.reads, 17);
        assert_eq!(a.writes, 3);
        // Shed load counts against availability: 10 of 24 presented.
        assert!((a.availability() - 10.0 / 24.0).abs() < 1e-12);
        assert!((a.mean_hops - 5.0).abs() < 1e-12);
        assert_eq!(a.latency_p99, 8.0);
    }

    #[test]
    fn shed_load_degrades_availability() {
        let stats = TrafficStats {
            offered: 8,
            delivered: 8,
            shed: 2,
            ..TrafficStats::default()
        };
        assert!((stats.availability() - 0.8).abs() < 1e-12);
        let all_shed = TrafficStats {
            shed: 5,
            ..TrafficStats::default()
        };
        assert_eq!(all_shed.availability(), 0.0);
    }

    #[test]
    fn traffic_stats_from_samples_ranks_latencies() {
        let mut samples = vec![(4, 7), (2, 1), (6, 3)];
        let stats = TrafficStats::from_samples(5, 3, 1, &mut samples);
        assert_eq!(stats.offered, 5);
        assert_eq!(stats.delivered, 3);
        assert_eq!(stats.dropped, 1);
        assert!((stats.mean_hops - 4.0).abs() < 1e-12);
        assert_eq!(stats.latency_p50, 3.0);
        assert_eq!(stats.latency_p99, 7.0);
        let empty = TrafficStats::from_samples(2, 0, 2, &mut []);
        assert_eq!(empty.latency_p99, 0.0);
        assert!((empty.availability() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn reference_values_match_paper() {
        assert!((reference_homogeneity(3200.0, 3200) - 0.5).abs() < 1e-12);
        let h1600 = reference_homogeneity(3200.0, 1600);
        assert!((h1600 - std::f64::consts::SQRT_2 / 2.0).abs() < 1e-12);
        assert_eq!(reference_homogeneity(3200.0, 0), f64::INFINITY);
    }
}
