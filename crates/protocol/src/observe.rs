//! The unified observation record of the experiment plane.
//!
//! Every execution substrate used to publish its own observation type —
//! the cycle engine's `RoundMetrics`, the network kernel's
//! `NetRoundMetrics`, the live clusters' `ClusterObservation` — which
//! meant every experiment harness was hand-wired to exactly one
//! substrate. [`RoundObservation`] is the one record they all can
//! produce: the paper's population arithmetic and quality metrics, plus
//! the progress clock the wall-clock substrates denominate reshaping in.
//! Substrate-specific extras (the engine's proximity and cost split, the
//! kernel's drop counters) stay on the substrate-internal history types;
//! anything that crosses the experiment plane crosses it as this record.

/// What any substrate reports after one protocol round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundObservation {
    /// Protocol round the sample was taken at (after the round ran).
    pub round: u32,
    /// Number of alive nodes.
    pub alive_nodes: usize,
    /// Mean distance from each initial data point to its nearest holder
    /// (or the nearest alive node if the point has none) — the paper's
    /// homogeneity metric.
    pub homogeneity: f64,
    /// Reference homogeneity `H` for the current population.
    pub reference_homogeneity: f64,
    /// Fraction of the initial data points that still exist somewhere —
    /// as a guest, a ghost replica, or a parked migration handout.
    pub surviving_points: f64,
    /// Mean stored data points per node (guests + ghosts).
    pub points_per_node: f64,
    /// Migration-handout points parked awaiting acknowledgment across
    /// the population (always zero on substrates whose exchanges are
    /// atomic).
    pub parked_points: usize,
    /// Message cost per node this round, in the paper's units — zero on
    /// substrates that do not meter wire cost.
    pub cost_units: f64,
    /// Monotone protocol-progress clock: the slowest alive node's local
    /// round count. Deterministic substrates report the round number;
    /// wall-clock substrates report the survivors' tick floor, so
    /// reshaping can be denominated in protocol progress rather than
    /// wall time.
    pub ticks: u64,
}

/// Reference homogeneity `H_A^{|N|} = 1/2 · sqrt(A / |N|)` (paper
/// Sec. IV-A): the highest homogeneity an ideally uniform placement of
/// `nodes` nodes over a surface of area `area` would exhibit — the
/// bound the reshaping-time metric is defined against, shared by every
/// substrate so the recovery criterion cannot drift between them.
///
/// # Example
///
/// ```
/// use polystyrene_protocol::observe::reference_homogeneity;
///
/// // The paper's 80×40 torus: H = 1/2 before the failure…
/// assert!((reference_homogeneity(3200.0, 3200) - 0.5).abs() < 1e-12);
/// // …and √2/2 ≈ 0.71 for the 1600 survivors.
/// assert!((reference_homogeneity(3200.0, 1600) - 0.7071).abs() < 1e-3);
/// ```
pub fn reference_homogeneity(area: f64, nodes: usize) -> f64 {
    if nodes == 0 {
        return f64::INFINITY;
    }
    0.5 * (area / nodes as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_match_paper() {
        assert!((reference_homogeneity(3200.0, 3200) - 0.5).abs() < 1e-12);
        let h1600 = reference_homogeneity(3200.0, 1600);
        assert!((h1600 - std::f64::consts::SQRT_2 / 2.0).abs() < 1e-12);
        assert_eq!(reference_homogeneity(3200.0, 0), f64::INFINITY);
    }
}
