//! [`ProtocolNode`]: the full per-node Polystyrene stack as one sans-IO
//! state machine.
//!
//! The node owns the three protocol layers of paper Fig. 3 —
//! `PeerSampling` (Cyclon RPS), `TMan` (topology construction) and
//! `PolyState` (the Polystyrene layer proper) — plus the bookkeeping an
//! asynchronous deployment needs (heartbeat records, the one-in-flight
//! migration lock). It performs **no IO**: drivers feed [`Event`]s in and
//! execute the returned [`Effect`]s.
//!
//! Two driving styles are supported by the same code paths:
//!
//! * **phase-wise** ([`ProtocolNode::on_phase`]): a cycle-driven engine
//!   activates every node once per phase in a global order, applying
//!   effects synchronously — the PeerSim model of the paper's evaluation.
//!   Entropy is drawn from the driver's RNG in exactly the order the
//!   pre-extraction engine drew it, so seeded histories are bit-identical
//!   (under an RNG-free projection such as the default medoid);
//! * **tick-wise** ([`ProtocolNode::on_tick`]): an asynchronous runtime
//!   runs all phases back-to-back on a local timer, with the node's
//!   built-in heartbeat detector supplying failure verdicts and a
//!   post-recovery re-projection compensating for migrations that may
//!   stall (see [`ProtocolNode::on_tick`]).

use crate::config::ProtocolConfig;
use crate::wire::{Channel, Effect, EffectSink, Event, QueryItem, QueryReplyItem, Wire};
use polystyrene::prelude::*;
use polystyrene::recovery::{recover, RecoveryOutcome};
use polystyrene_membership::{Descriptor, NodeId, PeerSampling};
use polystyrene_space::MetricSpace;
use polystyrene_topology::{TMan, TopologyConstruction};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// One step of the per-tick protocol pipeline (paper Fig. 4).
///
/// [`ProtocolNode::on_tick`] runs them in [`Phase::ALL`] order; a cycle
/// driver runs each phase across the whole population before moving to
/// the next, which is exactly PeerSim's cycle-driven semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Liveness beacons along the backup relationships.
    Heartbeat,
    /// Cyclon shuffle initiation.
    PeerSampling,
    /// T-Man view maintenance and exchange initiation (Step 1' of Fig. 4).
    Topology,
    /// Ghost reactivation (Step 3, Algorithm 2).
    Recovery,
    /// Replica placement and pushes (Steps 2/2', Algorithm 1).
    Backup,
    /// Pull-push data-point exchange initiation (Step 4, Algorithm 3).
    Migration,
}

impl Phase {
    /// Every phase, in per-tick execution order.
    pub const ALL: [Phase; 6] = [
        Phase::Heartbeat,
        Phase::PeerSampling,
        Phase::Topology,
        Phase::Recovery,
        Phase::Backup,
        Phase::Migration,
    ];
}

/// Size of the candidate pool drawn per backup round, as a function of
/// the replication factor K: replacements for failed targets must be
/// found even when many draws collide or are already enrolled.
fn backup_pool_size(replication: usize) -> usize {
    replication * 4 + 8
}

/// Bookkeeping of the one in-flight migration exchange (Sec. III-F).
#[derive(Clone, Debug)]
struct PendingMigration {
    partner: NodeId,
    /// Exchange generation: a reply only resolves this exchange if it
    /// echoes the generation (a slower, already-timed-out exchange's
    /// reply takes the late-absorb path instead).
    xid: u64,
    started: u64,
    /// Ids of the guests shipped in the request, sorted for binary
    /// search (the buffer is pooled — guest ids are unique within a
    /// node, so a sorted `Vec` is an exact stand-in for the old
    /// `BTreeSet`). The responder's reply only redistributes *these*
    /// points plus its own — anything the node acquires while the
    /// exchange is in flight (a recovery reactivating ghosts, say) is
    /// unknown to the split and must survive the guest-set replacement
    /// when the reply lands.
    shipped: Vec<PointId>,
}

/// Points a migration responder mailed back to an initiator but does not
/// consider delivered yet. A split moves ownership of these points out of
/// the responder's guest set; over an unreliable transport the carrying
/// [`Wire::MigrationReply`] may never arrive, so they stay parked here
/// until the initiator's [`Wire::MigrationAck`] lands — or are re-adopted
/// after the migration timeout (possibly duplicating them, never losing
/// them).
#[derive(Clone, Debug)]
struct ParkedHandout<P> {
    /// Generation of the exchange that produced this handout; only an
    /// ack echoing it clears the parking (a stale ack from a previous
    /// generation must not release a newer handout whose reply is still
    /// in flight — that would let a subsequent reply drop destroy the
    /// points).
    xid: u64,
    points: Vec<DataPoint<P>>,
    started: u64,
}

/// The full protocol stack of one node, transport-agnostic.
pub struct ProtocolNode<S: MetricSpace> {
    id: NodeId,
    space: S,
    config: ProtocolConfig,
    /// Peer-sampling layer (bottom of paper Fig. 3).
    pub rps: PeerSampling<S::Point>,
    /// Topology-construction layer.
    pub tman: TMan<S>,
    /// The Polystyrene layer: guests, ghosts, backups, position.
    pub poly: PolyState<S::Point>,
    /// Heartbeat bookkeeping: last local tick we heard from a peer.
    last_seen: BTreeMap<NodeId, u64>,
    /// Local protocol clock, advanced by [`ProtocolNode::on_tick`] only —
    /// a cycle driver resolves every exchange within one activation, so
    /// it never needs the clock.
    clock: u64,
    /// In-flight migration, if any.
    pending_migration: Option<PendingMigration>,
    /// Exchange-generation counter for migrations this node initiates.
    migration_seq: u64,
    /// Migration-split points handed out but not yet acknowledged, by
    /// initiator (see [`ParkedHandout`]).
    handouts: BTreeMap<NodeId, ParkedHandout<S::Point>>,
    /// Queries this node gatewayed that still await a
    /// [`Wire::QueryReply`], by query id → local clock at issue.
    pending_queries: BTreeMap<u64, u64>,
    /// Queries issued through this gateway since the last drain.
    traffic_offered: u64,
    /// Query completions recorded since the last drain, as
    /// `(hops, latency ticks)` pairs.
    traffic_samples: Vec<(u32, u64)>,
    /// Pending queries written off by lazy timeout since the last drain.
    traffic_dropped: u64,
}

impl<S: MetricSpace> ProtocolNode<S> {
    /// Builds a node around an initial Polystyrene state (founder or
    /// empty joiner), bootstrapping the two gossip layers from the given
    /// contact sets.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ProtocolConfig::validate`].
    pub fn new(
        id: NodeId,
        space: S,
        config: ProtocolConfig,
        poly: PolyState<S::Point>,
        rps_contacts: Vec<Descriptor<S::Point>>,
        tman_contacts: Vec<Descriptor<S::Point>>,
    ) -> Self {
        config.validate();
        let mut rps = PeerSampling::new(config.rps_view_cap, config.rps_shuffle_len);
        rps.bootstrap(rps_contacts);
        let mut tman = TMan::new(space.clone(), config.tman);
        tman.integrate(id, &poly.pos, &tman_contacts);
        Self {
            id,
            space,
            config,
            rps,
            tman,
            poly,
            last_seen: BTreeMap::new(),
            clock: 0,
            pending_migration: None,
            migration_seq: 0,
            handouts: BTreeMap::new(),
            pending_queries: BTreeMap::new(),
            traffic_offered: 0,
            traffic_samples: Vec::new(),
            traffic_dropped: 0,
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Local ticks executed so far (zero under a cycle driver).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The partner of the in-flight migration, if one is pending.
    pub fn pending_migration(&self) -> Option<NodeId> {
        self.pending_migration.as_ref().map(|p| p.partner)
    }

    /// Number of migration-split points currently parked awaiting an
    /// initiator's [`Wire::MigrationAck`] (zero under a synchronous
    /// driver, whose acks arrive in the same instant as the replies).
    pub fn parked_points(&self) -> usize {
        self.handouts.values().map(|h| h.points.len()).sum()
    }

    /// Ids of the parked handout points. Survival accounting must count
    /// these: mid-handover a point may exist *only* here (the carrying
    /// reply still in flight), yet it is not lost.
    ///
    /// Allocates a fresh `Vec`; observation paths that only need to walk
    /// or count the ids should use [`ProtocolNode::parked_point_ids`]
    /// instead.
    pub fn parked_ids(&self) -> Vec<PointId> {
        self.parked_point_ids().collect()
    }

    /// Iterator over the parked handout points' ids — the allocation-free
    /// accessor for per-round observation (counting every node's parked
    /// ids used to build a throwaway `Vec<PointId>` per node per round).
    pub fn parked_point_ids(&self) -> impl Iterator<Item = PointId> + '_ {
        self.handouts
            .values()
            .flat_map(|h| h.points.iter().map(|p| p.id))
    }

    /// Advances the node's local protocol clock by one unit without
    /// running any phase — for drivers (and tests) that pass time
    /// explicitly between individual [`ProtocolNode::on_phase`] calls,
    /// so the tick-denominated timeouts (the in-flight migration lock,
    /// the parked-handout re-adoption) make progress.
    ///
    /// Do **not** combine with [`ProtocolNode::on_tick`] or
    /// [`ProtocolNode::on_round`]: both advance the clock themselves (the
    /// discrete-event network simulator drives nodes through `on_round`
    /// alone), and adding this on top would halve every timeout.
    pub fn advance_clock(&mut self) {
        self.clock += 1;
    }

    /// A fresh descriptor of this node at its current position.
    pub fn descriptor(&self) -> Descriptor<S::Point> {
        Descriptor::new(self.id, self.poly.pos.clone())
    }

    /// Whether the built-in heartbeat detector is active. Drivers with an
    /// external detector disable it via `heartbeat_timeout_ticks ==
    /// u32::MAX`, and the node then skips all liveness bookkeeping — a
    /// cycle engine delivering millions of messages must not grow an
    /// O(population) `last_seen` map per node that nothing ever reads.
    fn heartbeats_enabled(&self) -> bool {
        self.config.heartbeat_timeout_ticks != u32::MAX
    }

    /// Records that `peer` showed signs of life just now.
    pub fn heard_from(&mut self, peer: NodeId) {
        if self.heartbeats_enabled() {
            self.last_seen.insert(peer, self.clock);
        }
    }

    /// Starts monitoring `peer` without resetting an existing record.
    fn heard_from_if_new(&mut self, peer: NodeId) {
        if self.heartbeats_enabled() {
            self.last_seen.entry(peer).or_insert(self.clock);
        }
    }

    /// Peers the built-in heartbeat detector currently suspects: monitored
    /// nodes not heard from within `heartbeat_timeout_ticks`. Peers never
    /// monitored draw no opinion — the paper's "possibly imperfect"
    /// detector (Sec. III-A) built from real silence, not an oracle.
    pub fn suspects(&self) -> BTreeSet<NodeId> {
        let timeout = u64::from(self.config.heartbeat_timeout_ticks);
        self.last_seen
            .iter()
            .filter(|&(_, &seen)| self.clock.saturating_sub(seen) > timeout)
            .map(|(&id, _)| id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Traffic plane
    // ------------------------------------------------------------------

    /// Queries gatewayed through this node still awaiting a reply.
    pub fn pending_query_count(&self) -> usize {
        self.pending_queries.len()
    }

    /// Drains the gateway-side traffic counters accumulated since the
    /// last call: appends the `(hops, latency ticks)` completion samples
    /// to `samples` and returns `(offered, delivered, dropped)`.
    ///
    /// Expiry is lazy: pending queries older than
    /// [`ProtocolConfig::query_timeout_ticks`] are written off as dropped
    /// here, at observation time, so the timeout never touches the
    /// protocol phases or their entropy.
    pub fn take_traffic(&mut self, samples: &mut Vec<(u32, u64)>) -> (u64, u64, u64) {
        let timeout = u64::from(self.config.query_timeout_ticks);
        let clock = self.clock;
        let before = self.pending_queries.len();
        self.pending_queries
            .retain(|_, &mut issued| clock.saturating_sub(issued) <= timeout);
        self.traffic_dropped += (before - self.pending_queries.len()) as u64;
        let delivered = self.traffic_samples.len() as u64;
        samples.append(&mut self.traffic_samples);
        let offered = std::mem::take(&mut self.traffic_offered);
        let dropped = std::mem::take(&mut self.traffic_dropped);
        (offered, delivered, dropped)
    }

    /// Writes every still-pending query off as dropped right now — for
    /// atomic (cycle) drivers, whose exchanges resolve within the round
    /// they start in: a query still unanswered at drain time lost a hop
    /// to a stale view entry and can never complete later.
    pub fn expire_all_pending_queries(&mut self) {
        self.traffic_dropped += self.pending_queries.len() as u64;
        self.pending_queries.clear();
    }

    /// The view entry strictly closer to `key` than this node itself —
    /// the next hop of greedy query forwarding. Deterministic (pure
    /// argmin over the T-Man view, no entropy) and strictly improving,
    /// so routes terminate without a visited set.
    fn closer_view_entry(&self, key: &S::Point) -> Option<NodeId> {
        let own = self.space.distance(&self.poly.pos, key);
        let mut best: Option<(NodeId, f64)> = None;
        for entry in self.tman.view_entries() {
            let d = self.space.distance(&entry.pos, key);
            if d < own && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((entry.id, d));
            }
        }
        best.map(|(id, _)| id)
    }

    // ------------------------------------------------------------------
    // Driving surface
    // ------------------------------------------------------------------

    /// One full local protocol round for asynchronous drivers: advances
    /// the clock, snapshots the heartbeat detector's verdicts, and runs
    /// every [`Phase`] in order.
    ///
    /// Unlike the phase-wise cycle driver — whose synchronous migration
    /// exchanges re-project every participant within the same round — an
    /// asynchronous node may go rounds without completing a migration
    /// (busy bounces, unreachable candidates), so a recovery that
    /// reactivated ghosts re-projects the position immediately: the
    /// topology layer must not keep advertising coordinates unrelated to
    /// the newly adopted guests.
    pub fn on_tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<Effect<S::Point>> {
        let mut sink = EffectSink::new();
        self.on_tick_into(rng, &mut sink);
        sink.into_effects()
    }

    /// Sink-based twin of [`ProtocolNode::on_tick`]: pushes the round's
    /// effects into a caller-supplied (and typically reused) buffer
    /// instead of allocating a fresh `Vec` per activation.
    pub fn on_tick_into<R: Rng + ?Sized>(&mut self, rng: &mut R, sink: &mut EffectSink<S::Point>) {
        self.clock += 1;
        let suspects = self.suspects();
        let fd = move |id: NodeId| suspects.contains(&id);
        self.run_local_round(&fd, rng, sink);
    }

    /// One full local protocol round with failure verdicts supplied by
    /// the driver — the asynchronous *phase-external* twin of
    /// [`ProtocolNode::on_tick`], for drivers that own the failure
    /// knowledge themselves (the discrete-event network simulator feeds
    /// its crash-detection events here) but still deliver effects
    /// asynchronously, so the clock must advance and recoveries must
    /// re-project immediately.
    pub fn on_round<R: Rng + ?Sized>(
        &mut self,
        fd: &dyn Fn(NodeId) -> bool,
        rng: &mut R,
    ) -> Vec<Effect<S::Point>> {
        let mut sink = EffectSink::new();
        self.on_round_into(fd, rng, &mut sink);
        sink.into_effects()
    }

    /// Sink-based twin of [`ProtocolNode::on_round`].
    pub fn on_round_into<R: Rng + ?Sized>(
        &mut self,
        fd: &dyn Fn(NodeId) -> bool,
        rng: &mut R,
        sink: &mut EffectSink<S::Point>,
    ) {
        self.clock += 1;
        self.run_local_round(fd, rng, sink);
    }

    /// Shared body of [`ProtocolNode::on_tick`] / [`ProtocolNode::on_round`]:
    /// every phase in order, with the asynchronous-driver recovery rule
    /// (re-project right away — a migration that would otherwise fix the
    /// position may stall for rounds).
    fn run_local_round<R: Rng + ?Sized>(
        &mut self,
        fd: &dyn Fn(NodeId) -> bool,
        rng: &mut R,
        sink: &mut EffectSink<S::Point>,
    ) {
        for phase in Phase::ALL {
            if phase == Phase::Recovery {
                if !self.recover_ghosts(fd).is_empty() {
                    self.poly.project(&self.space, &self.config.poly, rng);
                }
                continue;
            }
            self.on_phase_into(phase, fd, rng, sink);
        }
    }

    /// One protocol phase, with failure verdicts supplied by the driver —
    /// the cycle-driven entry point (the engine passes its simulated
    /// detector; [`ProtocolNode::on_tick`] passes the heartbeat one).
    pub fn on_phase<R: Rng + ?Sized>(
        &mut self,
        phase: Phase,
        fd: &dyn Fn(NodeId) -> bool,
        rng: &mut R,
    ) -> Vec<Effect<S::Point>> {
        let mut sink = EffectSink::new();
        self.on_phase_into(phase, fd, rng, &mut sink);
        sink.into_effects()
    }

    /// Sink-based twin of [`ProtocolNode::on_phase`] — the cycle engine's
    /// hot entry point: one sink serves the whole population, so the
    /// steady state of a phase sweep performs no effect allocation at all.
    pub fn on_phase_into<R: Rng + ?Sized>(
        &mut self,
        phase: Phase,
        fd: &dyn Fn(NodeId) -> bool,
        rng: &mut R,
        sink: &mut EffectSink<S::Point>,
    ) {
        match phase {
            Phase::Heartbeat => self.heartbeat_phase(sink),
            Phase::PeerSampling => self.peer_sampling_phase(sink),
            Phase::Topology => self.topology_phase(fd, rng, sink),
            Phase::Recovery => {
                self.recover_ghosts(fd);
            }
            Phase::Backup => self.backup_phase(fd, rng, sink),
            Phase::Migration => self.migration_phase(fd, rng, sink),
        }
    }

    /// Handles one driver event and returns the follow-up effects.
    pub fn on_event<R: Rng + ?Sized>(
        &mut self,
        event: Event<S::Point>,
        rng: &mut R,
    ) -> Vec<Effect<S::Point>> {
        let mut sink = EffectSink::new();
        self.on_event_into(event, rng, &mut sink);
        sink.into_effects()
    }

    /// Sink-based twin of [`ProtocolNode::on_event`].
    pub fn on_event_into<R: Rng + ?Sized>(
        &mut self,
        event: Event<S::Point>,
        rng: &mut R,
        sink: &mut EffectSink<S::Point>,
    ) {
        match event {
            Event::ProbeOk { peer, channel, pos } => {
                self.open_exchange(peer, channel, pos, rng, sink)
            }
            Event::PeerUnreachable { peer, channel } => {
                self.peer_unreachable(peer, channel);
            }
            Event::Message { from, wire } => {
                self.heard_from(from);
                self.handle_message(from, wire, rng, sink);
            }
        }
    }

    /// Recovery pass (Algorithm 2): reactivate ghosts of failed holders.
    /// RNG-free and purely local, which is why cycle drivers may fan it
    /// out across cores; [`ProtocolNode::on_phase`] routes
    /// [`Phase::Recovery`] here.
    pub fn recover_ghosts(&mut self, fd: &dyn Fn(NodeId) -> bool) -> RecoveryOutcome {
        recover(&mut self.poly, fd)
    }

    // ------------------------------------------------------------------
    // Phases
    // ------------------------------------------------------------------

    fn heartbeat_phase(&mut self, sink: &mut EffectSink<S::Point>) {
        // No detector, no beacons: when the driver supplies failure
        // verdicts externally (heartbeat_timeout_ticks == u32::MAX),
        // nothing would ever consume these sends.
        if !self.heartbeats_enabled() {
            return;
        }
        // Heartbeats along the backup relationships (Sec. III-A suggests
        // "a reactive ping mechanism, or heartbeats").
        for peer in self
            .poly
            .backups
            .iter()
            .copied()
            .chain(self.poly.ghosts.keys().copied())
        {
            sink.push(Effect::Send {
                to: peer,
                wire: Wire::Heartbeat,
            });
        }
    }

    fn peer_sampling_phase(&mut self, sink: &mut EffectSink<S::Point>) {
        if let Some(partner) = self.rps.begin_round() {
            sink.push(Effect::Probe {
                peer: partner,
                channel: Channel::PeerSampling,
            });
        }
    }

    fn topology_phase<R: Rng + ?Sized>(
        &mut self,
        fd: &dyn Fn(NodeId) -> bool,
        rng: &mut R,
        sink: &mut EffectSink<S::Point>,
    ) {
        // Freshen the view: age entries, purge detected failures, and
        // fold in one random RPS descriptor (the random injection that
        // "guarantees the convergence of the topology", Sec. II-B).
        self.tman.begin_round();
        self.tman.purge_failed(&|id| fd(id));
        let random_contact = self.rps.view().random(rng).cloned();
        if let Some(d) = random_contact {
            if !fd(d.id) && d.id != self.id {
                self.tman.integrate(self.id, &self.poly.pos, &[d]);
            }
        }
        if let Some(partner) = self.tman.select_partner(&self.poly.pos, rng) {
            sink.push(Effect::Probe {
                peer: partner,
                channel: Channel::Topology,
            });
        }
    }

    fn backup_phase<R: Rng + ?Sized>(
        &mut self,
        fd: &dyn Fn(NodeId) -> bool,
        rng: &mut R,
        sink: &mut EffectSink<S::Point>,
    ) {
        let k = self.config.poly.replication;
        // Candidate backup targets come from the random peer-sampling
        // layer (Sec. III-D: "we spread copies as randomly as possible …
        // using the underlying peer-sampling layer"), or from the
        // topology layer for the localized-placement ablation.
        let mut pool = sink.take_ids();
        match self.config.poly.backup_placement {
            BackupPlacement::UniformRandom => {
                self.rps
                    .random_peers_into(backup_pool_size(k), rng, &mut pool)
            }
            BackupPlacement::NeighborhoodBiased => {
                self.tman
                    .closest_ids_into(&self.poly.pos, backup_pool_size(k), &mut pool)
            }
        };
        let mut ids_scratch = sink.take_point_ids();
        let mut pool_iter = pool.drain(..);
        let self_id = self.id;
        let pushes = plan_backups(
            &mut self.poly,
            self_id,
            k,
            fd,
            || pool_iter.next(),
            &mut ids_scratch,
        );
        drop(pool_iter);
        sink.put_ids(pool);
        sink.put_point_ids(ids_scratch);
        for push in pushes {
            self.heard_from_if_new(push.target);
            sink.push(Effect::Send {
                to: push.target,
                wire: Wire::BackupPush {
                    points: push.points,
                    added_points: push.added_points,
                    removed_ids: push.removed_ids,
                },
            });
        }
    }

    fn migration_phase<R: Rng + ?Sized>(
        &mut self,
        fd: &dyn Fn(NodeId) -> bool,
        rng: &mut R,
        sink: &mut EffectSink<S::Point>,
    ) {
        // Re-adopt parked handouts whose ack never came: the reply (or
        // its ack) was lost in transit, or the initiator crashed. Taking
        // the points back may duplicate them (if the reply did land) but
        // can never lose them — the at-least-once direction.
        let timeout = u64::from(self.config.migration_timeout_ticks);
        let mut ids = sink.take_ids();
        ids.extend(
            self.handouts
                .iter()
                .filter(|(_, h)| self.clock.saturating_sub(h.started) > timeout)
                .map(|(&id, _)| id),
        );
        for id in ids.drain(..) {
            let handout = self.handouts.remove(&id).expect("collected above");
            self.poly.absorb_guests(handout.points);
        }
        // One in-flight exchange at a time (Sec. III-F); a partner that
        // never answered is presumed dead after the timeout.
        if let Some(pending) = &self.pending_migration {
            if self.clock.saturating_sub(pending.started) > timeout {
                self.pending_migration = None;
            }
        }
        if self.pending_migration.is_some() {
            sink.put_ids(ids);
            return;
        }
        // Candidates: the ψ closest topology neighbors plus random RPS
        // peers (Algorithm 3 lines 1-2) — gathered in the same scratch,
        // empty again after the drain above.
        self.tman
            .closest_ids_into(&self.poly.pos, self.config.poly.psi, &mut ids);
        for _ in 0..self.config.poly.random_candidates {
            if let Some(r) = self.rps.random_peer(rng) {
                ids.push(r);
            }
        }
        let self_id = self.id;
        ids.retain(|&c| c != self_id && !fd(c));
        if ids.is_empty() {
            sink.put_ids(ids);
            return;
        }
        let q = ids[rng.random_range(0..ids.len())];
        sink.put_ids(ids);
        sink.push(Effect::Probe {
            peer: q,
            channel: Channel::Migration,
        });
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn open_exchange<R: Rng + ?Sized>(
        &mut self,
        peer: NodeId,
        channel: Channel,
        pos: Option<S::Point>,
        rng: &mut R,
        sink: &mut EffectSink<S::Point>,
    ) {
        match channel {
            Channel::PeerSampling => {
                let mut descriptors = sink.take_descriptors();
                self.rps
                    .make_request_into(self.descriptor(), peer, rng, &mut descriptors);
                sink.push(Effect::Send {
                    to: peer,
                    wire: Wire::RpsRequest { descriptors },
                });
            }
            Channel::Topology => {
                // Rank the buffer for where the partner actually is (when
                // the driver knows) or where the view believes it is.
                let mut descriptors = sink.take_descriptors();
                let target = match &pos {
                    Some(p) => Some(p),
                    None => self.tman.position_of(peer),
                };
                let Some(target) = target else {
                    sink.put_descriptors(descriptors);
                    return;
                };
                self.tman.prepare_message_into(
                    Descriptor::new(self.id, self.poly.pos.clone()),
                    target,
                    &mut descriptors,
                );
                sink.push(Effect::Send {
                    to: peer,
                    wire: Wire::TManRequest {
                        from_pos: self.poly.pos.clone(),
                        descriptors,
                    },
                });
            }
            Channel::Migration => {
                self.migration_seq += 1;
                let xid = self.migration_seq;
                let mut shipped = sink.take_point_ids();
                shipped.extend(self.poly.guests.iter().map(|g| g.id));
                shipped.sort_unstable();
                self.pending_migration = Some(PendingMigration {
                    partner: peer,
                    xid,
                    started: self.clock,
                    shipped,
                });
                let mut guests = sink.take_points();
                guests.extend(self.poly.guests.iter().cloned());
                sink.push(Effect::Send {
                    to: peer,
                    wire: Wire::MigrationRequest {
                        xid,
                        from_pos: self.poly.pos.clone(),
                        guests,
                    },
                });
            }
            // Backups, heartbeats and queries are fire-and-forget: no
            // probe is ever issued for them, so there is nothing to open.
            Channel::Backup | Channel::Heartbeat | Channel::Query => {}
        }
    }

    fn peer_unreachable(&mut self, peer: NodeId, channel: Channel) {
        match channel {
            Channel::PeerSampling => {
                // Timed-out contact: drop it (Cyclon's self-healing).
                self.rps.remove_failed(|id| id == peer);
            }
            Channel::Topology => {
                self.tman.purge_failed(&|id| id == peer);
            }
            Channel::Migration => {
                if self.pending_migration() == Some(peer) {
                    self.pending_migration = None;
                }
                // A reply we handed points to never made it (the driver
                // saw the delivery fail): re-adopt them right away rather
                // than waiting out the ack timeout.
                if let Some(handout) = self.handouts.remove(&peer) {
                    self.poly.absorb_guests(handout.points);
                }
            }
            Channel::Backup | Channel::Heartbeat | Channel::Query => {
                // Lost replica / beacon / query hop: the heartbeat
                // detector (or the gateway's query timeout) notices the
                // silence; nothing to unwind here.
            }
        }
    }

    fn handle_message<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        wire: Wire<S::Point>,
        rng: &mut R,
        sink: &mut EffectSink<S::Point>,
    ) {
        match wire {
            Wire::Heartbeat => {}
            Wire::RpsRequest { descriptors } => {
                let mut reply = sink.take_descriptors();
                self.rps
                    .handle_request_into(self.id, &descriptors, rng, &mut reply);
                sink.push(Effect::Send {
                    to: from,
                    wire: Wire::RpsReply {
                        sent: descriptors,
                        descriptors: reply,
                    },
                });
            }
            Wire::RpsReply { sent, descriptors } => {
                self.rps.handle_reply(self.id, &sent, &descriptors);
                sink.put_descriptors(sent);
                sink.put_descriptors(descriptors);
            }
            Wire::TManRequest {
                from_pos,
                descriptors,
            } => {
                let mut reply = sink.take_descriptors();
                self.tman
                    .prepare_message_into(self.descriptor(), &from_pos, &mut reply);
                self.tman.integrate(self.id, &self.poly.pos, &descriptors);
                sink.put_descriptors(descriptors);
                sink.push(Effect::Send {
                    to: from,
                    wire: Wire::TManReply { descriptors: reply },
                });
            }
            Wire::TManReply { descriptors } => {
                self.tman.integrate(self.id, &self.poly.pos, &descriptors);
                sink.put_descriptors(descriptors);
            }
            Wire::MigrationRequest {
                xid,
                from_pos,
                guests,
            } => {
                if self.pending_migration.is_some() {
                    // Busy: bounce the guests back untouched (the pairwise
                    // exclusivity requirement of Algorithm 3).
                    sink.push(Effect::Send {
                        to: from,
                        wire: Wire::MigrationReply {
                            xid,
                            points: guests,
                            busy: true,
                            pulled: 0,
                            pushed: 0,
                        },
                    });
                    return;
                }
                // A still-parked handout for the same initiator means our
                // previous reply (or its ack) never made it and the
                // initiator gave up and retried: take those points back
                // into the union before splitting again.
                if let Some(stale) = self.handouts.remove(&from) {
                    self.poly.absorb_guests(stale.points);
                }
                let mut incoming = sink.take_point_ids();
                incoming.extend(guests.iter().map(|g| g.id));
                incoming.sort_unstable();
                let outcome = absorb_and_split(
                    &self.space,
                    &self.config.poly,
                    &mut self.poly,
                    &from_pos,
                    guests,
                    rng,
                );
                // Park the part of the reply only *we* could lose: our own
                // contribution to the split. The initiator's shipped
                // points need no parking — it keeps them until the reply
                // lands (its timeout re-owns them), so re-adopting those
                // too would duplicate the whole shipped set on every lost
                // reply instead of the minimal at-least-once remainder.
                let mut own_contribution = sink.take_points();
                own_contribution.extend(
                    outcome
                        .for_initiator
                        .iter()
                        .filter(|p| incoming.binary_search(&p.id).is_err())
                        .cloned(),
                );
                sink.put_point_ids(incoming);
                if own_contribution.is_empty() {
                    sink.put_points(own_contribution);
                } else {
                    self.handouts.insert(
                        from,
                        ParkedHandout {
                            xid,
                            points: own_contribution,
                            started: self.clock,
                        },
                    );
                }
                sink.push(Effect::Send {
                    to: from,
                    wire: Wire::MigrationReply {
                        xid,
                        points: outcome.for_initiator,
                        busy: false,
                        pulled: outcome.pulled,
                        pushed: outcome.pushed,
                    },
                });
            }
            Wire::MigrationReply {
                xid, points, busy, ..
            } => {
                // Only the reply echoing the *current* generation resolves
                // the pending exchange; a stale reply (we timed out and
                // retried) falls through to the late-absorb path below and
                // must not disturb the newer exchange's state.
                let resolves_pending = self
                    .pending_migration
                    .as_ref()
                    .is_some_and(|p| p.partner == from && p.xid == xid);
                if resolves_pending {
                    let pending = self.pending_migration.take().expect("matched above");
                    if !busy {
                        // The reply redistributes the shipped guests and
                        // the responder's own; points acquired while the
                        // exchange was in flight (e.g. a recovery
                        // reactivating ghosts) are unknown to the split —
                        // replacing the guest set wholesale would orphan
                        // them, so they are re-absorbed. `retain` keeps
                        // them in arrival order, exactly as the old
                        // filter-collect did, and lets the replaced
                        // buffer recycle when nothing was acquired.
                        let mut acquired = std::mem::replace(&mut self.poly.guests, points);
                        acquired.retain(|g| pending.shipped.binary_search(&g.id).is_err());
                        if acquired.is_empty() {
                            sink.put_points(acquired);
                        } else {
                            self.poly.absorb_guests(acquired);
                        }
                        self.poly.project(&self.space, &self.config.poly, rng);
                        // Confirm custody so the responder un-parks its
                        // handout instead of re-adopting it at timeout.
                        sink.push(Effect::Send {
                            to: from,
                            wire: Wire::MigrationAck { xid },
                        });
                    } else {
                        // Busy bounce: the points are a subset of guests
                        // we still hold — only the buffer is salvageable.
                        sink.put_points(points);
                    }
                    sink.put_point_ids(pending.shipped);
                } else if !busy {
                    // Late reply after our timeout: the responder already
                    // gave these points away, so we are their only owner —
                    // dropping them would lose data. Absorb instead; any
                    // duplication with our kept guests dedups by id. The
                    // ack carries the stale generation, so it can only
                    // clear *this* reply's handout, never a newer one.
                    self.poly.absorb_guests(points);
                    self.poly.project(&self.space, &self.config.poly, rng);
                    sink.push(Effect::Send {
                        to: from,
                        wire: Wire::MigrationAck { xid },
                    });
                } else {
                    // A stale *busy* bounce is ignored outright: its
                    // points are a subset of guests we still hold.
                    sink.put_points(points);
                }
            }
            Wire::MigrationAck { xid } => {
                // The initiator holds the handed-out points: stop parking —
                // but only for the acknowledged generation.
                if self.handouts.get(&from).is_some_and(|h| h.xid == xid) {
                    if let Some(handout) = self.handouts.remove(&from) {
                        sink.put_points(handout.points);
                    }
                }
            }
            Wire::BackupPush { points, .. } => {
                if let Some(replaced) = self.poly.store_ghosts(from, points) {
                    sink.put_points(replaced);
                }
            }
            Wire::Query {
                qid,
                origin,
                key,
                ttl,
                hops,
            } => {
                // A query arriving at its own origin with zero hops is
                // the gateway injection: register it before routing.
                if origin == self.id && hops == 0 {
                    self.traffic_offered += 1;
                    self.pending_queries.insert(qid, self.clock);
                }
                match self.closer_view_entry(&key) {
                    Some(next) if hops < ttl => {
                        sink.push(Effect::Send {
                            to: next,
                            wire: Wire::Query {
                                qid,
                                origin,
                                key,
                                ttl,
                                hops: hops + 1,
                            },
                        });
                    }
                    // Terminal: nobody in the view is closer (greedy
                    // minimum — ideally the key's true closest node) or
                    // the budget ran out. Answer the gateway.
                    _ => {
                        if origin == self.id {
                            if self.pending_queries.remove(&qid).is_some() {
                                self.traffic_samples.push((hops, 0));
                            }
                        } else {
                            sink.push(Effect::Send {
                                to: origin,
                                wire: Wire::QueryReply {
                                    qid,
                                    hops,
                                    pos: self.poly.pos.clone(),
                                },
                            });
                        }
                    }
                }
            }
            Wire::QueryReply { qid, hops, .. } => {
                if let Some(issued) = self.pending_queries.remove(&qid) {
                    self.traffic_samples
                        .push((hops, self.clock.saturating_sub(issued)));
                }
            }
            Wire::QueryBatch { mut queries } => {
                // Each item follows the exact `Wire::Query` semantics
                // above — same registration, same greedy argmin, same
                // per-query hop accounting — but the forwards regroup by
                // next-hop and the terminal answers by origin, so one
                // envelope in yields at most one envelope per
                // destination out instead of one effect per query.
                let mut forwards = sink.take_query_groups();
                let mut replies = sink.take_reply_groups();
                for QueryItem {
                    qid,
                    origin,
                    key,
                    ttl,
                    hops,
                } in queries.drain(..)
                {
                    if origin == self.id && hops == 0 {
                        self.traffic_offered += 1;
                        self.pending_queries.insert(qid, self.clock);
                    }
                    match self.closer_view_entry(&key) {
                        Some(next) if hops < ttl => {
                            let slot = match forwards.iter().position(|(to, _)| *to == next) {
                                Some(i) => i,
                                None => {
                                    forwards.push((next, sink.take_queries()));
                                    forwards.len() - 1
                                }
                            };
                            forwards[slot].1.push(QueryItem {
                                qid,
                                origin,
                                key,
                                ttl,
                                hops: hops + 1,
                            });
                        }
                        _ => {
                            if origin == self.id {
                                if self.pending_queries.remove(&qid).is_some() {
                                    self.traffic_samples.push((hops, 0));
                                }
                            } else {
                                let slot = match replies.iter().position(|(to, _)| *to == origin) {
                                    Some(i) => i,
                                    None => {
                                        replies.push((origin, sink.take_replies()));
                                        replies.len() - 1
                                    }
                                };
                                replies[slot].1.push(QueryReplyItem {
                                    qid,
                                    hops,
                                    pos: self.poly.pos.clone(),
                                });
                            }
                        }
                    }
                }
                sink.put_queries(queries);
                for (to, queries) in forwards.drain(..) {
                    sink.push(Effect::Send {
                        to,
                        wire: Wire::QueryBatch { queries },
                    });
                }
                sink.put_query_groups(forwards);
                for (to, replies) in replies.drain(..) {
                    sink.push(Effect::Send {
                        to,
                        wire: Wire::QueryReplyBatch { replies },
                    });
                }
                sink.put_reply_groups(replies);
            }
            Wire::QueryReplyBatch { mut replies } => {
                for QueryReplyItem { qid, hops, .. } in replies.drain(..) {
                    if let Some(issued) = self.pending_queries.remove(&qid) {
                        self.traffic_samples
                            .push((hops, self.clock.saturating_sub(issued)));
                    }
                }
                sink.put_replies(replies);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_space::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn desc(id: u64, x: f64, y: f64) -> Descriptor<[f64; 2]> {
        Descriptor::new(NodeId::new(id), [x, y])
    }

    fn founder(id: u64, x: f64, contacts: Vec<Descriptor<[f64; 2]>>) -> ProtocolNode<Euclidean2> {
        let mut config = ProtocolConfig::default();
        config.rps_view_cap = 8;
        config.rps_shuffle_len = 4;
        config.tman.view_cap = 8;
        config.tman.m = 4;
        config.tman.psi = 2;
        config.poly = PolystyreneConfig::builder().replication(2).build();
        ProtocolNode::new(
            NodeId::new(id),
            Euclidean2,
            config,
            PolyState::with_initial_point(DataPoint::new(PointId::new(id), [x, 0.0])),
            contacts.clone(),
            contacts,
        )
    }

    /// Synchronous two-node loopback: runs `a`'s effects against `b`,
    /// delivering sends and answering probes from ground truth — a
    /// miniature cycle driver.
    fn loopback(
        a: &mut ProtocolNode<Euclidean2>,
        b: &mut ProtocolNode<Euclidean2>,
        effects: Vec<Effect<[f64; 2]>>,
        rng: &mut StdRng,
    ) {
        let mut queue: Vec<(bool, Effect<[f64; 2]>)> =
            effects.into_iter().map(|e| (true, e)).collect();
        while !queue.is_empty() {
            let (from_a, effect) = queue.remove(0);
            let (me, other) = if from_a {
                (&mut *a, &mut *b)
            } else {
                (&mut *b, &mut *a)
            };
            match effect {
                Effect::Probe { peer, channel } => {
                    let pos = if peer == other.id() {
                        Some(other.poly.pos)
                    } else {
                        None
                    };
                    let event = if pos.is_some() {
                        Event::ProbeOk { peer, channel, pos }
                    } else {
                        Event::PeerUnreachable { peer, channel }
                    };
                    queue.extend(me.on_event(event, rng).into_iter().map(|e| (from_a, e)));
                }
                Effect::Send { to, wire } => {
                    if to == other.id() {
                        let event = Event::Message {
                            from: me.id(),
                            wire,
                        };
                        queue.extend(other.on_event(event, rng).into_iter().map(|e| (!from_a, e)));
                    }
                    // Sends to anyone else are lost in this two-node world.
                }
            }
        }
    }

    #[test]
    fn full_tick_between_two_nodes_exchanges_all_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = founder(0, 0.0, vec![desc(1, 1.0, 0.0)]);
        let mut b = founder(1, 1.0, vec![desc(0, 0.0, 0.0)]);
        for _ in 0..6 {
            let ea = a.on_tick(&mut rng);
            loopback(&mut a, &mut b, ea, &mut rng);
            let eb = b.on_tick(&mut rng);
            loopback(&mut b, &mut a, eb, &mut rng);
        }
        // Both learned each other on the topology layer…
        assert!(a.tman.view_entries().iter().any(|d| d.id == b.id()));
        assert!(b.tman.view_entries().iter().any(|d| d.id == a.id()));
        // …replication took hold in both directions…
        assert!(!a.poly.ghosts.is_empty() || !b.poly.ghosts.is_empty());
        // …and every data point still has exactly one primary holder.
        assert_eq!(a.poly.guests.len() + b.poly.guests.len(), 2);
    }

    #[test]
    fn unreachable_peer_is_purged_from_both_views() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = founder(0, 0.0, vec![desc(9, 2.0, 0.0)]);
        assert!(a.rps.view().contains(NodeId::new(9)));
        a.on_event(
            Event::PeerUnreachable {
                peer: NodeId::new(9),
                channel: Channel::PeerSampling,
            },
            &mut rng,
        );
        assert!(!a.rps.view().contains(NodeId::new(9)));
        assert!(a.tman.view_entries().iter().any(|d| d.id == NodeId::new(9)));
        a.on_event(
            Event::PeerUnreachable {
                peer: NodeId::new(9),
                channel: Channel::Topology,
            },
            &mut rng,
        );
        assert!(a.tman.view_entries().is_empty());
    }

    #[test]
    fn busy_responder_bounces_migration_untouched() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = founder(1, 1.0, vec![desc(0, 0.0, 0.0)]);
        // Put b mid-exchange with node 7.
        let opened = b.on_event(
            Event::ProbeOk {
                peer: NodeId::new(7),
                channel: Channel::Migration,
                pos: None,
            },
            &mut rng,
        );
        assert!(matches!(
            opened.as_slice(),
            [Effect::Send {
                wire: Wire::MigrationRequest { .. },
                ..
            }]
        ));
        assert_eq!(b.pending_migration(), Some(NodeId::new(7)));
        let incoming = vec![DataPoint::new(PointId::new(40), [0.5, 0.0])];
        let effects = b.on_event(
            Event::Message {
                from: NodeId::new(0),
                wire: Wire::MigrationRequest {
                    xid: 7,
                    from_pos: [0.0, 0.0],
                    guests: incoming.clone(),
                },
            },
            &mut rng,
        );
        match effects.as_slice() {
            [Effect::Send {
                to,
                wire: Wire::MigrationReply { points, busy, .. },
            }] => {
                assert_eq!(*to, NodeId::new(0));
                assert!(busy);
                assert_eq!(points.len(), incoming.len());
            }
            other => panic!("expected a busy bounce, got {other:?}"),
        }
        // b's own guests were not disturbed.
        assert_eq!(b.poly.guests.len(), 1);
    }

    #[test]
    fn migration_splits_conserve_points_and_report_legs() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = founder(1, 10.0, vec![desc(0, 0.0, 0.0)]);
        b.poly
            .absorb_guests(vec![DataPoint::new(PointId::new(30), [9.0, 0.0])]);
        let effects = b.on_event(
            Event::Message {
                from: NodeId::new(0),
                wire: Wire::MigrationRequest {
                    xid: 7,
                    from_pos: [0.0, 0.0],
                    guests: vec![DataPoint::new(PointId::new(20), [1.0, 0.0])],
                },
            },
            &mut rng,
        );
        match effects.as_slice() {
            [Effect::Send {
                wire:
                    Wire::MigrationReply {
                        points,
                        busy,
                        pulled,
                        pushed,
                        ..
                    },
                ..
            }] => {
                assert!(!busy);
                assert_eq!(*pulled, 2, "responder contributed its two guests");
                assert_eq!(points.len() + b.poly.guests.len(), 3, "conservation");
                assert_eq!(*pushed, b.poly.guests.len());
            }
            other => panic!("expected a split reply, got {other:?}"),
        }
    }

    /// A responder at x = 10 holding its own point plus one near the
    /// initiator (x = 0.3): the split hands back the shipped point *and*
    /// one the responder contributed — only the latter needs parking.
    fn responder_with_contribution(rng: &mut StdRng) -> ProtocolNode<Euclidean2> {
        let mut b = founder(1, 10.0, vec![desc(0, 0.0, 0.0)]);
        b.poly
            .absorb_guests(vec![DataPoint::new(PointId::new(30), [0.3, 0.0])]);
        let effects = b.on_event(
            Event::Message {
                from: NodeId::new(0),
                wire: Wire::MigrationRequest {
                    xid: 7,
                    from_pos: [0.0, 0.0],
                    guests: vec![DataPoint::new(PointId::new(20), [1.0, 0.0])],
                },
            },
            rng,
        );
        match effects.as_slice() {
            [Effect::Send {
                wire: Wire::MigrationReply { points, busy, .. },
                ..
            }] => {
                assert!(!busy);
                assert!(
                    points.iter().any(|p| p.id == PointId::new(30)),
                    "the contributed point must travel to the initiator"
                );
                assert!(
                    points.iter().any(|p| p.id == PointId::new(20)),
                    "the shipped point must come back"
                );
            }
            other => panic!("expected a split reply, got {other:?}"),
        }
        b
    }

    #[test]
    fn split_reply_parks_own_contribution_until_ack() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = responder_with_contribution(&mut rng);
        // Only point 30 is parked: the shipped point 20 stays safe with
        // the initiator until the reply lands, so parking it too would
        // just duplicate it on every lost reply.
        assert_eq!(b.parked_ids(), vec![PointId::new(30)]);
        // A stale ack — from an exchange generation the initiator already
        // timed out — must NOT release this handout: its reply may still
        // be dropped, and the parking is the only safety copy.
        let _ = b.on_event(
            Event::Message {
                from: NodeId::new(0),
                wire: Wire::MigrationAck { xid: 6 },
            },
            &mut rng,
        );
        assert_eq!(
            b.parked_points(),
            1,
            "a stale-generation ack must not clear a newer handout"
        );
        let follow_up = b.on_event(
            Event::Message {
                from: NodeId::new(0),
                wire: Wire::MigrationAck { xid: 7 },
            },
            &mut rng,
        );
        assert!(follow_up.is_empty());
        assert_eq!(b.parked_points(), 0, "ack must clear the handout");
    }

    #[test]
    fn stale_reply_takes_the_late_path_without_touching_the_new_exchange() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut a = founder(0, 0.0, vec![desc(1, 1.0, 0.0)]);
        // Exchange 1 with node 1, which times out…
        let _ = a.on_event(
            Event::ProbeOk {
                peer: NodeId::new(1),
                channel: Channel::Migration,
                pos: None,
            },
            &mut rng,
        );
        for _ in 0..=a.config().migration_timeout_ticks {
            a.advance_clock();
        }
        let _ = a.on_phase(Phase::Migration, &|id| id != NodeId::new(1), &mut rng);
        // …then exchange 2 with the same partner.
        let _ = a.on_event(
            Event::ProbeOk {
                peer: NodeId::new(1),
                channel: Channel::Migration,
                pos: None,
            },
            &mut rng,
        );
        assert_eq!(a.pending_migration(), Some(NodeId::new(1)));
        // The slow reply to exchange 1 finally lands: it must be absorbed
        // via the late path and acked with ITS generation — exchange 2
        // stays pending, so its real reply can still resolve it.
        let effects = a.on_event(
            Event::Message {
                from: NodeId::new(1),
                wire: Wire::MigrationReply {
                    xid: 1,
                    points: vec![DataPoint::new(PointId::new(77), [0.5, 0.0])],
                    busy: false,
                    pulled: 1,
                    pushed: 0,
                },
            },
            &mut rng,
        );
        match effects.as_slice() {
            [Effect::Send {
                wire: Wire::MigrationAck { xid },
                ..
            }] => assert_eq!(*xid, 1, "the ack must carry the stale generation"),
            other => panic!("expected a stale-generation ack, got {other:?}"),
        }
        assert!(a.poly.guests.iter().any(|g| g.id == PointId::new(77)));
        assert_eq!(
            a.pending_migration(),
            Some(NodeId::new(1)),
            "the stale reply must not resolve the newer exchange"
        );
    }

    #[test]
    fn unacked_handout_is_readopted_after_timeout() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut b = responder_with_contribution(&mut rng);
        assert_eq!(b.parked_points(), 1);
        // The ack never arrives (reply lost in transit). Past the timeout
        // the migration phase re-adopts the parked contribution.
        for _ in 0..=b.config().migration_timeout_ticks {
            b.advance_clock();
        }
        let _ = b.on_phase(Phase::Migration, &|_| false, &mut rng);
        assert_eq!(b.parked_points(), 0);
        assert!(
            b.poly.guests.iter().any(|g| g.id == PointId::new(30)),
            "the contributed point must be owned again"
        );
    }

    #[test]
    fn failed_reply_delivery_readopts_handout_immediately() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = responder_with_contribution(&mut rng);
        assert_eq!(b.parked_points(), 1);
        let _ = b.on_event(
            Event::PeerUnreachable {
                peer: NodeId::new(0),
                channel: Channel::Migration,
            },
            &mut rng,
        );
        assert_eq!(b.parked_points(), 0);
        assert!(
            b.poly.guests.iter().any(|g| g.id == PointId::new(30)),
            "the contributed point must be owned again"
        );
    }

    #[test]
    fn heartbeat_silence_raises_suspicion_and_recovery_reactivates() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = founder(0, 0.0, vec![desc(1, 1.0, 0.0)]);
        a.on_event(
            Event::Message {
                from: NodeId::new(5),
                wire: Wire::BackupPush {
                    points: vec![DataPoint::new(PointId::new(50), [3.0, 0.0])],
                    added_points: 1,
                    removed_ids: 0,
                },
            },
            &mut rng,
        );
        assert!(a.suspects().is_empty());
        // While the ghosts are held, 5 is monitored: the first tick
        // heartbeats it back.
        let effects = a.on_tick(&mut rng);
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::Send { to, wire: Wire::Heartbeat } if *to == NodeId::new(5)
        )));
        // Silence past the heartbeat timeout: suspicion arises and the
        // same tick's recovery phase reactivates the ghosts.
        for _ in 0..=a.config().heartbeat_timeout_ticks {
            let _ = a.on_tick(&mut rng);
        }
        assert!(a.suspects().contains(&NodeId::new(5)));
        assert!(a.poly.ghosts.is_empty());
        assert!(a.poly.guests.iter().any(|g| g.id == PointId::new(50)));
    }

    /// Injects a query at `node` through its own gateway, as a driver
    /// would: `Event::Message` from the node itself with zero hops.
    fn inject_query(
        node: &mut ProtocolNode<Euclidean2>,
        qid: u64,
        key: [f64; 2],
        ttl: u32,
        rng: &mut StdRng,
    ) -> Vec<Effect<[f64; 2]>> {
        let origin = node.id();
        node.on_event(
            Event::Message {
                from: origin,
                wire: Wire::Query {
                    qid,
                    origin,
                    key,
                    ttl,
                    hops: 0,
                },
            },
            rng,
        )
    }

    #[test]
    fn query_with_no_closer_neighbor_completes_at_the_gateway() {
        let mut rng = StdRng::seed_from_u64(21);
        // a's only view entry (node 1 at x=1) is farther from the key
        // than a itself: the query terminates locally, zero hops.
        let mut a = founder(0, 0.0, vec![desc(1, 1.0, 0.0)]);
        let effects = inject_query(&mut a, 7, [-0.4, 0.0], 8, &mut rng);
        assert!(effects.is_empty(), "local completion sends nothing");
        let mut samples = Vec::new();
        let (offered, delivered, dropped) = a.take_traffic(&mut samples);
        assert_eq!((offered, delivered, dropped), (1, 1, 0));
        assert_eq!(samples, vec![(0, 0)]);
        assert_eq!(a.pending_query_count(), 0);
    }

    #[test]
    fn query_forwards_to_the_strictly_closest_view_entry() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut a = founder(0, 0.0, vec![desc(1, 1.0, 0.0), desc(2, 3.0, 0.0)]);
        let effects = inject_query(&mut a, 9, [3.1, 0.0], 8, &mut rng);
        match effects.as_slice() {
            [Effect::Send {
                to,
                wire: Wire::Query { qid, hops, .. },
            }] => {
                assert_eq!(
                    *to,
                    NodeId::new(2),
                    "argmin of the view, not just any closer"
                );
                assert_eq!(*qid, 9);
                assert_eq!(*hops, 1);
            }
            other => panic!("expected a forwarded query, got {other:?}"),
        }
        assert_eq!(a.pending_query_count(), 1);
        // The remote terminus answers; the gateway records the completion.
        let _ = a.on_event(
            Event::Message {
                from: NodeId::new(2),
                wire: Wire::QueryReply {
                    qid: 9,
                    hops: 1,
                    pos: [3.0, 0.0],
                },
            },
            &mut rng,
        );
        let mut samples = Vec::new();
        let (offered, delivered, dropped) = a.take_traffic(&mut samples);
        assert_eq!((offered, delivered, dropped), (1, 1, 0));
        assert_eq!(samples, vec![(1, 0)]);
    }

    #[test]
    fn non_origin_terminus_replies_to_the_gateway() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut b = founder(1, 1.0, vec![desc(5, 9.0, 0.0)]);
        // b is the closest to the key among what it can see: terminal.
        let effects = b.on_event(
            Event::Message {
                from: NodeId::new(0),
                wire: Wire::Query {
                    qid: 4,
                    origin: NodeId::new(0),
                    key: [1.2, 0.0],
                    ttl: 8,
                    hops: 3,
                },
            },
            &mut rng,
        );
        match effects.as_slice() {
            [Effect::Send {
                to,
                wire: Wire::QueryReply { qid, hops, pos },
            }] => {
                assert_eq!(*to, NodeId::new(0));
                assert_eq!(*qid, 4);
                assert_eq!(*hops, 3);
                assert_eq!(*pos, [1.0, 0.0]);
            }
            other => panic!("expected a reply to the gateway, got {other:?}"),
        }
        // Relaying leaves no gateway state behind on the terminus.
        assert_eq!(b.pending_query_count(), 0);
    }

    #[test]
    fn exhausted_ttl_terminates_at_the_current_hop() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut b = founder(1, 1.0, vec![desc(2, 3.0, 0.0)]);
        // Node 2 is strictly closer to the key, but the budget is spent.
        let effects = b.on_event(
            Event::Message {
                from: NodeId::new(0),
                wire: Wire::Query {
                    qid: 5,
                    origin: NodeId::new(0),
                    key: [3.0, 0.0],
                    ttl: 2,
                    hops: 2,
                },
            },
            &mut rng,
        );
        assert!(
            matches!(
                effects.as_slice(),
                [Effect::Send {
                    wire: Wire::QueryReply { .. },
                    ..
                }]
            ),
            "a spent budget must answer from where the query stands"
        );
    }

    #[test]
    fn unanswered_query_is_written_off_at_drain_after_the_timeout() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut a = founder(0, 0.0, vec![desc(2, 3.0, 0.0)]);
        let effects = inject_query(&mut a, 11, [3.0, 0.0], 8, &mut rng);
        assert_eq!(effects.len(), 1, "forwarded into the (lossy) world");
        let mut samples = Vec::new();
        // Drains before the timeout leave the query pending…
        let (offered, delivered, dropped) = a.take_traffic(&mut samples);
        assert_eq!((offered, delivered, dropped), (1, 0, 0));
        assert_eq!(a.pending_query_count(), 1);
        // …and once the gateway's clock passes the timeout, the next
        // drain writes it off as dropped-in-hole.
        for _ in 0..=a.config().query_timeout_ticks {
            a.advance_clock();
        }
        let (offered, delivered, dropped) = a.take_traffic(&mut samples);
        assert_eq!((offered, delivered, dropped), (0, 0, 1));
        assert!(samples.is_empty());
        assert_eq!(a.pending_query_count(), 0);
    }

    #[test]
    fn empty_joiner_initiates_migration_to_attract_points() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut config = ProtocolConfig::default();
        config.rps_view_cap = 8;
        config.rps_shuffle_len = 4;
        config.tman.view_cap = 8;
        config.tman.m = 4;
        config.tman.psi = 2;
        let mut joiner = ProtocolNode::new(
            NodeId::new(3),
            Euclidean2,
            config,
            PolyState::empty_at([0.5, 0.0]),
            vec![desc(0, 0.0, 0.0)],
            vec![desc(0, 0.0, 0.0)],
        );
        let effects = joiner.on_phase(Phase::Migration, &|_| false, &mut rng);
        assert!(
            matches!(
                effects.as_slice(),
                [Effect::Probe {
                    channel: Channel::Migration,
                    ..
                }]
            ),
            "a node with no guests must still initiate exchanges (paper Phase 3)"
        );
    }
}
