//! The sans-IO surface: what crosses the wire ([`Wire`]), what the driver
//! feeds in ([`Event`]) and what the node asks for ([`Effect`]).

use polystyrene::prelude::{DataPoint, PointId};
use polystyrene_membership::{Descriptor, NodeId};

/// The protocol layer an exchange belongs to — used to route
/// delivery-failure feedback to the right purge logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Channel {
    /// Cyclon shuffles.
    PeerSampling,
    /// T-Man view exchanges.
    Topology,
    /// Pull-push data-point migration (paper Algorithm 3).
    Migration,
    /// Replica pushes (paper Algorithm 1).
    Backup,
    /// Liveness beacons.
    Heartbeat,
    /// Application-plane key lookups (the traffic plane).
    Query,
}

/// Everything that can cross the network between two protocol nodes.
///
/// The cycle engine delivers these atomically (the paper's reliable
/// in-order TCP stand-in); asynchronous drivers — the threaded runtime
/// and the discrete-event network simulator — may delay, drop, or reorder
/// any of them. The vocabulary is designed so that every loss is safe in
/// the *at-least-once* direction: a dropped message can duplicate a data
/// point (both endpoints keep a copy) but never destroy the last copy.
/// The migration pull-push exchange achieves this with [`Wire::MigrationAck`]:
/// the responder parks the points it handed out until the initiator
/// acknowledges them, and re-adopts them if the acknowledgment never
/// arrives.
#[derive(Clone, Debug, PartialEq)]
pub enum Wire<P> {
    /// Cyclon shuffle request (peer-sampling layer).
    RpsRequest {
        /// Shuffled-out descriptors.
        descriptors: Vec<Descriptor<P>>,
    },
    /// Cyclon shuffle reply.
    RpsReply {
        /// Descriptors the initiator originally sent (for slot reuse).
        sent: Vec<Descriptor<P>>,
        /// Responder's shuffled-out descriptors.
        descriptors: Vec<Descriptor<P>>,
    },
    /// T-Man view exchange request.
    TManRequest {
        /// Initiator's current position (for the ranked reply).
        from_pos: P,
        /// The initiator's `m` best descriptors for the recipient.
        descriptors: Vec<Descriptor<P>>,
    },
    /// T-Man view exchange reply.
    TManReply {
        /// The responder's `m` best descriptors for the initiator.
        descriptors: Vec<Descriptor<P>>,
    },
    /// Migration pull-push request (paper Algorithm 3): the initiator
    /// ships its whole guest set; the responder runs `SPLIT` and returns
    /// the initiator's share.
    MigrationRequest {
        /// Exchange generation, from the initiator's private counter.
        /// Echoed by the reply and its ack so that, over a delaying
        /// fabric, a *stale* reply (from an exchange the initiator
        /// already timed out and retried) can never be mistaken for the
        /// current one — and a stale ack can never clear a newer parked
        /// handout.
        xid: u64,
        /// Initiator's current position (`pos_p` of the split).
        from_pos: P,
        /// Initiator's guests (the *pull* leg).
        guests: Vec<DataPoint<P>>,
    },
    /// Migration reply carrying the initiator's share (the *push* leg),
    /// or — when `busy` — the untouched original guests, because the
    /// responder was itself mid-exchange ("q should not be interacting
    /// with anyone else than p while the exchange occurs", Sec. III-F).
    MigrationReply {
        /// The request's exchange generation, echoed back.
        xid: u64,
        /// Points now owned by the initiator.
        points: Vec<DataPoint<P>>,
        /// Whether this is a busy-bounce rather than a real split.
        busy: bool,
        /// Points the responder contributed to the union — the *pull* leg
        /// of the paper's traffic accounting (Sec. IV-A cost units).
        pulled: usize,
        /// Points the responder kept after the split — the *push* leg.
        pushed: usize,
    },
    /// Confirms that a (non-busy) [`Wire::MigrationReply`] was received
    /// and applied. The responder of a migration split no longer owns the
    /// points it mailed back to the initiator; until this ack arrives it
    /// *parks* them, and re-adopts them after a timeout — so a dropped
    /// reply duplicates points (benign, deduplicated by id within a node)
    /// instead of losing them. Synchronous drivers deliver the ack in the
    /// same instant as the reply, making the parking invisible.
    MigrationAck {
        /// The acknowledged reply's exchange generation: the responder
        /// only un-parks the handout of *this* generation, so an ack for
        /// an older exchange cannot clear a newer handout whose reply is
        /// still in flight.
        xid: u64,
    },
    /// Replica push (paper Algorithm 1): `ghosts[from] ← points`, with
    /// the incremental-delta accounting of Sec. III-D.
    BackupPush {
        /// Full replica to store — the in-memory message always carries
        /// the whole guest set (`b.ghosts[p] ← guests`).
        points: Vec<DataPoint<P>>,
        /// Points added with respect to the previous push to this target.
        /// Together with `removed_ids` this models the incremental-delta
        /// *traffic accounting* of Sec. III-D (only the delta would cross
        /// a real serialized transport); pushes with an empty delta are
        /// elided entirely by `plan_backups`.
        added_points: usize,
        /// Point ids removed since the previous push (counted as bare ids).
        removed_ids: usize,
    },
    /// Liveness beacon along backup relationships.
    Heartbeat,
    /// Application-plane key lookup hopping greedily toward `key`: each
    /// node forwards to the view entry strictly closest to the key, so
    /// the route is served entirely from local knowledge — exactly what
    /// degrades when the overlay loses its shape. Handling a query draws
    /// **no protocol entropy** (forwarding is a deterministic argmin over
    /// the view), so enabling traffic cannot shift a single rng draw of
    /// the fingerprint-pinned protocol schedules.
    Query {
        /// Query generation id, unique per origin substrate.
        qid: u64,
        /// The gateway node that issued the lookup and awaits the reply.
        origin: NodeId,
        /// The key's position in the data space.
        key: P,
        /// Remaining hop budget.
        ttl: u32,
        /// Hops taken so far.
        hops: u32,
    },
    /// Terminal answer to a [`Wire::Query`], sent straight back to the
    /// origin by the node whose view has no entry closer to the key.
    QueryReply {
        /// The answered query's generation id.
        qid: u64,
        /// Hops the query took to reach the terminal node.
        hops: u32,
        /// The terminal node's position (the resolved "responsible"
        /// location for the key).
        pos: P,
    },
    /// A batch of co-destined queries sharing one envelope. Semantically
    /// identical to delivering each [`Wire::Query`] item in order; the
    /// batch only amortizes per-message dispatch (one kernel event, one
    /// frame, one mailbox send). Each item keeps its own `hops`/`ttl`, so
    /// grouping by next-hop preserves per-query hop accounting exactly.
    QueryBatch {
        /// The batched queries, in offer/forward order.
        queries: Vec<QueryItem<P>>,
    },
    /// A batch of co-destined query replies (all bound for the same
    /// origin gateway), the terminal counterpart of [`Wire::QueryBatch`].
    QueryReplyBatch {
        /// The batched replies, in resolution order.
        replies: Vec<QueryReplyItem<P>>,
    },
}

/// One query of a [`Wire::QueryBatch`] — the payload fields of
/// [`Wire::Query`] as a plain struct, so co-destined queries can share
/// an envelope (and a pooled buffer) without losing per-query state.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryItem<P> {
    /// Query generation id, unique per origin substrate.
    pub qid: u64,
    /// The gateway node that issued the lookup and awaits the reply.
    pub origin: NodeId,
    /// The key's position in the data space.
    pub key: P,
    /// Remaining hop budget.
    pub ttl: u32,
    /// Hops taken so far.
    pub hops: u32,
}

/// One reply of a [`Wire::QueryReplyBatch`] — the payload fields of
/// [`Wire::QueryReply`] as a plain struct.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryReplyItem<P> {
    /// The answered query's generation id.
    pub qid: u64,
    /// Hops the query took to reach the terminal node.
    pub hops: u32,
    /// The terminal node's position.
    pub pos: P,
}

impl<P> Wire<P> {
    /// The protocol layer this payload belongs to.
    pub fn channel(&self) -> Channel {
        match self {
            Wire::RpsRequest { .. } | Wire::RpsReply { .. } => Channel::PeerSampling,
            Wire::TManRequest { .. } | Wire::TManReply { .. } => Channel::Topology,
            Wire::MigrationRequest { .. }
            | Wire::MigrationReply { .. }
            | Wire::MigrationAck { .. } => Channel::Migration,
            Wire::BackupPush { .. } => Channel::Backup,
            Wire::Heartbeat => Channel::Heartbeat,
            Wire::Query { .. }
            | Wire::QueryReply { .. }
            | Wire::QueryBatch { .. }
            | Wire::QueryReplyBatch { .. } => Channel::Query,
        }
    }

    /// Short tag for logging and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Wire::RpsRequest { .. } => "rps_request",
            Wire::RpsReply { .. } => "rps_reply",
            Wire::TManRequest { .. } => "tman_request",
            Wire::TManReply { .. } => "tman_reply",
            Wire::MigrationRequest { .. } => "migration_request",
            Wire::MigrationReply { .. } => "migration_reply",
            Wire::MigrationAck { .. } => "migration_ack",
            Wire::BackupPush { .. } => "backup_push",
            Wire::Heartbeat => "heartbeat",
            Wire::Query { .. } => "query",
            Wire::QueryReply { .. } => "query_reply",
            Wire::QueryBatch { .. } => "query_batch",
            Wire::QueryReplyBatch { .. } => "query_reply_batch",
        }
    }
}

/// Everything a driver can feed into [`crate::node::ProtocolNode::on_event`].
#[derive(Clone, Debug, PartialEq)]
pub enum Event<P> {
    /// A wire message arrived from `from`.
    Message {
        /// The sender.
        from: NodeId,
        /// The payload.
        wire: Wire<P>,
    },
    /// The driver resolved an earlier [`Effect::Probe`]: the peer is
    /// reachable — the node now builds and sends the actual request.
    ///
    /// `pos` optionally carries the peer's current position when the
    /// driver knows it (a synchronous cycle driver does — the atomic
    /// exchange of the cycle model implies both endpoints see each
    /// other's live state); an asynchronous driver passes `None` and the
    /// node falls back to its view's belief.
    ProbeOk {
        /// The probed peer.
        peer: NodeId,
        /// Which exchange the probe was for.
        channel: Channel,
        /// The peer's current position, if the driver knows it.
        pos: Option<P>,
    },
    /// The driver could not reach `peer` (probe refused, send failed, or
    /// an exchange timed out at the transport level).
    PeerUnreachable {
        /// The unreachable peer.
        peer: NodeId,
        /// Which exchange failed.
        channel: Channel,
    },
}

/// Everything a node can ask its driver to do.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect<P> {
    /// Check whether `peer` is reachable before opening an exchange on
    /// `channel`; the driver must answer with [`Event::ProbeOk`] or
    /// [`Event::PeerUnreachable`].
    Probe {
        /// The peer to probe.
        peer: NodeId,
        /// The exchange the probe is for.
        channel: Channel,
    },
    /// Deliver `wire` to `to` (fire-and-forget; the driver reports a
    /// known-failed delivery back as [`Event::PeerUnreachable`]).
    Send {
        /// The destination.
        to: NodeId,
        /// The payload.
        wire: Wire<P>,
    },
}

/// Total element capacity one payload kind may retain across all its
/// pooled buffers. A batch driver keeps hundreds of payloads in flight
/// per round (one request plus one reply per node), so the bound is on
/// retained *elements*, not buffer count: surplus returns beyond the
/// budget are dropped, capping the pool's resident memory at roughly
/// `MAX_POOLED_ELEMENTS × size_of::<element>()` per kind regardless of
/// network size.
const MAX_POOLED_ELEMENTS: usize = 1 << 21;

/// Largest element capacity worth retaining. A burst (a catastrophic
/// failure shipping a 100k-point payload) must not pin its peak buffer in
/// the pool forever: oversized buffers are dropped on return.
const MAX_POOLED_CAPACITY: usize = 4096;

/// A recycler for the three payload buffer shapes that cross the wire:
/// `Vec<Descriptor<P>>` (gossip views), `Vec<DataPoint<P>>` (migration and
/// backup payloads) and `Vec<PointId>` (id scratch for membership tests).
///
/// Every [`Wire`] payload used to be allocated fresh by the sender and
/// dropped by the receiver — the dominant steady-state allocation source
/// once the drivers went slab-based. The pool lives inside the driver's
/// [`EffectSink`], so sender and receiver share it under a batch driver:
/// a request's buffer is recycled by the receiving node's handler and
/// comes back out for the very next reply.
///
/// Buffers are cleared on return (a recycled buffer can never leak stale
/// descriptors into a fresh payload) and bounded two ways: each buffer
/// holds at most `MAX_POOLED_CAPACITY` elements of capacity, and each
/// kind retains at most `MAX_POOLED_ELEMENTS` elements of capacity in
/// total — enough for every in-flight payload of a large batch round to
/// recycle, small enough that a one-off spike cannot pin unbounded
/// memory.
#[derive(Debug)]
pub struct BufPool<P> {
    descriptors: Vec<Vec<Descriptor<P>>>,
    points: Vec<Vec<DataPoint<P>>>,
    point_ids: Vec<Vec<PointId>>,
    queries: Vec<Vec<QueryItem<P>>>,
    replies: Vec<Vec<QueryReplyItem<P>>>,
    /// Retained element capacity per kind, same order as the stacks.
    descriptors_retained: usize,
    points_retained: usize,
    point_ids_retained: usize,
    queries_retained: usize,
    replies_retained: usize,
}

impl<P> BufPool<P> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            descriptors: Vec::new(),
            points: Vec::new(),
            point_ids: Vec::new(),
            queries: Vec::new(),
            replies: Vec::new(),
            descriptors_retained: 0,
            points_retained: 0,
            point_ids_retained: 0,
            queries_retained: 0,
            replies_retained: 0,
        }
    }

    fn put<T>(stack: &mut Vec<Vec<T>>, retained: &mut usize, mut buf: Vec<T>) {
        buf.clear();
        let cap = buf.capacity();
        if cap > 0 && cap <= MAX_POOLED_CAPACITY && *retained + cap <= MAX_POOLED_ELEMENTS {
            *retained += cap;
            stack.push(buf);
        }
    }

    fn take<T>(stack: &mut Vec<Vec<T>>, retained: &mut usize) -> Vec<T> {
        match stack.pop() {
            Some(buf) => {
                *retained -= buf.capacity();
                buf
            }
            None => Vec::new(),
        }
    }

    /// A cleared descriptor buffer (pooled capacity when available).
    pub fn take_descriptors(&mut self) -> Vec<Descriptor<P>> {
        Self::take(&mut self.descriptors, &mut self.descriptors_retained)
    }

    /// Returns a descriptor buffer to the pool.
    pub fn put_descriptors(&mut self, buf: Vec<Descriptor<P>>) {
        Self::put(&mut self.descriptors, &mut self.descriptors_retained, buf);
    }

    /// A cleared data-point buffer (pooled capacity when available).
    pub fn take_points(&mut self) -> Vec<DataPoint<P>> {
        Self::take(&mut self.points, &mut self.points_retained)
    }

    /// Returns a data-point buffer to the pool.
    pub fn put_points(&mut self, buf: Vec<DataPoint<P>>) {
        Self::put(&mut self.points, &mut self.points_retained, buf);
    }

    /// A cleared point-id buffer (pooled capacity when available).
    pub fn take_point_ids(&mut self) -> Vec<PointId> {
        Self::take(&mut self.point_ids, &mut self.point_ids_retained)
    }

    /// Returns a point-id buffer to the pool.
    pub fn put_point_ids(&mut self, buf: Vec<PointId>) {
        Self::put(&mut self.point_ids, &mut self.point_ids_retained, buf);
    }

    /// A cleared query-batch buffer (pooled capacity when available).
    pub fn take_queries(&mut self) -> Vec<QueryItem<P>> {
        Self::take(&mut self.queries, &mut self.queries_retained)
    }

    /// Returns a query-batch buffer to the pool.
    pub fn put_queries(&mut self, buf: Vec<QueryItem<P>>) {
        Self::put(&mut self.queries, &mut self.queries_retained, buf);
    }

    /// A cleared reply-batch buffer (pooled capacity when available).
    pub fn take_replies(&mut self) -> Vec<QueryReplyItem<P>> {
        Self::take(&mut self.replies, &mut self.replies_retained)
    }

    /// Returns a reply-batch buffer to the pool.
    pub fn put_replies(&mut self, buf: Vec<QueryReplyItem<P>>) {
        Self::put(&mut self.replies, &mut self.replies_retained, buf);
    }

    /// Salvages the payload buffers of a wire message that reached the end
    /// of its life without transferring ownership — dropped by the fabric,
    /// addressed to a dead node, or fully consumed by a handler.
    pub fn recycle_wire(&mut self, wire: Wire<P>) {
        match wire {
            Wire::RpsRequest { descriptors } | Wire::TManReply { descriptors } => {
                self.put_descriptors(descriptors);
            }
            Wire::RpsReply { sent, descriptors } => {
                self.put_descriptors(sent);
                self.put_descriptors(descriptors);
            }
            Wire::TManRequest { descriptors, .. } => self.put_descriptors(descriptors),
            Wire::MigrationRequest { guests, .. } => self.put_points(guests),
            Wire::MigrationReply { points, .. } => self.put_points(points),
            Wire::BackupPush { points, .. } => self.put_points(points),
            Wire::QueryBatch { queries } => self.put_queries(queries),
            Wire::QueryReplyBatch { replies } => self.put_replies(replies),
            Wire::MigrationAck { .. }
            | Wire::Heartbeat
            | Wire::Query { .. }
            | Wire::QueryReply { .. } => {}
        }
    }

    /// Buffers currently retained per kind: `(descriptors, points,
    /// point_ids, queries, replies)` — test/diagnostic surface for the
    /// retention bounds.
    pub fn pooled_counts(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.descriptors.len(),
            self.points.len(),
            self.point_ids.len(),
            self.queries.len(),
            self.replies.len(),
        )
    }

    /// Element capacity currently retained per kind: `(descriptors,
    /// points, point_ids, queries, replies)`. Each component is bounded
    /// by the per-kind element budget [`BufPool::max_pooled_elements`].
    pub fn pooled_elements(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.descriptors_retained,
            self.points_retained,
            self.point_ids_retained,
            self.queries_retained,
            self.replies_retained,
        )
    }

    /// The per-kind retained-element budget (test/diagnostic surface).
    pub fn max_pooled_elements() -> usize {
        MAX_POOLED_ELEMENTS
    }

    /// The per-buffer retained-capacity cap (test/diagnostic surface).
    pub fn max_pooled_capacity() -> usize {
        MAX_POOLED_CAPACITY
    }
}

impl<P> Default for BufPool<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// A reusable buffer the phase pipeline pushes [`Effect`]s into.
///
/// The `on_tick`/`on_phase`/`on_event` family used to return a freshly
/// allocated `Vec<Effect>` per call — two to six allocations per node per
/// round, which dominates the cycle engine's hot loop past ~50k nodes. A
/// batch driver now owns **one** sink, clears it between activations, and
/// passes it to the `*_into` twins; the effect and id scratch capacities
/// warm up over the first round and are reused for the rest of the run.
///
/// The legacy `Vec`-returning entry points still exist as thin wrappers
/// (they build a throwaway sink), so occasional-use drivers — the
/// threaded runtime, the TCP cluster — compile unchanged.
#[derive(Debug)]
pub struct EffectSink<P> {
    effects: Vec<Effect<P>>,
    /// Scratch for the phases' per-call `Vec<NodeId>` temporaries
    /// (expired handouts, migration candidates, backup pools). Taken with
    /// `mem::take` while a phase runs so it can coexist with effect
    /// pushes, and handed back — cleared but with capacity intact — when
    /// the phase finishes.
    ids: Vec<NodeId>,
    /// Recycler for wire payload buffers; shared between every node a
    /// batch driver activates with this sink, so a consumed request's
    /// buffer resurfaces for the next reply.
    pool: BufPool<P>,
    /// Scratch for grouping a query batch's forwards by next-hop (the
    /// outer slots survive between activations; the inner buffers come
    /// from and return to the pool).
    query_groups: Vec<(NodeId, Vec<QueryItem<P>>)>,
    /// Scratch for grouping a query batch's terminal replies by origin.
    reply_groups: Vec<(NodeId, Vec<QueryReplyItem<P>>)>,
}

impl<P> EffectSink<P> {
    /// An empty sink.
    pub fn new() -> Self {
        Self {
            effects: Vec::new(),
            ids: Vec::new(),
            pool: BufPool::new(),
            query_groups: Vec::new(),
            reply_groups: Vec::new(),
        }
    }

    /// Queues one effect for the driver.
    pub fn push(&mut self, effect: Effect<P>) {
        self.effects.push(effect);
    }

    /// The effects queued so far.
    pub fn effects(&self) -> &[Effect<P>] {
        &self.effects
    }

    /// Number of queued effects.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// Whether no effects are queued.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }

    /// Clears the queued effects, keeping both buffers' capacity.
    pub fn clear(&mut self) {
        self.effects.clear();
    }

    /// Removes and yields the queued effects, keeping capacity.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Effect<P>> {
        self.effects.drain(..)
    }

    /// Consumes the sink into the queued effects (the compat wrappers'
    /// return value).
    pub fn into_effects(self) -> Vec<Effect<P>> {
        self.effects
    }

    /// Borrows the id scratch out of the sink (empty, capacity warm).
    /// Return it with [`EffectSink::put_ids`] so the capacity survives to
    /// the next activation.
    pub fn take_ids(&mut self) -> Vec<NodeId> {
        let mut ids = std::mem::take(&mut self.ids);
        ids.clear();
        ids
    }

    /// Hands the id scratch back after a phase is done with it.
    pub fn put_ids(&mut self, mut ids: Vec<NodeId>) {
        ids.clear();
        self.ids = ids;
    }

    /// A cleared descriptor payload buffer from the sink's [`BufPool`].
    pub fn take_descriptors(&mut self) -> Vec<Descriptor<P>> {
        self.pool.take_descriptors()
    }

    /// Recycles a descriptor payload buffer.
    pub fn put_descriptors(&mut self, buf: Vec<Descriptor<P>>) {
        self.pool.put_descriptors(buf);
    }

    /// A cleared data-point payload buffer from the sink's [`BufPool`].
    pub fn take_points(&mut self) -> Vec<DataPoint<P>> {
        self.pool.take_points()
    }

    /// Recycles a data-point payload buffer.
    pub fn put_points(&mut self, buf: Vec<DataPoint<P>>) {
        self.pool.put_points(buf);
    }

    /// A cleared point-id scratch buffer from the sink's [`BufPool`].
    pub fn take_point_ids(&mut self) -> Vec<PointId> {
        self.pool.take_point_ids()
    }

    /// Recycles a point-id scratch buffer.
    pub fn put_point_ids(&mut self, buf: Vec<PointId>) {
        self.pool.put_point_ids(buf);
    }

    /// A cleared query-batch payload buffer from the sink's [`BufPool`].
    pub fn take_queries(&mut self) -> Vec<QueryItem<P>> {
        self.pool.take_queries()
    }

    /// Recycles a query-batch payload buffer.
    pub fn put_queries(&mut self, buf: Vec<QueryItem<P>>) {
        self.pool.put_queries(buf);
    }

    /// A cleared reply-batch payload buffer from the sink's [`BufPool`].
    pub fn take_replies(&mut self) -> Vec<QueryReplyItem<P>> {
        self.pool.take_replies()
    }

    /// Recycles a reply-batch payload buffer.
    pub fn put_replies(&mut self, buf: Vec<QueryReplyItem<P>>) {
        self.pool.put_replies(buf);
    }

    /// Borrows the per-next-hop query grouping scratch (empty, outer
    /// capacity warm). Return it with [`EffectSink::put_query_groups`].
    pub fn take_query_groups(&mut self) -> Vec<(NodeId, Vec<QueryItem<P>>)> {
        let mut groups = std::mem::take(&mut self.query_groups);
        groups.clear();
        groups
    }

    /// Hands the query grouping scratch back, recycling any inner
    /// buffers still attached to it.
    pub fn put_query_groups(&mut self, mut groups: Vec<(NodeId, Vec<QueryItem<P>>)>) {
        for (_, buf) in groups.drain(..) {
            self.pool.put_queries(buf);
        }
        self.query_groups = groups;
    }

    /// Borrows the per-origin reply grouping scratch (empty, outer
    /// capacity warm). Return it with [`EffectSink::put_reply_groups`].
    pub fn take_reply_groups(&mut self) -> Vec<(NodeId, Vec<QueryReplyItem<P>>)> {
        let mut groups = std::mem::take(&mut self.reply_groups);
        groups.clear();
        groups
    }

    /// Hands the reply grouping scratch back, recycling any inner
    /// buffers still attached to it.
    pub fn put_reply_groups(&mut self, mut groups: Vec<(NodeId, Vec<QueryReplyItem<P>>)>) {
        for (_, buf) in groups.drain(..) {
            self.pool.put_replies(buf);
        }
        self.reply_groups = groups;
    }

    /// Salvages the payload buffers of a terminal wire message (see
    /// [`BufPool::recycle_wire`]).
    pub fn recycle_wire(&mut self, wire: Wire<P>) {
        self.pool.recycle_wire(wire);
    }

    /// Read access to the payload pool (tests, diagnostics).
    pub fn buf_pool(&self) -> &BufPool<P> {
        &self.pool
    }
}

impl<P> Default for EffectSink<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effect_sink_reuses_capacity_across_rounds() {
        let mut sink: EffectSink<f64> = EffectSink::new();
        sink.push(Effect::Probe {
            peer: NodeId::new(1),
            channel: Channel::Topology,
        });
        sink.push(Effect::Send {
            to: NodeId::new(2),
            wire: Wire::Heartbeat,
        });
        assert_eq!(sink.len(), 2);
        let drained: Vec<_> = sink.drain().collect();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());

        let mut ids = sink.take_ids();
        ids.extend([NodeId::new(7), NodeId::new(8)]);
        let cap = ids.capacity();
        sink.put_ids(ids);
        let again = sink.take_ids();
        assert!(again.is_empty());
        assert!(again.capacity() >= cap, "scratch capacity must survive");
        sink.put_ids(again);
    }

    #[test]
    fn kinds_and_channels_are_consistent() {
        let wires: Vec<Wire<f64>> = vec![
            Wire::RpsRequest {
                descriptors: vec![],
            },
            Wire::TManReply {
                descriptors: vec![],
            },
            Wire::MigrationReply {
                xid: 1,
                points: vec![],
                busy: false,
                pulled: 0,
                pushed: 0,
            },
            Wire::MigrationAck { xid: 1 },
            Wire::BackupPush {
                points: vec![],
                added_points: 0,
                removed_ids: 0,
            },
            Wire::Heartbeat,
            Wire::Query {
                qid: 9,
                origin: NodeId::new(3),
                key: 0.5,
                ttl: 16,
                hops: 2,
            },
            Wire::QueryReply {
                qid: 9,
                hops: 4,
                pos: 0.25,
            },
            Wire::QueryBatch {
                queries: vec![QueryItem {
                    qid: 11,
                    origin: NodeId::new(3),
                    key: 0.5,
                    ttl: 16,
                    hops: 0,
                }],
            },
            Wire::QueryReplyBatch {
                replies: vec![QueryReplyItem {
                    qid: 11,
                    hops: 3,
                    pos: 0.75,
                }],
            },
        ];
        let kinds: Vec<&str> = wires.iter().map(Wire::kind).collect();
        assert_eq!(
            kinds,
            vec![
                "rps_request",
                "tman_reply",
                "migration_reply",
                "migration_ack",
                "backup_push",
                "heartbeat",
                "query",
                "query_reply",
                "query_batch",
                "query_reply_batch"
            ]
        );
        assert_eq!(wires[0].channel(), Channel::PeerSampling);
        assert_eq!(wires[1].channel(), Channel::Topology);
        assert_eq!(wires[2].channel(), Channel::Migration);
        assert_eq!(wires[3].channel(), Channel::Migration);
        assert_eq!(wires[4].channel(), Channel::Backup);
        assert_eq!(wires[5].channel(), Channel::Heartbeat);
        assert_eq!(wires[6].channel(), Channel::Query);
        assert_eq!(wires[7].channel(), Channel::Query);
        assert_eq!(wires[8].channel(), Channel::Query);
        assert_eq!(wires[9].channel(), Channel::Query);
    }

    #[test]
    fn batch_buffers_pool_and_come_back_empty() {
        let mut pool: BufPool<f64> = BufPool::new();
        let mut queries = pool.take_queries();
        queries.push(QueryItem {
            qid: 1,
            origin: NodeId::new(2),
            key: 0.5,
            ttl: 8,
            hops: 0,
        });
        let qcap = queries.capacity();
        pool.recycle_wire(Wire::QueryBatch { queries });
        let again = pool.take_queries();
        assert!(again.is_empty(), "recycled batch buffers retain nothing");
        assert!(again.capacity() >= qcap);
        pool.put_queries(again);

        let mut replies = pool.take_replies();
        replies.push(QueryReplyItem {
            qid: 1,
            hops: 2,
            pos: 0.25,
        });
        pool.recycle_wire(Wire::QueryReplyBatch { replies });
        let again = pool.take_replies();
        assert!(again.is_empty());
        let (_, _, _, q, r) = pool.pooled_counts();
        assert_eq!((q, r), (1, 0), "taken reply buffer left the pool");
    }

    #[test]
    fn grouping_scratch_recycles_inner_buffers() {
        let mut sink: EffectSink<f64> = EffectSink::new();
        let mut groups = sink.take_query_groups();
        let mut inner = sink.take_queries();
        inner.push(QueryItem {
            qid: 1,
            origin: NodeId::new(2),
            key: 0.5,
            ttl: 8,
            hops: 0,
        });
        groups.push((NodeId::new(7), inner));
        sink.put_query_groups(groups);
        // The abandoned inner buffer must have been salvaged into the pool.
        assert_eq!(sink.buf_pool().pooled_counts().3, 1);
        let groups = sink.take_query_groups();
        assert!(groups.is_empty());
        sink.put_query_groups(groups);
    }
}
