//! Scenario scripting shared by every execution substrate.
//!
//! The paper's evaluation scenario (Sec. IV-A) is a three-phase script:
//! convergence for 20 rounds, a catastrophic half-torus failure at round
//! 20, and re-injection of 1600 fresh nodes at round 100, observed until
//! round 200. [`Scenario`] generalizes that — arbitrary events at
//! arbitrary rounds, including continuous [`ScenarioEvent::Churn`]
//! windows — and [`ScenarioSubstrate`] abstracts *what* executes it, so
//! one script value runs unchanged on the cycle engine
//! (`polystyrene-sim`) and on a live threaded cluster
//! (`polystyrene-runtime`). Both substrates route every injection through
//! [`apply_event`], so what "crash", "inject" and "churn" mean cannot
//! drift between them.

use polystyrene::prelude::DataPoint;
use polystyrene_membership::{Descriptor, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One scripted event.
#[derive(Clone)]
pub enum ScenarioEvent<P> {
    /// Crash every founding node whose *original* data point satisfies the
    /// predicate (correlated regional failure).
    FailOriginalRegion(Arc<dyn Fn(&P) -> bool + Send + Sync>),
    /// Crash a uniformly random fraction of the alive population.
    FailRandomFraction(f64),
    /// Crash these specific nodes.
    FailNodes(Vec<NodeId>),
    /// Inject fresh, empty nodes at these positions.
    Inject(Vec<P>),
    /// Continuous churn: starting at the scheduled round, crash a uniform
    /// `rate` fraction of the alive population every round for `rounds`
    /// consecutive rounds.
    Churn {
        /// Fraction of the alive population crashed per round, in `[0, 1]`.
        rate: f64,
        /// Number of consecutive rounds the churn window lasts.
        rounds: u32,
    },
    /// Network partition: for `rounds` consecutive rounds, nodes listed in
    /// different groups cannot exchange messages (nodes absent from every
    /// group form one implicit extra group — "the rest of the network" —
    /// so a script can name just the minority side). Nobody crashes; the
    /// fabric heals when the window expires. Only substrates with a
    /// network model honor this ([`ScenarioSubstrate::partition`] is a
    /// no-op elsewhere — the cycle engine and the in-process runtime have
    /// no fabric to cut).
    ///
    /// Windows do not stack: a later `Partition` event *replaces* the
    /// whole mask and restarts the heal clock from its own window, ending
    /// the previous event's cut early. Scripts needing several cuts at
    /// once express them as multiple `groups` of one event.
    Partition {
        /// The separated groups.
        groups: Vec<Vec<NodeId>>,
        /// Number of consecutive rounds the partition lasts.
        rounds: u32,
    },
}

impl<P> std::fmt::Debug for ScenarioEvent<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FailOriginalRegion(_) => write!(f, "FailOriginalRegion(<predicate>)"),
            Self::FailRandomFraction(x) => write!(f, "FailRandomFraction({x})"),
            Self::FailNodes(ids) => write!(f, "FailNodes({} nodes)", ids.len()),
            Self::Inject(ps) => write!(f, "Inject({} nodes)", ps.len()),
            Self::Churn { rate, rounds } => write!(f, "Churn({rate}/round for {rounds} rounds)"),
            Self::Partition { groups, rounds } => {
                write!(f, "Partition({} groups for {rounds} rounds)", groups.len())
            }
        }
    }
}

/// A timed script of [`ScenarioEvent`]s plus a total duration.
#[derive(Clone, Debug)]
pub struct Scenario<P> {
    total_rounds: u32,
    events: BTreeMap<u32, Vec<ScenarioEvent<P>>>,
}

impl<P> Scenario<P> {
    /// An event-free scenario of the given duration.
    pub fn new(total_rounds: u32) -> Self {
        Self {
            total_rounds,
            events: BTreeMap::new(),
        }
    }

    /// Schedules `event` to fire just before round `round` executes
    /// (round indices count completed rounds, so `at(20, …)` fires after
    /// 20 rounds have run — the paper's "at round 20").
    pub fn at(mut self, round: u32, event: ScenarioEvent<P>) -> Self {
        self.events.entry(round).or_default().push(event);
        self
    }

    /// Total rounds the scenario runs for.
    pub fn total_rounds(&self) -> u32 {
        self.total_rounds
    }

    /// The events scheduled for `round`, if any.
    pub fn events_at(&self, round: u32) -> Option<&[ScenarioEvent<P>]> {
        self.events.get(&round).map(Vec::as_slice)
    }

    /// Rounds at which at least one event fires.
    pub fn event_rounds(&self) -> Vec<u32> {
        self.events.keys().copied().collect()
    }

    /// The first round at which a failure event fires, if any — the
    /// reference point of the reshaping-time metric. Partitions do not
    /// count: they disrupt connectivity without destroying any node.
    pub fn first_failure_round(&self) -> Option<u32> {
        self.events
            .iter()
            .find(|(_, evs)| {
                evs.iter().any(|e| {
                    matches!(
                        e,
                        ScenarioEvent::FailOriginalRegion(_)
                            | ScenarioEvent::FailRandomFraction(_)
                            | ScenarioEvent::FailNodes(_)
                            | ScenarioEvent::Churn { .. }
                    )
                })
            })
            .map(|(&r, _)| r)
    }
}

/// What a scenario needs from an execution substrate — implemented by the
/// cycle engine and by the threaded-cluster driver, so failure injection
/// has exactly one meaning across both.
pub trait ScenarioSubstrate<P> {
    /// Crashes every alive founding node whose original data point
    /// satisfies `predicate`; returns the crashed ids.
    fn fail_region(&mut self, predicate: &(dyn Fn(&P) -> bool + Send + Sync)) -> Vec<NodeId>;
    /// Crashes a uniformly random `fraction` of the alive population;
    /// returns the crashed ids.
    fn fail_fraction(&mut self, fraction: f64) -> Vec<NodeId>;
    /// Crashes these specific nodes (dead ones are skipped); returns the
    /// ids actually crashed.
    fn fail_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId>;
    /// Injects fresh, empty nodes at `positions`; returns the new ids.
    fn inject(&mut self, positions: &[P]) -> Vec<NodeId>;
    /// Runs one protocol round (one engine cycle, or one tick-equivalent
    /// of wall-clock progress on a live cluster).
    fn advance_round(&mut self);
    /// Installs a network partition (see [`ScenarioEvent::Partition`]).
    /// Default: no-op, for substrates without a network fabric to cut —
    /// the cycle engine's atomic exchanges and the runtime's in-process
    /// channels cannot model one.
    fn partition(&mut self, _groups: &[Vec<NodeId>]) {}
    /// Heals a previously installed partition. Default: no-op.
    fn heal(&mut self) {}
}

/// Selects the victims of a random-fraction failure: shuffles the alive
/// population and takes the rounded fraction. Both substrates'
/// `fail_fraction` implementations must route through this, so the
/// rounding rule (how many nodes a `Churn { rate }` round kills) cannot
/// drift between them.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn select_victims<R: rand::Rng + ?Sized>(
    mut alive: Vec<NodeId>,
    fraction: f64,
    rng: &mut R,
) -> Vec<NodeId> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "failure fraction must be in [0, 1], got {fraction}"
    );
    use rand::seq::SliceRandom;
    alive.shuffle(rng);
    let kill = ((alive.len() as f64) * fraction).round() as usize;
    alive.truncate(kill);
    alive
}

/// Selects the victims of a correlated regional failure: every *founding*
/// node whose original data point satisfies `predicate` and is still
/// alive. Encodes the founding convention — node `i` founded data point
/// `i` — in exactly one place; every substrate's `fail_region` routes
/// through this, so what "kill a region" means cannot drift between the
/// cycle engine, the discrete-event network simulator, and the threaded
/// runtime.
pub fn select_region_victims<P>(
    original_points: &[DataPoint<P>],
    predicate: &(dyn Fn(&P) -> bool + Send + Sync),
    is_alive: &dyn Fn(NodeId) -> bool,
) -> Vec<NodeId> {
    original_points
        .iter()
        .filter(|point| predicate(&point.pos))
        .map(|point| NodeId::new(point.id.as_u64()))
        .filter(|&id| is_alive(id))
        .collect()
}

/// Draws bootstrap contacts for a freshly injected node: `count` uniform
/// draws over the alive population (with replacement — duplicate
/// descriptors are the receiving view's problem to fold), positions
/// resolved through the substrate's current belief (draws whose position
/// cannot be resolved are skipped without retry). Deterministic
/// substrates share this so what "inject" bootstraps — and how much
/// driver entropy it consumes — cannot drift between them.
pub fn sample_bootstrap_contacts<P, R: rand::Rng + ?Sized>(
    alive: &[NodeId],
    position_of: &dyn Fn(NodeId) -> Option<P>,
    count: usize,
    rng: &mut R,
) -> Vec<Descriptor<P>> {
    if alive.is_empty() {
        return Vec::new();
    }
    (0..count)
        .filter_map(|_| {
            let peer = alive[rng.random_range(0..alive.len())];
            position_of(peer).map(|pos| Descriptor::new(peer, pos))
        })
        .collect()
}

/// Applies one event to a substrate — the single code path both the
/// simulator and the runtime use, so they cannot drift on what an event
/// means. A [`ScenarioEvent::Churn`] applied here executes one round's
/// worth of churn; [`drive_scenario`] handles the window bookkeeping.
pub fn apply_event<P>(substrate: &mut dyn ScenarioSubstrate<P>, event: &ScenarioEvent<P>) {
    match event {
        ScenarioEvent::FailOriginalRegion(pred) => {
            substrate.fail_region(pred.as_ref());
        }
        ScenarioEvent::FailRandomFraction(fraction) => {
            substrate.fail_fraction(*fraction);
        }
        ScenarioEvent::FailNodes(ids) => {
            substrate.fail_nodes(ids);
        }
        ScenarioEvent::Inject(positions) => {
            substrate.inject(positions);
        }
        ScenarioEvent::Churn { rate, .. } => {
            substrate.fail_fraction(*rate);
        }
        ScenarioEvent::Partition { groups, .. } => {
            substrate.partition(groups);
        }
    }
}

/// Drives `substrate` through `scenario`: for each round, applies the
/// events scheduled for it (churn events open a window that then fires
/// every round until it expires; partition events install a mask that is
/// healed when their window expires), and advances one round.
pub fn drive_scenario<P>(substrate: &mut impl ScenarioSubstrate<P>, scenario: &Scenario<P>) {
    // Active churn windows: (first round NOT churned, rate).
    let mut churns: Vec<(u32, f64)> = Vec::new();
    // First round past the active partition window. A later Partition
    // event replaces the mask AND the window (windows do not stack; see
    // `ScenarioEvent::Partition`) — keeping the substrate's single mask
    // and the heal schedule in lockstep.
    let mut partition_heal: Option<u32> = None;
    for round in 0..scenario.total_rounds() {
        if partition_heal.is_some_and(|h| round >= h) {
            substrate.heal();
            partition_heal = None;
        }
        if let Some(events) = scenario.events_at(round) {
            for event in events {
                match event {
                    ScenarioEvent::Churn { rate, rounds } => {
                        churns.push((round.saturating_add(*rounds), *rate));
                    }
                    ScenarioEvent::Partition { rounds, .. } => {
                        apply_event(substrate, event);
                        partition_heal = Some(round.saturating_add(*rounds));
                    }
                    _ => apply_event(substrate, event),
                }
            }
        }
        churns.retain(|&(until, _)| round < until);
        for &(_, rate) in &churns {
            substrate.fail_fraction(rate);
        }
        substrate.advance_round();
    }
    // A window outlasting the scenario still heals the fabric on exit.
    if partition_heal.is_some() {
        substrate.heal();
    }
}

/// The paper's three-phase evaluation scenario on a `cols × rows` torus
/// grid (Sec. IV-A), parameterized so the scaling experiments (Fig. 10)
/// can reuse it at every network size — and, being substrate-agnostic,
/// so it runs identically on the cycle engine and the threaded runtime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperScenario {
    /// Grid columns (paper: 80).
    pub cols: usize,
    /// Grid rows (paper: 40).
    pub rows: usize,
    /// Grid step (paper: 1.0).
    pub step: f64,
    /// Round of the catastrophic half-torus failure (paper: 20).
    pub failure_round: u32,
    /// Round of the fresh-node re-injection, `None` to skip Phase 3
    /// (paper: 100).
    pub inject_round: Option<u32>,
    /// Total rounds observed (paper: 200).
    pub total_rounds: u32,
}

impl Default for PaperScenario {
    fn default() -> Self {
        Self {
            cols: 80,
            rows: 40,
            step: 1.0,
            failure_round: 20,
            inject_round: Some(100),
            total_rounds: 200,
        }
    }
}

impl PaperScenario {
    /// A smaller variant for quick runs and CI: same phases on a reduced
    /// grid and timeline.
    pub fn small() -> Self {
        Self {
            cols: 20,
            rows: 10,
            step: 1.0,
            failure_round: 15,
            inject_round: Some(45),
            total_rounds: 70,
        }
    }

    /// A scaling variant with Phase 3 disabled, used by the Fig. 10
    /// reshaping-time sweeps.
    pub fn reshaping_only(cols: usize, rows: usize, failure_round: u32, tail: u32) -> Self {
        Self {
            cols,
            rows,
            step: 1.0,
            failure_round,
            inject_round: None,
            total_rounds: failure_round + tail,
        }
    }

    /// Number of nodes in the founding population.
    pub fn node_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Torus extents.
    pub fn extents(&self) -> (f64, f64) {
        (self.cols as f64 * self.step, self.rows as f64 * self.step)
    }

    /// Torus area (for the reference homogeneity).
    pub fn area(&self) -> f64 {
        let (w, h) = self.extents();
        w * h
    }

    /// The initial positions (the target shape).
    pub fn shape(&self) -> Vec<[f64; 2]> {
        polystyrene_space::shapes::torus_grid(self.cols, self.rows, self.step)
    }

    /// Builds the timed event script.
    pub fn script(&self) -> Scenario<[f64; 2]> {
        let (width, _) = self.extents();
        let mut scenario = Scenario::new(self.total_rounds).at(
            self.failure_round,
            ScenarioEvent::FailOriginalRegion(Arc::new(move |p: &[f64; 2]| p[0] >= width / 2.0)),
        );
        if let Some(inject_round) = self.inject_round {
            scenario = scenario.at(
                inject_round,
                ScenarioEvent::Inject(polystyrene_space::shapes::torus_grid_offset(
                    self.cols / 2,
                    self.rows,
                    self.step,
                )),
            );
        }
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A substrate that records what was done to it.
    #[derive(Default)]
    struct Recorder {
        calls: Vec<String>,
        rounds: u32,
    }

    impl ScenarioSubstrate<[f64; 2]> for Recorder {
        fn fail_region(&mut self, _: &(dyn Fn(&[f64; 2]) -> bool + Send + Sync)) -> Vec<NodeId> {
            self.calls.push(format!("region@{}", self.rounds));
            Vec::new()
        }
        fn fail_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
            self.calls
                .push(format!("fraction({fraction})@{}", self.rounds));
            Vec::new()
        }
        fn fail_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId> {
            self.calls
                .push(format!("nodes({})@{}", ids.len(), self.rounds));
            Vec::new()
        }
        fn inject(&mut self, positions: &[[f64; 2]]) -> Vec<NodeId> {
            self.calls
                .push(format!("inject({})@{}", positions.len(), self.rounds));
            Vec::new()
        }
        fn advance_round(&mut self) {
            self.rounds += 1;
        }
        fn partition(&mut self, groups: &[Vec<NodeId>]) {
            self.calls
                .push(format!("partition({})@{}", groups.len(), self.rounds));
        }
        fn heal(&mut self) {
            self.calls.push(format!("heal@{}", self.rounds));
        }
    }

    #[test]
    fn scenario_event_rounds_and_failure_detection() {
        let s: Scenario<[f64; 2]> = Scenario::new(50)
            .at(10, ScenarioEvent::FailRandomFraction(0.1))
            .at(30, ScenarioEvent::Inject(vec![[0.0, 0.0]]));
        assert_eq!(s.event_rounds(), vec![10, 30]);
        assert_eq!(s.first_failure_round(), Some(10));
        let s2: Scenario<[f64; 2]> = Scenario::new(10).at(5, ScenarioEvent::Inject(vec![]));
        assert_eq!(s2.first_failure_round(), None);
        let s3: Scenario<[f64; 2]> = Scenario::new(10).at(
            3,
            ScenarioEvent::Churn {
                rate: 0.01,
                rounds: 2,
            },
        );
        assert_eq!(s3.first_failure_round(), Some(3));
    }

    #[test]
    fn drive_scenario_runs_every_round_and_applies_in_order() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(5)
            .at(1, ScenarioEvent::FailNodes(vec![NodeId::new(0)]))
            .at(3, ScenarioEvent::Inject(vec![[0.0, 0.0], [1.0, 0.0]]));
        let mut rec = Recorder::default();
        drive_scenario(&mut rec, &scenario);
        assert_eq!(rec.rounds, 5);
        assert_eq!(rec.calls, vec!["nodes(1)@1", "inject(2)@3"]);
    }

    #[test]
    fn churn_window_fires_every_round_until_expiry() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(6).at(
            2,
            ScenarioEvent::Churn {
                rate: 0.25,
                rounds: 3,
            },
        );
        let mut rec = Recorder::default();
        drive_scenario(&mut rec, &scenario);
        assert_eq!(
            rec.calls,
            vec!["fraction(0.25)@2", "fraction(0.25)@3", "fraction(0.25)@4"]
        );
    }

    #[test]
    fn overlapping_churn_windows_stack() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(4)
            .at(
                0,
                ScenarioEvent::Churn {
                    rate: 0.1,
                    rounds: 2,
                },
            )
            .at(
                1,
                ScenarioEvent::Churn {
                    rate: 0.2,
                    rounds: 1,
                },
            );
        let mut rec = Recorder::default();
        drive_scenario(&mut rec, &scenario);
        assert_eq!(
            rec.calls,
            vec!["fraction(0.1)@0", "fraction(0.1)@1", "fraction(0.2)@1"]
        );
    }

    #[test]
    fn partition_window_installs_then_heals() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(6).at(
            1,
            ScenarioEvent::Partition {
                groups: vec![vec![NodeId::new(0)], vec![NodeId::new(1)]],
                rounds: 2,
            },
        );
        let mut rec = Recorder::default();
        drive_scenario(&mut rec, &scenario);
        assert_eq!(rec.calls, vec!["partition(2)@1", "heal@3"]);
    }

    #[test]
    fn partition_outlasting_the_scenario_still_heals() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(3).at(
            2,
            ScenarioEvent::Partition {
                groups: vec![vec![NodeId::new(5)]],
                rounds: 10,
            },
        );
        let mut rec = Recorder::default();
        drive_scenario(&mut rec, &scenario);
        assert_eq!(rec.calls, vec!["partition(1)@2", "heal@3"]);
    }

    #[test]
    fn later_partition_replaces_mask_and_window() {
        let scenario: Scenario<[f64; 2]> = Scenario::new(8)
            .at(
                0,
                ScenarioEvent::Partition {
                    groups: vec![vec![NodeId::new(0)]],
                    rounds: 5,
                },
            )
            .at(
                2,
                ScenarioEvent::Partition {
                    groups: vec![vec![NodeId::new(1)]],
                    rounds: 1,
                },
            );
        let mut rec = Recorder::default();
        drive_scenario(&mut rec, &scenario);
        // Windows do not stack: the round-2 event replaces both the mask
        // and the window, so its own 1-round cut ends at round 3 — the
        // first event's longer window dies with its mask (the substrate
        // holds exactly one mask, so mask and heal stay in lockstep).
        assert_eq!(
            rec.calls,
            vec!["partition(1)@0", "partition(1)@2", "heal@3"]
        );
    }

    #[test]
    fn partition_is_not_a_failure_event() {
        let s: Scenario<[f64; 2]> = Scenario::new(10).at(
            3,
            ScenarioEvent::Partition {
                groups: vec![],
                rounds: 2,
            },
        );
        assert_eq!(s.first_failure_round(), None);
    }

    #[test]
    fn region_victims_follow_the_founding_convention() {
        use polystyrene::prelude::PointId;
        let originals: Vec<DataPoint<[f64; 2]>> = (0..6)
            .map(|i| DataPoint::new(PointId::new(i), [i as f64, 0.0]))
            .collect();
        let victims = select_region_victims(
            &originals,
            &|p: &[f64; 2]| p[0] >= 3.0,
            &|id| id != NodeId::new(4), // node 4 already dead
        );
        assert_eq!(victims, vec![NodeId::new(3), NodeId::new(5)]);
    }

    #[test]
    fn paper_scenario_defaults_match_section_iv() {
        let p = PaperScenario::default();
        assert_eq!(p.node_count(), 3200);
        assert_eq!(p.area(), 3200.0);
        assert_eq!(p.failure_round, 20);
        assert_eq!(p.inject_round, Some(100));
        assert_eq!(p.total_rounds, 200);
        let script = p.script();
        assert_eq!(script.event_rounds(), vec![20, 100]);
        assert_eq!(script.first_failure_round(), Some(20));
    }

    #[test]
    fn reshaping_only_variant_has_no_injection() {
        let p = PaperScenario::reshaping_only(16, 8, 10, 30);
        assert_eq!(p.total_rounds, 40);
        assert_eq!(p.script().event_rounds(), vec![10]);
    }

    #[test]
    fn shapes_helpers_consistency() {
        let p = PaperScenario::default();
        assert_eq!(p.shape().len(), 3200);
        assert_eq!(
            p.shape().len(),
            polystyrene_space::shapes::torus_grid(p.cols, p.rows, p.step).len()
        );
    }
}
