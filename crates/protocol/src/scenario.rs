//! Scenario scripting shared by every execution substrate.
//!
//! The paper's evaluation scenario (Sec. IV-A) is a three-phase script:
//! convergence for 20 rounds, a catastrophic half-torus failure at round
//! 20, and re-injection of 1600 fresh nodes at round 100, observed until
//! round 200. [`Scenario`] generalizes that — arbitrary events at
//! arbitrary rounds, including continuous [`ScenarioEvent::Churn`]
//! windows and [`ScenarioEvent::Partition`] masks. *Executing* a script
//! is the experiment plane's job: `polystyrene-lab`'s `Substrate` trait
//! and `run_experiment` driver run any script value unchanged on every
//! execution substrate. What stays here, next to the script language,
//! are the shared victim-selection and bootstrap-sampling helpers every
//! substrate routes through, so what "crash", "inject" and "churn" mean
//! cannot drift between them.

use polystyrene::prelude::DataPoint;
use polystyrene_membership::{Descriptor, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One scripted event.
#[derive(Clone)]
pub enum ScenarioEvent<P> {
    /// Crash every founding node whose *original* data point satisfies the
    /// predicate (correlated regional failure).
    FailOriginalRegion(Arc<dyn Fn(&P) -> bool + Send + Sync>),
    /// Crash a uniformly random fraction of the alive population.
    FailRandomFraction(f64),
    /// Crash these specific nodes.
    FailNodes(Vec<NodeId>),
    /// Inject fresh, empty nodes at these positions.
    Inject(Vec<P>),
    /// Continuous churn: starting at the scheduled round, crash a uniform
    /// `rate` fraction of the alive population every round for `rounds`
    /// consecutive rounds.
    Churn {
        /// Fraction of the alive population crashed per round, in `[0, 1]`.
        rate: f64,
        /// Number of consecutive rounds the churn window lasts.
        rounds: u32,
    },
    /// Network partition: for `rounds` consecutive rounds, nodes listed in
    /// different groups cannot exchange messages (nodes absent from every
    /// group form one implicit extra group — "the rest of the network" —
    /// so a script can name just the minority side). Nobody crashes; the
    /// fabric heals when the window expires. Only substrates with a
    /// network model honor this (the substrate's partition hook is a
    /// no-op elsewhere — the cycle engine and the in-process runtime have
    /// no fabric to cut).
    ///
    /// Windows do not stack: a later `Partition` event *replaces* the
    /// whole mask and restarts the heal clock from its own window, ending
    /// the previous event's cut early. Scripts needing several cuts at
    /// once express them as multiple `groups` of one event.
    Partition {
        /// The separated groups.
        groups: Vec<Vec<NodeId>>,
        /// Number of consecutive rounds the partition lasts.
        rounds: u32,
    },
}

impl<P> std::fmt::Debug for ScenarioEvent<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FailOriginalRegion(_) => write!(f, "FailOriginalRegion(<predicate>)"),
            Self::FailRandomFraction(x) => write!(f, "FailRandomFraction({x})"),
            Self::FailNodes(ids) => write!(f, "FailNodes({} nodes)", ids.len()),
            Self::Inject(ps) => write!(f, "Inject({} nodes)", ps.len()),
            Self::Churn { rate, rounds } => write!(f, "Churn({rate}/round for {rounds} rounds)"),
            Self::Partition { groups, rounds } => {
                write!(f, "Partition({} groups for {rounds} rounds)", groups.len())
            }
        }
    }
}

/// A timed script of [`ScenarioEvent`]s plus a total duration.
#[derive(Clone, Debug)]
pub struct Scenario<P> {
    total_rounds: u32,
    events: BTreeMap<u32, Vec<ScenarioEvent<P>>>,
}

impl<P> Scenario<P> {
    /// An event-free scenario of the given duration.
    pub fn new(total_rounds: u32) -> Self {
        Self {
            total_rounds,
            events: BTreeMap::new(),
        }
    }

    /// Schedules `event` to fire just before round `round` executes
    /// (round indices count completed rounds, so `at(20, …)` fires after
    /// 20 rounds have run — the paper's "at round 20").
    pub fn at(mut self, round: u32, event: ScenarioEvent<P>) -> Self {
        self.events.entry(round).or_default().push(event);
        self
    }

    /// Total rounds the scenario runs for.
    pub fn total_rounds(&self) -> u32 {
        self.total_rounds
    }

    /// The events scheduled for `round`, if any.
    pub fn events_at(&self, round: u32) -> Option<&[ScenarioEvent<P>]> {
        self.events.get(&round).map(Vec::as_slice)
    }

    /// Rounds at which at least one event fires.
    pub fn event_rounds(&self) -> Vec<u32> {
        self.events.keys().copied().collect()
    }

    /// The first round at which a failure event fires, if any — the
    /// reference point of the reshaping-time metric. Partitions do not
    /// count: they disrupt connectivity without destroying any node.
    pub fn first_failure_round(&self) -> Option<u32> {
        self.events
            .iter()
            .find(|(_, evs)| {
                evs.iter().any(|e| {
                    matches!(
                        e,
                        ScenarioEvent::FailOriginalRegion(_)
                            | ScenarioEvent::FailRandomFraction(_)
                            | ScenarioEvent::FailNodes(_)
                            | ScenarioEvent::Churn { .. }
                    )
                })
            })
            .map(|(&r, _)| r)
    }
}

/// Selects the victims of a random-fraction failure: shuffles the alive
/// population and takes the rounded fraction. Both substrates'
/// `fail_fraction` implementations must route through this, so the
/// rounding rule (how many nodes a `Churn { rate }` round kills) cannot
/// drift between them.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn select_victims<R: rand::Rng + ?Sized>(
    mut alive: Vec<NodeId>,
    fraction: f64,
    rng: &mut R,
) -> Vec<NodeId> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "failure fraction must be in [0, 1], got {fraction}"
    );
    use rand::seq::SliceRandom;
    alive.shuffle(rng);
    let kill = ((alive.len() as f64) * fraction).round() as usize;
    alive.truncate(kill);
    alive
}

/// Selects the victims of a correlated regional failure: every *founding*
/// node whose original data point satisfies `predicate` and is still
/// alive. Encodes the founding convention — node `i` founded data point
/// `i` — in exactly one place; every substrate's `fail_region` routes
/// through this, so what "kill a region" means cannot drift between the
/// cycle engine, the discrete-event network simulator, and the threaded
/// runtime.
pub fn select_region_victims<P>(
    original_points: &[DataPoint<P>],
    predicate: &(dyn Fn(&P) -> bool + Send + Sync),
    is_alive: &dyn Fn(NodeId) -> bool,
) -> Vec<NodeId> {
    original_points
        .iter()
        .filter(|point| predicate(&point.pos))
        .map(|point| NodeId::new(point.id.as_u64()))
        .filter(|&id| is_alive(id))
        .collect()
}

/// Draws bootstrap contacts for a freshly injected node: `count` uniform
/// draws over the alive population (with replacement — duplicate
/// descriptors are the receiving view's problem to fold), positions
/// resolved through the substrate's current belief (draws whose position
/// cannot be resolved are skipped without retry). Deterministic
/// substrates share this so what "inject" bootstraps — and how much
/// driver entropy it consumes — cannot drift between them.
pub fn sample_bootstrap_contacts<P, R: rand::Rng + ?Sized>(
    alive: &[NodeId],
    position_of: &dyn Fn(NodeId) -> Option<P>,
    count: usize,
    rng: &mut R,
) -> Vec<Descriptor<P>> {
    if alive.is_empty() {
        return Vec::new();
    }
    (0..count)
        .filter_map(|_| {
            let peer = alive[rng.random_range(0..alive.len())];
            position_of(peer).map(|pos| Descriptor::new(peer, pos))
        })
        .collect()
}

/// The paper's three-phase evaluation scenario on a `cols × rows` torus
/// grid (Sec. IV-A), parameterized so the scaling experiments (Fig. 10)
/// can reuse it at every network size — and, being substrate-agnostic,
/// so it runs identically on the cycle engine and the threaded runtime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperScenario {
    /// Grid columns (paper: 80).
    pub cols: usize,
    /// Grid rows (paper: 40).
    pub rows: usize,
    /// Grid step (paper: 1.0).
    pub step: f64,
    /// Round of the catastrophic half-torus failure (paper: 20).
    pub failure_round: u32,
    /// Round of the fresh-node re-injection, `None` to skip Phase 3
    /// (paper: 100).
    pub inject_round: Option<u32>,
    /// Total rounds observed (paper: 200).
    pub total_rounds: u32,
}

impl Default for PaperScenario {
    fn default() -> Self {
        Self {
            cols: 80,
            rows: 40,
            step: 1.0,
            failure_round: 20,
            inject_round: Some(100),
            total_rounds: 200,
        }
    }
}

impl PaperScenario {
    /// A smaller variant for quick runs and CI: same phases on a reduced
    /// grid and timeline.
    pub fn small() -> Self {
        Self {
            cols: 20,
            rows: 10,
            step: 1.0,
            failure_round: 15,
            inject_round: Some(45),
            total_rounds: 70,
        }
    }

    /// A scaling variant with Phase 3 disabled, used by the Fig. 10
    /// reshaping-time sweeps.
    pub fn reshaping_only(cols: usize, rows: usize, failure_round: u32, tail: u32) -> Self {
        Self {
            cols,
            rows,
            step: 1.0,
            failure_round,
            inject_round: None,
            total_rounds: failure_round + tail,
        }
    }

    /// Number of nodes in the founding population.
    pub fn node_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Torus extents.
    pub fn extents(&self) -> (f64, f64) {
        (self.cols as f64 * self.step, self.rows as f64 * self.step)
    }

    /// Torus area (for the reference homogeneity).
    pub fn area(&self) -> f64 {
        let (w, h) = self.extents();
        w * h
    }

    /// The initial positions (the target shape).
    pub fn shape(&self) -> Vec<[f64; 2]> {
        polystyrene_space::shapes::torus_grid(self.cols, self.rows, self.step)
    }

    /// Builds the timed event script.
    pub fn script(&self) -> Scenario<[f64; 2]> {
        let (width, _) = self.extents();
        let mut scenario = Scenario::new(self.total_rounds).at(
            self.failure_round,
            ScenarioEvent::FailOriginalRegion(Arc::new(move |p: &[f64; 2]| p[0] >= width / 2.0)),
        );
        if let Some(inject_round) = self.inject_round {
            scenario = scenario.at(
                inject_round,
                ScenarioEvent::Inject(polystyrene_space::shapes::torus_grid_offset(
                    self.cols / 2,
                    self.rows,
                    self.step,
                )),
            );
        }
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_event_rounds_and_failure_detection() {
        let s: Scenario<[f64; 2]> = Scenario::new(50)
            .at(10, ScenarioEvent::FailRandomFraction(0.1))
            .at(30, ScenarioEvent::Inject(vec![[0.0, 0.0]]));
        assert_eq!(s.event_rounds(), vec![10, 30]);
        assert_eq!(s.first_failure_round(), Some(10));
        let s2: Scenario<[f64; 2]> = Scenario::new(10).at(5, ScenarioEvent::Inject(vec![]));
        assert_eq!(s2.first_failure_round(), None);
        let s3: Scenario<[f64; 2]> = Scenario::new(10).at(
            3,
            ScenarioEvent::Churn {
                rate: 0.01,
                rounds: 2,
            },
        );
        assert_eq!(s3.first_failure_round(), Some(3));
    }

    #[test]
    fn partition_is_not_a_failure_event() {
        let s: Scenario<[f64; 2]> = Scenario::new(10).at(
            3,
            ScenarioEvent::Partition {
                groups: vec![],
                rounds: 2,
            },
        );
        assert_eq!(s.first_failure_round(), None);
    }

    #[test]
    fn region_victims_follow_the_founding_convention() {
        use polystyrene::prelude::PointId;
        let originals: Vec<DataPoint<[f64; 2]>> = (0..6)
            .map(|i| DataPoint::new(PointId::new(i), [i as f64, 0.0]))
            .collect();
        let victims = select_region_victims(
            &originals,
            &|p: &[f64; 2]| p[0] >= 3.0,
            &|id| id != NodeId::new(4), // node 4 already dead
        );
        assert_eq!(victims, vec![NodeId::new(3), NodeId::new(5)]);
    }

    #[test]
    fn paper_scenario_defaults_match_section_iv() {
        let p = PaperScenario::default();
        assert_eq!(p.node_count(), 3200);
        assert_eq!(p.area(), 3200.0);
        assert_eq!(p.failure_round, 20);
        assert_eq!(p.inject_round, Some(100));
        assert_eq!(p.total_rounds, 200);
        let script = p.script();
        assert_eq!(script.event_rounds(), vec![20, 100]);
        assert_eq!(script.first_failure_round(), Some(20));
    }

    #[test]
    fn reshaping_only_variant_has_no_injection() {
        let p = PaperScenario::reshaping_only(16, 8, 10, 30);
        assert_eq!(p.total_rounds, 40);
        assert_eq!(p.script().event_rounds(), vec![10]);
    }

    #[test]
    fn shapes_helpers_consistency() {
        let p = PaperScenario::default();
        assert_eq!(p.shape().len(), 3200);
        assert_eq!(
            p.shape().len(),
            polystyrene_space::shapes::torus_grid(p.cols, p.rows, p.step).len()
        );
    }
}
