//! Message-cost accounting in the paper's units (Sec. IV-A), shared by
//! every substrate that meters wire traffic.
//!
//! "We assume a single coordinate uses the same size as a node ID, and
//! take this as our arbitrary communication unit. Under these assumptions,
//! sending a node descriptor (its ID, plus its coordinates) counts as 3
//! units, while a set of 2D coordinates counts as 2. In a first
//! approximation, we ignore overheads caused by the underlying
//! communication network (e.g. headers, checksums), and do not include the
//! peer sampling protocol in our measurements."
//!
//! The model lived inside the cycle engine first, which made Fig. 7b an
//! engine-only figure: the other substrates reported `cost_units: 0`.
//! Moving the prices and the per-message conversion next to [`Wire`]
//! gives the discrete-event kernel and the live runtimes the exact same
//! accounting at their own send boundaries — one formula, charged
//! wherever a message leaves a node.

use crate::wire::Wire;
use polystyrene::backup::push_cost_units;
use serde::{Deserialize, Serialize};

/// Unit prices for the quantities that cross the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Units per bare data point (a set of coordinates; 2 for 2-D).
    pub units_per_point: usize,
    /// Units per node descriptor (ID + coordinates; 3 for 2-D).
    pub units_per_descriptor: usize,
    /// Units per bare node/point id.
    pub units_per_id: usize,
}

impl CostModel {
    /// The paper's cost model for a `dim`-dimensional coordinate space:
    /// one unit per coordinate, one per id.
    pub fn for_dimension(dim: usize) -> Self {
        Self {
            units_per_point: dim,
            units_per_descriptor: dim + 1,
            units_per_id: 1,
        }
    }

    /// The paper's cost of one wire message, in units: descriptors for
    /// the T-Man legs, whole points plus bare removal ids for a backup
    /// delta, the pull+push legs for a migration split. RPS traffic and
    /// the constant-size control messages (migration request/ack,
    /// heartbeats) are free by the paper's convention.
    pub fn wire_units<P>(&self, wire: &Wire<P>) -> u64 {
        match wire {
            Wire::TManRequest { descriptors, .. } | Wire::TManReply { descriptors } => {
                (descriptors.len() * self.units_per_descriptor) as u64
            }
            Wire::BackupPush {
                added_points,
                removed_ids,
                ..
            } => push_cost_units(*added_points, *removed_ids, self.units_per_point) as u64,
            Wire::MigrationReply { pulled, pushed, .. } => {
                ((pulled + pushed) * self.units_per_point) as u64
            }
            // Application-plane queries are load, not protocol overhead:
            // the paper's Fig. 7b meters the maintenance protocols only,
            // so traffic must not move the cost baselines.
            Wire::RpsRequest { .. }
            | Wire::RpsReply { .. }
            | Wire::MigrationRequest { .. }
            | Wire::MigrationAck { .. }
            | Wire::Heartbeat
            | Wire::Query { .. }
            | Wire::QueryReply { .. }
            | Wire::QueryBatch { .. }
            | Wire::QueryReplyBatch { .. } => 0,
        }
    }
}

impl Default for CostModel {
    /// The 2-D torus model of the paper's evaluation.
    fn default() -> Self {
        Self::for_dimension(2)
    }
}

/// Per-round traffic tally, split by origin so Fig. 7b's observation
/// ("most of the communication overhead … is caused by T-Man") can be
/// reproduced exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundCost {
    /// Units spent by T-Man view exchanges.
    pub tman_units: u64,
    /// Units spent migrating data points (pull + push legs).
    pub migration_units: u64,
    /// Units spent pushing backup deltas.
    pub backup_units: u64,
}

impl RoundCost {
    /// Total units this round across all protocols (peer sampling is
    /// excluded by the paper's convention).
    pub fn total(&self) -> u64 {
        self.tman_units + self.migration_units + self.backup_units
    }

    /// Resets the tally for the next round.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Fraction of the total attributable to T-Man (≈ 93.6 % for K = 8 in
    /// the paper).
    pub fn tman_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.tman_units as f64 / total as f64
        }
    }

    /// Converts one outbound wire message to units under `model` and adds
    /// it to the matching bucket — the one charging routine every metered
    /// substrate calls at its send boundary.
    pub fn charge_wire<P>(&mut self, model: &CostModel, wire: &Wire<P>) {
        let units = model.wire_units(wire);
        match wire {
            Wire::TManRequest { .. } | Wire::TManReply { .. } => self.tman_units += units,
            Wire::BackupPush { .. } => self.backup_units += units,
            Wire::MigrationReply { .. } => self.migration_units += units,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene::prelude::{DataPoint, PointId};

    #[test]
    fn paper_prices_for_2d() {
        let m = CostModel::default();
        assert_eq!(m.units_per_point, 2);
        assert_eq!(m.units_per_descriptor, 3);
        assert_eq!(m.units_per_id, 1);
    }

    #[test]
    fn dimension_scaling() {
        let m = CostModel::for_dimension(3);
        assert_eq!(m.units_per_point, 3);
        assert_eq!(m.units_per_descriptor, 4);
    }

    #[test]
    fn tally_totals_and_share() {
        let mut c = RoundCost::default();
        c.tman_units = 90;
        c.migration_units = 6;
        c.backup_units = 4;
        assert_eq!(c.total(), 100);
        assert!((c.tman_share() - 0.9).abs() < 1e-12);
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.tman_share(), 0.0);
    }

    #[test]
    fn wire_units_match_paper_prices() {
        let m = CostModel::default();
        let d =
            polystyrene_membership::Descriptor::new(polystyrene_membership::NodeId::new(1), 0.0);
        assert_eq!(
            m.wire_units(&Wire::TManRequest {
                from_pos: 0.0,
                descriptors: vec![d, d],
            }),
            6,
            "two descriptors at 3 units each"
        );
        assert_eq!(
            m.wire_units(&Wire::MigrationReply {
                xid: 1,
                points: vec![DataPoint::new(PointId::new(0), 0.0)],
                busy: false,
                pulled: 2,
                pushed: 1,
            }),
            6,
            "pull+push legs at 2 units per point"
        );
        assert_eq!(
            m.wire_units(&Wire::BackupPush {
                points: Vec::<DataPoint<f64>>::new(),
                added_points: 2,
                removed_ids: 3,
            }),
            7,
            "2 points shipped whole + 3 bare removal ids"
        );
        assert_eq!(m.wire_units(&Wire::<f64>::Heartbeat), 0);
        assert_eq!(m.wire_units(&Wire::<f64>::MigrationAck { xid: 1 }), 0);
    }

    #[test]
    fn charge_wire_routes_to_buckets() {
        let model = CostModel::default();
        let mut tally = RoundCost::default();
        tally.charge_wire(
            &model,
            &Wire::TManReply {
                descriptors: vec![polystyrene_membership::Descriptor::new(
                    polystyrene_membership::NodeId::new(2),
                    1.0,
                )],
            },
        );
        tally.charge_wire(
            &model,
            &Wire::<f64>::MigrationReply {
                xid: 1,
                points: Vec::new(),
                busy: false,
                pulled: 1,
                pushed: 0,
            },
        );
        tally.charge_wire(
            &model,
            &Wire::<f64>::BackupPush {
                points: Vec::new(),
                added_points: 1,
                removed_ids: 0,
            },
        );
        tally.charge_wire(&model, &Wire::<f64>::Heartbeat);
        assert_eq!(tally.tman_units, 3);
        assert_eq!(tally.migration_units, 2);
        assert_eq!(tally.backup_units, 2);
        assert_eq!(tally.total(), 7);
    }
}
