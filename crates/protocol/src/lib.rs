//! Sans-IO protocol core of the Polystyrene reproduction.
//!
//! The paper's per-node protocol (Fig. 3/4: RPS sampling, T-Man topology
//! construction, then recovery → backup → migration) used to be
//! implemented twice — once as atomic phases in the cycle engine
//! (`polystyrene-sim`) and once as mailbox handlers in the threaded
//! runtime (`polystyrene-runtime`). This crate extracts the single
//! authoritative state machine both drivers now share:
//!
//! * [`node::ProtocolNode`] owns the full per-node stack (`PeerSampling`,
//!   `TMan`, `PolyState`, heartbeat bookkeeping) and speaks only in typed
//!   [`wire::Event`]s in and [`wire::Effect`]s out — it never touches a
//!   socket, a channel, or a clock;
//! * [`scenario`] holds the timed event scripts ([`scenario::Scenario`],
//!   including the paper's three-phase evaluation, continuous
//!   [`scenario::ScenarioEvent::Churn`] windows and
//!   [`scenario::ScenarioEvent::Partition`] masks) together with the
//!   shared victim-selection helpers; the `polystyrene-lab` experiment
//!   plane executes the *same* script value unchanged on the cycle
//!   engine, the discrete-event network simulator, and the live
//!   clusters;
//! * [`observe`] defines the unified [`observe::RoundObservation`]
//!   record every substrate reports experiment results in, and the
//!   shared reference-homogeneity bound the reshaping-time metric is
//!   defined against;
//! * [`net`] defines the shared network model ([`net::NetworkModel`],
//!   [`net::LinkProfile`], [`net::FaultyNetwork`]): what a driver's
//!   fabric does to each message — deliver after a latency, drop, or
//!   block across a partition;
//! * [`codec`] pins the byte encoding of the sans-IO surface before any
//!   real transport exists, guarded by property round-trips;
//! * [`pool`] is the dense slot pool (free list, generation-stamped
//!   [`pool::SlotRef`]s, struct-of-arrays position slab) the
//!   deterministic drivers store their [`node::ProtocolNode`]
//!   populations in.
//!
//! # Driving the state machine
//!
//! A driver feeds the node and executes its effects:
//!
//! * the **cycle engine** calls [`node::ProtocolNode::on_phase`] for every
//!   node phase-by-phase (PeerSim semantics: one global activation order
//!   per phase) and applies effects synchronously — a [`wire::Effect::Send`]
//!   is delivered to the destination node's
//!   [`node::ProtocolNode::on_event`] in the same instant, which keeps
//!   pairwise exchanges atomic and histories bit-identical to the
//!   pre-extraction engine;
//! * the **threaded runtime** calls [`node::ProtocolNode::on_tick`] on a
//!   wall-clock timer and maps each effect onto a mailbox message; replies
//!   arrive later (or never) as [`wire::Event::Message`]s.
//!
//! Reachability is probed before a request is built
//! ([`wire::Effect::Probe`] answered by [`wire::Event::ProbeOk`] /
//! [`wire::Event::PeerUnreachable`]): the synchronous driver answers from
//! ground truth without consuming entropy for exchanges that cannot
//! happen, and the asynchronous driver answers from its address book.
//!
//! ```
//! use polystyrene::prelude::*;
//! use polystyrene_membership::{Descriptor, NodeId};
//! use polystyrene_protocol::prelude::*;
//! use polystyrene_space::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let config = ProtocolConfig::default();
//! let origin = DataPoint::new(PointId::new(0), [0.0, 0.0]);
//! let contacts = vec![Descriptor::new(NodeId::new(1), [1.0, 0.0])];
//! let mut node = ProtocolNode::new(
//!     NodeId::new(0),
//!     Euclidean2,
//!     config,
//!     PolyState::with_initial_point(origin),
//!     contacts.clone(),
//!     contacts,
//! );
//! let effects = node.on_tick(&mut rng);
//! assert!(effects.iter().any(|e| matches!(e, Effect::Probe { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seed offset separating the application traffic plane's entropy —
/// gateway selection and query-link faults — from every protocol-plane
/// stream. Shared by all substrates so that enabling query traffic on
/// any of them leaves the protocol history (and the pinned golden
/// fingerprints) byte-identical.
pub const TRAFFIC_SEED_TAG: u64 = 0x0074_7261_6666_6963; // "traffic"

pub mod codec;
pub mod config;
pub mod cost;
pub mod net;
pub mod node;
pub mod observe;
pub mod pool;
pub mod scenario;
pub mod wire;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::config::ProtocolConfig;
    pub use crate::cost::{CostModel, RoundCost};
    pub use crate::net::{Fate, FaultyNetwork, LinkProfile, NetworkModel};
    pub use crate::node::{Phase, ProtocolNode};
    pub use crate::observe::{reference_homogeneity, RoundObservation, TrafficStats};
    pub use crate::pool::{NodePool, SlotRef};
    pub use crate::scenario::{
        sample_bootstrap_contacts, select_region_victims, select_victims, PaperScenario, Scenario,
        ScenarioEvent,
    };
    pub use crate::wire::{Channel, Effect, EffectSink, Event, QueryItem, QueryReplyItem, Wire};
}

pub use prelude::*;
