//! Protocol-level configuration shared by every driver.

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_topology::TManConfig;

/// Parameters of one node's protocol stack, independent of how it is
/// driven (cycle engine or threaded runtime).
///
/// The tick-denominated fields only matter to asynchronous drivers: a
/// cycle driver resolves every exchange within the round it starts in, so
/// its pending-exchange and heartbeat timeouts never fire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProtocolConfig {
    /// T-Man parameters (view cap 100, m = 20, ψ = 5 in the paper).
    pub tman: TManConfig,
    /// Polystyrene parameters (K, split strategy, projection, …).
    pub poly: PolystyreneConfig,
    /// RPS view capacity.
    pub rps_view_cap: usize,
    /// Descriptors exchanged per RPS shuffle.
    pub rps_shuffle_len: usize,
    /// Ticks without a heartbeat after which a monitored peer is suspected
    /// by the node's built-in detector (asynchronous drivers only;
    /// [`u32::MAX`] disables the detector *and* its per-message liveness
    /// bookkeeping for drivers with an external detector).
    pub heartbeat_timeout_ticks: u32,
    /// Ticks an initiated migration may stay unanswered before the
    /// initiator gives up and unlocks (asynchronous drivers only).
    pub migration_timeout_ticks: u32,
    /// Ticks a gateway waits for a [`crate::wire::Wire::QueryReply`]
    /// before writing the query off as dropped-in-hole. Expiry is lazy
    /// (checked when traffic counters are drained), so the timeout never
    /// touches the protocol phases or their entropy.
    pub query_timeout_ticks: u32,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            tman: TManConfig::default(),
            poly: PolystyreneConfig::default(),
            rps_view_cap: 20,
            rps_shuffle_len: 8,
            heartbeat_timeout_ticks: 4,
            migration_timeout_ticks: 3,
            query_timeout_ticks: 8,
        }
    }
}

impl ProtocolConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if any sub-configuration is invalid or a zero timeout is
    /// given.
    pub fn validate(&self) {
        self.tman.validate();
        self.poly.validate();
        assert!(
            self.heartbeat_timeout_ticks > 0,
            "heartbeat timeout must be at least one tick"
        );
        assert!(
            self.migration_timeout_ticks > 0,
            "migration timeout must be at least one tick"
        );
        assert!(
            self.query_timeout_ticks > 0,
            "query timeout must be at least one tick"
        );
        // rps_view_cap / rps_shuffle_len are validated by PeerSampling::new.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ProtocolConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "migration timeout")]
    fn zero_migration_timeout_rejected() {
        let mut c = ProtocolConfig::default();
        c.migration_timeout_ticks = 0;
        c.validate();
    }
}
