//! Property coverage for the payload recycler ([`BufPool`]) — the
//! hygiene contract every driver leans on:
//!
//! 1. a recycled buffer can never leak stale contents into the next
//!    payload (buffers come back **empty**, only capacity survives);
//! 2. payloads built in recycled buffers encode byte-identically to
//!    payloads built in fresh ones, through dirty codec out-buffers;
//! 3. the pool's retention is bounded: a catastrophic-failure spike
//!    (one 102 400-point payload, or thousands of returns) cannot pin
//!    unbounded memory.

use polystyrene::prelude::{DataPoint, PointId};
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_protocol::codec::{decode_wire, encode_wire, encode_wire_into};
use polystyrene_protocol::wire::{BufPool, EffectSink, QueryItem, QueryReplyItem, Wire};
use proptest::collection::vec;
use proptest::prelude::*;

type Pos = [f64; 2];

fn descriptor_strategy() -> impl Strategy<Value = Descriptor<Pos>> {
    ((0..10_000u64, [-1e6..1e6f64, -1e6..1e6f64]), 0..500u32)
        .prop_map(|((id, pos), age)| Descriptor::with_age(NodeId::new(id), pos, age))
}

fn point_strategy() -> impl Strategy<Value = DataPoint<Pos>> {
    (0..10_000u64, [-1e6..1e6f64, -1e6..1e6f64])
        .prop_map(|(id, pos)| DataPoint::new(PointId::new(id), pos))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever a buffer held when it was recycled, the next take yields
    /// it empty — across all three kinds and the wire-salvage path.
    #[test]
    fn recycled_buffers_come_back_empty(
        descriptors in vec(descriptor_strategy(), 1..40),
        points in vec(point_strategy(), 1..40),
        ids in vec(0..10_000u64, 1..40),
    ) {
        let mut pool: BufPool<Pos> = BufPool::new();
        pool.put_descriptors(descriptors.clone());
        pool.put_points(points.clone());
        pool.put_point_ids(ids.iter().map(|&i| PointId::new(i)).collect());
        let d = pool.take_descriptors();
        let p = pool.take_points();
        let i = pool.take_point_ids();
        prop_assert!(d.is_empty() && p.is_empty() && i.is_empty());
        prop_assert!(d.capacity() > 0 && p.capacity() > 0 && i.capacity() > 0);

        // The same guarantee through the terminal-message salvage path.
        pool.recycle_wire(Wire::RpsReply { sent: descriptors.clone(), descriptors });
        pool.recycle_wire(Wire::BackupPush { points, added_points: 1, removed_ids: 0 });
        prop_assert!(pool.take_descriptors().is_empty());
        prop_assert!(pool.take_descriptors().is_empty());
        prop_assert!(pool.take_points().is_empty());

        // And for the traffic plane's batch envelopes: their item
        // buffers pool and come back empty with capacity intact.
        let queries: Vec<QueryItem<Pos>> = ids
            .iter()
            .map(|&i| QueryItem { qid: i, origin: NodeId::new(i), key: [0.0, 0.0], ttl: 4, hops: 0 })
            .collect();
        let replies: Vec<QueryReplyItem<Pos>> = ids
            .iter()
            .map(|&i| QueryReplyItem { qid: i, hops: 1, pos: [0.0, 0.0] })
            .collect();
        pool.recycle_wire(Wire::QueryBatch { queries });
        pool.recycle_wire(Wire::QueryReplyBatch { replies });
        let q = pool.take_queries();
        let r = pool.take_replies();
        prop_assert!(q.is_empty() && r.is_empty());
        prop_assert!(q.capacity() > 0 && r.capacity() > 0);
    }

    /// The traffic plane's wires are heap-free: recycling a query or a
    /// query reply must retain nothing — no pooled buffer appears, no
    /// element capacity is pinned — whatever the payload values are.
    #[test]
    fn query_wires_recycle_without_retention(
        qid in 0..u64::MAX,
        origin in 0..10_000u64,
        key in [-1e6..1e6f64, -1e6..1e6f64],
        ttl in 0..64u32,
        hops in 0..64u32,
    ) {
        let mut pool: BufPool<Pos> = BufPool::new();
        pool.recycle_wire(Wire::Query {
            qid,
            origin: NodeId::new(origin),
            key,
            ttl,
            hops,
        });
        pool.recycle_wire(Wire::QueryReply { qid, hops, pos: key });
        prop_assert_eq!(pool.pooled_counts(), (0, 0, 0, 0, 0));
        prop_assert_eq!(pool.pooled_elements(), (0, 0, 0, 0, 0));
    }

    /// A payload rebuilt in a dirty-history pooled buffer encodes — via
    /// the `*_into` path over a dirty out-buffer — to exactly the bytes
    /// of the fresh-allocation encoding, and round-trips.
    #[test]
    fn pooled_payloads_round_trip_through_dirty_buffers(
        stale in vec(descriptor_strategy(), 1..40),
        payload in vec(descriptor_strategy(), 0..40),
        garbage in vec(0..=255u8, 0..256),
    ) {
        let mut sink: EffectSink<Pos> = EffectSink::new();
        sink.put_descriptors(stale);
        let mut buf = sink.take_descriptors();
        buf.extend(payload.iter().cloned());
        let recycled_wire = Wire::RpsRequest { descriptors: buf };
        let fresh_wire = Wire::RpsRequest { descriptors: payload };

        let mut out = garbage; // dirty out-buffer for the *_into path
        encode_wire_into(&mut out, &recycled_wire);
        prop_assert_eq!(&out, &encode_wire(&fresh_wire));
        let decoded = decode_wire::<Pos>(&out);
        prop_assert_eq!(decoded.as_ref(), Ok(&fresh_wire));
    }

    /// Retention bounds: oversized buffers are dropped on return, and
    /// the per-kind retained element capacity never exceeds the budget
    /// no matter how many buffers come back.
    #[test]
    fn pool_retention_is_bounded_after_a_spike(
        spike_cap in 100_000..300_000usize,
        small_caps in vec(1..=4096usize, 1..64),
    ) {
        let mut pool: BufPool<Pos> = BufPool::new();

        // A 102k-point catastrophic-failure payload must not be pinned.
        let spike: Vec<DataPoint<Pos>> = Vec::with_capacity(spike_cap);
        pool.put_points(spike);
        prop_assert_eq!(pool.pooled_counts().1, 0, "oversized buffer retained");

        // Budget bound: retained capacity per kind stays within the
        // element budget across an arbitrary sequence of returns.
        for &cap in &small_caps {
            pool.put_points(Vec::with_capacity(cap));
            let (_, retained, _, _, _) = pool.pooled_elements();
            prop_assert!(retained <= BufPool::<Pos>::max_pooled_elements());
        }

        // Every retained buffer individually respects the capacity cap,
        // and draining the pool returns the accounting to zero.
        let mut drained = 0;
        loop {
            let buf = pool.take_points();
            if buf.capacity() == 0 {
                break;
            }
            prop_assert!(buf.capacity() <= BufPool::<Pos>::max_pooled_capacity());
            drained += buf.capacity();
        }
        prop_assert_eq!(pool.pooled_elements().1, 0);
        prop_assert!(drained <= BufPool::<Pos>::max_pooled_elements());
    }
}

/// Deterministic worst case: returns totalling far past the element
/// budget stop being retained once the budget is full — the pool cannot
/// grow linearly with the burst size the way a count-capped pool grows
/// with buffer count.
#[test]
fn element_budget_caps_a_sustained_burst() {
    let mut pool: BufPool<Pos> = BufPool::new();
    let budget = BufPool::<Pos>::max_pooled_elements();
    let cap = BufPool::<Pos>::max_pooled_capacity();
    // Offer 3× the budget in max-capacity buffers.
    for _ in 0..(3 * budget / cap) {
        pool.put_descriptors(Vec::with_capacity(cap));
    }
    let (retained, _, _, _, _) = pool.pooled_elements();
    assert!(retained <= budget, "retained {retained} > budget {budget}");
    assert!(
        retained >= budget - cap,
        "budget under-filled: retained {retained} of {budget}"
    );
}
